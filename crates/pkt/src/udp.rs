//! UDP headers.

use std::net::Ipv4Addr;

use crate::checksum;
use crate::{PktError, Result};

/// A UDP header (8 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub len: u16,
    /// Checksum over the pseudo-header and segment (0 = not computed).
    pub checksum: u16,
}

impl UdpHeader {
    /// Wire size of the header.
    pub const LEN: usize = 8;

    /// Creates a header for a payload of `payload_len` bytes with the
    /// checksum left at zero (filled in by [`UdpHeader::write_segment`]).
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> UdpHeader {
        UdpHeader {
            src_port,
            dst_port,
            len: (Self::LEN + payload_len) as u16,
            checksum: 0,
        }
    }

    /// Parses a header from the front of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<UdpHeader> {
        if bytes.len() < Self::LEN {
            return Err(PktError::Truncated {
                need: Self::LEN,
                have: bytes.len(),
            });
        }
        let len = u16::from_be_bytes([bytes[4], bytes[5]]);
        if (len as usize) < Self::LEN || len as usize > bytes.len() {
            return Err(PktError::BadLength { layer: "udp" });
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            len,
            checksum: u16::from_be_bytes([bytes[6], bytes[7]]),
        })
    }

    /// Writes the header into `out` without computing the checksum.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`Self::LEN`].
    pub fn write_to(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.len.to_be_bytes());
        out[6..8].copy_from_slice(&self.checksum.to_be_bytes());
    }

    /// Writes header + `payload` into `out` and fills in the checksum
    /// using the IPv4 pseudo-header.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than header + payload.
    pub fn write_segment(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8], out: &mut [u8]) {
        let total = Self::LEN + payload.len();
        let mut hdr = *self;
        hdr.checksum = 0;
        hdr.write_to(out);
        out[Self::LEN..total].copy_from_slice(payload);
        let sum = checksum::pseudo_header_checksum(src, dst, crate::IpProto::UDP.0, &out[..total]);
        out[6..8].copy_from_slice(&sum.to_be_bytes());
    }

    /// Verifies the segment checksum over the pseudo-header. A zero
    /// checksum (sender opted out) verifies trivially per RFC 768.
    pub fn verify_segment(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> bool {
        if segment.len() >= Self::LEN && segment[6] == 0 && segment[7] == 0 {
            return true;
        }
        let mut copy = segment.to_vec();
        let sent = u16::from_be_bytes([copy[6], copy[7]]);
        copy[6] = 0;
        copy[7] = 0;
        checksum::pseudo_header_checksum(src, dst, crate::IpProto::UDP.0, &copy) == sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn round_trip() {
        let h = UdpHeader::new(5432, 9000, 4);
        let payload = [1u8, 2, 3, 4];
        let mut buf = vec![0u8; UdpHeader::LEN + payload.len()];
        h.write_segment(addr("10.0.0.1"), addr("10.0.0.2"), &payload, &mut buf);
        let parsed = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.src_port, 5432);
        assert_eq!(parsed.dst_port, 9000);
        assert_eq!(parsed.len, 12);
        assert_ne!(parsed.checksum, 0);
        assert!(UdpHeader::verify_segment(
            addr("10.0.0.1"),
            addr("10.0.0.2"),
            &buf
        ));
    }

    #[test]
    fn wrong_pseudo_header_fails_verification() {
        let h = UdpHeader::new(1, 2, 0);
        let mut buf = vec![0u8; UdpHeader::LEN];
        h.write_segment(addr("10.0.0.1"), addr("10.0.0.2"), &[], &mut buf);
        assert!(!UdpHeader::verify_segment(
            addr("10.0.0.9"),
            addr("10.0.0.2"),
            &buf
        ));
    }

    #[test]
    fn corrupt_payload_fails_verification() {
        let h = UdpHeader::new(1, 2, 2);
        let mut buf = vec![0u8; UdpHeader::LEN + 2];
        h.write_segment(addr("1.1.1.1"), addr("2.2.2.2"), &[7, 8], &mut buf);
        buf[9] ^= 0xFF;
        assert!(!UdpHeader::verify_segment(
            addr("1.1.1.1"),
            addr("2.2.2.2"),
            &buf
        ));
    }

    #[test]
    fn zero_checksum_accepted() {
        let h = UdpHeader::new(1, 2, 0);
        let mut buf = vec![0u8; UdpHeader::LEN];
        h.write_to(&mut buf);
        assert!(UdpHeader::verify_segment(
            addr("1.1.1.1"),
            addr("2.2.2.2"),
            &buf
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            UdpHeader::parse(&[0u8; 4]).unwrap_err(),
            PktError::Truncated { need: 8, have: 4 }
        );
    }

    #[test]
    fn bad_length_rejected() {
        let mut buf = [0u8; UdpHeader::LEN];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // shorter than header
        assert_eq!(
            UdpHeader::parse(&buf).unwrap_err(),
            PktError::BadLength { layer: "udp" }
        );
        buf[4..6].copy_from_slice(&100u16.to_be_bytes()); // longer than buffer
        assert_eq!(
            UdpHeader::parse(&buf).unwrap_err(),
            PktError::BadLength { layer: "udp" }
        );
    }
}
