//! The Internet checksum (RFC 1071) and TCP/UDP pseudo-header sums.

use std::net::Ipv4Addr;

/// Sums `data` as big-endian 16-bit words into a 32-bit accumulator,
/// padding an odd trailing byte with zero.
fn sum_words(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds the carries and complements, producing the final checksum.
fn finish(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// Computes the Internet checksum of `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    finish(sum_words(0, data))
}

/// Verifies a buffer whose checksum field is included in `data`.
///
/// A correct buffer sums (with carries folded) to `0xFFFF`, i.e. the
/// finished checksum is zero.
pub fn verify(data: &[u8]) -> bool {
    finish(sum_words(0, data)) == 0
}

/// Incrementally updates a checksum after one 16-bit word changes from
/// `old_word` to `new_word` (RFC 1624, eqn. 3: `HC' = ~(~HC + ~m + m')`).
///
/// This is how NAT hardware rewrites headers without re-summing the
/// packet: O(1) per changed word.
pub fn incremental_update(checksum: u16, old_word: u16, new_word: u16) -> u16 {
    let mut acc = u32::from(!checksum) + u32::from(!old_word) + u32::from(new_word);
    acc = (acc & 0xFFFF) + (acc >> 16);
    acc = (acc & 0xFFFF) + (acc >> 16);
    !(acc as u16)
}

/// Computes the TCP/UDP checksum over the IPv4 pseudo-header plus the
/// transport `segment` (header + payload, with its checksum field zeroed).
pub fn pseudo_header_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> u16 {
    let mut acc = 0u32;
    acc = sum_words(acc, &src.octets());
    acc = sum_words(acc, &dst.octets());
    acc += u32::from(proto);
    acc += segment.len() as u32;
    acc = sum_words(acc, segment);
    let sum = finish(acc);
    // RFC 768: a computed UDP checksum of zero is transmitted as all ones.
    if sum == 0 {
        0xFFFF
    } else {
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn zero_buffer_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[0u8; 20]), 0xFFFF);
    }

    #[test]
    fn odd_length_is_padded() {
        // [0xAB] pads to 0xAB00.
        assert_eq!(internet_checksum(&[0xAB]), !0xAB00);
    }

    #[test]
    fn verify_accepts_correct_buffer() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x28, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06];
        data.extend_from_slice(&[0, 0]); // checksum slot
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let sum = internet_checksum(&data);
        data[10..12].copy_from_slice(&sum.to_be_bytes());
        assert!(verify(&data));
        // Corrupt one byte: verification fails.
        data[0] ^= 0xFF;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_includes_addresses() {
        let seg = [0x12u8, 0x34, 0x56, 0x78, 0x00, 0x04, 0x00, 0x00];
        let a = pseudo_header_checksum(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            17,
            &seg,
        );
        let b = pseudo_header_checksum(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.3".parse().unwrap(),
            17,
            &seg,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        // Build a header, change one word, and check RFC 1624 equals a
        // full recompute.
        let mut data = vec![0x45u8, 0x00, 0x00, 0x28, 0x12, 0x34, 0x40, 0x00, 0x40, 0x11];
        data.extend_from_slice(&[0, 0]);
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let sum = internet_checksum(&data);
        data[10..12].copy_from_slice(&sum.to_be_bytes());

        // Rewrite the source address's first word 10.0 -> 192.168.
        let old_word = u16::from_be_bytes([data[12], data[13]]);
        data[12] = 192;
        data[13] = 168;
        let new_word = u16::from_be_bytes([data[12], data[13]]);
        let updated = incremental_update(sum, old_word, new_word);

        data[10..12].copy_from_slice(&[0, 0]);
        let full = internet_checksum(&data);
        assert_eq!(updated, full);
    }

    #[test]
    fn incremental_is_invertible() {
        let sum = 0x1234u16;
        let step = incremental_update(sum, 0xAAAA, 0xBBBB);
        let back = incremental_update(step, 0xBBBB, 0xAAAA);
        assert_eq!(back, sum);
    }

    #[test]
    fn incremental_noop_change_preserves_sum() {
        assert_eq!(incremental_update(0x4242, 0x7777, 0x7777), 0x4242);
    }

    #[test]
    fn pseudo_header_never_returns_zero() {
        // Craft a segment whose sum would be zero: all-0xFF words sum to
        // 0xFFFF which complements to 0; construction below exercises the
        // 0 → 0xFFFF substitution path indirectly by brute force.
        let src: Ipv4Addr = "0.0.0.0".parse().unwrap();
        let dst: Ipv4Addr = "0.0.0.0".parse().unwrap();
        for filler in 0..=255u8 {
            let seg = [filler; 6];
            assert_ne!(pseudo_header_checksum(src, dst, 0, &seg), 0);
        }
    }
}
