//! Parse-once frame descriptors.
//!
//! The paper's §1 argument is that every avoidable touch of a packet costs
//! dataplane performance. Re-parsing the same wire bytes at every pipeline
//! stage is exactly such a touch, so — like an skb or mbuf — each frame
//! carries a [`FrameMeta`] descriptor computed exactly once: at ingress
//! (the NIC parser stage) or at build time ([`crate::builder`], whose
//! output is checksum-correct by construction). Every later stage (flow
//! lookup, filters, NAT, classification, sniffing, the slow-path stack)
//! reads the descriptor instead of the bytes.
//!
//! Mutation discipline: only NAT-style header rewrites may change a
//! descriptor, and they do so incrementally — offsets are stable, the
//! tuple is patched in place, and the flow hash is updated via the
//! Toeplitz linearity identity (see [`crate::flow::RssHasher::hash_delta`])
//! rather than recomputed from the bytes. The audit invariant, enforced by
//! property tests, is that a descriptor carried through any pipeline stage
//! equals one freshly derived from the stage's output bytes.

use std::net::Ipv4Addr;
use std::ops::Range;
use std::sync::OnceLock;

use crate::arp::ArpPacket;
use crate::ether::EthernetHeader;
use crate::flow::{FiveTuple, RssHasher};
use crate::ipv4::{IpProto, Ipv4Header};
use crate::packet::{Packet, Parsed, Payload};
use crate::tcp::TcpFlags;
use crate::Result;

/// The packet classes the dataplane distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// An ARP frame (slow path, no five-tuple).
    Arp,
    /// An IPv4/TCP segment.
    Tcp,
    /// An IPv4/UDP datagram.
    Udp,
    /// IPv4 with a transport protocol this stack does not parse.
    OtherIp,
}

/// The hasher used for descriptor flow hashes: the Microsoft verification
/// key, shared by every layer so hashes are comparable across the stack.
/// (The queue count only affects queue steering, never the hash value.)
fn shared_hasher() -> &'static RssHasher {
    static HASHER: OnceLock<RssHasher> = OnceLock::new();
    HASHER.get_or_init(|| RssHasher::with_default_key(1))
}

/// Computes the canonical RSS flow hash of a five-tuple (Microsoft
/// default key — the same value every [`FrameMeta`] carries).
pub fn flow_hash_of(tuple: &FiveTuple) -> u32 {
    shared_hasher().hash(tuple)
}

/// A parse-once frame descriptor carried alongside the wire bytes.
///
/// `Copy` on purpose: the descriptor is 64-ish bytes of plain data, cheap
/// to hand through every pipeline stage without allocation.
///
/// Equality is *structural*: [`FrameMeta::frame_id`] — the telemetry
/// lifecycle tag, assigned at dataplane admission — is excluded, so the
/// parse-once audit invariant ("a carried descriptor equals one freshly
/// derived from the bytes") still holds after a frame is tagged.
#[derive(Clone, Copy, Debug)]
pub struct FrameMeta {
    /// Dataplane-unique trace id (0 = not yet admitted/tagged). Assigned
    /// by the first telemetry-aware stage the frame crosses and carried
    /// unchanged through rewrites; excluded from equality.
    pub frame_id: u64,
    /// Packet class (dispatch key for every stage).
    pub class: PacketClass,
    /// Total frame length in bytes.
    pub frame_len: usize,
    /// Raw EtherType value.
    pub ethertype: u16,
    /// Offset of the L3 header (always [`EthernetHeader::LEN`] here, but
    /// carried so stages never assume).
    pub l3_off: usize,
    /// Offset of the L4 header for TCP/UDP frames.
    pub l4_off: Option<usize>,
    /// Offset of the application payload (for ARP, the ARP body).
    pub payload_off: usize,
    /// Length of the application payload in bytes.
    pub payload_len: usize,
    /// The connection five-tuple for TCP/UDP frames.
    pub tuple: Option<FiveTuple>,
    /// Toeplitz RSS hash of the tuple (0 when there is no tuple).
    pub flow_hash: u32,
    /// The IPv4 DSCP/ECN byte (0 for ARP).
    pub dscp_ecn: u8,
    /// L3 checksum verified (IPv4 header sum; trivially true for ARP).
    pub l3_checksum_ok: bool,
    /// L4 checksum verified (TCP/UDP pseudo-header sum; trivially true
    /// for frames without one).
    pub l4_checksum_ok: bool,
    /// RSS queue the NIC steered this frame to (0 until the frame crosses
    /// the RSS stage — parsing never assigns a queue, the indirection
    /// table does). Like [`FrameMeta::frame_id`], this is a dataplane
    /// tag, not parsed content, so it is excluded from equality.
    pub queue: u16,
}

impl PartialEq for FrameMeta {
    fn eq(&self, other: &FrameMeta) -> bool {
        // Everything except `frame_id` and `queue` (see the struct docs).
        self.class == other.class
            && self.frame_len == other.frame_len
            && self.ethertype == other.ethertype
            && self.l3_off == other.l3_off
            && self.l4_off == other.l4_off
            && self.payload_off == other.payload_off
            && self.payload_len == other.payload_len
            && self.tuple == other.tuple
            && self.flow_hash == other.flow_hash
            && self.dscp_ecn == other.dscp_ecn
            && self.l3_checksum_ok == other.l3_checksum_ok
            && self.l4_checksum_ok == other.l4_checksum_ok
    }
}

impl Eq for FrameMeta {}

impl FrameMeta {
    /// Derives a descriptor from wire bytes: the single ingress parse.
    ///
    /// Structural failures (truncation, bad IPv4 header checksum,
    /// unsupported EtherType) are errors; a bad *transport* checksum is
    /// not — the frame parses, so the descriptor is returned with
    /// [`FrameMeta::l4_checksum_ok`] cleared and the caller decides
    /// (the NIC counts it separately from malformed frames).
    pub fn derive(frame: &[u8]) -> Result<FrameMeta> {
        let parsed = Parsed::from_frame(frame)?;
        Ok(FrameMeta::from_parsed(&parsed, frame))
    }

    /// Builds a descriptor from an already-parsed view of `frame`.
    pub fn from_parsed(parsed: &Parsed, frame: &[u8]) -> FrameMeta {
        let l3_off = EthernetHeader::LEN;
        let l4_ok = parsed.l4_checksum_ok(frame);
        let (class, l4_off, payload, dscp_ecn) = match &parsed.payload {
            Payload::Arp(_) => (PacketClass::Arp, None, l3_off..l3_off + ArpPacket::LEN, 0),
            Payload::Tcp { ip, payload, .. } => (
                PacketClass::Tcp,
                Some(l3_off + Ipv4Header::LEN),
                payload.clone(),
                ip.dscp_ecn,
            ),
            Payload::Udp { ip, payload, .. } => (
                PacketClass::Udp,
                Some(l3_off + Ipv4Header::LEN),
                payload.clone(),
                ip.dscp_ecn,
            ),
            Payload::OtherIp { ip } => (
                PacketClass::OtherIp,
                None,
                l3_off + Ipv4Header::LEN..l3_off + ip.total_len as usize,
                ip.dscp_ecn,
            ),
        };
        let tuple = FiveTuple::from_parsed(parsed);
        FrameMeta {
            frame_id: 0,
            class,
            frame_len: frame.len(),
            ethertype: parsed.ether.ethertype.0,
            l3_off,
            l4_off,
            payload_off: payload.start,
            payload_len: payload.len(),
            tuple,
            flow_hash: tuple.map(|t| flow_hash_of(&t)).unwrap_or(0),
            dscp_ecn,
            l3_checksum_ok: true,
            l4_checksum_ok: l4_ok,
            queue: 0,
        }
    }

    /// Returns the attached descriptor of `packet`, deriving one if the
    /// packet does not carry meta yet (the ingress fallback).
    pub fn of(packet: &Packet) -> Result<FrameMeta> {
        match packet.meta() {
            Some(m) => Ok(*m),
            None => FrameMeta::derive(packet.bytes()),
        }
    }

    /// Returns `true` for ARP frames.
    pub fn is_arp(&self) -> bool {
        self.class == PacketClass::Arp
    }

    /// The transport protocol, if this is an IP frame.
    pub fn proto(&self) -> Option<IpProto> {
        match self.class {
            PacketClass::Tcp => Some(IpProto::TCP),
            PacketClass::Udp => Some(IpProto::UDP),
            _ => self.tuple.map(|t| t.proto),
        }
    }

    /// Byte range of the application payload within the frame.
    pub fn payload(&self) -> Range<usize> {
        self.payload_off..self.payload_off + self.payload_len
    }

    /// Applies a NAT endpoint rewrite to the descriptor incrementally:
    /// the tuple is patched and the flow hash updated via Toeplitz
    /// linearity — no byte access, no re-hash of the full input.
    ///
    /// Offsets, class, lengths and checksum flags are untouched: RFC 1624
    /// fixups keep the sums valid, and NAT never moves headers.
    pub fn rewrite_endpoints(
        &mut self,
        new_src: Option<(Ipv4Addr, u16)>,
        new_dst: Option<(Ipv4Addr, u16)>,
    ) {
        let Some(old) = self.tuple else { return };
        let mut t = old;
        if let Some((ip, port)) = new_src {
            t.src_ip = ip;
            t.src_port = port;
        }
        if let Some((ip, port)) = new_dst {
            t.dst_ip = ip;
            t.dst_port = port;
        }
        self.flow_hash = shared_hasher().hash_delta(self.flow_hash, &old, &t);
        self.tuple = Some(t);
    }

    /// Renders the same tcpdump-style one-liner as [`Parsed`]'s `Display`,
    /// reading only the few bytes the descriptor points at (TCP flags,
    /// ARP body, foreign IP protocol) instead of re-parsing the frame.
    pub fn summarize(&self, bytes: &[u8]) -> String {
        match (self.class, self.tuple) {
            (PacketClass::Arp, _) => match ArpPacket::parse(&bytes[self.l3_off..]) {
                Ok(arp) => arp.to_string(),
                Err(e) => format!("unparsed: {e}"),
            },
            (PacketClass::Tcp, Some(t)) => {
                let flags_off = self.l4_off.unwrap_or(self.l3_off + Ipv4Header::LEN) + 13;
                let flags = TcpFlags(bytes.get(flags_off).copied().unwrap_or(0));
                format!(
                    "{}:{} > {}:{} tcp [{}] len {}",
                    t.src_ip, t.src_port, t.dst_ip, t.dst_port, flags, self.payload_len
                )
            }
            (PacketClass::Udp, Some(t)) => format!(
                "{}:{} > {}:{} udp len {}",
                t.src_ip, t.src_port, t.dst_ip, t.dst_port, self.payload_len
            ),
            _ => {
                let ip_at = |off: usize| {
                    Ipv4Addr::new(bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3])
                };
                let src = ip_at(self.l3_off + 12);
                let dst = ip_at(self.l3_off + 16);
                let proto = IpProto(bytes[self.l3_off + 9]);
                format!("{src} > {dst} {proto}")
            }
        }
    }
}

/// A packet buffer paired with its (guaranteed-present) descriptor: the
/// unit the dataplane hands from stage to stage after ingress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The wire bytes (with the descriptor attached for `Debug`/reuse).
    pub pkt: Packet,
    /// The parse-once descriptor.
    pub meta: FrameMeta,
}

impl Frame {
    /// Admits a packet into the dataplane: reuses an attached descriptor
    /// (build-time meta) or derives one — the only parse on the path.
    pub fn ingress(pkt: Packet) -> Result<Frame> {
        let meta = FrameMeta::of(&pkt)?;
        Ok(Frame::from_parts(pkt, meta))
    }

    /// Pairs a packet with a descriptor already computed for its bytes.
    pub fn from_parts(pkt: Packet, meta: FrameMeta) -> Frame {
        debug_assert_eq!(
            meta.frame_len,
            pkt.len(),
            "descriptor/frame length mismatch"
        );
        Frame {
            pkt: pkt.with_meta(meta),
            meta,
        }
    }

    /// Returns the wire bytes.
    pub fn bytes(&self) -> &[u8] {
        self.pkt.bytes()
    }

    /// Returns the frame length in bytes.
    pub fn len(&self) -> usize {
        self.pkt.len()
    }

    /// Returns `true` for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.pkt.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ether::Mac;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn udp_pkt() -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp(5432, 9000, b"payload")
            .build()
    }

    #[test]
    fn derive_matches_parse() {
        let pkt = udp_pkt();
        let meta = FrameMeta::derive(pkt.bytes()).unwrap();
        let parsed = pkt.parse().unwrap();
        assert_eq!(meta.class, PacketClass::Udp);
        assert_eq!(meta.tuple, FiveTuple::from_parsed(&parsed));
        assert_eq!(meta.l4_off, Some(34));
        assert_eq!(meta.payload(), 42..42 + 7);
        assert!(meta.l4_checksum_ok);
        assert_eq!(meta.flow_hash, flow_hash_of(&meta.tuple.unwrap()));
    }

    #[test]
    fn builder_attaches_meta() {
        let pkt = udp_pkt();
        let attached = *pkt.meta().expect("builder attaches meta");
        assert_eq!(attached, FrameMeta::derive(pkt.bytes()).unwrap());
    }

    #[test]
    fn bad_l4_checksum_is_flagged_not_error() {
        let pkt = udp_pkt();
        let mut bytes = pkt.bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // corrupt payload: UDP sum breaks, IP sum fine
        let meta = FrameMeta::derive(&bytes).unwrap();
        assert!(!meta.l4_checksum_ok);
        assert!(meta.l3_checksum_ok);
    }

    #[test]
    fn truncated_frame_errors() {
        assert!(FrameMeta::derive(&[0u8; 6]).is_err());
    }

    #[test]
    fn arp_meta() {
        let pkt = PacketBuilder::arp_request(Mac::local(1), addr("1.1.1.1"), addr("2.2.2.2"));
        let meta = FrameMeta::of(&pkt).unwrap();
        assert!(meta.is_arp());
        assert_eq!(meta.tuple, None);
        assert_eq!(meta.flow_hash, 0);
        assert_eq!(meta.payload(), 14..14 + ArpPacket::LEN);
    }

    #[test]
    fn rewrite_endpoints_updates_tuple_and_hash() {
        let pkt = udp_pkt();
        let mut meta = FrameMeta::of(&pkt).unwrap();
        meta.rewrite_endpoints(Some((addr("203.0.113.1"), 40_000)), None);
        let t = meta.tuple.unwrap();
        assert_eq!(t.src_ip, addr("203.0.113.1"));
        assert_eq!(t.src_port, 40_000);
        assert_eq!(t.dst_ip, addr("10.0.0.2"));
        // The incrementally updated hash equals a from-scratch hash.
        assert_eq!(meta.flow_hash, flow_hash_of(&t));
    }

    #[test]
    fn summarize_matches_parsed_display() {
        let udp = udp_pkt();
        let tcp = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .tcp(22, 40_000, TcpFlags::SYN, b"xy")
            .build();
        let arp = PacketBuilder::arp_request(Mac::local(1), addr("1.1.1.1"), addr("2.2.2.2"));
        for pkt in [udp, tcp, arp] {
            let meta = FrameMeta::of(&pkt).unwrap();
            assert_eq!(
                meta.summarize(pkt.bytes()),
                pkt.parse().unwrap().to_string()
            );
        }
    }

    #[test]
    fn ingress_roundtrip() {
        let frame = Frame::ingress(udp_pkt()).unwrap();
        assert_eq!(frame.pkt.meta(), Some(&frame.meta));
        assert_eq!(frame.len(), frame.meta.frame_len);
    }
}
