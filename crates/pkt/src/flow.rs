//! Flow identification: five-tuples and Toeplitz RSS hashing.
//!
//! The paper's debugging scenario uses RSS custom hashing to partition a
//! NIC into per-user "virtual interfaces"; the SmartNIC flow table keys
//! exact-match connections by [`FiveTuple`]. The Toeplitz implementation
//! follows the Microsoft RSS specification and is validated against its
//! published test vectors.

use std::fmt;
use std::net::Ipv4Addr;

use crate::ipv4::IpProto;
use crate::packet::{Parsed, Payload};

/// A connection five-tuple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProto,
}

impl FiveTuple {
    /// Builds a UDP five-tuple.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: IpProto::UDP,
        }
    }

    /// Builds a TCP five-tuple.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: IpProto::TCP,
        }
    }

    /// Extracts the five-tuple from a parsed frame, if it is TCP or UDP.
    pub fn from_parsed(p: &Parsed) -> Option<FiveTuple> {
        match &p.payload {
            Payload::Tcp { ip, tcp, .. } => Some(FiveTuple {
                src_ip: ip.src,
                dst_ip: ip.dst,
                src_port: tcp.src_port,
                dst_port: tcp.dst_port,
                proto: IpProto::TCP,
            }),
            Payload::Udp { ip, udp, .. } => Some(FiveTuple {
                src_ip: ip.src,
                dst_ip: ip.dst,
                src_port: udp.src_port,
                dst_port: udp.dst_port,
                proto: IpProto::UDP,
            }),
            _ => None,
        }
    }

    /// Returns the tuple with source and destination swapped (the
    /// direction a reply takes).
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} > {}:{}",
            self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// The default RSS secret key from the Microsoft RSS specification; also
/// the key used by most NIC drivers' verification suites.
pub const MS_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// A Toeplitz hasher for receive-side scaling.
#[derive(Clone, Debug)]
pub struct RssHasher {
    key: [u8; 40],
    queues: u32,
}

impl RssHasher {
    /// Creates a hasher with the given key, steering across `queues`
    /// queues.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(key: [u8; 40], queues: u32) -> RssHasher {
        assert!(queues > 0, "need at least one RSS queue");
        RssHasher { key, queues }
    }

    /// Creates a hasher with the Microsoft verification key.
    pub fn with_default_key(queues: u32) -> RssHasher {
        RssHasher::new(MS_RSS_KEY, queues)
    }

    fn toeplitz(&self, input: &[u8]) -> u32 {
        let mut result = 0u32;
        // The sliding 32-bit window over the key, advanced one bit per
        // input bit.
        let mut window = u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        let mut next_key_bit = 32; // absolute bit index into the key
        for &byte in input {
            for bit in (0..8).rev() {
                if byte >> bit & 1 == 1 {
                    result ^= window;
                }
                // Shift the window left by one, pulling in the next key
                // bit (keys longer than the input always suffice for
                // 5-tuple inputs with a 40-byte key).
                let kb = if next_key_bit < self.key.len() * 8 {
                    (self.key[next_key_bit / 8] >> (7 - next_key_bit % 8)) & 1
                } else {
                    0
                };
                window = (window << 1) | u32::from(kb);
                next_key_bit += 1;
            }
        }
        result
    }

    fn hash_input(ft: &FiveTuple) -> [u8; 12] {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&ft.src_ip.octets());
        input[4..8].copy_from_slice(&ft.dst_ip.octets());
        input[8..10].copy_from_slice(&ft.src_port.to_be_bytes());
        input[10..12].copy_from_slice(&ft.dst_port.to_be_bytes());
        input
    }

    /// Computes the 32-bit RSS hash of a five-tuple (src ip, dst ip,
    /// src port, dst port), the standard TCP/UDP 4-tuple input.
    pub fn hash(&self, ft: &FiveTuple) -> u32 {
        self.toeplitz(&Self::hash_input(ft))
    }

    /// Incrementally updates a hash after an endpoint rewrite.
    ///
    /// Toeplitz is linear over GF(2) — `H(a ^ b) == H(a) ^ H(b)` — so the
    /// rewritten tuple's hash is the old hash xored with the hash of the
    /// changed bits. NAT uses this to keep descriptors current without
    /// re-hashing the full input.
    pub fn hash_delta(&self, old_hash: u32, old: &FiveTuple, new: &FiveTuple) -> u32 {
        let a = Self::hash_input(old);
        let b = Self::hash_input(new);
        let mut delta = [0u8; 12];
        for (d, (x, y)) in delta.iter_mut().zip(a.iter().zip(b.iter())) {
            *d = x ^ y;
        }
        old_hash ^ self.toeplitz(&delta)
    }

    /// Maps a five-tuple to an RSS queue index.
    pub fn queue_for(&self, ft: &FiveTuple) -> u32 {
        self.hash(ft) % self.queues
    }

    /// Returns the configured queue count.
    pub fn queues(&self) -> u32 {
        self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    // Test vectors from the Microsoft RSS "Verifying the RSS Hash
    // Calculation" documentation (IPv4 with ports).
    #[test]
    fn microsoft_test_vectors() {
        let h = RssHasher::with_default_key(1);
        let cases = [
            (
                ("66.9.149.187", 2794),
                ("161.142.100.80", 1766),
                0x51cc_c178u32,
            ),
            (("199.92.111.2", 14230), ("65.69.140.83", 4739), 0xc626_b0ea),
            (
                ("24.19.198.95", 12898),
                ("12.22.207.184", 38024),
                0x5c2b_394a,
            ),
            (
                ("38.27.205.30", 48228),
                ("209.142.163.6", 2217),
                0xafc7_327f,
            ),
            (
                ("153.39.163.191", 44251),
                ("202.188.127.2", 1303),
                0x10e8_28a2,
            ),
        ];
        for ((src, sp), (dst, dp), expect) in cases {
            let ft = FiveTuple::tcp(addr(src), sp, addr(dst), dp);
            assert_eq!(h.hash(&ft), expect, "vector {src}:{sp} > {dst}:{dp}");
        }
    }

    #[test]
    fn hash_delta_equals_fresh_hash() {
        let h = RssHasher::with_default_key(1);
        let old = FiveTuple::tcp(addr("192.168.1.10"), 40_000, addr("8.8.8.8"), 443);
        let cases = [
            FiveTuple::tcp(addr("203.0.113.1"), 32_768, addr("8.8.8.8"), 443),
            FiveTuple::tcp(addr("192.168.1.10"), 40_000, addr("10.0.0.9"), 8443),
            old.reversed(),
            old, // no-op rewrite
        ];
        for new in cases {
            assert_eq!(
                h.hash_delta(h.hash(&old), &old, &new),
                h.hash(&new),
                "{new}"
            );
        }
    }

    #[test]
    fn queue_mapping_is_stable_and_bounded() {
        let h = RssHasher::with_default_key(8);
        let ft = FiveTuple::udp(addr("10.0.0.1"), 111, addr("10.0.0.2"), 222);
        let q = h.queue_for(&ft);
        assert!(q < 8);
        assert_eq!(q, h.queue_for(&ft));
    }

    #[test]
    fn different_flows_spread_across_queues() {
        let h = RssHasher::with_default_key(4);
        let mut seen = [false; 4];
        for port in 0..200 {
            let ft = FiveTuple::udp(addr("10.0.0.1"), 1000 + port, addr("10.0.0.2"), 80);
            seen[h.queue_for(&ft) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "queues hit: {seen:?}");
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let ft = FiveTuple::tcp(addr("1.1.1.1"), 10, addr("2.2.2.2"), 20);
        let r = ft.reversed();
        assert_eq!(r.src_ip, addr("2.2.2.2"));
        assert_eq!(r.src_port, 20);
        assert_eq!(r.dst_port, 10);
        assert_eq!(r.reversed(), ft);
    }

    #[test]
    fn from_parsed_extracts_tuple() {
        use crate::builder::PacketBuilder;
        use crate::ether::Mac;
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp(5432, 9000, b"q")
            .build();
        let ft = FiveTuple::from_parsed(&pkt.parse().unwrap()).unwrap();
        assert_eq!(
            ft,
            FiveTuple::udp(addr("10.0.0.1"), 5432, addr("10.0.0.2"), 9000)
        );
    }

    #[test]
    fn arp_has_no_tuple() {
        use crate::builder::PacketBuilder;
        use crate::ether::Mac;
        let pkt = PacketBuilder::arp_request(Mac::local(1), addr("1.1.1.1"), addr("2.2.2.2"));
        assert!(FiveTuple::from_parsed(&pkt.parse().unwrap()).is_none());
    }

    #[test]
    fn display() {
        let ft = FiveTuple::tcp(addr("10.0.0.1"), 22, addr("10.0.0.2"), 5000);
        assert_eq!(ft.to_string(), "tcp 10.0.0.1:22 > 10.0.0.2:5000");
    }

    #[test]
    #[should_panic(expected = "at least one RSS queue")]
    fn zero_queues_rejected() {
        let _ = RssHasher::with_default_key(0);
    }
}
