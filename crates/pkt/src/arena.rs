//! The pooled frame arena: fixed-size buffer slots with refcounted
//! handles.
//!
//! The paper's data-movement argument (§1) is that interposition must
//! not reintroduce copies. Before this module the dataplane heap-
//! allocated an `Arc<[u8]>` per frame; real NICs instead DMA into a
//! preallocated pool of fixed-size buffers and pass *descriptors*
//! (buffer index + length) through rings. [`BufArena`] is that pool:
//! a single slab carved into `slot_bytes`-sized slots, a LIFO free
//! list, and per-slot reference counts. [`FrameRef`] is the
//! descriptor-side handle — clone is a refcount bump, drop recycles
//! the slot, and the frame bytes are never copied after the one write
//! that filled the slot.
//!
//! # Slot lifecycle
//!
//! ```text
//!   FREE ── alloc() ──> BUILDING ── freeze(len) ──> SHARED(n)
//!    ^                  (SlotWriter,                (n FrameRefs,
//!    |                   unique &mut)                shared &[u8])
//!    └──── last FrameRef dropped (poisoned in debug builds) ────┘
//! ```
//!
//! # The unsafe core and its invariants
//!
//! All `unsafe` in the buffer path lives in this module, guarded by
//! three invariants (these are exactly what the miri CI job checks —
//! see `scripts/ci.sh --job miri`):
//!
//! 1. **Writer uniqueness.** A slot index moves out of the free list
//!    (under its mutex) into exactly one [`SlotWriter`]. While that
//!    writer exists nothing else — no `FrameRef`, no other writer —
//!    can name the slot, so its `&mut [u8]` is the only reference to
//!    those bytes.
//! 2. **Frozen slots are read-only while shared.** After
//!    [`SlotWriter::freeze`] the bytes are only reachable as `&[u8]`
//!    through `FrameRef`s. `FrameRef::bytes_mut` hands back `&mut`
//!    only when the caller holds the *sole* handle (refcount 1, by
//!    `&mut self`), mirroring `Arc::get_mut`.
//! 3. **Recycling requires refcount zero.** A slot returns to the
//!    free list only on the 1→0 refcount transition (release
//!    decrement + acquire fence, the `Arc` drop protocol), so a freed
//!    slot can never alias a live frame.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Byte written over a slot when its last reference drops, in debug
/// builds only — a stale `&[u8]` into a recycled slot reads as this
/// pattern instead of plausible frame bytes.
#[cfg(debug_assertions)]
pub const POISON: u8 = 0xDD;

/// Counters the arena maintains; see [`BufArena::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slots currently allocated (building or shared).
    pub live: usize,
    /// Highest simultaneous `live` ever observed.
    pub high_water: usize,
    /// Successful slot allocations over the arena's lifetime.
    pub allocs: u64,
    /// Allocation attempts refused because the pool was empty (the
    /// caller fell back to a heap frame).
    pub exhausted: u64,
}

struct ArenaInner {
    slot_bytes: usize,
    /// The slab: `slots * slot_bytes` bytes. `UnsafeCell` because slot
    /// contents are mutated through shared references during the
    /// BUILDING state; the writer-uniqueness invariant (module docs)
    /// is what makes each such access exclusive in practice.
    mem: Box<[UnsafeCell<u8>]>,
    /// Per-slot reference counts. 0 = free, 1 = sole writer or sole
    /// handle, n = shared n ways.
    refs: Box<[AtomicU32]>,
    /// LIFO free list: deterministic recycling order for replay.
    free: Mutex<Vec<u32>>,
    live: AtomicUsize,
    high_water: AtomicUsize,
    allocs: AtomicU64,
    exhausted: AtomicU64,
}

// SAFETY: the slab is `UnsafeCell<u8>` (not Sync by default), but every
// mutation happens under writer uniqueness (invariant 1) or sole-handle
// mutation (invariant 2), and slot hand-off between threads goes
// through the free-list mutex and the acquire/release refcount
// protocol (invariant 3). Those are exactly the conditions under which
// `Arc<[u8]>`-style shared ownership is sound across threads.
unsafe impl Send for ArenaInner {}
unsafe impl Sync for ArenaInner {}

impl ArenaInner {
    /// Raw pointer to the first byte of `slot`.
    #[inline]
    fn slot_ptr(&self, slot: u32) -> *mut u8 {
        debug_assert!((slot as usize) < self.refs.len());
        // In-bounds by construction: slot < slots and the slab holds
        // slots * slot_bytes cells.
        unsafe { self.mem.as_ptr().add(slot as usize * self.slot_bytes) as *mut u8 }
    }

    /// Recycles `slot` after its refcount hit zero. Caller must be on
    /// the 1→0 transition (sole owner), so the poison write is
    /// exclusive.
    fn recycle(&self, slot: u32) {
        #[cfg(debug_assertions)]
        // SAFETY: refcount is zero and the slot is not yet back on the
        // free list — this thread is the only one that can name it.
        unsafe {
            std::ptr::write_bytes(self.slot_ptr(slot), POISON, self.slot_bytes);
        }
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.free.lock().expect("arena free list").push(slot);
    }
}

/// A pool of fixed-size frame buffers with refcounted slot handles.
///
/// Cloning the arena clones the *handle* (`Arc`); all clones share one
/// slab. See the module docs for the slot lifecycle and the invariants
/// the unsafe core maintains.
#[derive(Clone)]
pub struct BufArena {
    inner: Arc<ArenaInner>,
}

impl std::fmt::Debug for BufArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufArena")
            .field("slots", &self.slots())
            .field("slot_bytes", &self.inner.slot_bytes)
            .field("live", &self.live())
            .finish()
    }
}

impl BufArena {
    /// Creates an arena of `slots` buffers of `slot_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `slots` exceeds `u32`
    /// range (descriptors store the index as `u32`).
    pub fn new(slots: usize, slot_bytes: usize) -> BufArena {
        assert!(
            slots > 0 && slot_bytes > 0,
            "arena dimensions must be nonzero"
        );
        assert!(u32::try_from(slots).is_ok(), "slot index must fit u32");
        let mem = (0..slots * slot_bytes)
            .map(|_| UnsafeCell::new(0u8))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let refs = (0..slots)
            .map(|_| AtomicU32::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        // LIFO pop order: slot 0 first, like a just-filled NIC free
        // ring.
        let free: Vec<u32> = (0..slots as u32).rev().collect();
        BufArena {
            inner: Arc::new(ArenaInner {
                slot_bytes,
                mem,
                refs,
                free: Mutex::new(free),
                live: AtomicUsize::new(0),
                high_water: AtomicUsize::new(0),
                allocs: AtomicU64::new(0),
                exhausted: AtomicU64::new(0),
            }),
        }
    }

    /// Number of slots in the pool.
    pub fn slots(&self) -> usize {
        self.inner.refs.len()
    }

    /// Usable bytes per slot.
    pub fn slot_bytes(&self) -> usize {
        self.inner.slot_bytes
    }

    /// Slots currently allocated (the occupancy gauge audits check).
    pub fn live(&self) -> usize {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            live: self.live(),
            high_water: self.inner.high_water.load(Ordering::Relaxed),
            allocs: self.inner.allocs.load(Ordering::Relaxed),
            exhausted: self.inner.exhausted.load(Ordering::Relaxed),
        }
    }

    /// Whether `frame` lives in this arena (same slab).
    pub fn owns(&self, frame: &FrameRef) -> bool {
        Arc::ptr_eq(&self.inner, &frame.inner)
    }

    /// Takes a free slot for exclusive in-place construction. `None`
    /// when the pool is exhausted — callers fall back to a heap frame
    /// and the refusal is counted (see [`ArenaStats::exhausted`]).
    pub fn alloc(&self) -> Option<SlotWriter> {
        let slot = {
            let mut free = self.inner.free.lock().expect("arena free list");
            free.pop()
        };
        let Some(slot) = slot else {
            self.inner.exhausted.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let prev = self.inner.refs[slot as usize].swap(1, Ordering::Acquire);
        debug_assert_eq!(prev, 0, "free-listed slot had a live refcount");
        let live = self.inner.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.high_water.fetch_max(live, Ordering::Relaxed);
        self.inner.allocs.fetch_add(1, Ordering::Relaxed);
        Some(SlotWriter {
            inner: Arc::clone(&self.inner),
            slot,
        })
    }

    /// Copies `bytes` into a fresh slot — the software model of the
    /// NIC DMA-ing a wire frame into a pooled RX buffer. `None` when
    /// the bytes exceed a slot or the pool is exhausted.
    pub fn adopt(&self, bytes: &[u8]) -> Option<FrameRef> {
        if bytes.len() > self.inner.slot_bytes {
            return None;
        }
        let mut w = self.alloc()?;
        w.bytes_mut()[..bytes.len()].copy_from_slice(bytes);
        Some(w.freeze(bytes.len()))
    }
}

/// Exclusive write access to one BUILDING slot; consume with
/// [`SlotWriter::freeze`] to share it, or drop to return the slot
/// unused.
pub struct SlotWriter {
    inner: Arc<ArenaInner>,
    slot: u32,
}

impl SlotWriter {
    /// The whole slot, mutable. Contents start as whatever the last
    /// occupant left (poison, in debug builds) — callers write before
    /// they freeze.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: writer uniqueness (invariant 1) — this writer is the
        // only reference to the slot, and `&mut self` makes this call
        // exclusive even against re-entrancy.
        unsafe {
            std::slice::from_raw_parts_mut(self.inner.slot_ptr(self.slot), self.inner.slot_bytes)
        }
    }

    /// Ends construction: the first `len` bytes become a shared,
    /// immutable frame.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the slot size.
    pub fn freeze(self, len: usize) -> FrameRef {
        assert!(len <= self.inner.slot_bytes, "frame longer than a slot");
        // Hand the refcount (already 1) from writer to handle; forget
        // self so Drop does not release it.
        let inner = unsafe { std::ptr::read(&self.inner) };
        let slot = self.slot;
        std::mem::forget(self);
        FrameRef {
            inner,
            slot,
            len: len as u32,
        }
    }
}

impl Drop for SlotWriter {
    fn drop(&mut self) {
        // Abandoned build: release the writer's refcount and recycle.
        let prev = self.inner.refs[self.slot as usize].fetch_sub(1, Ordering::Release);
        debug_assert_eq!(prev, 1, "writer refcount must be exactly 1");
        fence(Ordering::Acquire);
        self.inner.recycle(self.slot);
    }
}

impl std::fmt::Debug for SlotWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SlotWriter(slot {})", self.slot)
    }
}

/// A refcounted handle to one frozen frame in a [`BufArena`] slot:
/// the software form of a NIC buffer descriptor. Clone bumps the
/// slot's refcount; dropping the last handle recycles the slot.
pub struct FrameRef {
    inner: Arc<ArenaInner>,
    slot: u32,
    len: u32,
}

impl FrameRef {
    /// The frame bytes (never copied; always the slot memory).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: the slot is SHARED (refcount ≥ 1 — we hold one), so
        // by invariant 2 no `&mut` exists: shared reads are sound.
        unsafe { std::slice::from_raw_parts(self.inner.slot_ptr(self.slot), self.len as usize) }
    }

    /// Frame length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot index (the descriptor payload rings carry).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// Mutable access iff this is the sole handle (refcount 1) — the
    /// in-place NAT rewrite path. `None` when the frame is shared.
    pub fn bytes_mut(&mut self) -> Option<&mut [u8]> {
        if self.inner.refs[self.slot as usize].load(Ordering::Acquire) != 1 {
            return None;
        }
        // SAFETY: refcount is 1 and `&mut self` pins it — no other
        // handle exists to clone from, so this access is exclusive
        // (the `Arc::get_mut` argument).
        Some(unsafe {
            std::slice::from_raw_parts_mut(self.inner.slot_ptr(self.slot), self.len as usize)
        })
    }

    /// Current refcount (diagnostics and tests only; racy by nature).
    pub fn refcount(&self) -> u32 {
        self.inner.refs[self.slot as usize].load(Ordering::Relaxed)
    }
}

impl Clone for FrameRef {
    fn clone(&self) -> FrameRef {
        // Relaxed is enough for an increment from a live handle (the
        // `Arc::clone` argument: the handle itself orders the slot).
        self.inner.refs[self.slot as usize].fetch_add(1, Ordering::Relaxed);
        FrameRef {
            inner: Arc::clone(&self.inner),
            slot: self.slot,
            len: self.len,
        }
    }
}

impl Drop for FrameRef {
    fn drop(&mut self) {
        if self.inner.refs[self.slot as usize].fetch_sub(1, Ordering::Release) != 1 {
            return;
        }
        // 1→0: acquire everything prior holders wrote, then recycle.
        fence(Ordering::Acquire);
        self.inner.recycle(self.slot);
    }
}

impl std::fmt::Debug for FrameRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameRef(slot {}, {} bytes)", self.slot, self.len)
    }
}

impl PartialEq for FrameRef {
    fn eq(&self, other: &FrameRef) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eq for FrameRef {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_freeze_read_roundtrip() {
        let arena = BufArena::new(4, 64);
        let mut w = arena.alloc().unwrap();
        w.bytes_mut()[..5].copy_from_slice(b"hello");
        let f = w.freeze(5);
        assert_eq!(f.bytes(), b"hello");
        assert_eq!(f.len(), 5);
        assert_eq!(arena.live(), 1);
        drop(f);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn clone_is_refcount_bump_not_copy() {
        let arena = BufArena::new(4, 64);
        let f = arena.adopt(b"frame").unwrap();
        let g = f.clone();
        assert_eq!(f.bytes().as_ptr(), g.bytes().as_ptr(), "zero-copy share");
        assert_eq!(f.refcount(), 2);
        assert_eq!(arena.live(), 1, "a clone is not a new slot");
        drop(f);
        assert_eq!(g.bytes(), b"frame");
        drop(g);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn exhaustion_refuses_and_counts() {
        let arena = BufArena::new(2, 64);
        let a = arena.adopt(b"a").unwrap();
        let b = arena.adopt(b"b").unwrap();
        assert!(arena.alloc().is_none());
        assert_eq!(arena.stats().exhausted, 1);
        drop(a);
        assert!(arena.alloc().is_some(), "freed slot is allocatable again");
        drop(b);
    }

    #[test]
    fn oversize_adopt_refused() {
        let arena = BufArena::new(2, 8);
        assert!(arena.adopt(&[0u8; 9]).is_none());
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn recycling_never_aliases_a_live_frame() {
        // Property: holding any set of live FrameRefs, new allocations
        // never land on a slot one of them names.
        let arena = BufArena::new(8, 32);
        let mut live = Vec::new();
        for round in 0..100u32 {
            // Allocate a frame tagged with the round number.
            if let Some(mut w) = arena.alloc() {
                w.bytes_mut()[..4].copy_from_slice(&round.to_be_bytes());
                live.push((round, w.freeze(4)));
            }
            // Drop a pseudo-random subset (deterministic schedule).
            live.retain(|(r, _)| (r * 7 + round) % 3 != 0);
            // Every surviving frame still reads its own tag: no alias.
            for (r, f) in &live {
                assert_eq!(f.bytes(), r.to_be_bytes(), "slot aliased a live frame");
            }
            let slots: std::collections::HashSet<u32> =
                live.iter().map(|(_, f)| f.slot()).collect();
            assert_eq!(slots.len(), live.len(), "two live frames share a slot");
            assert_eq!(arena.live(), live.len());
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn freed_slots_are_poisoned() {
        let arena = BufArena::new(1, 16);
        let f = arena.adopt(&[0xABu8; 16]).unwrap();
        let slot = f.slot();
        drop(f);
        // The single slot comes back; its bytes must read as poison,
        // not the old frame.
        let mut w = arena.alloc().unwrap();
        assert_eq!(w.slot, slot);
        assert!(w.bytes_mut().iter().all(|&b| b == POISON));
    }

    #[test]
    fn abandoned_writer_returns_slot() {
        let arena = BufArena::new(1, 16);
        let w = arena.alloc().unwrap();
        drop(w);
        assert_eq!(arena.live(), 0);
        assert!(arena.alloc().is_some());
    }

    #[test]
    fn sole_handle_may_mutate_shared_may_not() {
        let arena = BufArena::new(2, 16);
        let mut f = arena.adopt(b"aaaa").unwrap();
        f.bytes_mut().unwrap()[0] = b'z';
        assert_eq!(f.bytes(), b"zaaa");
        let g = f.clone();
        assert!(f.bytes_mut().is_none(), "shared frame must be immutable");
        drop(g);
        assert!(f.bytes_mut().is_some());
    }

    #[test]
    fn cross_thread_share_and_free() {
        // Frames cross threads as handles; the last dropper (either
        // side) recycles. Run enough rounds to give a race a chance.
        let arena = BufArena::new(16, 64);
        for round in 0..50u32 {
            let frames: Vec<FrameRef> = (0..8)
                .map(|i| arena.adopt(&[(round as u8).wrapping_add(i); 64]).unwrap())
                .collect();
            let movers: Vec<FrameRef> = frames.iter().map(FrameRef::clone).collect();
            let h =
                std::thread::spawn(move || movers.iter().map(|f| f.bytes()[0] as u64).sum::<u64>());
            let local: u64 = frames.iter().map(|f| f.bytes()[0] as u64).sum();
            assert_eq!(h.join().unwrap(), local);
            drop(frames);
        }
        assert_eq!(arena.live(), 0, "every slot returned after the storm");
    }

    #[test]
    fn high_water_tracks_peak() {
        let arena = BufArena::new(8, 16);
        let held: Vec<_> = (0..5).map(|_| arena.adopt(b"x").unwrap()).collect();
        drop(held);
        let s = arena.stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.high_water, 5);
        assert_eq!(s.allocs, 5);
    }
}
