//! Owned packet buffers and the fully parsed view.

use std::fmt;
use std::sync::Arc;

use crate::arena::FrameRef;
use crate::arp::ArpPacket;
use crate::ether::{EtherType, EthernetHeader};
use crate::ipv4::{IpProto, Ipv4Header};
use crate::meta::FrameMeta;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::{PktError, Result};

/// Backing storage for a packet: either a one-off heap buffer (the
/// slow/control path and tests) or a pooled arena slot (the dataplane
/// fast path). Both clone by refcount bump; the difference is where
/// the bytes live and who recycles them.
#[derive(Clone)]
enum Buf {
    Heap(Arc<[u8]>),
    Arena(FrameRef),
}

impl Buf {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            Buf::Heap(b) => b,
            Buf::Arena(f) => f.bytes(),
        }
    }
}

/// An owned, immutable packet buffer.
///
/// Cloning is cheap (reference-counted), which lets the sniffer tap a copy
/// of every frame without perturbing the dataplane.
///
/// A packet may carry a parse-once [`FrameMeta`] descriptor (attached at
/// build time or at ingress); equality and hashing consider only the wire
/// bytes, so a frame with and without meta is the same frame.
#[derive(Clone)]
pub struct Packet {
    data: Buf,
    meta: Option<FrameMeta>,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Packet) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eq for Packet {}

impl Packet {
    /// Wraps raw wire bytes.
    pub fn from_bytes(data: impl Into<Arc<[u8]>>) -> Packet {
        Packet {
            data: Buf::Heap(data.into()),
            meta: None,
        }
    }

    /// Wraps a frozen arena frame: the zero-copy ingress path.
    pub fn from_arena(frame: FrameRef) -> Packet {
        Packet {
            data: Buf::Arena(frame),
            meta: None,
        }
    }

    /// Whether the bytes live in a pooled arena slot (vs. a one-off
    /// heap buffer). Audits count arena-resident packets with this.
    pub fn is_arena(&self) -> bool {
        matches!(self.data, Buf::Arena(_))
    }

    /// The arena slot handle, when arena-backed.
    pub fn arena_frame(&self) -> Option<&FrameRef> {
        match &self.data {
            Buf::Arena(f) => Some(f),
            Buf::Heap(_) => None,
        }
    }

    /// Mutable access to the wire bytes when this handle is the sole
    /// owner of its buffer (heap `Arc` or arena slot, refcount 1) —
    /// the in-place NAT rewrite path. `None` when the frame is shared;
    /// callers then fall back to copy-on-write.
    pub fn bytes_mut_unique(&mut self) -> Option<&mut [u8]> {
        match &mut self.data {
            Buf::Heap(arc) => Arc::get_mut(arc),
            Buf::Arena(f) => f.bytes_mut(),
        }
    }

    /// Replaces the attached descriptor in place (after an in-place
    /// header rewrite recomputed it).
    pub fn set_meta(&mut self, meta: FrameMeta) {
        debug_assert_eq!(
            meta.frame_len,
            self.len(),
            "descriptor/frame length mismatch"
        );
        self.meta = Some(meta);
    }

    /// Attaches a descriptor computed for exactly these bytes.
    pub fn with_meta(mut self, meta: FrameMeta) -> Packet {
        debug_assert_eq!(
            meta.frame_len,
            self.len(),
            "descriptor/frame length mismatch"
        );
        self.meta = Some(meta);
        self
    }

    /// Returns the attached parse-once descriptor, if any.
    pub fn meta(&self) -> Option<&FrameMeta> {
        self.meta.as_ref()
    }

    /// Returns the wire bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.data.bytes()
    }

    /// Returns the frame length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Returns `true` for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// Parses the frame into a structured view.
    pub fn parse(&self) -> Result<Parsed> {
        Parsed::from_frame(self.bytes())
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Use the attached descriptor when present so debug logging never
        // re-parses the frame (and cannot distort cycle accounting).
        if let Some(meta) = &self.meta {
            return write!(
                f,
                "Packet({} bytes, {})",
                self.len(),
                meta.summarize(self.bytes())
            );
        }
        match self.parse() {
            Ok(p) => write!(f, "Packet({} bytes, {p})", self.len()),
            Err(e) => write!(f, "Packet({} bytes, unparsed: {e})", self.len()),
        }
    }
}

/// The payload of a parsed frame, by protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// An ARP packet.
    Arp(ArpPacket),
    /// An IPv4/TCP segment; the range indexes the application payload
    /// within the frame.
    Tcp {
        /// The IPv4 header.
        ip: Ipv4Header,
        /// The TCP header.
        tcp: TcpHeader,
        /// Byte range of the application payload within the frame.
        payload: std::ops::Range<usize>,
    },
    /// An IPv4/UDP datagram.
    Udp {
        /// The IPv4 header.
        ip: Ipv4Header,
        /// The UDP header.
        udp: UdpHeader,
        /// Byte range of the application payload within the frame.
        payload: std::ops::Range<usize>,
    },
    /// IPv4 with a transport protocol this stack does not parse.
    OtherIp {
        /// The IPv4 header.
        ip: Ipv4Header,
    },
}

/// A structured view of one Ethernet frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Parsed {
    /// The Ethernet header.
    pub ether: EthernetHeader,
    /// The parsed payload.
    pub payload: Payload,
}

impl Parsed {
    /// Parses a complete Ethernet frame.
    pub fn from_frame(frame: &[u8]) -> Result<Parsed> {
        let ether = EthernetHeader::parse(frame)?;
        let body = &frame[EthernetHeader::LEN..];
        let payload = match ether.ethertype {
            EtherType::ARP => Payload::Arp(ArpPacket::parse(body)?),
            EtherType::IPV4 => {
                let ip = Ipv4Header::parse(body)?;
                let l4 = &body[Ipv4Header::LEN..ip.total_len as usize];
                match ip.proto {
                    IpProto::TCP => {
                        let tcp = TcpHeader::parse(l4)?;
                        let start = EthernetHeader::LEN + Ipv4Header::LEN + TcpHeader::LEN;
                        let end = EthernetHeader::LEN + ip.total_len as usize;
                        Payload::Tcp {
                            ip,
                            tcp,
                            payload: start..end,
                        }
                    }
                    IpProto::UDP => {
                        let udp = UdpHeader::parse(l4)?;
                        let start = EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN;
                        let end = EthernetHeader::LEN + ip.total_len as usize;
                        Payload::Udp {
                            ip,
                            udp,
                            payload: start..end,
                        }
                    }
                    _ => Payload::OtherIp { ip },
                }
            }
            other => return Err(PktError::UnsupportedEtherType(other.0)),
        };
        Ok(Parsed { ether, payload })
    }

    /// Returns the IPv4 header if this is an IP frame.
    pub fn ip(&self) -> Option<&Ipv4Header> {
        match &self.payload {
            Payload::Tcp { ip, .. } | Payload::Udp { ip, .. } | Payload::OtherIp { ip } => Some(ip),
            Payload::Arp(_) => None,
        }
    }

    /// Returns (src_port, dst_port) for TCP/UDP frames.
    pub fn ports(&self) -> Option<(u16, u16)> {
        match &self.payload {
            Payload::Tcp { tcp, .. } => Some((tcp.src_port, tcp.dst_port)),
            Payload::Udp { udp, .. } => Some((udp.src_port, udp.dst_port)),
            _ => None,
        }
    }

    /// Returns `true` if this is an ARP frame.
    pub fn is_arp(&self) -> bool {
        matches!(self.payload, Payload::Arp(_))
    }

    /// Verifies the transport checksum against `frame` (the same buffer
    /// this view was parsed from).
    ///
    /// The IPv4 header checksum is already enforced by
    /// [`Ipv4Header::parse`]; this covers the TCP/UDP pseudo-header sum,
    /// which is what catches payload corruption. Frames without an L4
    /// checksum (ARP, other IP protocols) verify trivially.
    pub fn l4_checksum_ok(&self, frame: &[u8]) -> bool {
        let l4_start = EthernetHeader::LEN + Ipv4Header::LEN;
        match &self.payload {
            Payload::Tcp { ip, .. } => {
                let seg = &frame[l4_start..EthernetHeader::LEN + ip.total_len as usize];
                TcpHeader::verify_segment(ip.src, ip.dst, seg)
            }
            Payload::Udp { ip, .. } => {
                let seg = &frame[l4_start..EthernetHeader::LEN + ip.total_len as usize];
                UdpHeader::verify_segment(ip.src, ip.dst, seg)
            }
            Payload::Arp(_) | Payload::OtherIp { .. } => true,
        }
    }
}

impl fmt::Display for Parsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            Payload::Arp(arp) => write!(f, "{arp}"),
            Payload::Tcp { ip, tcp, payload } => write!(
                f,
                "{}:{} > {}:{} tcp [{}] len {}",
                ip.src,
                tcp.src_port,
                ip.dst,
                tcp.dst_port,
                tcp.flags,
                payload.len()
            ),
            Payload::Udp { ip, udp, payload } => write!(
                f,
                "{}:{} > {}:{} udp len {}",
                ip.src,
                udp.src_port,
                ip.dst,
                udp.dst_port,
                payload.len()
            ),
            Payload::OtherIp { ip } => {
                write!(f, "{} > {} {}", ip.src, ip.dst, ip.proto)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ether::Mac;

    #[test]
    fn parse_udp_frame() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .udp(1234, 5678, b"payload")
            .build();
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.ports(), Some((1234, 5678)));
        assert!(!parsed.is_arp());
        match parsed.payload {
            Payload::Udp { ref payload, .. } => {
                assert_eq!(&pkt.bytes()[payload.clone()], b"payload");
            }
            other => panic!("expected UDP, got {other:?}"),
        }
    }

    #[test]
    fn parse_tcp_frame() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .tcp(22, 40000, crate::TcpFlags::SYN, b"")
            .build();
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.ports(), Some((22, 40000)));
        assert!(parsed.ip().is_some());
    }

    #[test]
    fn parse_arp_frame() {
        let pkt = PacketBuilder::arp_request(
            Mac::local(9),
            "10.0.0.9".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
        );
        let parsed = pkt.parse().unwrap();
        assert!(parsed.is_arp());
        assert_eq!(parsed.ports(), None);
        assert!(parsed.ip().is_none());
        assert_eq!(parsed.ether.dst, Mac::BROADCAST);
    }

    #[test]
    fn unsupported_ethertype_errors() {
        let mut frame = vec![0u8; 60];
        frame[12] = 0x86; // IPv6
        frame[13] = 0xDD;
        let err = Packet::from_bytes(frame).parse().unwrap_err();
        assert_eq!(err, PktError::UnsupportedEtherType(0x86DD));
    }

    #[test]
    fn display_is_tcpdump_like() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .udp(53, 53, b"x")
            .build();
        let s = pkt.parse().unwrap().to_string();
        assert!(s.contains("10.0.0.1:53 > 10.0.0.2:53"), "got: {s}");
        assert!(s.contains("udp len 1"));
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let pkt = PacketBuilder::arp_request(
            Mac::local(1),
            "1.1.1.1".parse().unwrap(),
            "2.2.2.2".parse().unwrap(),
        );
        let copy = pkt.clone();
        assert_eq!(pkt, copy);
        assert_eq!(pkt.bytes().as_ptr(), copy.bytes().as_ptr());
    }
}
