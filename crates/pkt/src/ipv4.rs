//! IPv4 headers (20 bytes, options unsupported).

use std::fmt;
use std::net::Ipv4Addr;

use crate::checksum;
use crate::{PktError, Result};

/// An IP protocol number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct IpProto(pub u8);

impl IpProto {
    /// ICMP (1).
    pub const ICMP: IpProto = IpProto(1);
    /// TCP (6).
    pub const TCP: IpProto = IpProto(6);
    /// UDP (17).
    pub const UDP: IpProto = IpProto(17);
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IpProto::ICMP => write!(f, "icmp"),
            IpProto::TCP => write!(f, "tcp"),
            IpProto::UDP => write!(f, "udp"),
            IpProto(other) => write!(f, "proto-{other}"),
        }
    }
}

/// An IPv4 header without options.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Differentiated services code point (6 bits) + ECN (2 bits).
    pub dscp_ecn: u8,
    /// Total datagram length including this header.
    pub total_len: u16,
    /// Identification field.
    pub id: u16,
    /// Flags (3 bits) and fragment offset (13 bits), packed.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Wire size of an optionless header.
    pub const LEN: usize = 20;

    /// The "don't fragment" flag in [`Ipv4Header::flags_frag`].
    pub const DONT_FRAGMENT: u16 = 0x4000;

    /// Creates a header with common defaults (TTL 64, DF set).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload_len: usize) -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (Self::LEN + payload_len) as u16,
            id: 0,
            flags_frag: Self::DONT_FRAGMENT,
            ttl: 64,
            proto,
            src,
            dst,
        }
    }

    /// Parses and checksum-verifies a header from the front of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<Ipv4Header> {
        if bytes.len() < Self::LEN {
            return Err(PktError::Truncated {
                need: Self::LEN,
                have: bytes.len(),
            });
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(PktError::BadVersion(version));
        }
        let ihl = bytes[0] & 0x0F;
        if ihl != 5 {
            // Options are never produced by this stack; reject rather than
            // silently misparse the payload offset.
            return Err(PktError::BadIhl(ihl));
        }
        if !checksum::verify(&bytes[..Self::LEN]) {
            return Err(PktError::BadChecksum { layer: "ipv4" });
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]);
        if (total_len as usize) < Self::LEN || total_len as usize > bytes.len() {
            return Err(PktError::BadLength { layer: "ipv4" });
        }
        Ok(Ipv4Header {
            dscp_ecn: bytes[1],
            total_len,
            id: u16::from_be_bytes([bytes[4], bytes[5]]),
            flags_frag: u16::from_be_bytes([bytes[6], bytes[7]]),
            ttl: bytes[8],
            proto: IpProto(bytes[9]),
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
        })
    }

    /// Writes the header (with a freshly computed checksum) into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`Self::LEN`].
    pub fn write_to(&self, out: &mut [u8]) {
        out[0] = 0x45; // version 4, IHL 5
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.id.to_be_bytes());
        out[6..8].copy_from_slice(&self.flags_frag.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.proto.0;
        out[10..12].copy_from_slice(&[0, 0]);
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        let sum = checksum::internet_checksum(&out[..Self::LEN]);
        out[10..12].copy_from_slice(&sum.to_be_bytes());
    }

    /// Returns the payload length declared by the header.
    pub fn payload_len(&self) -> usize {
        self.total_len as usize - Self::LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn round_trip_with_valid_checksum() {
        let h = Ipv4Header::new(addr("10.0.0.1"), addr("10.0.0.2"), IpProto::UDP, 8);
        let mut buf = [0u8; Ipv4Header::LEN];
        h.write_to(&mut buf);
        // Parsing from a buffer exactly total_len long is rejected only if
        // the buffer is shorter than the declared length; extend.
        let mut full = buf.to_vec();
        full.extend_from_slice(&[0u8; 8]);
        let parsed = Ipv4Header::parse(&full).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.payload_len(), 8);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let h = Ipv4Header::new(addr("1.2.3.4"), addr("5.6.7.8"), IpProto::TCP, 0);
        let mut buf = [0u8; Ipv4Header::LEN];
        h.write_to(&mut buf);
        buf[8] ^= 0x01; // flip a TTL bit
        assert_eq!(
            Ipv4Header::parse(&buf).unwrap_err(),
            PktError::BadChecksum { layer: "ipv4" }
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = [0u8; Ipv4Header::LEN];
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Header::parse(&buf).unwrap_err(),
            PktError::BadVersion(6)
        );
    }

    #[test]
    fn options_rejected() {
        let mut buf = [0u8; 24];
        buf[0] = 0x46; // IHL 6 (one option word)
        assert_eq!(Ipv4Header::parse(&buf).unwrap_err(), PktError::BadIhl(6));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Ipv4Header::parse(&[0u8; 10]).unwrap_err(),
            PktError::Truncated { need: 20, have: 10 }
        );
    }

    #[test]
    fn total_len_beyond_buffer_rejected() {
        let h = Ipv4Header::new(addr("1.1.1.1"), addr("2.2.2.2"), IpProto::UDP, 100);
        let mut buf = [0u8; Ipv4Header::LEN];
        h.write_to(&mut buf);
        // Buffer holds only the header, but total_len declares 120 bytes.
        assert_eq!(
            Ipv4Header::parse(&buf).unwrap_err(),
            PktError::BadLength { layer: "ipv4" }
        );
    }

    #[test]
    fn defaults_are_sane() {
        let h = Ipv4Header::new(addr("1.1.1.1"), addr("2.2.2.2"), IpProto::UDP, 0);
        assert_eq!(h.ttl, 64);
        assert_eq!(h.flags_frag, Ipv4Header::DONT_FRAGMENT);
        assert_eq!(h.total_len as usize, Ipv4Header::LEN);
    }

    #[test]
    fn proto_display() {
        assert_eq!(IpProto::TCP.to_string(), "tcp");
        assert_eq!(IpProto::UDP.to_string(), "udp");
        assert_eq!(IpProto(99).to_string(), "proto-99");
    }
}
