//! ARP over Ethernet/IPv4 (RFC 826).
//!
//! ARP matters to this reproduction because the paper's debugging scenario
//! (§2) is a flood of ARP requests from an unknown source that the
//! administrator must trace to a process — only possible with an
//! interposition layer that has both the global and the process view.

use std::fmt;
use std::net::Ipv4Addr;

use crate::ether::Mac;
use crate::{PktError, Result};

/// ARP operation codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpOp {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
    /// Any other opcode, preserved verbatim.
    Other(u16),
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
            ArpOp::Other(v) => v,
        }
    }

    fn from_u16(v: u16) -> ArpOp {
        match v {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => ArpOp::Other(other),
        }
    }
}

impl fmt::Display for ArpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArpOp::Request => write!(f, "who-has"),
            ArpOp::Reply => write!(f, "is-at"),
            ArpOp::Other(v) => write!(f, "op-{v}"),
        }
    }
}

/// An ARP packet for IPv4-over-Ethernet (28 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpPacket {
    /// Operation (request/reply).
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: Mac,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: Mac,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Wire size for Ethernet/IPv4 ARP.
    pub const LEN: usize = 28;

    /// Builds a who-has request from `sender` for `target_ip`.
    pub fn request(sender_mac: Mac, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: Mac::ZERO,
            target_ip,
        }
    }

    /// Builds an is-at reply answering `request`.
    pub fn reply_to(request: &ArpPacket, my_mac: Mac) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Parses an ARP packet from the front of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<ArpPacket> {
        if bytes.len() < Self::LEN {
            return Err(PktError::Truncated {
                need: Self::LEN,
                have: bytes.len(),
            });
        }
        let htype = u16::from_be_bytes([bytes[0], bytes[1]]);
        let ptype = u16::from_be_bytes([bytes[2], bytes[3]]);
        if htype != 1 || ptype != 0x0800 || bytes[4] != 6 || bytes[5] != 4 {
            return Err(PktError::BadLength { layer: "arp" });
        }
        let mut sender_mac = [0u8; 6];
        let mut target_mac = [0u8; 6];
        sender_mac.copy_from_slice(&bytes[8..14]);
        target_mac.copy_from_slice(&bytes[18..24]);
        Ok(ArpPacket {
            op: ArpOp::from_u16(u16::from_be_bytes([bytes[6], bytes[7]])),
            sender_mac: Mac(sender_mac),
            sender_ip: Ipv4Addr::new(bytes[14], bytes[15], bytes[16], bytes[17]),
            target_mac: Mac(target_mac),
            target_ip: Ipv4Addr::new(bytes[24], bytes[25], bytes[26], bytes[27]),
        })
    }

    /// Writes the packet into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`Self::LEN`].
    pub fn write_to(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&1u16.to_be_bytes()); // Ethernet
        out[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // IPv4
        out[4] = 6;
        out[5] = 4;
        out[6..8].copy_from_slice(&self.op.to_u16().to_be_bytes());
        out[8..14].copy_from_slice(&self.sender_mac.0);
        out[14..18].copy_from_slice(&self.sender_ip.octets());
        out[18..24].copy_from_slice(&self.target_mac.0);
        out[24..28].copy_from_slice(&self.target_ip.octets());
    }
}

impl fmt::Display for ArpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            ArpOp::Request => write!(
                f,
                "ARP who-has {} tell {} ({})",
                self.target_ip, self.sender_ip, self.sender_mac
            ),
            ArpOp::Reply => write!(f, "ARP {} is-at {}", self.sender_ip, self.sender_mac),
            ArpOp::Other(v) => write!(f, "ARP op-{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn request_round_trip() {
        let req = ArpPacket::request(Mac::local(1), addr("10.0.0.1"), addr("10.0.0.2"));
        let mut buf = [0u8; ArpPacket::LEN];
        req.write_to(&mut buf);
        assert_eq!(ArpPacket::parse(&buf).unwrap(), req);
    }

    #[test]
    fn reply_swaps_roles() {
        let req = ArpPacket::request(Mac::local(1), addr("10.0.0.1"), addr("10.0.0.2"));
        let rep = ArpPacket::reply_to(&req, Mac::local(2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, addr("10.0.0.2"));
        assert_eq!(rep.sender_mac, Mac::local(2));
        assert_eq!(rep.target_ip, addr("10.0.0.1"));
        assert_eq!(rep.target_mac, Mac::local(1));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            ArpPacket::parse(&[0u8; 27]).unwrap_err(),
            PktError::Truncated { need: 28, have: 27 }
        );
    }

    #[test]
    fn non_ethernet_ipv4_rejected() {
        let mut buf = [0u8; ArpPacket::LEN];
        let req = ArpPacket::request(Mac::local(1), addr("1.1.1.1"), addr("2.2.2.2"));
        req.write_to(&mut buf);
        buf[1] = 9; // bogus hardware type
        assert!(ArpPacket::parse(&buf).is_err());
    }

    #[test]
    fn unknown_opcode_preserved() {
        let mut buf = [0u8; ArpPacket::LEN];
        ArpPacket::request(Mac::local(1), addr("1.1.1.1"), addr("2.2.2.2")).write_to(&mut buf);
        buf[7] = 9;
        let parsed = ArpPacket::parse(&buf).unwrap();
        assert_eq!(parsed.op, ArpOp::Other(9));
    }

    #[test]
    fn display_formats() {
        let req = ArpPacket::request(Mac::local(1), addr("10.0.0.1"), addr("10.0.0.2"));
        let s = req.to_string();
        assert!(s.contains("who-has 10.0.0.2"));
        assert!(s.contains("tell 10.0.0.1"));
    }
}
