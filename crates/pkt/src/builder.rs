//! Fluent, checksum-correct packet construction.

use std::net::Ipv4Addr;

use crate::arp::ArpPacket;
use crate::ether::{EtherType, EthernetHeader, Mac};
use crate::flow::FiveTuple;
use crate::ipv4::{IpProto, Ipv4Header};
use crate::meta::{self, FrameMeta, PacketClass};
use crate::packet::Packet;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;

/// Typestate-free builder producing valid Ethernet frames.
///
/// # Examples
///
/// ```
/// use pkt::{Mac, PacketBuilder};
///
/// let pkt = PacketBuilder::new()
///     .ether(Mac::local(1), Mac::local(2))
///     .ipv4("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
///     .udp(1234, 80, b"hi")
///     .build();
/// assert!(pkt.parse().is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct PacketBuilder {
    src_mac: Mac,
    dst_mac: Mac,
    src_ip: Option<Ipv4Addr>,
    dst_ip: Option<Ipv4Addr>,
    ttl: u8,
    dscp: u8,
    l4: Option<L4>,
}

#[derive(Clone, Debug)]
enum L4 {
    Udp {
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    },
    Tcp {
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload: Vec<u8>,
    },
}

impl PacketBuilder {
    /// Creates an empty builder (TTL defaults to 64).
    pub fn new() -> PacketBuilder {
        PacketBuilder {
            ttl: 64,
            ..PacketBuilder::default()
        }
    }

    /// Sets Ethernet source and destination.
    pub fn ether(mut self, src: Mac, dst: Mac) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Sets IPv4 source and destination.
    pub fn ipv4(mut self, src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        self.src_ip = Some(src);
        self.dst_ip = Some(dst);
        self
    }

    /// Overrides the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the DSCP/ECN byte (QoS marking).
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = dscp;
        self
    }

    /// Attaches a UDP datagram.
    pub fn udp(mut self, src_port: u16, dst_port: u16, payload: &[u8]) -> Self {
        self.l4 = Some(L4::Udp {
            src_port,
            dst_port,
            payload: payload.to_vec(),
        });
        self
    }

    /// Attaches a TCP segment.
    pub fn tcp(mut self, src_port: u16, dst_port: u16, flags: TcpFlags, payload: &[u8]) -> Self {
        self.l4 = Some(L4::Tcp {
            src_port,
            dst_port,
            flags,
            seq: 0,
            ack: 0,
            payload: payload.to_vec(),
        });
        self
    }

    /// Sets TCP sequence/ack numbers (applies to a previously attached TCP
    /// segment).
    ///
    /// # Panics
    ///
    /// Panics if no TCP segment has been attached.
    pub fn tcp_seq(mut self, seq: u32, ack: u32) -> Self {
        match &mut self.l4 {
            Some(L4::Tcp { seq: s, ack: a, .. }) => {
                *s = seq;
                *a = ack;
            }
            _ => panic!("tcp_seq requires a TCP segment"),
        }
        self
    }

    /// Builds the frame, computing lengths and checksums — and attaching
    /// a [`FrameMeta`] descriptor, since everything the ingress parse
    /// would discover is already known here (checksums are correct by
    /// construction). Frames from the builder therefore never need a
    /// parse anywhere in the dataplane.
    ///
    /// # Panics
    ///
    /// Panics if IPv4 addresses or the transport layer were not set; use
    /// [`PacketBuilder::arp_request`]/[`PacketBuilder::arp_reply`] for ARP.
    pub fn build(self) -> Packet {
        let src_ip = self.src_ip.expect("ipv4() not called");
        let dst_ip = self.dst_ip.expect("ipv4() not called");
        let l4 = self.l4.expect("no transport layer attached");

        let (proto, seg_len) = match &l4 {
            L4::Udp { payload, .. } => (IpProto::UDP, UdpHeader::LEN + payload.len()),
            L4::Tcp { payload, .. } => (IpProto::TCP, TcpHeader::LEN + payload.len()),
        };
        let (class, src_port, dst_port, l4_hdr_len) = match &l4 {
            L4::Udp {
                src_port, dst_port, ..
            } => (PacketClass::Udp, *src_port, *dst_port, UdpHeader::LEN),
            L4::Tcp {
                src_port, dst_port, ..
            } => (PacketClass::Tcp, *src_port, *dst_port, TcpHeader::LEN),
        };

        let mut frame = vec![0u8; EthernetHeader::LEN + Ipv4Header::LEN + seg_len];
        EthernetHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: EtherType::IPV4,
        }
        .write_to(&mut frame);

        let mut ip = Ipv4Header::new(src_ip, dst_ip, proto, seg_len);
        ip.ttl = self.ttl;
        ip.dscp_ecn = self.dscp;
        ip.write_to(&mut frame[EthernetHeader::LEN..]);

        let seg = &mut frame[EthernetHeader::LEN + Ipv4Header::LEN..];
        match l4 {
            L4::Udp {
                src_port,
                dst_port,
                payload,
            } => {
                UdpHeader::new(src_port, dst_port, payload.len())
                    .write_segment(src_ip, dst_ip, &payload, seg);
            }
            L4::Tcp {
                src_port,
                dst_port,
                flags,
                seq,
                ack,
                payload,
            } => {
                let mut tcp = TcpHeader::new(src_port, dst_port);
                tcp.flags = flags;
                tcp.seq = seq;
                tcp.ack = ack;
                tcp.write_segment(src_ip, dst_ip, &payload, seg);
            }
        }

        let tuple = FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        };
        let payload_off = EthernetHeader::LEN + Ipv4Header::LEN + l4_hdr_len;
        let frame_len = frame.len();
        Packet::from_bytes(frame).with_meta(FrameMeta {
            frame_id: 0,
            class,
            frame_len,
            ethertype: EtherType::IPV4.0,
            l3_off: EthernetHeader::LEN,
            l4_off: Some(EthernetHeader::LEN + Ipv4Header::LEN),
            payload_off,
            payload_len: frame_len - payload_off,
            tuple: Some(tuple),
            flow_hash: meta::flow_hash_of(&tuple),
            dscp_ecn: self.dscp,
            l3_checksum_ok: true,
            l4_checksum_ok: true,
            queue: 0,
        })
    }

    /// Builds a broadcast ARP who-has request frame.
    pub fn arp_request(sender_mac: Mac, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Packet {
        Self::arp_frame(
            sender_mac,
            Mac::BROADCAST,
            &ArpPacket::request(sender_mac, sender_ip, target_ip),
        )
    }

    /// Builds a unicast ARP is-at reply frame answering `request`.
    pub fn arp_reply(request: &ArpPacket, my_mac: Mac) -> Packet {
        let reply = ArpPacket::reply_to(request, my_mac);
        Self::arp_frame(my_mac, request.sender_mac, &reply)
    }

    fn arp_frame(src: Mac, dst: Mac, arp: &ArpPacket) -> Packet {
        let mut frame = vec![0u8; EthernetHeader::LEN + ArpPacket::LEN];
        EthernetHeader {
            dst,
            src,
            ethertype: EtherType::ARP,
        }
        .write_to(&mut frame);
        arp.write_to(&mut frame[EthernetHeader::LEN..]);
        let frame_len = frame.len();
        Packet::from_bytes(frame).with_meta(FrameMeta {
            frame_id: 0,
            class: PacketClass::Arp,
            frame_len,
            ethertype: EtherType::ARP.0,
            l3_off: EthernetHeader::LEN,
            l4_off: None,
            payload_off: EthernetHeader::LEN,
            payload_len: ArpPacket::LEN,
            tuple: None,
            flow_hash: 0,
            dscp_ecn: 0,
            l3_checksum_ok: true,
            l4_checksum_ok: true,
            queue: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum;
    use crate::packet::Payload;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn udp_frame_has_valid_checksums() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("192.168.1.1"), addr("192.168.1.2"))
            .udp(1000, 2000, &[0xAA; 32])
            .build();
        let frame = pkt.bytes();
        // IPv4 checksum verifies.
        assert!(checksum::verify(&frame[14..34]));
        // UDP checksum verifies through the parser helper.
        assert!(UdpHeader::verify_segment(
            addr("192.168.1.1"),
            addr("192.168.1.2"),
            &frame[34..]
        ));
    }

    #[test]
    fn tcp_frame_round_trips_seq_numbers() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .tcp(22, 5000, TcpFlags::ACK, b"data")
            .tcp_seq(1000, 2000)
            .build();
        match pkt.parse().unwrap().payload {
            Payload::Tcp { tcp, .. } => {
                assert_eq!(tcp.seq, 1000);
                assert_eq!(tcp.ack, 2000);
                assert!(tcp.flags.contains(TcpFlags::ACK));
            }
            other => panic!("expected TCP, got {other:?}"),
        }
    }

    #[test]
    fn ttl_and_dscp_applied() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .ttl(7)
            .dscp(0x2E << 2) // EF PHB
            .udp(1, 2, b"")
            .build();
        let ip = *pkt.parse().unwrap().ip().unwrap();
        assert_eq!(ip.ttl, 7);
        assert_eq!(ip.dscp_ecn, 0x2E << 2);
    }

    #[test]
    fn arp_request_is_broadcast() {
        let pkt = PacketBuilder::arp_request(Mac::local(7), addr("10.0.0.7"), addr("10.0.0.1"));
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.ether.dst, Mac::BROADCAST);
        match parsed.payload {
            Payload::Arp(arp) => {
                assert_eq!(arp.sender_ip, addr("10.0.0.7"));
                assert_eq!(arp.target_ip, addr("10.0.0.1"));
            }
            other => panic!("expected ARP, got {other:?}"),
        }
    }

    #[test]
    fn arp_reply_is_unicast_to_requester() {
        let req = ArpPacket::request(Mac::local(1), addr("10.0.0.1"), addr("10.0.0.2"));
        let pkt = PacketBuilder::arp_reply(&req, Mac::local(2));
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.ether.dst, Mac::local(1));
        assert_eq!(parsed.ether.src, Mac::local(2));
    }

    #[test]
    #[should_panic(expected = "ipv4() not called")]
    fn missing_ip_panics() {
        let _ = PacketBuilder::new().udp(1, 2, b"").build();
    }

    #[test]
    #[should_panic(expected = "tcp_seq requires a TCP segment")]
    fn tcp_seq_without_tcp_panics() {
        let _ = PacketBuilder::new().udp(1, 2, b"").tcp_seq(1, 2);
    }

    #[test]
    fn frame_sizes_are_exact() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("1.1.1.1"), addr("2.2.2.2"))
            .udp(1, 2, &[0u8; 100])
            .build();
        assert_eq!(pkt.len(), 14 + 20 + 8 + 100);
    }
}
