//! Fluent, checksum-correct packet construction.

use std::net::Ipv4Addr;

use crate::arena::BufArena;
use crate::arp::ArpPacket;
use crate::checksum;
use crate::ether::{EtherType, EthernetHeader, Mac};
use crate::flow::FiveTuple;
use crate::ipv4::{IpProto, Ipv4Header};
use crate::meta::{self, FrameMeta, PacketClass};
use crate::packet::Packet;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;

/// Typestate-free builder producing valid Ethernet frames.
///
/// Payloads are *borrowed* until [`PacketBuilder::build`] — the bytes
/// are written exactly once, directly into the output frame (a heap
/// buffer for `build`, a pooled arena slot for
/// [`PacketBuilder::build_in`]), never staged through an intermediate
/// `Vec`.
///
/// # Examples
///
/// ```
/// use pkt::{Mac, PacketBuilder};
///
/// let pkt = PacketBuilder::new()
///     .ether(Mac::local(1), Mac::local(2))
///     .ipv4("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
///     .udp(1234, 80, b"hi")
///     .build();
/// assert!(pkt.parse().is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct PacketBuilder<'p> {
    src_mac: Mac,
    dst_mac: Mac,
    src_ip: Option<Ipv4Addr>,
    dst_ip: Option<Ipv4Addr>,
    ttl: u8,
    dscp: u8,
    l4: Option<L4<'p>>,
}

/// An L4 payload source: real bytes, or a run of zeroes of a given
/// length (the synthetic-workload case — no allocation at all).
#[derive(Clone, Copy, Debug)]
enum BuildPayload<'p> {
    Bytes(&'p [u8]),
    Zeroes(usize),
}

impl BuildPayload<'_> {
    fn len(&self) -> usize {
        match self {
            BuildPayload::Bytes(b) => b.len(),
            BuildPayload::Zeroes(n) => *n,
        }
    }

    /// Writes the payload into `out` (exactly `self.len()` bytes).
    fn write_to(&self, out: &mut [u8]) {
        match self {
            BuildPayload::Bytes(b) => out.copy_from_slice(b),
            BuildPayload::Zeroes(_) => out.fill(0),
        }
    }
}

#[derive(Clone, Debug)]
enum L4<'p> {
    Udp {
        src_port: u16,
        dst_port: u16,
        payload: BuildPayload<'p>,
    },
    Tcp {
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload: BuildPayload<'p>,
    },
}

impl<'p> PacketBuilder<'p> {
    /// Creates an empty builder (TTL defaults to 64).
    pub fn new() -> PacketBuilder<'static> {
        PacketBuilder {
            ttl: 64,
            ..PacketBuilder::default()
        }
    }

    /// Sets Ethernet source and destination.
    pub fn ether(mut self, src: Mac, dst: Mac) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Sets IPv4 source and destination.
    pub fn ipv4(mut self, src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        self.src_ip = Some(src);
        self.dst_ip = Some(dst);
        self
    }

    /// Overrides the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the DSCP/ECN byte (QoS marking).
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = dscp;
        self
    }

    /// Attaches a UDP datagram. The payload is borrowed — it is copied
    /// once, into the final frame, at build time.
    pub fn udp<'q>(self, src_port: u16, dst_port: u16, payload: &'q [u8]) -> PacketBuilder<'q> {
        self.with_l4(L4::Udp {
            src_port,
            dst_port,
            payload: BuildPayload::Bytes(payload),
        })
    }

    /// Attaches a UDP datagram carrying `len` zero bytes — the
    /// synthetic-workload payload, produced without any staging
    /// allocation.
    pub fn udp_zeroes(self, src_port: u16, dst_port: u16, len: usize) -> PacketBuilder<'static> {
        self.with_l4(L4::Udp {
            src_port,
            dst_port,
            payload: BuildPayload::Zeroes(len),
        })
    }

    /// Attaches a TCP segment. The payload is borrowed — it is copied
    /// once, into the final frame, at build time.
    pub fn tcp<'q>(
        self,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        payload: &'q [u8],
    ) -> PacketBuilder<'q> {
        self.with_l4(L4::Tcp {
            src_port,
            dst_port,
            flags,
            seq: 0,
            ack: 0,
            payload: BuildPayload::Bytes(payload),
        })
    }

    /// Attaches a TCP segment carrying `len` zero bytes.
    pub fn tcp_zeroes(
        self,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        len: usize,
    ) -> PacketBuilder<'static> {
        self.with_l4(L4::Tcp {
            src_port,
            dst_port,
            flags,
            seq: 0,
            ack: 0,
            payload: BuildPayload::Zeroes(len),
        })
    }

    /// Replaces the transport layer, rebinding the payload lifetime.
    fn with_l4<'q>(self, l4: L4<'q>) -> PacketBuilder<'q> {
        PacketBuilder {
            src_mac: self.src_mac,
            dst_mac: self.dst_mac,
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            ttl: self.ttl,
            dscp: self.dscp,
            l4: Some(l4),
        }
    }

    /// Sets TCP sequence/ack numbers (applies to a previously attached TCP
    /// segment).
    ///
    /// # Panics
    ///
    /// Panics if no TCP segment has been attached.
    pub fn tcp_seq(mut self, seq: u32, ack: u32) -> Self {
        match &mut self.l4 {
            Some(L4::Tcp { seq: s, ack: a, .. }) => {
                *s = seq;
                *a = ack;
            }
            _ => panic!("tcp_seq requires a TCP segment"),
        }
        self
    }

    /// Builds the frame, computing lengths and checksums — and attaching
    /// a [`FrameMeta`] descriptor, since everything the ingress parse
    /// would discover is already known here (checksums are correct by
    /// construction). Frames from the builder therefore never need a
    /// parse anywhere in the dataplane.
    ///
    /// # Panics
    ///
    /// Panics if IPv4 addresses or the transport layer were not set; use
    /// [`PacketBuilder::arp_request`]/[`PacketBuilder::arp_reply`] for ARP.
    pub fn build(self) -> Packet {
        let plan = self.plan();
        let mut frame = vec![0u8; plan.frame_len()];
        plan.write(&mut frame);
        Packet::from_bytes(frame).with_meta(plan.meta())
    }

    /// Builds the frame directly into a pooled slot of `arena` — the
    /// zero-copy construction path. Headers, payload, and checksums are
    /// written in place; no heap buffer exists at any point. Falls back
    /// to [`PacketBuilder::build`]'s heap frame when the arena is
    /// exhausted or the frame exceeds a slot (the refusal shows up in
    /// [`crate::ArenaStats::exhausted`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PacketBuilder::build`].
    pub fn build_in(self, arena: &BufArena) -> Packet {
        let plan = self.plan();
        let frame_len = plan.frame_len();
        if frame_len > arena.slot_bytes() {
            let mut frame = vec![0u8; frame_len];
            plan.write(&mut frame);
            return Packet::from_bytes(frame).with_meta(plan.meta());
        }
        match arena.alloc() {
            Some(mut w) => {
                plan.write(&mut w.bytes_mut()[..frame_len]);
                Packet::from_arena(w.freeze(frame_len)).with_meta(plan.meta())
            }
            None => {
                let mut frame = vec![0u8; frame_len];
                plan.write(&mut frame);
                Packet::from_bytes(frame).with_meta(plan.meta())
            }
        }
    }

    /// Resolves the builder into a write plan (lengths and descriptor
    /// fields fixed; bytes not yet written anywhere).
    fn plan(self) -> BuildPlan<'p> {
        let src_ip = self.src_ip.expect("ipv4() not called");
        let dst_ip = self.dst_ip.expect("ipv4() not called");
        let l4 = self.l4.expect("no transport layer attached");
        BuildPlan {
            src_mac: self.src_mac,
            dst_mac: self.dst_mac,
            src_ip,
            dst_ip,
            ttl: self.ttl,
            dscp: self.dscp,
            l4,
        }
    }

    /// Builds a broadcast ARP who-has request frame.
    pub fn arp_request(sender_mac: Mac, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Packet {
        Self::arp_frame(
            sender_mac,
            Mac::BROADCAST,
            &ArpPacket::request(sender_mac, sender_ip, target_ip),
        )
    }

    /// Builds a unicast ARP is-at reply frame answering `request`.
    pub fn arp_reply(request: &ArpPacket, my_mac: Mac) -> Packet {
        let reply = ArpPacket::reply_to(request, my_mac);
        Self::arp_frame(my_mac, request.sender_mac, &reply)
    }

    fn arp_frame(src: Mac, dst: Mac, arp: &ArpPacket) -> Packet {
        let mut frame = vec![0u8; EthernetHeader::LEN + ArpPacket::LEN];
        EthernetHeader {
            dst,
            src,
            ethertype: EtherType::ARP,
        }
        .write_to(&mut frame);
        arp.write_to(&mut frame[EthernetHeader::LEN..]);
        let frame_len = frame.len();
        Packet::from_bytes(frame).with_meta(FrameMeta {
            frame_id: 0,
            class: PacketClass::Arp,
            frame_len,
            ethertype: EtherType::ARP.0,
            l3_off: EthernetHeader::LEN,
            l4_off: None,
            payload_off: EthernetHeader::LEN,
            payload_len: ArpPacket::LEN,
            tuple: None,
            flow_hash: 0,
            dscp_ecn: 0,
            l3_checksum_ok: true,
            l4_checksum_ok: true,
            queue: 0,
        })
    }
}

/// A resolved frame: knows its exact length and descriptor, and can
/// write itself into any sufficiently large buffer (heap or arena
/// slot). Every byte of the frame is written — the target needs no
/// pre-zeroing.
struct BuildPlan<'p> {
    src_mac: Mac,
    dst_mac: Mac,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    ttl: u8,
    dscp: u8,
    l4: L4<'p>,
}

impl BuildPlan<'_> {
    fn proto(&self) -> IpProto {
        match self.l4 {
            L4::Udp { .. } => IpProto::UDP,
            L4::Tcp { .. } => IpProto::TCP,
        }
    }

    fn seg_len(&self) -> usize {
        match &self.l4 {
            L4::Udp { payload, .. } => UdpHeader::LEN + payload.len(),
            L4::Tcp { payload, .. } => TcpHeader::LEN + payload.len(),
        }
    }

    fn frame_len(&self) -> usize {
        EthernetHeader::LEN + Ipv4Header::LEN + self.seg_len()
    }

    /// Writes headers, payload, and checksums into `out[..frame_len]`.
    fn write(&self, out: &mut [u8]) {
        let seg_len = self.seg_len();
        EthernetHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: EtherType::IPV4,
        }
        .write_to(out);

        let mut ip = Ipv4Header::new(self.src_ip, self.dst_ip, self.proto(), seg_len);
        ip.ttl = self.ttl;
        ip.dscp_ecn = self.dscp;
        ip.write_to(&mut out[EthernetHeader::LEN..]);

        let seg = &mut out[EthernetHeader::LEN + Ipv4Header::LEN
            ..EthernetHeader::LEN + Ipv4Header::LEN + seg_len];
        // Header (checksum zero), then payload in place, then the
        // pseudo-header sum over the finished segment: the payload is
        // touched exactly once.
        match &self.l4 {
            L4::Udp {
                src_port,
                dst_port,
                payload,
            } => {
                UdpHeader::new(*src_port, *dst_port, payload.len()).write_to(seg);
                payload.write_to(&mut seg[UdpHeader::LEN..]);
                let sum =
                    checksum::pseudo_header_checksum(self.src_ip, self.dst_ip, IpProto::UDP.0, seg);
                seg[6..8].copy_from_slice(&sum.to_be_bytes());
            }
            L4::Tcp {
                src_port,
                dst_port,
                flags,
                seq,
                ack,
                payload,
            } => {
                let mut tcp = TcpHeader::new(*src_port, *dst_port);
                tcp.flags = *flags;
                tcp.seq = *seq;
                tcp.ack = *ack;
                tcp.write_to(seg);
                payload.write_to(&mut seg[TcpHeader::LEN..]);
                let sum =
                    checksum::pseudo_header_checksum(self.src_ip, self.dst_ip, IpProto::TCP.0, seg);
                seg[16..18].copy_from_slice(&sum.to_be_bytes());
            }
        }
    }

    fn meta(&self) -> FrameMeta {
        let (class, src_port, dst_port, l4_hdr_len) = match &self.l4 {
            L4::Udp {
                src_port, dst_port, ..
            } => (PacketClass::Udp, *src_port, *dst_port, UdpHeader::LEN),
            L4::Tcp {
                src_port, dst_port, ..
            } => (PacketClass::Tcp, *src_port, *dst_port, TcpHeader::LEN),
        };
        let tuple = FiveTuple {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port,
            dst_port,
            proto: self.proto(),
        };
        let payload_off = EthernetHeader::LEN + Ipv4Header::LEN + l4_hdr_len;
        let frame_len = self.frame_len();
        FrameMeta {
            frame_id: 0,
            class,
            frame_len,
            ethertype: EtherType::IPV4.0,
            l3_off: EthernetHeader::LEN,
            l4_off: Some(EthernetHeader::LEN + Ipv4Header::LEN),
            payload_off,
            payload_len: frame_len - payload_off,
            tuple: Some(tuple),
            flow_hash: meta::flow_hash_of(&tuple),
            dscp_ecn: self.dscp,
            l3_checksum_ok: true,
            l4_checksum_ok: true,
            queue: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn udp_frame_has_valid_checksums() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("192.168.1.1"), addr("192.168.1.2"))
            .udp(1000, 2000, &[0xAA; 32])
            .build();
        let frame = pkt.bytes();
        // IPv4 checksum verifies.
        assert!(checksum::verify(&frame[14..34]));
        // UDP checksum verifies through the parser helper.
        assert!(UdpHeader::verify_segment(
            addr("192.168.1.1"),
            addr("192.168.1.2"),
            &frame[34..]
        ));
    }

    #[test]
    fn tcp_frame_round_trips_seq_numbers() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .tcp(22, 5000, TcpFlags::ACK, b"data")
            .tcp_seq(1000, 2000)
            .build();
        match pkt.parse().unwrap().payload {
            Payload::Tcp { tcp, .. } => {
                assert_eq!(tcp.seq, 1000);
                assert_eq!(tcp.ack, 2000);
                assert!(tcp.flags.contains(TcpFlags::ACK));
            }
            other => panic!("expected TCP, got {other:?}"),
        }
    }

    #[test]
    fn ttl_and_dscp_applied() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .ttl(7)
            .dscp(0x2E << 2) // EF PHB
            .udp(1, 2, b"")
            .build();
        let ip = *pkt.parse().unwrap().ip().unwrap();
        assert_eq!(ip.ttl, 7);
        assert_eq!(ip.dscp_ecn, 0x2E << 2);
    }

    #[test]
    fn arp_request_is_broadcast() {
        let pkt = PacketBuilder::arp_request(Mac::local(7), addr("10.0.0.7"), addr("10.0.0.1"));
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.ether.dst, Mac::BROADCAST);
        match parsed.payload {
            Payload::Arp(arp) => {
                assert_eq!(arp.sender_ip, addr("10.0.0.7"));
                assert_eq!(arp.target_ip, addr("10.0.0.1"));
            }
            other => panic!("expected ARP, got {other:?}"),
        }
    }

    #[test]
    fn arp_reply_is_unicast_to_requester() {
        let req = ArpPacket::request(Mac::local(1), addr("10.0.0.1"), addr("10.0.0.2"));
        let pkt = PacketBuilder::arp_reply(&req, Mac::local(2));
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.ether.dst, Mac::local(1));
        assert_eq!(parsed.ether.src, Mac::local(2));
    }

    #[test]
    #[should_panic(expected = "ipv4() not called")]
    fn missing_ip_panics() {
        let _ = PacketBuilder::new().udp(1, 2, b"").build();
    }

    #[test]
    #[should_panic(expected = "tcp_seq requires a TCP segment")]
    fn tcp_seq_without_tcp_panics() {
        let _ = PacketBuilder::new().udp(1, 2, b"").tcp_seq(1, 2);
    }

    #[test]
    fn frame_sizes_are_exact() {
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("1.1.1.1"), addr("2.2.2.2"))
            .udp(1, 2, &[0u8; 100])
            .build();
        assert_eq!(pkt.len(), 14 + 20 + 8 + 100);
    }

    #[test]
    fn build_in_lands_in_arena_and_matches_heap_build() {
        let arena = BufArena::new(4, 2048);
        let mk = || {
            PacketBuilder::new()
                .ether(Mac::local(1), Mac::local(2))
                .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
                .dscp(8)
                .udp(1234, 80, &[0x5A; 700])
        };
        let heap = mk().build();
        let pooled = mk().build_in(&arena);
        assert!(pooled.is_arena());
        assert!(!heap.is_arena());
        assert_eq!(
            heap.bytes(),
            pooled.bytes(),
            "byte-identical representations"
        );
        assert_eq!(heap.meta(), pooled.meta());
        assert_eq!(arena.live(), 1);
        drop(pooled);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn zeroes_payload_matches_explicit_zero_bytes() {
        let arena = BufArena::new(2, 2048);
        let explicit = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp(9000, 7000, &vec![0u8; 1458])
            .build();
        let zeroes = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp_zeroes(9000, 7000, 1458)
            .build_in(&arena);
        // Arena slots start poisoned in debug builds, so equality here
        // proves the zero fill really happened in the slot.
        assert_eq!(explicit.bytes(), zeroes.bytes());
        assert_eq!(explicit.meta(), zeroes.meta());
    }

    #[test]
    fn build_in_falls_back_to_heap_when_exhausted() {
        let arena = BufArena::new(1, 2048);
        let held = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp_zeroes(1, 2, 64)
            .build_in(&arena);
        assert!(held.is_arena());
        let spill = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp_zeroes(1, 2, 64)
            .build_in(&arena);
        assert!(!spill.is_arena(), "exhausted arena must fall back to heap");
        assert_eq!(held.bytes(), spill.bytes());
        assert_eq!(arena.stats().exhausted, 1);
    }

    #[test]
    fn build_in_oversize_frame_falls_back_to_heap() {
        let arena = BufArena::new(2, 128);
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp_zeroes(1, 2, 1458)
            .build_in(&arena);
        assert!(!pkt.is_arena());
        assert_eq!(arena.live(), 0);
        assert!(pkt.parse().is_ok());
    }
}
