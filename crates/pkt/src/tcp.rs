//! TCP headers (20 bytes, options unsupported).

use std::fmt;
use std::net::Ipv4Addr;

use crate::checksum;
use crate::{PktError, Result};

/// TCP flag bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Returns the union of two flag sets.
    pub const fn with(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// Returns `true` if every bit in `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (bit, name) in [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
        ] {
            if self.contains(bit) {
                if wrote {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                wrote = true;
            }
        }
        if !wrote {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A TCP header without options.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum (0 until computed).
    pub checksum: u16,
}

impl TcpHeader {
    /// Wire size of an optionless header.
    pub const LEN: usize = 20;

    /// Creates a header with an empty window of 65535 and no flags.
    pub fn new(src_port: u16, dst_port: u16) -> TcpHeader {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            window: 65_535,
            checksum: 0,
        }
    }

    /// Parses a header from the front of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<TcpHeader> {
        if bytes.len() < Self::LEN {
            return Err(PktError::Truncated {
                need: Self::LEN,
                have: bytes.len(),
            });
        }
        let data_off = bytes[12] >> 4;
        if data_off != 5 {
            // This stack never emits options.
            return Err(PktError::BadLength { layer: "tcp" });
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            flags: TcpFlags(bytes[13]),
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
            checksum: u16::from_be_bytes([bytes[16], bytes[17]]),
        })
    }

    /// Writes the header into `out` without computing the checksum.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`Self::LEN`].
    pub fn write_to(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = 5 << 4;
        out[13] = self.flags.0;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        out[18..20].copy_from_slice(&[0, 0]); // urgent pointer
    }

    /// Writes header + `payload` into `out` and fills in the checksum
    /// using the IPv4 pseudo-header.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than header + payload.
    pub fn write_segment(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8], out: &mut [u8]) {
        let total = Self::LEN + payload.len();
        let mut hdr = *self;
        hdr.checksum = 0;
        hdr.write_to(out);
        out[Self::LEN..total].copy_from_slice(payload);
        let sum = checksum::pseudo_header_checksum(src, dst, crate::IpProto::TCP.0, &out[..total]);
        out[16..18].copy_from_slice(&sum.to_be_bytes());
    }

    /// Verifies the segment checksum over the pseudo-header.
    pub fn verify_segment(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> bool {
        if segment.len() < Self::LEN {
            return false;
        }
        let mut copy = segment.to_vec();
        let sent = u16::from_be_bytes([copy[16], copy[17]]);
        copy[16] = 0;
        copy[17] = 0;
        checksum::pseudo_header_checksum(src, dst, crate::IpProto::TCP.0, &copy) == sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn round_trip() {
        let mut h = TcpHeader::new(22, 50000);
        h.seq = 0x12345678;
        h.ack = 0x9ABCDEF0;
        h.flags = TcpFlags::SYN.with(TcpFlags::ACK);
        let payload = b"hello";
        let mut buf = vec![0u8; TcpHeader::LEN + payload.len()];
        h.write_segment(addr("10.0.0.1"), addr("10.0.0.2"), payload, &mut buf);
        let parsed = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.src_port, 22);
        assert_eq!(parsed.dst_port, 50000);
        assert_eq!(parsed.seq, 0x12345678);
        assert_eq!(parsed.ack, 0x9ABCDEF0);
        assert!(parsed.flags.contains(TcpFlags::SYN));
        assert!(parsed.flags.contains(TcpFlags::ACK));
        assert!(TcpHeader::verify_segment(
            addr("10.0.0.1"),
            addr("10.0.0.2"),
            &buf
        ));
    }

    #[test]
    fn corrupt_segment_fails_verification() {
        let h = TcpHeader::new(80, 1234);
        let mut buf = vec![0u8; TcpHeader::LEN + 3];
        h.write_segment(addr("1.1.1.1"), addr("2.2.2.2"), &[1, 2, 3], &mut buf);
        buf[21] ^= 0x80;
        assert!(!TcpHeader::verify_segment(
            addr("1.1.1.1"),
            addr("2.2.2.2"),
            &buf
        ));
    }

    #[test]
    fn options_rejected() {
        let mut buf = [0u8; 24];
        buf[12] = 6 << 4;
        assert_eq!(
            TcpHeader::parse(&buf).unwrap_err(),
            PktError::BadLength { layer: "tcp" }
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            TcpHeader::parse(&[0u8; 19]).unwrap_err(),
            PktError::Truncated { need: 20, have: 19 }
        );
        assert!(!TcpHeader::verify_segment(
            addr("1.1.1.1"),
            addr("2.2.2.2"),
            &[0u8; 10]
        ));
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN.to_string(), "SYN");
        assert_eq!(TcpFlags::SYN.with(TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn flags_contains() {
        let f = TcpFlags::SYN.with(TcpFlags::ACK);
        assert!(f.contains(TcpFlags::SYN));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.contains(TcpFlags::default()));
    }
}
