//! In-place header rewriting with incremental checksum fixup.
//!
//! The §5 offload list includes NAT: the NIC must rewrite addresses and
//! ports at line rate. Hardware does this with RFC 1624 incremental
//! checksum updates — O(1) per rewritten word, never re-reading the
//! payload — and so does this module. ECN marking (used by AQM and
//! congestion control) rewrites the IP TOS byte the same way.

use std::net::Ipv4Addr;

use crate::checksum::incremental_update;
use crate::ether::{EtherType, EthernetHeader};
use crate::ipv4::{IpProto, Ipv4Header};
use crate::meta::{Frame, PacketClass};
use crate::packet::Packet;
use crate::{PktError, Result};

const IP_OFF: usize = EthernetHeader::LEN;

/// ECN codepoint bits in the IPv4 TOS byte.
pub const ECN_ECT0: u8 = 0b10;
/// ECN congestion-experienced codepoint.
pub const ECN_CE: u8 = 0b11;

struct Layout {
    proto: IpProto,
    l4_off: usize,
}

fn layout(bytes: &[u8]) -> Result<Layout> {
    let ether = EthernetHeader::parse(bytes)?;
    if ether.ethertype != EtherType::IPV4 {
        return Err(PktError::UnsupportedEtherType(ether.ethertype.0));
    }
    let ip = Ipv4Header::parse(&bytes[IP_OFF..])?;
    Ok(Layout {
        proto: ip.proto,
        l4_off: IP_OFF + Ipv4Header::LEN,
    })
}

/// Offset of the transport checksum field within the L4 header, if the
/// protocol carries one we know how to fix.
fn l4_checksum_off(proto: IpProto) -> Option<usize> {
    match proto {
        IpProto::TCP => Some(16),
        IpProto::UDP => Some(6),
        _ => None,
    }
}

fn patch_word(bytes: &mut [u8], word_off: usize, new: [u8; 2], sum_offs: &[usize]) {
    let old = u16::from_be_bytes([bytes[word_off], bytes[word_off + 1]]);
    let new_w = u16::from_be_bytes(new);
    bytes[word_off] = new[0];
    bytes[word_off + 1] = new[1];
    for &so in sum_offs {
        let sum = u16::from_be_bytes([bytes[so], bytes[so + 1]]);
        // A UDP checksum of zero means "not computed"; leave it be.
        if sum == 0 {
            continue;
        }
        let fixed = incremental_update(sum, old, new_w);
        bytes[so..so + 2].copy_from_slice(&fixed.to_be_bytes());
    }
}

/// Rewrites the IPv4 source and/or destination address, fixing the IP
/// header checksum and the transport pseudo-header checksum
/// incrementally.
pub fn rewrite_ipv4_addrs(
    packet: &Packet,
    new_src: Option<Ipv4Addr>,
    new_dst: Option<Ipv4Addr>,
) -> Result<Packet> {
    let lay = layout(packet.bytes())?;
    let mut bytes = packet.bytes().to_vec();
    let ip_sum = IP_OFF + 10;
    let mut sums = vec![ip_sum];
    if let Some(off) = l4_checksum_off(lay.proto) {
        // Addresses are in the pseudo-header, so the L4 sum changes too.
        sums.push(lay.l4_off + off);
    }
    if let Some(src) = new_src {
        let o = src.octets();
        patch_word(&mut bytes, IP_OFF + 12, [o[0], o[1]], &sums);
        patch_word(&mut bytes, IP_OFF + 14, [o[2], o[3]], &sums);
    }
    if let Some(dst) = new_dst {
        let o = dst.octets();
        patch_word(&mut bytes, IP_OFF + 16, [o[0], o[1]], &sums);
        patch_word(&mut bytes, IP_OFF + 18, [o[2], o[3]], &sums);
    }
    Ok(Packet::from_bytes(bytes))
}

/// Rewrites the transport source and/or destination port, fixing the
/// transport checksum incrementally.
pub fn rewrite_ports(
    packet: &Packet,
    new_src_port: Option<u16>,
    new_dst_port: Option<u16>,
) -> Result<Packet> {
    let lay = layout(packet.bytes())?;
    let Some(sum_off) = l4_checksum_off(lay.proto) else {
        return Err(PktError::BadLength { layer: "l4" });
    };
    let mut bytes = packet.bytes().to_vec();
    let sums = [lay.l4_off + sum_off];
    if let Some(p) = new_src_port {
        patch_word(&mut bytes, lay.l4_off, p.to_be_bytes(), &sums);
    }
    if let Some(p) = new_dst_port {
        patch_word(&mut bytes, lay.l4_off + 2, p.to_be_bytes(), &sums);
    }
    Ok(Packet::from_bytes(bytes))
}

/// Resolves the transport checksum offset for an endpoint rewrite from
/// the frame's descriptor, rejecting frames that cannot be rewritten.
fn endpoint_layout(frame: &Frame) -> Result<(usize, usize)> {
    let sum_off = match frame.meta.class {
        PacketClass::Tcp => 16,
        PacketClass::Udp => 6,
        _ => return Err(PktError::BadLength { layer: "l4" }),
    };
    let Some(l4_off) = frame.meta.l4_off else {
        return Err(PktError::BadLength { layer: "l4" });
    };
    Ok((l4_off, sum_off))
}

/// The endpoint-rewrite core: patches addresses/ports and both
/// checksums in `bytes`, wherever those bytes live (heap copy or arena
/// slot).
fn patch_endpoints(
    bytes: &mut [u8],
    l4_off: usize,
    sum_off: usize,
    new_src: Option<(Ipv4Addr, u16)>,
    new_dst: Option<(Ipv4Addr, u16)>,
) {
    // Addresses are in the pseudo-header, so they touch both checksums;
    // ports only the transport one.
    let both_sums = [IP_OFF + 10, l4_off + sum_off];
    let l4_sum = [l4_off + sum_off];
    if let Some((ip, port)) = new_src {
        let o = ip.octets();
        patch_word(bytes, IP_OFF + 12, [o[0], o[1]], &both_sums);
        patch_word(bytes, IP_OFF + 14, [o[2], o[3]], &both_sums);
        patch_word(bytes, l4_off, port.to_be_bytes(), &l4_sum);
    }
    if let Some((ip, port)) = new_dst {
        let o = ip.octets();
        patch_word(bytes, IP_OFF + 16, [o[0], o[1]], &both_sums);
        patch_word(bytes, IP_OFF + 18, [o[2], o[3]], &both_sums);
        patch_word(bytes, l4_off + 2, port.to_be_bytes(), &l4_sum);
    }
}

/// Rewrites the source and/or destination endpoint (address + port) in a
/// single pass over a single copy of the frame.
///
/// Uses the frame's descriptor for the layout — no parse — fixes the IP
/// and transport checksums incrementally (RFC 1624), and patches the
/// descriptor in place (offsets are stable; the tuple and flow hash
/// update incrementally), so nothing downstream ever re-parses. The
/// input is borrowed, so the output is always a fresh heap buffer; the
/// NAT hot path uses [`rewrite_endpoints_owned`], which rewrites in
/// place when it holds the only reference.
pub fn rewrite_endpoints(
    frame: &Frame,
    new_src: Option<(Ipv4Addr, u16)>,
    new_dst: Option<(Ipv4Addr, u16)>,
) -> Result<Frame> {
    let (l4_off, sum_off) = endpoint_layout(frame)?;
    let mut bytes = frame.bytes().to_vec();
    patch_endpoints(&mut bytes, l4_off, sum_off, new_src, new_dst);
    let mut new_meta = frame.meta;
    new_meta.rewrite_endpoints(new_src, new_dst);
    Ok(Frame::from_parts(Packet::from_bytes(bytes), new_meta))
}

/// The zero-copy endpoint rewrite: when `frame` is the sole owner of
/// its buffer (heap or arena slot, refcount 1 — the usual case for a
/// frame in flight through NAT), the headers and checksums are patched
/// *in place* and no bytes move at all. A shared buffer falls back to
/// the copying path transparently.
pub fn rewrite_endpoints_owned(
    mut frame: Frame,
    new_src: Option<(Ipv4Addr, u16)>,
    new_dst: Option<(Ipv4Addr, u16)>,
) -> Result<Frame> {
    let (l4_off, sum_off) = endpoint_layout(&frame)?;
    let Some(bytes) = frame.pkt.bytes_mut_unique() else {
        return rewrite_endpoints(&frame, new_src, new_dst);
    };
    patch_endpoints(bytes, l4_off, sum_off, new_src, new_dst);
    let mut new_meta = frame.meta;
    new_meta.rewrite_endpoints(new_src, new_dst);
    frame.pkt.set_meta(new_meta);
    frame.meta = new_meta;
    Ok(frame)
}

/// Sets the ECN codepoint in the IPv4 TOS byte (e.g. [`ECN_CE`] when an
/// AQM marks congestion), fixing the IP checksum incrementally.
pub fn set_ecn(packet: &Packet, ecn: u8) -> Result<Packet> {
    layout(packet.bytes())?;
    let mut bytes = packet.bytes().to_vec();
    let tos_word_off = IP_OFF; // version/IHL byte + TOS byte share a word
    let ver_ihl = bytes[IP_OFF];
    let new_tos = (bytes[IP_OFF + 1] & !0b11) | (ecn & 0b11);
    patch_word(&mut bytes, tos_word_off, [ver_ihl, new_tos], &[IP_OFF + 10]);
    let out = Packet::from_bytes(bytes);
    // Carry an attached descriptor forward; only the DSCP/ECN byte moved.
    Ok(match packet.meta() {
        Some(m) => {
            let mut meta = *m;
            meta.dscp_ecn = new_tos;
            out.with_meta(meta)
        }
        None => out,
    })
}

/// Returns the ECN codepoint of an IPv4 frame.
pub fn ecn_of(packet: &Packet) -> Result<u8> {
    layout(packet.bytes())?;
    Ok(packet.bytes()[IP_OFF + 1] & 0b11)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::ether::Mac;
    use crate::flow::FiveTuple;
    use crate::tcp::TcpHeader;
    use crate::udp::UdpHeader;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn udp_pkt() -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("192.168.1.10"), addr("8.8.8.8"))
            .udp(5353, 53, b"query-payload")
            .build()
    }

    fn tcp_pkt() -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("192.168.1.10"), addr("8.8.8.8"))
            .tcp(40_000, 443, crate::TcpFlags::ACK, b"tls bytes")
            .build()
    }

    #[test]
    fn snat_rewrite_keeps_checksums_valid() {
        let pkt = udp_pkt();
        let natted = rewrite_ipv4_addrs(&pkt, Some(addr("203.0.113.7")), None).unwrap();
        let natted = rewrite_ports(&natted, Some(61_000), None).unwrap();
        // Re-parse: IPv4 checksum must verify (parse checks it).
        let parsed = natted.parse().unwrap();
        let ft = FiveTuple::from_parsed(&parsed).unwrap();
        assert_eq!(ft.src_ip, addr("203.0.113.7"));
        assert_eq!(ft.src_port, 61_000);
        assert_eq!(ft.dst_ip, addr("8.8.8.8"));
        // UDP checksum verifies against the *new* pseudo-header.
        assert!(UdpHeader::verify_segment(
            addr("203.0.113.7"),
            addr("8.8.8.8"),
            &natted.bytes()[34..]
        ));
        // Payload untouched.
        assert_eq!(&natted.bytes()[42..], &pkt.bytes()[42..]);
    }

    #[test]
    fn dnat_rewrite_tcp() {
        let pkt = tcp_pkt();
        let natted = rewrite_ipv4_addrs(&pkt, None, Some(addr("10.0.0.99"))).unwrap();
        let natted = rewrite_ports(&natted, None, Some(8443)).unwrap();
        let parsed = natted.parse().unwrap();
        let ft = FiveTuple::from_parsed(&parsed).unwrap();
        assert_eq!(ft.dst_ip, addr("10.0.0.99"));
        assert_eq!(ft.dst_port, 8443);
        assert!(TcpHeader::verify_segment(
            addr("192.168.1.10"),
            addr("10.0.0.99"),
            &natted.bytes()[34..]
        ));
    }

    #[test]
    fn rewrite_round_trips() {
        let pkt = udp_pkt();
        let out = rewrite_ipv4_addrs(&pkt, Some(addr("1.2.3.4")), None).unwrap();
        let back = rewrite_ipv4_addrs(&out, Some(addr("192.168.1.10")), None).unwrap();
        assert_eq!(back.bytes(), pkt.bytes());
    }

    #[test]
    fn rewrite_endpoints_single_pass_matches_two_pass() {
        for pkt in [udp_pkt(), tcp_pkt()] {
            let frame = crate::meta::Frame::ingress(pkt.clone()).unwrap();
            let one = rewrite_endpoints(&frame, Some((addr("203.0.113.7"), 61_000)), None).unwrap();
            let two = rewrite_ipv4_addrs(&pkt, Some(addr("203.0.113.7")), None).unwrap();
            let two = rewrite_ports(&two, Some(61_000), None).unwrap();
            assert_eq!(one.bytes(), two.bytes());
            // The incrementally maintained descriptor equals a fresh one.
            assert_eq!(
                one.meta,
                crate::meta::FrameMeta::derive(one.bytes()).unwrap()
            );
        }
    }

    #[test]
    fn rewrite_endpoints_dst_and_roundtrip() {
        let frame = crate::meta::Frame::ingress(udp_pkt()).unwrap();
        let out = rewrite_endpoints(&frame, None, Some((addr("10.0.0.99"), 8443))).unwrap();
        let t = out.meta.tuple.unwrap();
        assert_eq!(t.dst_ip, addr("10.0.0.99"));
        assert_eq!(t.dst_port, 8443);
        let back = rewrite_endpoints(&out, None, Some((addr("8.8.8.8"), 53))).unwrap();
        assert_eq!(back.bytes(), frame.bytes());
        assert_eq!(back.meta, frame.meta);
    }

    #[test]
    fn rewrite_endpoints_owned_is_in_place_for_sole_owner() {
        let arena = crate::arena::BufArena::new(2, 2048);
        let pkt = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("192.168.1.10"), addr("8.8.8.8"))
            .udp(5353, 53, b"query-payload")
            .build_in(&arena);
        let frame = crate::meta::Frame::ingress(pkt).unwrap();
        let before_ptr = frame.bytes().as_ptr();
        let reference =
            rewrite_endpoints(&frame, Some((addr("203.0.113.7"), 61_000)), None).unwrap();
        let out =
            rewrite_endpoints_owned(frame, Some((addr("203.0.113.7"), 61_000)), None).unwrap();
        // Same slot, no copy — and byte-identical to the copying path.
        assert_eq!(out.bytes().as_ptr(), before_ptr, "rewrite must be in place");
        assert!(out.pkt.is_arena());
        assert_eq!(out.bytes(), reference.bytes());
        assert_eq!(out.meta, reference.meta);
        assert_eq!(out.pkt.meta(), Some(&out.meta));
        assert_eq!(arena.live(), 1);
    }

    #[test]
    fn rewrite_endpoints_owned_falls_back_when_shared() {
        let frame = crate::meta::Frame::ingress(udp_pkt()).unwrap();
        let tap = frame.pkt.clone(); // a second handle: buffer is shared
        let out = rewrite_endpoints_owned(frame.clone(), Some((addr("1.2.3.4"), 9)), None).unwrap();
        let t = out.meta.tuple.unwrap();
        assert_eq!((t.src_ip, t.src_port), (addr("1.2.3.4"), 9));
        // The shared original is untouched.
        assert_eq!(tap.bytes(), frame.bytes());
        assert_ne!(out.bytes().as_ptr(), frame.bytes().as_ptr());
    }

    #[test]
    fn rewrite_endpoints_rejects_non_l4() {
        let arp = PacketBuilder::arp_request(Mac::local(1), addr("1.1.1.1"), addr("2.2.2.2"));
        let frame = crate::meta::Frame::ingress(arp).unwrap();
        assert!(rewrite_endpoints(&frame, Some((addr("1.2.3.4"), 1)), None).is_err());
    }

    #[test]
    fn ecn_mark_and_read() {
        let pkt = udp_pkt();
        assert_eq!(ecn_of(&pkt).unwrap(), 0);
        let marked = set_ecn(&pkt, ECN_CE).unwrap();
        assert_eq!(ecn_of(&marked).unwrap(), ECN_CE);
        // IPv4 checksum still verifies.
        assert!(marked.parse().is_ok());
        // Everything else unchanged.
        assert_eq!(&marked.bytes()[2..IP_OFF + 1], &pkt.bytes()[2..IP_OFF + 1]);
        assert_eq!(
            &marked.bytes()[IP_OFF + 2..IP_OFF + 10],
            &pkt.bytes()[IP_OFF + 2..IP_OFF + 10]
        );
    }

    #[test]
    fn zero_udp_checksum_left_alone() {
        // Hand-build a UDP frame with checksum 0 (sender opted out).
        let pkt = udp_pkt();
        let mut bytes = pkt.bytes().to_vec();
        bytes[34 + 6] = 0;
        bytes[34 + 7] = 0;
        let pkt = Packet::from_bytes(bytes);
        let natted = rewrite_ports(&pkt, Some(1), None).unwrap();
        assert_eq!(&natted.bytes()[34 + 6..34 + 8], &[0, 0]);
    }

    #[test]
    fn arp_frames_are_rejected() {
        let arp = PacketBuilder::arp_request(Mac::local(1), addr("1.1.1.1"), addr("2.2.2.2"));
        assert!(rewrite_ports(&arp, Some(1), None).is_err());
        assert!(set_ecn(&arp, ECN_CE).is_err());
    }

    #[test]
    fn icmp_port_rewrite_rejected() {
        // Build an IPv4 frame with a protocol we can't fix checksums for.
        let pkt = udp_pkt();
        let mut bytes = pkt.bytes().to_vec();
        bytes[IP_OFF + 9] = 1; // ICMP
                               // Fix the IP checksum for the protocol change so layout() parses.
        let mut hdr = [0u8; 20];
        hdr.copy_from_slice(&bytes[IP_OFF..IP_OFF + 20]);
        hdr[10] = 0;
        hdr[11] = 0;
        let sum = crate::checksum::internet_checksum(&hdr);
        bytes[IP_OFF + 10..IP_OFF + 12].copy_from_slice(&sum.to_be_bytes());
        let pkt = Packet::from_bytes(bytes);
        assert!(rewrite_ports(&pkt, Some(1), None).is_err());
    }
}
