//! Ethernet II framing.

use std::fmt;
use std::str::FromStr;

use crate::{PktError, Result};

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Mac(pub [u8; 6]);

impl Mac {
    /// The all-ones broadcast address.
    pub const BROADCAST: Mac = Mac([0xFF; 6]);
    /// The all-zeroes address (unset).
    pub const ZERO: Mac = Mac([0; 6]);

    /// Builds a locally administered unicast MAC from a small integer,
    /// convenient for synthesizing per-host/per-app addresses in tests.
    pub fn local(n: u64) -> Mac {
        let b = n.to_be_bytes();
        // 0x02 sets the locally-administered bit, clears multicast.
        Mac([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Mac::BROADCAST
    }

    /// Returns `true` if the multicast bit is set (includes broadcast).
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl fmt::Display for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl fmt::Debug for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mac({self})")
    }
}

impl FromStr for Mac {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Mac, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(format!(
                "expected 6 colon-separated octets, got {}",
                parts.len()
            ));
        }
        let mut out = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            out[i] = u8::from_str_radix(p, 16).map_err(|e| format!("octet {i}: {e}"))?;
        }
        Ok(Mac(out))
    }
}

/// An EtherType value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4 (0x0800).
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP (0x0806).
    pub const ARP: EtherType = EtherType(0x0806);
    /// IPv6 (0x86DD) — recognized but not parsed by this stack.
    pub const IPV6: EtherType = EtherType(0x86DD);
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EtherType::IPV4 => write!(f, "IPv4"),
            EtherType::ARP => write!(f, "ARP"),
            EtherType::IPV6 => write!(f, "IPv6"),
            EtherType(other) => write!(f, "{other:#06x}"),
        }
    }
}

/// An Ethernet II header (14 bytes, no 802.1Q tag).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: Mac,
    /// Source MAC.
    pub src: Mac,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Wire size of the header in bytes.
    pub const LEN: usize = 14;

    /// Parses a header from the front of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<EthernetHeader> {
        if bytes.len() < Self::LEN {
            return Err(PktError::Truncated {
                need: Self::LEN,
                have: bytes.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&bytes[0..6]);
        src.copy_from_slice(&bytes[6..12]);
        Ok(EthernetHeader {
            dst: Mac(dst),
            src: Mac(src),
            ethertype: EtherType(u16::from_be_bytes([bytes[12], bytes[13]])),
        })
    }

    /// Writes the header into the front of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`Self::LEN`].
    pub fn write_to(&self, out: &mut [u8]) {
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&self.ethertype.0.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_parse_round_trip() {
        let m = Mac([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        let s = m.to_string();
        assert_eq!(s, "de:ad:be:ef:00:01");
        assert_eq!(s.parse::<Mac>().unwrap(), m);
    }

    #[test]
    fn mac_parse_rejects_garbage() {
        assert!("de:ad:be:ef:00".parse::<Mac>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<Mac>().is_err());
    }

    #[test]
    fn broadcast_and_multicast_bits() {
        assert!(Mac::BROADCAST.is_broadcast());
        assert!(Mac::BROADCAST.is_multicast());
        assert!(!Mac::local(7).is_multicast());
        assert!(!Mac::local(7).is_broadcast());
    }

    #[test]
    fn local_macs_are_distinct() {
        assert_ne!(Mac::local(1), Mac::local(2));
        assert_eq!(Mac::local(5), Mac::local(5));
    }

    #[test]
    fn header_round_trip() {
        let h = EthernetHeader {
            dst: Mac::BROADCAST,
            src: Mac::local(3),
            ethertype: EtherType::ARP,
        };
        let mut buf = [0u8; EthernetHeader::LEN];
        h.write_to(&mut buf);
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn truncated_header_errors() {
        let err = EthernetHeader::parse(&[0u8; 13]).unwrap_err();
        assert_eq!(err, PktError::Truncated { need: 14, have: 13 });
    }

    #[test]
    fn ethertype_display() {
        assert_eq!(EtherType::IPV4.to_string(), "IPv4");
        assert_eq!(EtherType::ARP.to_string(), "ARP");
        assert_eq!(EtherType(0x1234).to_string(), "0x1234");
    }
}
