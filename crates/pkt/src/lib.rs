//! Packet substrate: wire formats, parsing, construction, and flow
//! identification.
//!
//! Every packet that crosses the simulated host is a real byte buffer with
//! valid Ethernet/ARP/IPv4/TCP/UDP headers and checksums, so the SmartNIC
//! pipeline, the in-kernel stack baseline, and the sniffer all operate on
//! the same wire representation a hardware implementation would see.
//!
//! * [`ether`], [`arp`], [`ipv4`], [`tcp`], [`udp`] — header types with
//!   `parse`/`write_to` round-trips.
//! * [`checksum`] — the Internet checksum and TCP/UDP pseudo-header sums.
//! * [`packet`] — the owned [`Packet`] buffer and the fully [`Parsed`]
//!   view.
//! * [`flow`] — [`FiveTuple`] flow keys and Toeplitz RSS hashing.
//! * [`builder`] — fluent, checksum-correct packet construction.
//! * [`mutate`] — NAT/ECN header rewriting with RFC 1624 incremental
//!   checksum fixup.
//! * [`meta`] — the parse-once [`FrameMeta`] descriptor every dataplane
//!   stage consumes instead of re-parsing, and the [`Frame`] unit that
//!   pairs it with its buffer.
//! * [`arena`] — the pooled frame arena ([`BufArena`]/[`FrameRef`]): slab
//!   slots, refcounted descriptors, and the miri-audited unsafe core.

pub mod arena;
pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ether;
pub mod flow;
pub mod ipv4;
pub mod meta;
pub mod mutate;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use arena::{ArenaStats, BufArena, FrameRef, SlotWriter};
pub use arp::{ArpOp, ArpPacket};
pub use builder::PacketBuilder;
pub use ether::{EtherType, EthernetHeader, Mac};
pub use flow::{FiveTuple, RssHasher};
pub use ipv4::{IpProto, Ipv4Header};
pub use meta::{Frame, FrameMeta, PacketClass};
pub use packet::{Packet, Parsed, Payload};
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;

use std::fmt;

/// Errors produced while parsing wire bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PktError {
    /// The buffer ended before the structure being parsed.
    Truncated {
        /// Bytes required by the structure.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// An IPv4 header with a version other than 4.
    BadVersion(u8),
    /// An IPv4 header length below the 20-byte minimum (in 32-bit words).
    BadIhl(u8),
    /// A checksum that failed verification.
    BadChecksum {
        /// The layer whose checksum failed (e.g. `"ipv4"`).
        layer: &'static str,
    },
    /// An EtherType this stack does not parse.
    UnsupportedEtherType(u16),
    /// A declared length field inconsistent with the buffer.
    BadLength {
        /// The layer whose length field is inconsistent.
        layer: &'static str,
    },
}

impl fmt::Display for PktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PktError::Truncated { need, have } => {
                write!(f, "truncated packet: need {need} bytes, have {have}")
            }
            PktError::BadVersion(v) => write!(f, "bad IP version {v}"),
            PktError::BadIhl(ihl) => write!(f, "bad IPv4 IHL {ihl}"),
            PktError::BadChecksum { layer } => write!(f, "bad {layer} checksum"),
            PktError::UnsupportedEtherType(t) => {
                write!(f, "unsupported EtherType {t:#06x}")
            }
            PktError::BadLength { layer } => write!(f, "inconsistent {layer} length"),
        }
    }
}

impl std::error::Error for PktError {}

/// Result alias for packet parsing.
pub type Result<T> = std::result::Result<T, PktError>;
