//! Deficit round-robin scheduling (`drr`).

use std::collections::VecDeque;

use sim::Time;

use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};

struct ClassQueue {
    queue: VecDeque<QPkt>,
    quantum: u32,
    deficit: u32,
    backlog: u64,
}

/// Deficit round-robin across a fixed set of classes.
///
/// Each class has a quantum proportional to its share; a class may send
/// up to its accumulated deficit per round, giving byte-accurate weighted
/// fairness with O(1) dequeue.
pub struct Drr {
    classes: Vec<ClassQueue>,
    /// Round-robin order of backlogged classes.
    active: VecDeque<usize>,
    per_class_limit: usize,
    stats: QdiscStats,
    sent_per_class: Vec<u64>,
}

impl Drr {
    /// Creates a scheduler with one quantum per class (bytes per round).
    ///
    /// # Panics
    ///
    /// Panics if `quanta` is empty or any quantum is zero.
    pub fn new(quanta: &[u32], per_class_limit: usize) -> Drr {
        assert!(!quanta.is_empty(), "need at least one class");
        assert!(quanta.iter().all(|&q| q > 0), "quanta must be positive");
        Drr {
            classes: quanta
                .iter()
                .map(|&q| ClassQueue {
                    queue: VecDeque::new(),
                    quantum: q,
                    deficit: 0,
                    backlog: 0,
                })
                .collect(),
            active: VecDeque::new(),
            per_class_limit,
            stats: QdiscStats::default(),
            sent_per_class: vec![0; quanta.len()],
        }
    }

    /// Returns the number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Returns bytes dequeued so far per class (for fairness checks).
    pub fn class_bytes_sent(&self) -> Vec<u64> {
        self.sent_per_class.clone()
    }
}

impl Qdisc for Drr {
    fn enqueue(&mut self, pkt: QPkt, _now: Time) -> Result<(), EnqueueError> {
        let idx = pkt.class as usize;
        if idx >= self.classes.len() {
            self.stats.dropped += 1;
            return Err(EnqueueError::NoSuchClass { class: pkt.class });
        }
        let class = &mut self.classes[idx];
        if class.queue.len() >= self.per_class_limit {
            self.stats.dropped += 1;
            return Err(EnqueueError::QueueFull);
        }
        let was_empty = class.queue.is_empty();
        class.queue.push_back(pkt);
        class.backlog += u64::from(pkt.len);
        self.stats.enqueued += 1;
        self.stats.bytes_enqueued += u64::from(pkt.len);
        if was_empty {
            class.deficit = 0;
            self.active.push_back(idx);
        }
        Ok(())
    }

    fn dequeue(&mut self, _now: Time) -> Option<QPkt> {
        // At most one full cycle through active classes per dequeue.
        for _ in 0..self.active.len().max(1) {
            let idx = *self.active.front()?;
            let class = &mut self.classes[idx];
            let head_len = match class.queue.front() {
                Some(p) => p.len,
                None => {
                    // Shouldn't happen (emptied classes are removed), but
                    // stay robust.
                    self.active.pop_front();
                    continue;
                }
            };
            if class.deficit >= head_len {
                class.deficit -= head_len;
                let pkt = class.queue.pop_front().expect("head exists");
                class.backlog -= u64::from(pkt.len);
                self.stats.dequeued += 1;
                self.stats.bytes_dequeued += u64::from(pkt.len);
                self.sent_per_class[idx] += u64::from(pkt.len);
                if class.queue.is_empty() {
                    class.deficit = 0;
                    self.active.pop_front();
                }
                return Some(pkt);
            }
            // Grant a quantum and rotate to the back of the round.
            class.deficit = class.deficit.saturating_add(class.quantum);
            let idx = self.active.pop_front().expect("checked front");
            self.active.push_back(idx);
        }
        // All classes needed more deficit; loop again (bounded: each class
        // gains a quantum per rotation, so a packet eventually fits).
        self.dequeue_slow()
    }

    fn next_ready(&self, _now: Time) -> Option<Time> {
        None
    }

    fn len(&self) -> usize {
        self.classes.iter().map(|c| c.queue.len()).sum()
    }

    fn backlog_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.backlog).sum()
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

impl Drr {
    fn dequeue_slow(&mut self) -> Option<QPkt> {
        if self.active.is_empty() {
            return None;
        }
        // Keep granting quanta until some head packet fits. Bounded by
        // max(head_len / quantum) rotations.
        for _ in 0..100_000 {
            let idx = *self.active.front()?;
            let class = &mut self.classes[idx];
            let head_len = class.queue.front()?.len;
            if class.deficit >= head_len {
                class.deficit -= head_len;
                let pkt = class.queue.pop_front()?;
                class.backlog -= u64::from(pkt.len);
                self.stats.dequeued += 1;
                self.stats.bytes_dequeued += u64::from(pkt.len);
                self.sent_per_class[idx] += u64::from(pkt.len);
                if class.queue.is_empty() {
                    class.deficit = 0;
                    self.active.pop_front();
                }
                return Some(pkt);
            }
            class.deficit = class.deficit.saturating_add(class.quantum);
            let idx = self.active.pop_front()?;
            self.active.push_back(idx);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, len: u32, class: u32) -> QPkt {
        QPkt::new(id, len, Time::ZERO).with_class(class)
    }

    fn drain_bytes(q: &mut Drr, classes: usize) -> Vec<u64> {
        let mut out = vec![0u64; classes];
        while let Some(p) = q.dequeue(Time::ZERO) {
            out[p.class as usize] += u64::from(p.len);
        }
        out
    }

    #[test]
    fn equal_quanta_equal_shares() {
        let mut q = Drr::new(&[1500, 1500], 1024);
        for i in 0..100 {
            q.enqueue(pkt(i, 1000, 0), Time::ZERO).unwrap();
            q.enqueue(pkt(1000 + i, 1000, 1), Time::ZERO).unwrap();
        }
        // Drain half; shares should be near equal.
        let mut sent = [0u64; 2];
        for _ in 0..100 {
            let p = q.dequeue(Time::ZERO).unwrap();
            sent[p.class as usize] += u64::from(p.len);
        }
        let diff = (sent[0] as i64 - sent[1] as i64).abs();
        assert!(diff <= 2000, "shares {sent:?}");
    }

    #[test]
    fn weighted_quanta_weighted_shares() {
        // 3:1 quanta should give ~3:1 service while both are backlogged.
        let mut q = Drr::new(&[3000, 1000], 4096);
        for i in 0..300 {
            q.enqueue(pkt(i, 500, 0), Time::ZERO).unwrap();
            q.enqueue(pkt(10_000 + i, 500, 1), Time::ZERO).unwrap();
        }
        let mut sent = [0u64; 2];
        for _ in 0..200 {
            let p = q.dequeue(Time::ZERO).unwrap();
            sent[p.class as usize] += u64::from(p.len);
        }
        let ratio = sent[0] as f64 / sent[1] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio} from {sent:?}");
    }

    #[test]
    fn work_conserving_when_one_class_idle() {
        let mut q = Drr::new(&[1000, 1000], 64);
        for i in 0..10 {
            q.enqueue(pkt(i, 800, 0), Time::ZERO).unwrap();
        }
        let sent = drain_bytes(&mut q, 2);
        assert_eq!(sent, vec![8000, 0]);
    }

    #[test]
    fn large_packets_still_served() {
        // Quantum smaller than packet: deficit accumulates over rounds.
        let mut q = Drr::new(&[100, 100], 8);
        q.enqueue(pkt(0, 1500, 0), Time::ZERO).unwrap();
        let p = q.dequeue(Time::ZERO).expect("eventually served");
        assert_eq!(p.id, 0);
    }

    #[test]
    fn unknown_class_rejected() {
        let mut q = Drr::new(&[100], 8);
        assert_eq!(
            q.enqueue(pkt(0, 100, 5), Time::ZERO),
            Err(EnqueueError::NoSuchClass { class: 5 })
        );
    }

    #[test]
    fn per_class_limit_enforced() {
        let mut q = Drr::new(&[100, 100], 1);
        q.enqueue(pkt(0, 100, 0), Time::ZERO).unwrap();
        assert_eq!(
            q.enqueue(pkt(1, 100, 0), Time::ZERO),
            Err(EnqueueError::QueueFull)
        );
        q.enqueue(pkt(2, 100, 1), Time::ZERO).unwrap();
    }

    #[test]
    fn empty_after_drain() {
        let mut q = Drr::new(&[500, 500], 16);
        q.enqueue(pkt(0, 100, 0), Time::ZERO).unwrap();
        q.dequeue(Time::ZERO).unwrap();
        assert!(q.dequeue(Time::ZERO).is_none());
        assert!(q.is_empty());
        assert_eq!(q.backlog_bytes(), 0);
    }

    #[test]
    fn per_class_accounting() {
        let mut q = Drr::new(&[1000, 1000], 16);
        q.enqueue(pkt(0, 300, 0), Time::ZERO).unwrap();
        q.enqueue(pkt(1, 700, 1), Time::ZERO).unwrap();
        drain_bytes(&mut q, 2);
        assert_eq!(q.class_bytes_sent(), vec![300, 700]);
    }
}
