//! Queueing disciplines (`tc qdisc` equivalents).
//!
//! The paper's QoS scenario (§2) needs work-conserving, cross-application
//! traffic shaping — "weighted fair queuing \[10\]" — which no single
//! application can implement for itself. These disciplines are used in two
//! places:
//!
//! * the in-kernel software stack baseline (`oskernel::netstack`), where
//!   they model today's `net/sched`, and
//! * the SmartNIC scheduler stage (`nicsim`), where an overlay classifier
//!   assigns classes and these engines execute the per-class scheduling —
//!   the KOPI arrangement.
//!
//! Implemented disciplines: FIFO tail-drop ([`Fifo`]), strict priority
//! ([`Prio`]), token-bucket shaping ([`Tbf`]), deficit round-robin
//! ([`Drr`]), weighted fair queueing ([`Wfq`], start-time fair queueing
//! variant), a two-level hierarchical token bucket ([`Htb`]), RED with
//! ECN marking ([`Red`]), CoDel ([`Codel`]), and a per-hardware-queue
//! bank of WFQ schedulers for multi-queue NICs ([`MultiQueue`]).
//! [`classify`] provides software classification rules (the kernel-side
//! mirror of overlay classifiers) and [`compile`] lowers qdisc
//! configurations to overlay programs for the NIC.

pub mod classify;
pub mod codel;
pub mod compile;
pub mod drr;
pub mod fifo;
pub mod htb;
pub mod mq;
pub mod prio;
pub mod red;
pub mod tbf;
pub mod types;
pub mod wfq;

pub use classify::{ClassMatch, Classifier, ClassifierRule};
pub use codel::{Codel, CodelConfig};
pub use drr::Drr;
pub use fifo::Fifo;
pub use htb::{Htb, HtbClass};
pub use mq::MultiQueue;
pub use prio::Prio;
pub use red::{Red, RedConfig, RedDecision};
pub use tbf::Tbf;
pub use types::{EnqueueError, QPkt, Qdisc, QdiscStats};
pub use wfq::Wfq;
