//! Software packet classification (the kernel-side mirror of overlay
//! classifiers).
//!
//! A [`Classifier`] is an ordered rule list mapping flow attributes —
//! including the *process view* attributes (uid, pid) only an
//! OS-integrated interposition layer has — to scheduler classes. The
//! in-kernel stack evaluates these in software; KOPI lowers the same
//! semantics to an overlay program via [`crate::compile`].

use std::net::Ipv4Addr;

use pkt::{FiveTuple, IpProto};

/// Attributes of a packet/flow presented to the classifier.
#[derive(Clone, Copy, Debug)]
pub struct ClassMatch {
    /// Flow five-tuple, if the packet has one.
    pub tuple: Option<FiveTuple>,
    /// Owning uid (`u32::MAX` = unbound).
    pub uid: u32,
    /// Owning pid (0 = unbound).
    pub pid: u32,
    /// Packet mark.
    pub mark: u64,
    /// DSCP byte.
    pub dscp: u8,
}

impl Default for ClassMatch {
    fn default() -> ClassMatch {
        ClassMatch {
            tuple: None,
            uid: u32::MAX,
            pid: 0,
            mark: 0,
            dscp: 0,
        }
    }
}

impl ClassMatch {
    /// Builds match attributes from a parse-once frame descriptor plus
    /// the process-view attributes only the kernel knows — no byte
    /// access, no re-parse.
    pub fn from_meta(meta: &pkt::FrameMeta, uid: u32, pid: u32) -> ClassMatch {
        ClassMatch {
            tuple: meta.tuple,
            uid,
            pid,
            mark: 0,
            dscp: meta.dscp_ecn,
        }
    }
}

/// One classification rule: all present fields must match.
#[derive(Clone, Debug, Default)]
pub struct ClassifierRule {
    /// Match source IP.
    pub src_ip: Option<Ipv4Addr>,
    /// Match destination IP.
    pub dst_ip: Option<Ipv4Addr>,
    /// Match source port.
    pub src_port: Option<u16>,
    /// Match destination port.
    pub dst_port: Option<u16>,
    /// Match protocol.
    pub proto: Option<IpProto>,
    /// Match owning uid.
    pub uid: Option<u32>,
    /// Match owning pid.
    pub pid: Option<u32>,
    /// Match DSCP.
    pub dscp: Option<u8>,
    /// Class assigned on match.
    pub class: u32,
}

impl ClassifierRule {
    /// Creates a rule assigning `class` with no constraints (matches
    /// everything).
    pub fn any(class: u32) -> ClassifierRule {
        ClassifierRule {
            class,
            ..ClassifierRule::default()
        }
    }

    /// Builder: match on uid.
    pub fn match_uid(mut self, uid: u32) -> Self {
        self.uid = Some(uid);
        self
    }

    /// Builder: match on destination port.
    pub fn match_dst_port(mut self, port: u16) -> Self {
        self.dst_port = Some(port);
        self
    }

    /// Builder: match on source port.
    pub fn match_src_port(mut self, port: u16) -> Self {
        self.src_port = Some(port);
        self
    }

    /// Builder: match on protocol.
    pub fn match_proto(mut self, proto: IpProto) -> Self {
        self.proto = Some(proto);
        self
    }

    /// Builder: match on DSCP.
    pub fn match_dscp(mut self, dscp: u8) -> Self {
        self.dscp = Some(dscp);
        self
    }

    /// Returns `true` if `m` satisfies every present constraint.
    pub fn matches(&self, m: &ClassMatch) -> bool {
        let tuple_ok = |f: &dyn Fn(&FiveTuple) -> bool| match &m.tuple {
            Some(t) => f(t),
            // A rule constraining tuple fields cannot match tuple-less
            // packets (e.g. ARP).
            None => false,
        };
        if let Some(ip) = self.src_ip {
            if !tuple_ok(&|t| t.src_ip == ip) {
                return false;
            }
        }
        if let Some(ip) = self.dst_ip {
            if !tuple_ok(&|t| t.dst_ip == ip) {
                return false;
            }
        }
        if let Some(p) = self.src_port {
            if !tuple_ok(&|t| t.src_port == p) {
                return false;
            }
        }
        if let Some(p) = self.dst_port {
            if !tuple_ok(&|t| t.dst_port == p) {
                return false;
            }
        }
        if let Some(pr) = self.proto {
            if !tuple_ok(&|t| t.proto == pr) {
                return false;
            }
        }
        if let Some(uid) = self.uid {
            if m.uid != uid {
                return false;
            }
        }
        if let Some(pid) = self.pid {
            if m.pid != pid {
                return false;
            }
        }
        if let Some(dscp) = self.dscp {
            if m.dscp != dscp {
                return false;
            }
        }
        true
    }
}

/// An ordered rule list with a default class.
#[derive(Clone, Debug)]
pub struct Classifier {
    rules: Vec<ClassifierRule>,
    default_class: u32,
}

impl Classifier {
    /// Creates a classifier with the given fallback class.
    pub fn new(default_class: u32) -> Classifier {
        Classifier {
            rules: Vec::new(),
            default_class,
        }
    }

    /// Appends a rule (first match wins).
    pub fn push(&mut self, rule: ClassifierRule) {
        self.rules.push(rule);
    }

    /// Returns the rules.
    pub fn rules(&self) -> &[ClassifierRule] {
        &self.rules
    }

    /// Classifies a packet.
    pub fn classify(&self, m: &ClassMatch) -> u32 {
        self.rules
            .iter()
            .find(|r| r.matches(m))
            .map(|r| r.class)
            .unwrap_or(self.default_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn m(tuple: Option<FiveTuple>, uid: u32) -> ClassMatch {
        ClassMatch {
            tuple,
            uid,
            ..ClassMatch::default()
        }
    }

    #[test]
    fn first_match_wins() {
        let mut c = Classifier::new(0);
        c.push(ClassifierRule::any(1).match_uid(1001));
        c.push(ClassifierRule::any(2).match_uid(1001)); // shadowed
        assert_eq!(c.classify(&m(None, 1001)), 1);
    }

    #[test]
    fn default_class_on_no_match() {
        let mut c = Classifier::new(7);
        c.push(ClassifierRule::any(1).match_uid(1001));
        assert_eq!(c.classify(&m(None, 9999)), 7);
    }

    #[test]
    fn tuple_constraints_fail_on_arp() {
        let mut c = Classifier::new(0);
        c.push(ClassifierRule::any(1).match_dst_port(22));
        // ARP has no tuple, so a port rule cannot match it.
        assert_eq!(c.classify(&m(None, 0)), 0);
    }

    #[test]
    fn combined_constraints_all_required() {
        let t = FiveTuple::tcp(addr("10.0.0.1"), 5000, addr("10.0.0.2"), 22);
        let rule = ClassifierRule::any(3)
            .match_dst_port(22)
            .match_proto(IpProto::TCP)
            .match_uid(1001);
        assert!(rule.matches(&m(Some(t), 1001)));
        assert!(!rule.matches(&m(Some(t), 1002))); // wrong uid
        let udp = FiveTuple::udp(addr("10.0.0.1"), 5000, addr("10.0.0.2"), 22);
        assert!(!rule.matches(&m(Some(udp), 1001))); // wrong proto
    }

    #[test]
    fn ip_and_dscp_matching() {
        let t = FiveTuple::udp(addr("192.168.0.5"), 1, addr("10.0.0.1"), 2);
        let mut rule = ClassifierRule::any(4).match_dscp(0xB8);
        rule.src_ip = Some(addr("192.168.0.5"));
        let mut mm = m(Some(t), 0);
        mm.dscp = 0xB8;
        assert!(rule.matches(&mm));
        mm.dscp = 0;
        assert!(!rule.matches(&mm));
    }

    #[test]
    fn process_view_rules_need_binding() {
        // The "process view": unbound traffic (uid = MAX) never matches a
        // uid rule, mirroring why hypervisor-level interposition cannot
        // express such policies.
        let rule = ClassifierRule::any(1).match_uid(1001);
        assert!(!rule.matches(&ClassMatch::default()));
    }
}
