//! CoDel (Controlled Delay) AQM.
//!
//! The modern kernel default (`fq_codel`'s core): instead of queue
//! *length*, CoDel controls queue *sojourn time*. When the minimum
//! sojourn over an interval exceeds the target, it enters a dropping
//! state whose drop spacing shrinks as `interval / sqrt(count)` until
//! delay recovers. Implemented after Nichols & Jacobson (2012); the
//! dropping happens at dequeue, as in the reference pseudocode.

use std::collections::VecDeque;

use sim::{Dur, Time};

use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};

/// CoDel configuration.
#[derive(Clone, Copy, Debug)]
pub struct CodelConfig {
    /// Acceptable standing delay (default 5 ms).
    pub target: Dur,
    /// Sliding window over which the minimum delay must exceed target
    /// before dropping starts (default 100 ms).
    pub interval: Dur,
}

impl Default for CodelConfig {
    fn default() -> CodelConfig {
        CodelConfig {
            target: Dur::from_ms(5),
            interval: Dur::from_ms(100),
        }
    }
}

/// A CoDel queue.
pub struct Codel {
    cfg: CodelConfig,
    queue: VecDeque<QPkt>,
    limit: usize,
    backlog: u64,
    stats: QdiscStats,
    /// Time at which the current above-target episode will trigger
    /// dropping (None = below target).
    first_above_time: Option<Time>,
    /// In the dropping state: when the next drop is scheduled.
    drop_next: Time,
    /// Consecutive drops in the current dropping state.
    count: u32,
    dropping: bool,
    codel_drops: u64,
}

impl Codel {
    /// Creates a CoDel queue holding at most `limit` packets.
    pub fn new(cfg: CodelConfig, limit: usize) -> Codel {
        Codel {
            cfg,
            queue: VecDeque::new(),
            limit,
            backlog: 0,
            stats: QdiscStats::default(),
            first_above_time: None,
            drop_next: Time::ZERO,
            count: 0,
            dropping: false,
            codel_drops: 0,
        }
    }

    /// Returns packets dropped by the CoDel control law (excluding tail
    /// drops).
    pub fn codel_drops(&self) -> u64 {
        self.codel_drops
    }

    fn control_law(&self, t: Time) -> Time {
        t + Dur::from_ns_f64(self.cfg.interval.as_ns_f64() / (self.count.max(1) as f64).sqrt())
    }

    /// Pops the head and, if its sojourn exceeds target, manages the
    /// above-target episode. Returns (packet, ok_to_deliver).
    fn do_dequeue(&mut self, now: Time) -> Option<(QPkt, bool)> {
        let pkt = self.queue.pop_front()?;
        self.backlog -= u64::from(pkt.len);
        let sojourn = now.saturating_since(pkt.arrival);
        if sojourn < self.cfg.target || self.backlog < 1500 {
            self.first_above_time = None;
            Some((pkt, true))
        } else {
            match self.first_above_time {
                None => {
                    self.first_above_time = Some(now + self.cfg.interval);
                    Some((pkt, true))
                }
                Some(fat) => Some((pkt, now < fat)),
            }
        }
    }

    fn deliver(&mut self, pkt: QPkt) -> QPkt {
        self.stats.dequeued += 1;
        self.stats.bytes_dequeued += u64::from(pkt.len);
        pkt
    }
}

impl Qdisc for Codel {
    fn enqueue(&mut self, pkt: QPkt, _now: Time) -> Result<(), EnqueueError> {
        if self.queue.len() >= self.limit {
            self.stats.dropped += 1;
            return Err(EnqueueError::QueueFull);
        }
        self.backlog += u64::from(pkt.len);
        self.stats.enqueued += 1;
        self.stats.bytes_enqueued += u64::from(pkt.len);
        self.queue.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self, now: Time) -> Option<QPkt> {
        if self.dropping {
            // In the dropping state: drop heads on schedule until the
            // delay recovers.
            loop {
                let (pkt, ok) = self.do_dequeue(now)?;
                if ok {
                    self.dropping = false;
                    return Some(self.deliver(pkt));
                }
                if now >= self.drop_next {
                    self.codel_drops += 1;
                    self.stats.dropped += 1;
                    self.count += 1;
                    self.drop_next = self.control_law(self.drop_next);
                    continue;
                }
                return Some(self.deliver(pkt));
            }
        }
        let (pkt, ok) = self.do_dequeue(now)?;
        if !ok {
            // Enter the dropping state: drop this packet and schedule the
            // next.
            self.codel_drops += 1;
            self.stats.dropped += 1;
            self.dropping = true;
            // Start from a small count if we recently dropped, per the
            // reference; simplified to restart at 1.
            self.count = 1;
            self.drop_next = self.control_law(now);
            // Deliver the next packet instead.
            let (pkt2, _) = self.do_dequeue(now)?;
            return Some(self.deliver(pkt2));
        }
        let _ = pkt.arrival;
        Some(self.deliver(pkt))
    }

    fn next_ready(&self, _now: Time) -> Option<Time> {
        None
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_delay_traffic_is_untouched() {
        let mut q = Codel::new(CodelConfig::default(), 1024);
        let mut now = Time::ZERO;
        for i in 0..1000 {
            q.enqueue(QPkt::new(i, 1500, now), now).unwrap();
            now += Dur::from_us(100);
            assert!(q.dequeue(now).is_some());
        }
        assert_eq!(q.codel_drops(), 0);
    }

    #[test]
    fn standing_queue_triggers_drops() {
        let mut q = Codel::new(CodelConfig::default(), 4096);
        // Offered 2x drain rate: a standing queue builds.
        let mut now = Time::ZERO;
        let mut id = 0;
        let mut delivered = 0u64;
        for _ in 0..20_000 {
            // Two arrivals per service.
            for _ in 0..2 {
                let _ = q.enqueue(QPkt::new(id, 1500, now), now);
                id += 1;
            }
            if q.dequeue(now).is_some() {
                delivered += 1;
            }
            now += Dur::from_us(120); // ~100 Gbps service of 1500B
        }
        assert!(
            q.codel_drops() > 0,
            "CoDel should engage on a standing queue"
        );
        assert!(delivered > 0);
    }

    #[test]
    fn sojourn_recovery_exits_dropping_state() {
        let cfg = CodelConfig::default();
        let mut q = Codel::new(cfg, 4096);
        // Build delay: fill then stall.
        for i in 0..200 {
            q.enqueue(QPkt::new(i, 1500, Time::ZERO), Time::ZERO)
                .unwrap();
        }
        // Dequeue slowly starting 150 ms later: the sojourn stays above
        // target for longer than one interval, so dropping engages.
        let mut now = Time::from_ms(150);
        let mut drops_seen = 0;
        for _ in 0..200 {
            if q.dequeue(now).is_none() {
                break;
            }
            drops_seen = q.codel_drops();
            now += Dur::from_ms(1);
        }
        assert!(drops_seen > 0);
        // Fresh low-latency traffic flows clean again.
        let before = q.codel_drops();
        for i in 1000..1100 {
            q.enqueue(QPkt::new(i, 1500, now), now).unwrap();
            now += Dur::from_us(50);
            q.dequeue(now);
        }
        assert_eq!(q.codel_drops(), before, "no drops after recovery");
    }

    #[test]
    fn tail_drop_still_applies() {
        let mut q = Codel::new(CodelConfig::default(), 2);
        q.enqueue(QPkt::new(0, 100, Time::ZERO), Time::ZERO)
            .unwrap();
        q.enqueue(QPkt::new(1, 100, Time::ZERO), Time::ZERO)
            .unwrap();
        assert_eq!(
            q.enqueue(QPkt::new(2, 100, Time::ZERO), Time::ZERO),
            Err(EnqueueError::QueueFull)
        );
    }

    #[test]
    fn conservation_under_codel() {
        // delivered + dropped == enqueued (limit high enough that no
        // tail drops occur, so every drop is CoDel's).
        let mut q = Codel::new(CodelConfig::default(), 16_384);
        let mut now = Time::ZERO;
        let mut id = 0u64;
        let mut delivered = 0u64;
        for _ in 0..5000 {
            for _ in 0..2 {
                if q.enqueue(QPkt::new(id, 1500, now), now).is_ok() {
                    id += 1;
                }
            }
            if q.dequeue(now).is_some() {
                delivered += 1;
            }
            now += Dur::from_us(120);
        }
        while q.dequeue(now).is_some() {
            delivered += 1;
            now += Dur::from_us(120);
        }
        let s = q.stats();
        assert_eq!(s.enqueued, delivered + s.dropped);
        assert!(q.is_empty());
    }
}
