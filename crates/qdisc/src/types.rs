//! Common qdisc types and the [`Qdisc`] trait.

use std::fmt;

use sim::Time;

/// A scheduled packet handle: qdiscs schedule metadata, not buffers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QPkt {
    /// Unique packet id (for tracing and reordering checks).
    pub id: u64,
    /// Frame length in bytes.
    pub len: u32,
    /// Scheduler class (assigned by a classifier or overlay program).
    pub class: u32,
    /// Arrival instant at the qdisc.
    pub arrival: Time,
}

impl QPkt {
    /// Creates a class-0 packet.
    pub fn new(id: u64, len: u32, arrival: Time) -> QPkt {
        QPkt {
            id,
            len,
            class: 0,
            arrival,
        }
    }

    /// Returns a copy assigned to `class`.
    pub fn with_class(self, class: u32) -> QPkt {
        QPkt { class, ..self }
    }
}

/// Why an enqueue was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnqueueError {
    /// The queue (or the packet's band/class queue) is full; the packet
    /// is dropped at the tail.
    QueueFull,
    /// The packet's class does not exist in this discipline.
    NoSuchClass {
        /// The offending class.
        class: u32,
    },
}

impl fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnqueueError::QueueFull => write!(f, "queue full"),
            EnqueueError::NoSuchClass { class } => write!(f, "no such class {class}"),
        }
    }
}

impl std::error::Error for EnqueueError {}

impl EnqueueError {
    /// Maps this refusal onto the stack-wide telemetry drop vocabulary
    /// (both variants are tail-drop-at-the-queue from the frame's point
    /// of view).
    pub fn cause(self) -> telemetry::DropCause {
        telemetry::DropCause::QdiscFull
    }
}

/// Counters every discipline maintains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QdiscStats {
    /// Packets accepted.
    pub enqueued: u64,
    /// Packets released.
    pub dequeued: u64,
    /// Packets dropped at enqueue.
    pub dropped: u64,
    /// Bytes accepted.
    pub bytes_enqueued: u64,
    /// Bytes released.
    pub bytes_dequeued: u64,
}

impl QdiscStats {
    /// Registers every counter into `reg` under `{prefix}.*` keys — the
    /// unified-registry replacement for reading this struct ad hoc.
    pub fn fill_registry(&self, reg: &mut telemetry::Registry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.enqueued"), self.enqueued);
        reg.set_counter(&format!("{prefix}.dequeued"), self.dequeued);
        reg.set_counter(&format!("{prefix}.dropped"), self.dropped);
        reg.set_counter(&format!("{prefix}.bytes_enqueued"), self.bytes_enqueued);
        reg.set_counter(&format!("{prefix}.bytes_dequeued"), self.bytes_dequeued);
    }
}

/// A queueing discipline.
///
/// Time is explicit: shaping disciplines (e.g. [`crate::Tbf`]) may hold
/// packets until tokens accrue, reporting readiness via
/// [`Qdisc::next_ready`].
pub trait Qdisc {
    /// Offers a packet at instant `now`.
    fn enqueue(&mut self, pkt: QPkt, now: Time) -> Result<(), EnqueueError>;

    /// Releases the next packet eligible at `now`, if any.
    fn dequeue(&mut self, now: Time) -> Option<QPkt>;

    /// If the queue is non-empty but nothing is eligible at `now`,
    /// returns the earliest instant at which [`Qdisc::dequeue`] will
    /// succeed. Returns `None` if the queue is empty or a packet is
    /// already eligible.
    fn next_ready(&self, now: Time) -> Option<Time>;

    /// Returns the number of queued packets.
    fn len(&self) -> usize;

    /// Returns `true` when no packets are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the queued bytes.
    fn backlog_bytes(&self) -> u64;

    /// Returns accumulated counters.
    fn stats(&self) -> QdiscStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpkt_with_class() {
        let p = QPkt::new(1, 100, Time::ZERO).with_class(3);
        assert_eq!(p.class, 3);
        assert_eq!(p.len, 100);
    }

    #[test]
    fn error_display() {
        assert_eq!(EnqueueError::QueueFull.to_string(), "queue full");
        assert_eq!(
            EnqueueError::NoSuchClass { class: 9 }.to_string(),
            "no such class 9"
        );
    }
}
