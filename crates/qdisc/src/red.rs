//! Random Early Detection with ECN marking.
//!
//! §4.2 puts congestion control in the on-SmartNIC dataplane; the
//! standard mechanism pairing is an AQM that marks ECN at the bottleneck
//! queue plus a sender reaction (see `nicsim::cc`). This RED follows the
//! classic Floyd/Jacobson design: an EWMA of queue length, a linear
//! marking ramp between two thresholds, and hard drop above the maximum.

use sim::Time;

use crate::fifo::Fifo;
use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};

/// What RED decided about an accepted packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RedDecision {
    /// Queued unmarked.
    Accept,
    /// Queued and ECN-marked (congestion experienced).
    Mark,
}

/// RED configuration.
#[derive(Clone, Copy, Debug)]
pub struct RedConfig {
    /// Average queue length (packets) where marking begins.
    pub min_th: f64,
    /// Average queue length where everything is marked/dropped.
    pub max_th: f64,
    /// Marking probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the queue average.
    pub weight: f64,
}

impl Default for RedConfig {
    fn default() -> RedConfig {
        RedConfig {
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            weight: 0.002,
        }
    }
}

/// A RED/ECN queue.
pub struct Red {
    cfg: RedConfig,
    inner: Fifo,
    avg: f64,
    /// Deterministic counter-based marking (replaces the RNG: mark every
    /// `1/p`-th eligible packet), keeping runs reproducible.
    accum: f64,
    marked: u64,
    hard_drops: u64,
}

impl Red {
    /// Creates a RED queue over a FIFO of `limit_pkts`.
    pub fn new(cfg: RedConfig, limit_pkts: usize) -> Red {
        Red {
            cfg,
            inner: Fifo::new(limit_pkts),
            avg: 0.0,
            accum: 0.0,
            marked: 0,
            hard_drops: 0,
        }
    }

    /// Returns (packets marked, hard drops above max threshold).
    pub fn counters(&self) -> (u64, u64) {
        (self.marked, self.hard_drops)
    }

    /// Returns the current averaged queue length.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    /// Offers a packet, returning whether it was ECN-marked.
    pub fn enqueue_ecn(&mut self, pkt: QPkt, now: Time) -> Result<RedDecision, EnqueueError> {
        self.avg = (1.0 - self.cfg.weight) * self.avg + self.cfg.weight * self.inner.len() as f64;
        if self.avg >= self.cfg.max_th {
            self.hard_drops += 1;
            // Count it against the stats of the inner queue by refusing.
            return Err(EnqueueError::QueueFull);
        }
        let mut decision = RedDecision::Accept;
        if self.avg > self.cfg.min_th {
            let p =
                self.cfg.max_p * (self.avg - self.cfg.min_th) / (self.cfg.max_th - self.cfg.min_th);
            self.accum += p;
            if self.accum >= 1.0 {
                self.accum -= 1.0;
                decision = RedDecision::Mark;
                self.marked += 1;
            }
        } else {
            self.accum = 0.0;
        }
        self.inner.enqueue(pkt, now)?;
        Ok(decision)
    }
}

impl Qdisc for Red {
    fn enqueue(&mut self, pkt: QPkt, now: Time) -> Result<(), EnqueueError> {
        self.enqueue_ecn(pkt, now).map(|_| ())
    }

    fn dequeue(&mut self, now: Time) -> Option<QPkt> {
        self.inner.dequeue(now)
    }

    fn next_ready(&self, now: Time) -> Option<Time> {
        self.inner.next_ready(now)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn backlog_bytes(&self) -> u64 {
        self.inner.backlog_bytes()
    }

    fn stats(&self) -> QdiscStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64) -> QPkt {
        QPkt::new(id, 1500, Time::ZERO)
    }

    #[test]
    fn short_queue_never_marks() {
        let mut q = Red::new(RedConfig::default(), 64);
        for i in 0..100 {
            let d = q.enqueue_ecn(pkt(i), Time::ZERO).unwrap();
            assert_eq!(d, RedDecision::Accept);
            q.dequeue(Time::ZERO);
        }
        assert_eq!(q.counters(), (0, 0));
    }

    #[test]
    fn sustained_backlog_marks_some() {
        let mut q = Red::new(RedConfig::default(), 1024);
        // Build and hold a queue of ~10 (between thresholds).
        let mut marked = 0;
        let mut id = 0;
        for _ in 0..10 {
            q.enqueue_ecn(pkt(id), Time::ZERO).unwrap();
            id += 1;
        }
        for _ in 0..5000 {
            if let Ok(RedDecision::Mark) = q.enqueue_ecn(pkt(id), Time::ZERO) {
                marked += 1;
            }
            id += 1;
            q.dequeue(Time::ZERO);
        }
        assert!(marked > 10, "marked {marked}");
        assert!(q.avg_queue() > RedConfig::default().min_th);
    }

    #[test]
    fn heavy_overload_hard_drops() {
        let cfg = RedConfig {
            weight: 0.5, // fast-moving average for the test
            ..RedConfig::default()
        };
        let mut q = Red::new(cfg, 1024);
        let mut dropped = 0;
        for i in 0..200 {
            if q.enqueue_ecn(pkt(i), Time::ZERO).is_err() {
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert!(q.counters().1 > 0);
    }

    #[test]
    fn marking_rate_tracks_ramp() {
        // Hold the instantaneous queue near max_th: marking probability
        // approaches max_p.
        let cfg = RedConfig {
            min_th: 5.0,
            max_th: 50.0,
            max_p: 0.2,
            weight: 0.05,
        };
        let mut q = Red::new(cfg, 4096);
        let mut id = 0;
        // Hold backlog at ~40.
        for _ in 0..40 {
            q.enqueue_ecn(pkt(id), Time::ZERO).unwrap();
            id += 1;
        }
        let mut marked = 0;
        let trials = 4000;
        for _ in 0..trials {
            if let Ok(RedDecision::Mark) = q.enqueue_ecn(pkt(id), Time::ZERO) {
                marked += 1;
            }
            id += 1;
            q.dequeue(Time::ZERO);
        }
        let rate = marked as f64 / trials as f64;
        // Expected ~max_p * (40-5)/(50-5) ≈ 0.155.
        assert!((0.10..0.22).contains(&rate), "marking rate {rate}");
    }

    #[test]
    fn qdisc_trait_passthrough() {
        let mut q = Red::new(RedConfig::default(), 8);
        q.enqueue(pkt(1), Time::ZERO).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.backlog_bytes(), 1500);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().id, 1);
        assert!(q.next_ready(Time::ZERO).is_none());
    }
}
