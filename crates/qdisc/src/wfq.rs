//! Weighted fair queueing (start-time fair queueing variant).
//!
//! The §2 QoS scenario cites Demers/Keshav/Shenker fair queueing \[10\]:
//! Alice wants the game traffic of each user shaped to a fair share that
//! *no application can compute for itself*, because fairness is a function
//! of all competing sources. This implementation uses per-class virtual
//! finish tags over a global virtual clock (SFQ's start-tag advance),
//! giving long-run throughput proportional to class weight among
//! backlogged classes, and work conservation when classes go idle.

use std::collections::VecDeque;

use sim::Time;

use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};

struct ClassState {
    queue: VecDeque<(QPkt, f64)>, // (packet, finish tag)
    weight: f64,
    last_finish: f64,
    backlog: u64,
    sent: u64,
}

/// Weighted fair queueing across a fixed set of classes.
pub struct Wfq {
    classes: Vec<ClassState>,
    vtime: f64,
    per_class_limit: usize,
    stats: QdiscStats,
}

impl Wfq {
    /// Creates a scheduler with one weight per class.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is non-positive.
    pub fn new(weights: &[f64], per_class_limit: usize) -> Wfq {
        assert!(!weights.is_empty(), "need at least one class");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        Wfq {
            classes: weights
                .iter()
                .map(|&w| ClassState {
                    queue: VecDeque::new(),
                    weight: w,
                    last_finish: 0.0,
                    backlog: 0,
                    sent: 0,
                })
                .collect(),
            vtime: 0.0,
            per_class_limit,
            stats: QdiscStats::default(),
        }
    }

    /// Returns the number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Returns bytes dequeued so far per class.
    pub fn class_bytes_sent(&self) -> Vec<u64> {
        self.classes.iter().map(|c| c.sent).collect()
    }

    /// Drains every queued packet without serving it — the device-crash
    /// path, where queued frames are lost, not transmitted. Packets come
    /// back in class order (FIFO within each class) so the caller can
    /// account each loss deterministically; they are counted as drops,
    /// not dequeues, and virtual-time state is left untouched (the whole
    /// scheduler is normally rebuilt right after).
    pub fn purge(&mut self) -> Vec<QPkt> {
        let mut purged = Vec::new();
        for class in self.classes.iter_mut() {
            while let Some((pkt, _)) = class.queue.pop_front() {
                class.backlog -= u64::from(pkt.len);
                self.stats.dropped += 1;
                purged.push(pkt);
            }
        }
        purged
    }
}

impl Qdisc for Wfq {
    fn enqueue(&mut self, pkt: QPkt, _now: Time) -> Result<(), EnqueueError> {
        let idx = pkt.class as usize;
        if idx >= self.classes.len() {
            self.stats.dropped += 1;
            return Err(EnqueueError::NoSuchClass { class: pkt.class });
        }
        let vtime = self.vtime;
        let class = &mut self.classes[idx];
        if class.queue.len() >= self.per_class_limit {
            self.stats.dropped += 1;
            return Err(EnqueueError::QueueFull);
        }
        // Start tag: resume where the class left off, or the current
        // virtual time if it has been idle (so returning classes don't
        // get credit for idle periods).
        let start = class.last_finish.max(vtime);
        let finish = start + f64::from(pkt.len) / class.weight;
        class.last_finish = finish;
        class.queue.push_back((pkt, finish));
        class.backlog += u64::from(pkt.len);
        self.stats.enqueued += 1;
        self.stats.bytes_enqueued += u64::from(pkt.len);
        Ok(())
    }

    fn dequeue(&mut self, _now: Time) -> Option<QPkt> {
        // Serve the head with the minimum finish tag.
        let (idx, finish) = self
            .classes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.queue.front().map(|(_, f)| (i, *f)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite tags"))?;
        let class = &mut self.classes[idx];
        let (pkt, _) = class.queue.pop_front().expect("head exists");
        class.backlog -= u64::from(pkt.len);
        class.sent += u64::from(pkt.len);
        // Advance the virtual clock to the served packet's finish tag.
        self.vtime = self.vtime.max(finish);
        self.stats.dequeued += 1;
        self.stats.bytes_dequeued += u64::from(pkt.len);
        Some(pkt)
    }

    fn next_ready(&self, _now: Time) -> Option<Time> {
        None
    }

    fn len(&self) -> usize {
        self.classes.iter().map(|c| c.queue.len()).sum()
    }

    fn backlog_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.backlog).sum()
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, len: u32, class: u32) -> QPkt {
        QPkt::new(id, len, Time::ZERO).with_class(class)
    }

    #[test]
    fn equal_weights_interleave_fairly() {
        let mut q = Wfq::new(&[1.0, 1.0], 1024);
        for i in 0..50 {
            q.enqueue(pkt(i, 1000, 0), Time::ZERO).unwrap();
            q.enqueue(pkt(100 + i, 1000, 1), Time::ZERO).unwrap();
        }
        let mut sent = [0u64; 2];
        for _ in 0..50 {
            let p = q.dequeue(Time::ZERO).unwrap();
            sent[p.class as usize] += u64::from(p.len);
        }
        let diff = (sent[0] as i64 - sent[1] as i64).abs();
        assert!(diff <= 1000, "shares {sent:?}");
    }

    #[test]
    fn weights_drive_shares() {
        // Weights 4:1 with equal offered load => ~4:1 service.
        let mut q = Wfq::new(&[4.0, 1.0], 4096);
        for i in 0..500 {
            q.enqueue(pkt(i, 500, 0), Time::ZERO).unwrap();
            q.enqueue(pkt(10_000 + i, 500, 1), Time::ZERO).unwrap();
        }
        let mut sent = [0u64; 2];
        for _ in 0..400 {
            let p = q.dequeue(Time::ZERO).unwrap();
            sent[p.class as usize] += u64::from(p.len);
        }
        let ratio = sent[0] as f64 / sent[1] as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio} from {sent:?}");
    }

    #[test]
    fn different_packet_sizes_fair_in_bytes() {
        // Class 0 sends 1500B frames, class 1 sends 100B frames; byte
        // shares should still converge to the weight ratio (1:1).
        let mut q = Wfq::new(&[1.0, 1.0], 8192);
        for i in 0..200 {
            q.enqueue(pkt(i, 1500, 0), Time::ZERO).unwrap();
        }
        for i in 0..3000 {
            q.enqueue(pkt(10_000 + i, 100, 1), Time::ZERO).unwrap();
        }
        let mut sent = [0u64; 2];
        for _ in 0..1500 {
            let p = q.dequeue(Time::ZERO).unwrap();
            sent[p.class as usize] += u64::from(p.len);
        }
        let ratio = sent[0] as f64 / sent[1] as f64;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio} from {sent:?}");
    }

    #[test]
    fn work_conserving() {
        let mut q = Wfq::new(&[1.0, 1.0], 64);
        for i in 0..10 {
            q.enqueue(pkt(i, 500, 1), Time::ZERO).unwrap();
        }
        for _ in 0..10 {
            assert_eq!(q.dequeue(Time::ZERO).unwrap().class, 1);
        }
        assert!(q.dequeue(Time::ZERO).is_none());
    }

    #[test]
    fn idle_class_gets_no_credit() {
        let mut q = Wfq::new(&[1.0, 1.0], 4096);
        // Class 0 sends alone for a while.
        for i in 0..100 {
            q.enqueue(pkt(i, 1000, 0), Time::ZERO).unwrap();
        }
        for _ in 0..100 {
            q.dequeue(Time::ZERO);
        }
        // Class 1 wakes up; both now offer load. Class 1 must NOT get a
        // catch-up burst: service from here should be ~1:1.
        for i in 0..100 {
            q.enqueue(pkt(200 + i, 1000, 0), Time::ZERO).unwrap();
            q.enqueue(pkt(400 + i, 1000, 1), Time::ZERO).unwrap();
        }
        let mut sent = [0u64; 2];
        for _ in 0..100 {
            let p = q.dequeue(Time::ZERO).unwrap();
            sent[p.class as usize] += u64::from(p.len);
        }
        let diff = (sent[0] as i64 - sent[1] as i64).abs();
        assert!(diff <= 1000, "post-idle shares {sent:?}");
    }

    #[test]
    fn fifo_within_class() {
        let mut q = Wfq::new(&[1.0], 64);
        for i in 0..5 {
            q.enqueue(pkt(i, 100, 0), Time::ZERO).unwrap();
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.dequeue(Time::ZERO).map(|p| p.id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unknown_class_rejected() {
        let mut q = Wfq::new(&[1.0], 8);
        assert_eq!(
            q.enqueue(pkt(0, 100, 3), Time::ZERO),
            Err(EnqueueError::NoSuchClass { class: 3 })
        );
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let _ = Wfq::new(&[1.0, 0.0], 8);
    }

    #[test]
    fn purge_drains_everything_as_drops() {
        let mut q = Wfq::new(&[1.0, 1.0], 64);
        q.enqueue(pkt(1, 100, 0), Time::ZERO).unwrap();
        q.enqueue(pkt(2, 200, 1), Time::ZERO).unwrap();
        q.enqueue(pkt(3, 300, 0), Time::ZERO).unwrap();
        let purged = q.purge();
        // Class order, FIFO within class.
        assert_eq!(purged.iter().map(|p| p.id).collect::<Vec<_>>(), [1, 3, 2]);
        assert_eq!(q.len(), 0);
        assert_eq!(q.backlog_bytes(), 0);
        let s = q.stats();
        assert_eq!(s.dropped, 3);
        assert_eq!(s.dequeued, 0);
        assert!(q.dequeue(Time::ZERO).is_none());
    }
}
