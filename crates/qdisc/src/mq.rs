//! Multi-queue egress: one independent scheduler per NIC TX queue.
//!
//! Hardware multi-queue NICs do not run one global scheduler — each TX
//! queue arbitrates independently and the queues are served round-robin
//! by the DMA engine (Linux models this as the `mq` qdisc with a child
//! discipline per hardware queue). [`MultiQueue`] mirrors that shape: a
//! fixed array of [`Wfq`] children, per-queue enqueue keyed by the RSS
//! queue id, and a deterministic rotating round-robin dequeue across
//! queues so no queue can starve another. With a single queue the
//! behaviour is byte-identical to a bare [`Wfq`].

use sim::Time;

use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};
use crate::wfq::Wfq;

/// A bank of per-TX-queue [`Wfq`] schedulers with round-robin service.
pub struct MultiQueue {
    queues: Vec<Wfq>,
    weights: Vec<f64>,
    per_class_limit: usize,
    /// Next queue the round-robin pointer will offer service to.
    next_rr: usize,
}

impl MultiQueue {
    /// Creates `num_queues` independent WFQ schedulers, each with the
    /// same per-class `weights` and `per_class_limit`.
    ///
    /// # Panics
    ///
    /// Panics if `num_queues` is zero, or on the same conditions as
    /// [`Wfq::new`] (empty or non-positive weights).
    pub fn new(num_queues: usize, weights: &[f64], per_class_limit: usize) -> MultiQueue {
        assert!(num_queues > 0, "need at least one TX queue");
        MultiQueue {
            queues: (0..num_queues)
                .map(|_| Wfq::new(weights, per_class_limit))
                .collect(),
            weights: weights.to_vec(),
            per_class_limit,
            next_rr: 0,
        }
    }

    /// Returns the number of TX queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Returns the number of classes each queue schedules.
    pub fn num_classes(&self) -> usize {
        self.queues[0].num_classes()
    }

    /// Replaces every queue's scheduler with fresh WFQ state using
    /// `weights` — the multi-queue analogue of swapping in a new [`Wfq`].
    /// Queued packets are discarded, exactly like the single-queue swap.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Wfq::new`].
    pub fn reconfigure(&mut self, weights: &[f64]) {
        let n = self.queues.len();
        self.queues = (0..n)
            .map(|_| Wfq::new(weights, self.per_class_limit))
            .collect();
        self.weights = weights.to_vec();
        self.next_rr = 0;
    }

    /// Returns the configured per-class weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Offers `pkt` to TX queue `queue`.
    pub fn enqueue_on(&mut self, queue: usize, pkt: QPkt, now: Time) -> Result<(), EnqueueError> {
        assert!(queue < self.queues.len(), "TX queue {queue} out of range");
        self.queues[queue].enqueue(pkt, now)
    }

    /// Releases the next packet under rotating round-robin across queues:
    /// the pointer starts at the queue after the last served one, and the
    /// first non-empty queue's WFQ winner departs. Deterministic for a
    /// given enqueue history.
    pub fn dequeue_rr(&mut self, now: Time) -> Option<(usize, QPkt)> {
        let n = self.queues.len();
        for off in 0..n {
            let q = (self.next_rr + off) % n;
            if let Some(pkt) = self.queues[q].dequeue(now) {
                self.next_rr = (q + 1) % n;
                return Some((q, pkt));
            }
        }
        None
    }

    /// Bytes dequeued so far per class, summed across queues (the
    /// cross-queue analogue of [`Wfq::class_bytes_sent`]).
    pub fn class_bytes_sent(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.num_classes()];
        for q in &self.queues {
            for (i, b) in q.class_bytes_sent().into_iter().enumerate() {
                totals[i] += b;
            }
        }
        totals
    }

    /// Queued packets on one queue.
    pub fn queue_len(&self, queue: usize) -> usize {
        self.queues[queue].len()
    }

    /// Drains every queued packet across all queues without serving them
    /// (see [`Wfq::purge`]): queue order, then class order, then FIFO —
    /// deterministic, so a crash loses the same frames on every replay.
    pub fn purge(&mut self) -> Vec<QPkt> {
        let mut purged = Vec::new();
        for q in self.queues.iter_mut() {
            purged.extend(q.purge());
        }
        purged
    }
}

impl Qdisc for MultiQueue {
    /// Single-queue-compatible enqueue: offers to queue 0. Multi-queue
    /// callers should use [`MultiQueue::enqueue_on`].
    fn enqueue(&mut self, pkt: QPkt, now: Time) -> Result<(), EnqueueError> {
        self.enqueue_on(0, pkt, now)
    }

    fn dequeue(&mut self, now: Time) -> Option<QPkt> {
        self.dequeue_rr(now).map(|(_, pkt)| pkt)
    }

    fn next_ready(&self, _now: Time) -> Option<Time> {
        None
    }

    fn len(&self) -> usize {
        self.queues.iter().map(Qdisc::len).sum()
    }

    fn backlog_bytes(&self) -> u64 {
        self.queues.iter().map(Qdisc::backlog_bytes).sum()
    }

    fn stats(&self) -> QdiscStats {
        let mut total = QdiscStats::default();
        for q in &self.queues {
            let s = q.stats();
            total.enqueued += s.enqueued;
            total.dequeued += s.dequeued;
            total.dropped += s.dropped;
            total.bytes_enqueued += s.bytes_enqueued;
            total.bytes_dequeued += s.bytes_dequeued;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, len: u32, class: u32) -> QPkt {
        QPkt::new(id, len, Time::ZERO).with_class(class)
    }

    #[test]
    fn single_queue_matches_bare_wfq() {
        let mut mq = MultiQueue::new(1, &[2.0, 1.0], 64);
        let mut wfq = Wfq::new(&[2.0, 1.0], 64);
        for i in 0..40 {
            let p = pkt(i, 600, (i % 2) as u32);
            mq.enqueue(p, Time::ZERO).unwrap();
            wfq.enqueue(p, Time::ZERO).unwrap();
        }
        loop {
            let a = mq.dequeue(Time::ZERO);
            let b = wfq.dequeue(Time::ZERO);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn round_robin_serves_all_queues() {
        let mut mq = MultiQueue::new(4, &[1.0], 64);
        for q in 0..4 {
            for i in 0..3 {
                mq.enqueue_on(q, pkt(q as u64 * 10 + i, 100, 0), Time::ZERO)
                    .unwrap();
            }
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| mq.dequeue_rr(Time::ZERO).map(|(q, _)| q)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_empty_queues() {
        let mut mq = MultiQueue::new(3, &[1.0], 64);
        mq.enqueue_on(2, pkt(1, 100, 0), Time::ZERO).unwrap();
        mq.enqueue_on(2, pkt(2, 100, 0), Time::ZERO).unwrap();
        assert_eq!(mq.dequeue_rr(Time::ZERO).unwrap(), (2, pkt(1, 100, 0)));
        assert_eq!(mq.dequeue_rr(Time::ZERO).unwrap(), (2, pkt(2, 100, 0)));
        assert!(mq.dequeue_rr(Time::ZERO).is_none());
    }

    #[test]
    fn stats_aggregate_across_queues() {
        let mut mq = MultiQueue::new(2, &[1.0], 1);
        mq.enqueue_on(0, pkt(1, 100, 0), Time::ZERO).unwrap();
        mq.enqueue_on(1, pkt(2, 200, 0), Time::ZERO).unwrap();
        // Per-class limit 1: second enqueue on queue 0 drops.
        assert!(mq.enqueue_on(0, pkt(3, 100, 0), Time::ZERO).is_err());
        let s = mq.stats();
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.bytes_enqueued, 300);
        assert_eq!(mq.len(), 2);
        assert_eq!(mq.backlog_bytes(), 300);
    }

    #[test]
    fn reconfigure_replaces_all_queues() {
        let mut mq = MultiQueue::new(2, &[1.0], 8);
        mq.enqueue_on(1, pkt(1, 100, 0), Time::ZERO).unwrap();
        mq.reconfigure(&[1.0, 3.0]);
        assert_eq!(mq.len(), 0, "swap discards queued state");
        assert_eq!(mq.num_classes(), 2);
        assert_eq!(mq.weights(), &[1.0, 3.0]);
        mq.enqueue_on(1, pkt(2, 100, 1), Time::ZERO).unwrap();
        assert_eq!(mq.dequeue(Time::ZERO).unwrap().id, 2);
    }

    #[test]
    #[should_panic(expected = "at least one TX queue")]
    fn zero_queues_rejected() {
        let _ = MultiQueue::new(0, &[1.0], 8);
    }
}
