//! Tail-drop FIFO (`pfifo`).

use std::collections::VecDeque;

use sim::Time;

use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};

/// A bounded FIFO queue with tail drop.
#[derive(Clone, Debug)]
pub struct Fifo {
    queue: VecDeque<QPkt>,
    limit_pkts: usize,
    backlog: u64,
    stats: QdiscStats,
}

impl Fifo {
    /// Creates a FIFO holding at most `limit_pkts` packets.
    ///
    /// # Panics
    ///
    /// Panics if `limit_pkts` is zero.
    pub fn new(limit_pkts: usize) -> Fifo {
        assert!(limit_pkts > 0, "FIFO needs capacity");
        Fifo {
            queue: VecDeque::with_capacity(limit_pkts.min(4096)),
            limit_pkts,
            backlog: 0,
            stats: QdiscStats::default(),
        }
    }

    /// Returns the configured packet limit.
    pub fn limit(&self) -> usize {
        self.limit_pkts
    }

    /// Peeks at the head packet.
    pub fn peek(&self) -> Option<&QPkt> {
        self.queue.front()
    }
}

impl Qdisc for Fifo {
    fn enqueue(&mut self, pkt: QPkt, _now: Time) -> Result<(), EnqueueError> {
        if self.queue.len() >= self.limit_pkts {
            self.stats.dropped += 1;
            return Err(EnqueueError::QueueFull);
        }
        self.backlog += u64::from(pkt.len);
        self.stats.enqueued += 1;
        self.stats.bytes_enqueued += u64::from(pkt.len);
        self.queue.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self, _now: Time) -> Option<QPkt> {
        let pkt = self.queue.pop_front()?;
        self.backlog -= u64::from(pkt.len);
        self.stats.dequeued += 1;
        self.stats.bytes_dequeued += u64::from(pkt.len);
        Some(pkt)
    }

    fn next_ready(&self, _now: Time) -> Option<Time> {
        // A non-empty FIFO is always immediately ready.
        None
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = Fifo::new(10);
        for i in 0..5 {
            q.enqueue(QPkt::new(i, 100, Time::ZERO), Time::ZERO)
                .unwrap();
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.dequeue(Time::ZERO).map(|p| p.id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tail_drop_at_limit() {
        let mut q = Fifo::new(2);
        q.enqueue(QPkt::new(0, 10, Time::ZERO), Time::ZERO).unwrap();
        q.enqueue(QPkt::new(1, 10, Time::ZERO), Time::ZERO).unwrap();
        assert_eq!(
            q.enqueue(QPkt::new(2, 10, Time::ZERO), Time::ZERO),
            Err(EnqueueError::QueueFull)
        );
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn backlog_tracks_bytes() {
        let mut q = Fifo::new(10);
        q.enqueue(QPkt::new(0, 100, Time::ZERO), Time::ZERO)
            .unwrap();
        q.enqueue(QPkt::new(1, 200, Time::ZERO), Time::ZERO)
            .unwrap();
        assert_eq!(q.backlog_bytes(), 300);
        q.dequeue(Time::ZERO);
        assert_eq!(q.backlog_bytes(), 200);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut q = Fifo::new(1);
        assert!(q.dequeue(Time::ZERO).is_none());
        assert!(q.is_empty());
        assert!(q.next_ready(Time::ZERO).is_none());
    }

    #[test]
    fn stats_accumulate() {
        let mut q = Fifo::new(4);
        for i in 0..4 {
            q.enqueue(QPkt::new(i, 50, Time::ZERO), Time::ZERO).unwrap();
        }
        q.dequeue(Time::ZERO);
        let s = q.stats();
        assert_eq!(s.enqueued, 4);
        assert_eq!(s.dequeued, 1);
        assert_eq!(s.bytes_enqueued, 200);
        assert_eq!(s.bytes_dequeued, 50);
    }
}
