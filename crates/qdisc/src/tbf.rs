//! Token-bucket filter shaping (`tbf`).

use sim::{Dur, Time};

use crate::fifo::Fifo;
use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};

/// A token-bucket shaper over an inner FIFO.
///
/// Unlike the overlay's policing token bucket (which drops), `Tbf`
/// *shapes*: packets wait in the inner queue until tokens accrue, and
/// [`Qdisc::next_ready`] reports when the head becomes eligible so the
/// caller can schedule a timer — exactly how `tc tbf` integrates with the
/// kernel's qdisc watchdog.
#[derive(Clone, Debug)]
pub struct Tbf {
    rate_bytes_per_sec: u64,
    burst_bytes: u64,
    tokens: f64,
    last_update: Time,
    inner: Fifo,
}

impl Tbf {
    /// Creates a shaper at `rate_bytes_per_sec` with `burst_bytes` of
    /// depth over a FIFO of `limit_pkts`.
    ///
    /// # Panics
    ///
    /// Panics if rate or burst is zero.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64, limit_pkts: usize) -> Tbf {
        assert!(rate_bytes_per_sec > 0, "rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        Tbf {
            rate_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes as f64,
            last_update: Time::ZERO,
            inner: Fifo::new(limit_pkts),
        }
    }

    fn refill(&mut self, now: Time) {
        let elapsed = now.saturating_since(self.last_update);
        if !elapsed.is_zero() {
            self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_bytes_per_sec as f64)
                .min(self.burst_bytes as f64);
            self.last_update = now;
        }
    }

    /// Returns the configured rate in bytes per second.
    pub fn rate(&self) -> u64 {
        self.rate_bytes_per_sec
    }
}

impl Qdisc for Tbf {
    fn enqueue(&mut self, pkt: QPkt, now: Time) -> Result<(), EnqueueError> {
        self.inner.enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: Time) -> Option<QPkt> {
        self.refill(now);
        let head_len = u64::from(self.inner.peek()?.len);
        if self.tokens >= head_len as f64 {
            self.tokens -= head_len as f64;
            self.inner.dequeue(now)
        } else {
            None
        }
    }

    fn next_ready(&self, now: Time) -> Option<Time> {
        let head_len = u64::from(self.inner.peek()?.len);
        // Project token growth from the last update.
        let elapsed = now.saturating_since(self.last_update);
        let tokens_now = (self.tokens + elapsed.as_secs_f64() * self.rate_bytes_per_sec as f64)
            .min(self.burst_bytes as f64);
        if tokens_now >= head_len as f64 {
            return None; // already eligible
        }
        let deficit = head_len as f64 - tokens_now;
        let wait = Dur::from_secs_f64(deficit / self.rate_bytes_per_sec as f64);
        // Round up by a picosecond to avoid an off-by-one busy loop from
        // floating-point truncation.
        Some(now + wait + Dur::from_ps(1))
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn backlog_bytes(&self) -> u64 {
        self.inner.backlog_bytes()
    }

    fn stats(&self) -> QdiscStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_passes_immediately() {
        let mut q = Tbf::new(1000, 500, 16);
        q.enqueue(QPkt::new(0, 500, Time::ZERO), Time::ZERO)
            .unwrap();
        assert!(q.dequeue(Time::ZERO).is_some());
    }

    #[test]
    fn shaping_holds_packets_until_tokens() {
        // 1000 B/s, 100 B burst: a 100 B packet drains the bucket; the
        // next 100 B packet must wait 100 ms.
        let mut q = Tbf::new(1000, 100, 16);
        q.enqueue(QPkt::new(0, 100, Time::ZERO), Time::ZERO)
            .unwrap();
        q.enqueue(QPkt::new(1, 100, Time::ZERO), Time::ZERO)
            .unwrap();
        assert!(q.dequeue(Time::ZERO).is_some());
        assert!(q.dequeue(Time::ZERO).is_none());
        let ready = q.next_ready(Time::ZERO).expect("should report readiness");
        assert!(ready >= Time::from_ms(100), "ready at {ready}");
        assert!(ready < Time::from_ms(101), "ready at {ready}");
        // At the reported instant, dequeue succeeds.
        assert!(q.dequeue(ready).is_some());
    }

    #[test]
    fn long_run_rate_is_respected() {
        let rate = 10_000u64; // bytes/s
        let mut q = Tbf::new(rate, 1000, 1024);
        let mut now = Time::ZERO;
        for i in 0..100 {
            q.enqueue(QPkt::new(i, 1000, now), now).unwrap();
        }
        let mut sent = 0u64;
        let end = Time::from_secs(5);
        while now < end {
            match q.dequeue(now) {
                Some(p) => sent += u64::from(p.len),
                None => match q.next_ready(now) {
                    Some(t) => now = t,
                    None => break,
                },
            }
        }
        // 5 s at 10 kB/s plus the 1000 B initial burst.
        let expect = rate * 5 + 1000;
        let err = (sent as f64 - expect as f64).abs() / expect as f64;
        assert!(err < 0.05, "sent {sent}, expected ~{expect}");
    }

    #[test]
    fn tokens_cap_at_burst() {
        let mut q = Tbf::new(1000, 200, 16);
        // Idle for 10 s: tokens cap at 200, so only two 100 B packets go
        // back-to-back.
        let now = Time::from_secs(10);
        for i in 0..3 {
            q.enqueue(QPkt::new(i, 100, now), now).unwrap();
        }
        assert!(q.dequeue(now).is_some());
        assert!(q.dequeue(now).is_some());
        assert!(q.dequeue(now).is_none());
    }

    #[test]
    fn empty_queue_not_ready() {
        let q = Tbf::new(1000, 100, 4);
        assert!(q.next_ready(Time::ZERO).is_none());
    }

    #[test]
    fn eligible_head_reports_none() {
        let mut q = Tbf::new(1000, 500, 4);
        q.enqueue(QPkt::new(0, 100, Time::ZERO), Time::ZERO)
            .unwrap();
        assert!(q.next_ready(Time::ZERO).is_none());
    }
}
