//! A two-level hierarchical token bucket (`htb`, simplified).
//!
//! Each leaf class has an *assured rate* and a *ceiling*. A leaf may send
//! from its own tokens (assured service); when those are exhausted it may
//! *borrow* from the root bucket up to its ceiling. This captures the
//! `tc htb` semantics the paper's QoS scenario relies on (guaranteeing a
//! share to "productive" traffic while capping the game) without the full
//! three-color machinery of the kernel implementation.

use sim::{Dur, Time};

use crate::fifo::Fifo;
use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};

/// Configuration of one HTB leaf class.
#[derive(Clone, Copy, Debug)]
pub struct HtbClass {
    /// Assured rate in bytes/second.
    pub rate: u64,
    /// Ceiling in bytes/second (≥ rate); the class may borrow up to this.
    pub ceil: u64,
    /// Bucket depth in bytes for both buckets.
    pub burst: u64,
}

struct Leaf {
    cfg: HtbClass,
    queue: Fifo,
    tokens: f64,  // assured-rate bucket
    ctokens: f64, // ceiling bucket
    last: Time,
    sent: u64,
}

impl Leaf {
    fn refill(&mut self, now: Time) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        if dt > 0.0 {
            self.tokens = (self.tokens + dt * self.cfg.rate as f64).min(self.cfg.burst as f64);
            self.ctokens = (self.ctokens + dt * self.cfg.ceil as f64).min(self.cfg.burst as f64);
            self.last = now;
        }
    }
}

/// A two-level HTB: a root rate shared by leaf classes.
pub struct Htb {
    root_rate: u64,
    root_burst: u64,
    root_tokens: f64,
    root_last: Time,
    leaves: Vec<Leaf>,
    next_leaf: usize,
    stats: QdiscStats,
}

impl Htb {
    /// Creates an HTB with a root rate and the given leaf classes.
    ///
    /// # Panics
    ///
    /// Panics if no classes are given, any `ceil < rate`, or any rate is
    /// zero.
    pub fn new(
        root_rate: u64,
        root_burst: u64,
        classes: &[HtbClass],
        per_class_limit: usize,
    ) -> Htb {
        assert!(!classes.is_empty(), "need at least one class");
        for c in classes {
            assert!(c.rate > 0, "class rate must be positive");
            assert!(c.ceil >= c.rate, "ceil below assured rate");
        }
        Htb {
            root_rate,
            root_burst,
            root_tokens: root_burst as f64,
            root_last: Time::ZERO,
            leaves: classes
                .iter()
                .map(|&cfg| Leaf {
                    cfg,
                    queue: Fifo::new(per_class_limit),
                    tokens: cfg.burst as f64,
                    ctokens: cfg.burst as f64,
                    last: Time::ZERO,
                    sent: 0,
                })
                .collect(),
            next_leaf: 0,
            stats: QdiscStats::default(),
        }
    }

    fn refill_root(&mut self, now: Time) {
        let dt = now.saturating_since(self.root_last).as_secs_f64();
        if dt > 0.0 {
            self.root_tokens =
                (self.root_tokens + dt * self.root_rate as f64).min(self.root_burst as f64);
            self.root_last = now;
        }
    }

    /// Returns bytes sent per class.
    pub fn class_bytes_sent(&self) -> Vec<u64> {
        self.leaves.iter().map(|l| l.sent).collect()
    }
}

impl Qdisc for Htb {
    fn enqueue(&mut self, pkt: QPkt, now: Time) -> Result<(), EnqueueError> {
        let idx = pkt.class as usize;
        if idx >= self.leaves.len() {
            self.stats.dropped += 1;
            return Err(EnqueueError::NoSuchClass { class: pkt.class });
        }
        match self.leaves[idx].queue.enqueue(pkt, now) {
            Ok(()) => {
                self.stats.enqueued += 1;
                self.stats.bytes_enqueued += u64::from(pkt.len);
                Ok(())
            }
            Err(e) => {
                self.stats.dropped += 1;
                Err(e)
            }
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<QPkt> {
        self.refill_root(now);
        let n = self.leaves.len();
        // Pass 1: classes spending assured-rate tokens (green), in
        // round-robin from next_leaf. Every transmission also draws from
        // the root bucket: the root is on-path for all traffic, which is
        // what makes the root rate a true aggregate limit (the assured
        // guarantee assumes sum(rates) <= root_rate).
        for off in 0..n {
            let idx = (self.next_leaf + off) % n;
            let leaf = &mut self.leaves[idx];
            leaf.refill(now);
            let Some(head) = leaf.queue.peek() else {
                continue;
            };
            let len = f64::from(head.len);
            if leaf.tokens >= len && leaf.ctokens >= len && self.root_tokens >= len {
                leaf.tokens -= len;
                leaf.ctokens -= len;
                self.root_tokens -= len;
                let pkt = leaf.queue.dequeue(now).expect("peeked");
                leaf.sent += u64::from(pkt.len);
                self.stats.dequeued += 1;
                self.stats.bytes_dequeued += u64::from(pkt.len);
                self.next_leaf = (idx + 1) % n;
                return Some(pkt);
            }
        }
        // Pass 2: borrowing from the root (yellow), still under ceiling.
        for off in 0..n {
            let idx = (self.next_leaf + off) % n;
            let leaf = &mut self.leaves[idx];
            let Some(head) = leaf.queue.peek() else {
                continue;
            };
            let len = f64::from(head.len);
            if leaf.ctokens >= len && self.root_tokens >= len {
                leaf.ctokens -= len;
                self.root_tokens -= len;
                let pkt = leaf.queue.dequeue(now).expect("peeked");
                leaf.sent += u64::from(pkt.len);
                self.stats.dequeued += 1;
                self.stats.bytes_dequeued += u64::from(pkt.len);
                self.next_leaf = (idx + 1) % n;
                return Some(pkt);
            }
        }
        None
    }

    fn next_ready(&self, now: Time) -> Option<Time> {
        // Earliest instant any backlogged leaf could send: the later of
        // when its ceiling bucket and the root bucket hold enough tokens.
        let root_dt = now.saturating_since(self.root_last).as_secs_f64();
        let root_tokens =
            (self.root_tokens + root_dt * self.root_rate as f64).min(self.root_burst as f64);
        let mut earliest: Option<Time> = None;
        for leaf in &self.leaves {
            let Some(head) = leaf.queue.peek() else {
                continue;
            };
            let len = f64::from(head.len);
            let dt = now.saturating_since(leaf.last).as_secs_f64();
            let ctokens = (leaf.ctokens + dt * leaf.cfg.ceil as f64).min(leaf.cfg.burst as f64);
            let ceil_wait = if ctokens >= len {
                Dur::ZERO
            } else {
                Dur::from_secs_f64((len - ctokens) / leaf.cfg.ceil as f64) + Dur::from_ps(1)
            };
            let root_wait = if root_tokens >= len || self.root_rate == 0 {
                Dur::ZERO
            } else {
                Dur::from_secs_f64((len - root_tokens) / self.root_rate as f64) + Dur::from_ps(1)
            };
            let t = now + ceil_wait.max(root_wait);
            earliest = Some(match earliest {
                Some(e) => e.min(t),
                None => t,
            });
        }
        match earliest {
            Some(t) if t > now => Some(t),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.leaves.iter().map(|l| l.queue.len()).sum()
    }

    fn backlog_bytes(&self) -> u64 {
        self.leaves.iter().map(|l| l.queue.backlog_bytes()).sum()
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, len: u32, class: u32) -> QPkt {
        QPkt::new(id, len, Time::ZERO).with_class(class)
    }

    fn classes_2(rate0: u64, ceil0: u64, rate1: u64, ceil1: u64) -> Vec<HtbClass> {
        vec![
            HtbClass {
                rate: rate0,
                ceil: ceil0,
                burst: 1500,
            },
            HtbClass {
                rate: rate1,
                ceil: ceil1,
                burst: 1500,
            },
        ]
    }

    /// Drives the HTB with both classes always backlogged for `secs`
    /// simulated seconds, returning per-class bytes sent.
    fn run_backlogged(htb: &mut Htb, secs: u64) -> Vec<u64> {
        let mut now = Time::ZERO;
        let mut id = 0;
        let end = Time::from_secs(secs);
        while now < end {
            for class in 0..2 {
                while htb
                    .leaves_len(class) // keep 4 queued per class
                    < 4
                {
                    let _ = htb.enqueue(pkt(id, 1000, class as u32), now);
                    id += 1;
                }
            }
            if htb.dequeue(now).is_none() {
                now = htb
                    .next_ready(now)
                    .unwrap_or(now + Dur::from_ms(1))
                    .min(end);
            }
        }
        htb.class_bytes_sent()
    }

    impl Htb {
        fn leaves_len(&self, class: usize) -> usize {
            self.leaves[class].queue.len()
        }
    }

    #[test]
    fn assured_rates_delivered_under_contention() {
        // Root 10 kB/s; class 0 assured 8 kB/s, class 1 assured 2 kB/s.
        let mut htb = Htb::new(10_000, 1500, &classes_2(8_000, 10_000, 2_000, 10_000), 64);
        let sent = run_backlogged(&mut htb, 10);
        let r0 = sent[0] as f64 / 10.0;
        let r1 = sent[1] as f64 / 10.0;
        assert!((7_000.0..9_500.0).contains(&r0), "class0 rate {r0}");
        assert!((1_500.0..3_500.0).contains(&r1), "class1 rate {r1}");
    }

    #[test]
    fn idle_class_lets_other_borrow_to_ceiling() {
        // Class 1 idle: class 0 (assured 2 kB/s, ceil 10 kB/s) should
        // borrow up to the root's 10 kB/s.
        let mut htb = Htb::new(10_000, 1500, &classes_2(2_000, 10_000, 2_000, 10_000), 64);
        let mut now = Time::ZERO;
        let mut id = 0;
        let end = Time::from_secs(10);
        while now < end {
            while htb.leaves_len(0) < 4 {
                let _ = htb.enqueue(pkt(id, 1000, 0), now);
                id += 1;
            }
            if htb.dequeue(now).is_none() {
                now = htb
                    .next_ready(now)
                    .unwrap_or(now + Dur::from_ms(1))
                    .min(end);
            }
        }
        let rate = htb.class_bytes_sent()[0] as f64 / 10.0;
        assert!(rate > 8_000.0, "borrowing class reached only {rate} B/s");
    }

    #[test]
    fn ceiling_caps_even_when_root_has_capacity() {
        // Root 100 kB/s but class 0 ceiling 5 kB/s: class 0 cannot exceed
        // its ceiling no matter how much root capacity is idle.
        let mut htb = Htb::new(100_000, 1500, &classes_2(2_000, 5_000, 2_000, 100_000), 64);
        let mut now = Time::ZERO;
        let mut id = 0;
        let end = Time::from_secs(10);
        while now < end {
            while htb.leaves_len(0) < 4 {
                let _ = htb.enqueue(pkt(id, 1000, 0), now);
                id += 1;
            }
            if htb.dequeue(now).is_none() {
                now = htb
                    .next_ready(now)
                    .unwrap_or(now + Dur::from_ms(1))
                    .min(end);
            }
        }
        let rate = htb.class_bytes_sent()[0] as f64 / 10.0;
        assert!(
            (4_000.0..6_000.0).contains(&rate),
            "capped class sent {rate} B/s"
        );
    }

    #[test]
    fn unknown_class_rejected() {
        let mut htb = Htb::new(1000, 1500, &classes_2(500, 1000, 500, 1000), 4);
        assert_eq!(
            htb.enqueue(pkt(0, 100, 9), Time::ZERO),
            Err(EnqueueError::NoSuchClass { class: 9 })
        );
    }

    #[test]
    #[should_panic(expected = "ceil below assured rate")]
    fn bad_ceil_rejected() {
        let _ = Htb::new(
            1000,
            1500,
            &[HtbClass {
                rate: 100,
                ceil: 50,
                burst: 100,
            }],
            4,
        );
    }

    #[test]
    fn next_ready_reports_future_instant_when_throttled() {
        let mut htb = Htb::new(
            1_000_000,
            1500,
            &[HtbClass {
                rate: 1000,
                ceil: 1000,
                burst: 1500,
            }],
            16,
        );
        // Exhaust the burst.
        htb.enqueue(pkt(0, 1500, 0), Time::ZERO).unwrap();
        assert!(htb.dequeue(Time::ZERO).is_some());
        htb.enqueue(pkt(1, 1500, 0), Time::ZERO).unwrap();
        assert!(htb.dequeue(Time::ZERO).is_none());
        let ready = htb.next_ready(Time::ZERO).expect("throttled");
        assert!(ready > Time::ZERO);
        assert!(htb.dequeue(ready).is_some());
    }
}
