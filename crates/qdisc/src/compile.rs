//! Lowering qdisc configurations to overlay programs.
//!
//! The KOPI control plane does not interpret `tc`-style configurations on
//! the NIC; it compiles the *classification* step to an overlay program
//! (one overlay execution per packet assigns the scheduler class) and
//! parameterizes the NIC's native scheduling engine with the per-class
//! weights/rates. This module produces both halves as an
//! [`OverlaySchedulerSetup`].

use overlay::builtins;
use overlay::Program;

/// A compiled scheduler configuration: the classifier program plus the
/// map entries the control plane must install after loading it.
#[derive(Clone, Debug)]
pub struct OverlaySchedulerSetup {
    /// The classifier program to load into the overlay.
    pub program: Program,
    /// `(map, key, value)` entries to install via MMIO after load.
    pub map_fills: Vec<(usize, usize, u64)>,
    /// Per-class weights for the NIC's scheduling engine (WFQ/DRR).
    pub class_weights: Vec<f64>,
}

/// Why a scheduler configuration failed to compile.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedCompileError {
    /// A weight was non-finite (NaN/inf) or not strictly positive.
    InvalidWeight {
        /// `None` for the default weight, `Some(uid)` for a user's.
        uid: Option<u32>,
        /// The offending value.
        weight: f64,
    },
    /// More users than the builtin classifier's 256-entry map can key.
    TooManyUsers(usize),
}

impl std::fmt::Display for SchedCompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedCompileError::InvalidWeight { uid: None, weight } => {
                write!(f, "default weight {weight} must be finite and positive")
            }
            SchedCompileError::InvalidWeight {
                uid: Some(uid),
                weight,
            } => write!(
                f,
                "weight {weight} for uid {uid} must be finite and positive"
            ),
            SchedCompileError::TooManyUsers(n) => {
                write!(f, "{n} users exceed the 255-user classifier map")
            }
        }
    }
}

impl std::error::Error for SchedCompileError {}

/// Non-panicking [`compile_uid_wfq`]: rejects non-finite / non-positive
/// weights and over-long user lists instead of asserting, so the control
/// plane can refuse a bad policy during the verify phase of a commit.
pub fn try_compile_uid_wfq(
    users: &[(u32, f64)],
    default_weight: f64,
) -> Result<OverlaySchedulerSetup, SchedCompileError> {
    if !(default_weight.is_finite() && default_weight > 0.0) {
        return Err(SchedCompileError::InvalidWeight {
            uid: None,
            weight: default_weight,
        });
    }
    if users.len() > 255 {
        return Err(SchedCompileError::TooManyUsers(users.len()));
    }
    if let Some(&(uid, weight)) = users.iter().find(|&&(_, w)| !(w.is_finite() && w > 0.0)) {
        return Err(SchedCompileError::InvalidWeight {
            uid: Some(uid),
            weight,
        });
    }
    let program = builtins::uid_classifier();
    let mut map_fills = Vec::new();
    let mut class_weights = vec![default_weight];
    for (i, &(uid, weight)) in users.iter().enumerate() {
        let class = (i + 1) as u64;
        // The builtin stores class + 1 (0 = default).
        map_fills.push((0, (uid & 255) as usize, class + 1));
        class_weights.push(weight);
    }
    Ok(OverlaySchedulerSetup {
        program,
        map_fills,
        class_weights,
    })
}

/// Compiles a per-user WFQ configuration: each `(uid, weight)` pair gets
/// its own class; unlisted users share class 0 with weight
/// `default_weight`.
///
/// # Panics
///
/// Panics if any weight is invalid or more than 255 users are given
/// (the builtin classifier's map is keyed by `uid & 255`). Fallible
/// callers use [`try_compile_uid_wfq`].
pub fn compile_uid_wfq(users: &[(u32, f64)], default_weight: f64) -> OverlaySchedulerSetup {
    match try_compile_uid_wfq(users, default_weight) {
        Ok(setup) => setup,
        Err(SchedCompileError::TooManyUsers(_)) => panic!("at most 255 distinct users"),
        Err(SchedCompileError::InvalidWeight { uid: None, .. }) => {
            panic!("default weight must be positive")
        }
        Err(SchedCompileError::InvalidWeight { .. }) => panic!("weights must be positive"),
    }
}

/// Compiles a DSCP-based priority configuration: `bands[i]` lists the
/// DSCP values assigned to class `i`. Unlisted DSCPs go to the last
/// (lowest-priority) class.
///
/// # Panics
///
/// Panics if `bands` is empty.
pub fn compile_dscp_prio(bands: &[Vec<u8>]) -> OverlaySchedulerSetup {
    assert!(!bands.is_empty(), "need at least one band");
    let program = builtins::dscp_classifier();
    let mut map_fills = Vec::new();
    for (class, dscps) in bands.iter().enumerate() {
        for &d in dscps {
            map_fills.push((0, d as usize, class as u64 + 1));
        }
    }
    // Default class for unlisted DSCPs: the last band. The builtin sends
    // unmapped entries to class 0, so remap "no entry" by filling every
    // remaining DSCP with the last class.
    let last = bands.len() as u64;
    let listed: std::collections::HashSet<usize> = map_fills.iter().map(|&(_, k, _)| k).collect();
    for d in 0..256usize {
        if !listed.contains(&d) {
            map_fills.push((0, d, last));
        }
    }
    OverlaySchedulerSetup {
        program,
        map_fills,
        class_weights: vec![1.0; bands.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay::{PktCtx, Verdict, Vm};

    fn load(setup: &OverlaySchedulerSetup) -> Vm {
        overlay::verify(&setup.program).expect("compiled program verifies");
        let mut vm = Vm::new(setup.program.clone());
        for &(map, key, value) in &setup.map_fills {
            assert!(vm.map_set(map, key, value), "map fill ({map},{key})");
        }
        vm
    }

    #[test]
    fn uid_wfq_assigns_per_user_classes() {
        let setup = compile_uid_wfq(&[(1001, 3.0), (1002, 1.0)], 1.0);
        assert_eq!(setup.class_weights, vec![1.0, 3.0, 1.0]);
        let mut vm = load(&setup);
        let v = |uid: u32, vm: &mut Vm| {
            vm.run(&PktCtx {
                uid,
                ..PktCtx::default()
            })
            .unwrap()
            .verdict
        };
        assert_eq!(v(1001, &mut vm), Verdict::Class(1));
        assert_eq!(v(1002, &mut vm), Verdict::Class(2));
        assert_eq!(v(4242, &mut vm), Verdict::Class(0)); // default
    }

    #[test]
    fn dscp_prio_maps_all_codepoints() {
        let setup = compile_dscp_prio(&[vec![0xB8], vec![0x28, 0x30]]);
        let mut vm = load(&setup);
        let v = |dscp: u8, vm: &mut Vm| {
            vm.run(&PktCtx {
                dscp,
                ..PktCtx::default()
            })
            .unwrap()
            .verdict
        };
        assert_eq!(v(0xB8, &mut vm), Verdict::Class(0));
        assert_eq!(v(0x28, &mut vm), Verdict::Class(1));
        assert_eq!(v(0x30, &mut vm), Verdict::Class(1));
        // Unlisted codepoints collapse to the last (lowest-priority) band.
        assert_eq!(v(0x00, &mut vm), Verdict::Class(1));
        assert_eq!(v(0x7F, &mut vm), Verdict::Class(1));
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn bad_weight_rejected() {
        let _ = compile_uid_wfq(&[(1, -1.0)], 1.0);
    }

    #[test]
    fn try_compile_rejects_invalid_weights() {
        assert!(matches!(
            try_compile_uid_wfq(&[(1, f64::NAN)], 1.0),
            Err(SchedCompileError::InvalidWeight { uid: Some(1), .. })
        ));
        assert!(matches!(
            try_compile_uid_wfq(&[(1, f64::INFINITY)], 1.0),
            Err(SchedCompileError::InvalidWeight { uid: Some(1), .. })
        ));
        assert!(matches!(
            try_compile_uid_wfq(&[(1, 0.0)], 1.0),
            Err(SchedCompileError::InvalidWeight { uid: Some(1), .. })
        ));
        assert!(matches!(
            try_compile_uid_wfq(&[], -2.0),
            Err(SchedCompileError::InvalidWeight { uid: None, .. })
        ));
        let users: Vec<(u32, f64)> = (0..256).map(|u| (u, 1.0)).collect();
        assert!(matches!(
            try_compile_uid_wfq(&users, 1.0),
            Err(SchedCompileError::TooManyUsers(256))
        ));
        assert!(try_compile_uid_wfq(&[(1001, 2.5)], 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "at most 255")]
    fn too_many_users_rejected() {
        let users: Vec<(u32, f64)> = (0..256).map(|u| (u, 1.0)).collect();
        let _ = compile_uid_wfq(&users, 1.0);
    }
}
