//! Strict-priority scheduling (`prio`).

use sim::Time;

use crate::fifo::Fifo;
use crate::types::{EnqueueError, QPkt, Qdisc, QdiscStats};

/// Strict priority over N bands; band 0 is highest. A packet's class
/// selects its band (classes beyond the last band collapse into the
/// lowest-priority band, like `prio`'s default map).
#[derive(Clone, Debug)]
pub struct Prio {
    bands: Vec<Fifo>,
    stats: QdiscStats,
}

impl Prio {
    /// Creates `bands` priority bands, each a FIFO of `band_limit`
    /// packets.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is zero.
    pub fn new(bands: usize, band_limit: usize) -> Prio {
        assert!(bands > 0, "need at least one band");
        Prio {
            bands: (0..bands).map(|_| Fifo::new(band_limit)).collect(),
            stats: QdiscStats::default(),
        }
    }

    fn band_for(&self, class: u32) -> usize {
        (class as usize).min(self.bands.len() - 1)
    }

    /// Returns the per-band queue lengths (for `kqdisc` introspection).
    pub fn band_lengths(&self) -> Vec<usize> {
        self.bands.iter().map(Fifo::len).collect()
    }
}

impl Qdisc for Prio {
    fn enqueue(&mut self, pkt: QPkt, now: Time) -> Result<(), EnqueueError> {
        let band = self.band_for(pkt.class);
        match self.bands[band].enqueue(pkt, now) {
            Ok(()) => {
                self.stats.enqueued += 1;
                self.stats.bytes_enqueued += u64::from(pkt.len);
                Ok(())
            }
            Err(e) => {
                self.stats.dropped += 1;
                Err(e)
            }
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<QPkt> {
        for band in &mut self.bands {
            if let Some(pkt) = band.dequeue(now) {
                self.stats.dequeued += 1;
                self.stats.bytes_dequeued += u64::from(pkt.len);
                return Some(pkt);
            }
        }
        None
    }

    fn next_ready(&self, _now: Time) -> Option<Time> {
        None
    }

    fn len(&self) -> usize {
        self.bands.iter().map(Fifo::len).sum()
    }

    fn backlog_bytes(&self) -> u64 {
        self.bands.iter().map(Fifo::backlog_bytes).sum()
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, class: u32) -> QPkt {
        QPkt::new(id, 100, Time::ZERO).with_class(class)
    }

    #[test]
    fn high_priority_always_first() {
        let mut q = Prio::new(3, 16);
        q.enqueue(pkt(0, 2), Time::ZERO).unwrap();
        q.enqueue(pkt(1, 1), Time::ZERO).unwrap();
        q.enqueue(pkt(2, 0), Time::ZERO).unwrap();
        q.enqueue(pkt(3, 0), Time::ZERO).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue(Time::ZERO).map(|p| p.id)).collect();
        assert_eq!(order, vec![2, 3, 1, 0]);
    }

    #[test]
    fn starvation_is_real() {
        // Strict priority starves low bands while high traffic persists —
        // the behaviour WFQ exists to fix.
        let mut q = Prio::new(2, 64);
        q.enqueue(pkt(99, 1), Time::ZERO).unwrap();
        for i in 0..10 {
            q.enqueue(pkt(i, 0), Time::ZERO).unwrap();
        }
        for _ in 0..10 {
            assert_eq!(q.dequeue(Time::ZERO).unwrap().class, 0);
        }
        assert_eq!(q.dequeue(Time::ZERO).unwrap().id, 99);
    }

    #[test]
    fn overflow_class_collapses_to_last_band() {
        let mut q = Prio::new(2, 16);
        q.enqueue(pkt(0, 7), Time::ZERO).unwrap();
        assert_eq!(q.band_lengths(), vec![0, 1]);
    }

    #[test]
    fn per_band_limits() {
        let mut q = Prio::new(2, 1);
        q.enqueue(pkt(0, 0), Time::ZERO).unwrap();
        assert_eq!(
            q.enqueue(pkt(1, 0), Time::ZERO),
            Err(EnqueueError::QueueFull)
        );
        // Other band unaffected.
        q.enqueue(pkt(2, 1), Time::ZERO).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.stats().dropped, 1);
    }

    #[test]
    fn backlog_sums_bands() {
        let mut q = Prio::new(2, 8);
        q.enqueue(pkt(0, 0), Time::ZERO).unwrap();
        q.enqueue(pkt(1, 1), Time::ZERO).unwrap();
        assert_eq!(q.backlog_bytes(), 200);
    }
}
