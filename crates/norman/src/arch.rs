//! The five datapath architectures the paper compares.
//!
//! §1-§2 argue that the placement of the interposition layer determines
//! both performance (how much data movement each packet pays for) and
//! capability (which views — global traffic, process identity — the
//! layer has). This module implements all five placements over the same
//! substrates so E1 (overhead) and T1 (capability matrix) can measure
//! them head-to-head:
//!
//! | architecture | interposition | movement per packet |
//! |---|---|---|
//! | [`DatapathKind::KernelStack`] | in-kernel (today) | virtual: syscall + copy |
//! | [`DatapathKind::RawBypass`] | none (DPDK-style) | one transfer, no policy |
//! | [`DatapathKind::SidecarCore`] | dedicated core (IX/Snap) | physical: cross-core |
//! | [`DatapathKind::HypervisorSwitch`] | NIC vswitch (AccelNet) | one transfer, port-only policy |
//! | [`DatapathKind::Kopi`] | on-NIC, kernel-managed | one transfer, full policy |

use memsim::{HostRing, Llc, LlcConfig, MemCosts};
use oskernel::StackCosts;
use sim::Dur;

/// Which datapath architecture.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DatapathKind {
    /// Conventional in-kernel network stack.
    KernelStack,
    /// Raw kernel bypass (DPDK-style), no interposition anywhere.
    RawBypass,
    /// Interposition on a dedicated core (IX/Snap-style dataplane OS).
    SidecarCore,
    /// Interposition in a NIC-offloaded hypervisor switch (AccelNet).
    HypervisorSwitch,
    /// Kernel On-Path Interposition (this paper).
    Kopi,
}

impl DatapathKind {
    /// All five, in presentation order.
    pub const ALL: [DatapathKind; 5] = [
        DatapathKind::KernelStack,
        DatapathKind::RawBypass,
        DatapathKind::SidecarCore,
        DatapathKind::HypervisorSwitch,
        DatapathKind::Kopi,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DatapathKind::KernelStack => "kernel-stack",
            DatapathKind::RawBypass => "raw-bypass",
            DatapathKind::SidecarCore => "sidecar-core",
            DatapathKind::HypervisorSwitch => "hypervisor-switch",
            DatapathKind::Kopi => "kopi",
        }
    }
}

/// What an interposition placement can and cannot do (the paper's §3
/// requirements, probed empirically by the T1 experiment).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Capabilities {
    /// Sees traffic of *all* applications on the host.
    pub global_view: bool,
    /// Can attribute traffic to (uid, pid, comm) and signal processes.
    pub process_view: bool,
    /// Applications cannot evade or tamper with the layer.
    pub isolated_from_app: bool,
    /// Supports blocking I/O (can detect arrivals and wake processes).
    pub blocking_io: bool,
    /// Can implement work-conserving cross-application shaping (WFQ).
    pub shaping: bool,
    /// Policies can be updated at software-development cadence.
    pub programmable: bool,
    /// Adds no per-packet kernel/copy cost to the data path.
    pub line_rate_datapath: bool,
}

impl Capabilities {
    /// The §3 requirement list as a score out of 6 (capability columns
    /// except `line_rate_datapath`, which is the performance side).
    pub fn policy_score(&self) -> u32 {
        [
            self.global_view,
            self.process_view,
            self.isolated_from_app,
            self.blocking_io,
            self.shaping,
            self.programmable,
        ]
        .iter()
        .filter(|&&b| b)
        .count() as u32
    }
}

/// Per-packet cost breakdown for one architecture.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostBreakdown {
    /// CPU + memory time on the application's core.
    pub app_core: Dur,
    /// CPU time burned on other host cores (sidecar, softirq core).
    pub other_core: Dur,
    /// Added in-NIC latency (pipelined; affects latency, not host
    /// throughput).
    pub nic_latency: Dur,
}

impl CostBreakdown {
    /// Total host CPU time across cores.
    pub fn total_host(&self) -> Dur {
        self.app_core + self.other_core
    }
}

/// A stateful per-packet cost model for one architecture.
///
/// The ring-based paths keep a live ring + LLC so their costs include
/// real cache behaviour; the kernel path uses the stack cost model.
pub struct Architecture {
    kind: DatapathKind,
    mem: MemCosts,
    llc: Llc,
    rx_ring: HostRing,
    tx_ring: HostRing,
    /// For the sidecar: the interposition core's staging ring.
    sidecar_ring: HostRing,
    stack: StackCosts,
    /// Active filter rules (kernel hooks or NIC programs).
    pub filter_rules: u64,
    /// Overlay cycles per packet on NIC-resident paths.
    pub overlay_cycles: u64,
    /// Overlay cycle time.
    pub overlay_cycle: Dur,
    doorbell_batch: u64,
    ring_ops: u64,
}

impl Architecture {
    /// Creates the cost model for `kind` with default substrates.
    pub fn new(kind: DatapathKind) -> Architecture {
        Architecture {
            kind,
            mem: MemCosts::default(),
            llc: Llc::new(LlcConfig::xeon_default()),
            rx_ring: HostRing::new(0x1000_0000, 256, 2048),
            tx_ring: HostRing::new(0x2000_0000, 256, 2048),
            sidecar_ring: HostRing::new(0x3000_0000, 256, 2048),
            stack: StackCosts::default(),
            filter_rules: 8,
            overlay_cycles: 20,
            overlay_cycle: Dur::from_ns(4),
            doorbell_batch: 4,
            ring_ops: 0,
        }
    }

    /// Returns the kind.
    pub fn kind(&self) -> DatapathKind {
        self.kind
    }

    /// Returns the capability set of this placement.
    pub fn capabilities(kind: DatapathKind) -> Capabilities {
        match kind {
            DatapathKind::KernelStack => Capabilities {
                global_view: true,
                process_view: true,
                isolated_from_app: true,
                blocking_io: true,
                shaping: true,
                programmable: true,
                line_rate_datapath: false,
            },
            DatapathKind::RawBypass => Capabilities {
                global_view: false,
                process_view: false,
                isolated_from_app: false,
                blocking_io: false,
                shaping: false,
                programmable: true, // the app can run anything — for itself only
                line_rate_datapath: true,
            },
            DatapathKind::SidecarCore => Capabilities {
                global_view: true,
                process_view: true,
                isolated_from_app: true,
                blocking_io: true,
                shaping: true,
                programmable: true,
                line_rate_datapath: false, // burns a core + coherence traffic
            },
            DatapathKind::HypervisorSwitch => Capabilities {
                global_view: true,
                process_view: false, // sees VMs/ports, not processes
                isolated_from_app: true,
                blocking_io: false, // cannot signal host processes
                shaping: true,      // per-port only, but work-conserving
                programmable: true,
                line_rate_datapath: true,
            },
            DatapathKind::Kopi => Capabilities {
                global_view: true,
                process_view: true,
                isolated_from_app: true,
                blocking_io: true,
                shaping: true,
                programmable: true,
                line_rate_datapath: true,
            },
        }
    }

    fn doorbell(&mut self) -> Dur {
        self.ring_ops += 1;
        if self.ring_ops.is_multiple_of(self.doorbell_batch) {
            self.mem.mmio_write
        } else {
            Dur::ZERO
        }
    }

    fn lines(bytes: usize) -> u64 {
        (bytes as u64).div_ceil(64).max(1)
    }

    /// Per-packet receive cost for a frame of `bytes`.
    pub fn rx_cost(&mut self, bytes: usize) -> CostBreakdown {
        match self.kind {
            DatapathKind::KernelStack => {
                // softirq + protocol + hooks on some core, then the recv
                // syscall + copy on the app core.
                let hooks = Dur::from_ns(25).saturating_mul(self.filter_rules);
                CostBreakdown {
                    app_core: self.stack.syscalls.io_call(bytes),
                    other_core: self.stack.softirq + self.stack.protocol + hooks,
                    nic_latency: Dur::ZERO,
                }
            }
            DatapathKind::RawBypass | DatapathKind::HypervisorSwitch | DatapathKind::Kopi => {
                // One transfer: NIC DMA into the app ring, app consumes.
                let _ = self
                    .rx_ring
                    .produce_dma(bytes, &mut self.llc, &self.mem.clone());
                let consume = self
                    .rx_ring
                    .consume_cpu(&mut self.llc, &self.mem.clone())
                    .map(|(_, c)| c)
                    .unwrap_or(Dur::ZERO);
                let nic_latency = match self.kind {
                    // Interposing placements add pipelined NIC latency.
                    DatapathKind::Kopi => self.overlay_cycle.saturating_mul(self.overlay_cycles),
                    DatapathKind::HypervisorSwitch => Dur::from_ns(100),
                    _ => Dur::ZERO,
                };
                CostBreakdown {
                    app_core: consume + self.doorbell(),
                    other_core: Dur::ZERO,
                    nic_latency,
                }
            }
            DatapathKind::SidecarCore => {
                // Two transfers: NIC → sidecar ring; the sidecar runs the
                // interposition logic; the payload then moves cross-core
                // into the app's cache.
                let mem = self.mem.clone();
                let _ = self.sidecar_ring.produce_dma(bytes, &mut self.llc, &mem);
                let sidecar_consume = self
                    .sidecar_ring
                    .consume_cpu(&mut self.llc, &mem)
                    .map(|(_, c)| c)
                    .unwrap_or(Dur::ZERO);
                let hooks = Dur::from_ns(25).saturating_mul(self.filter_rules);
                // Cross-core: the first line pays the full cache-to-cache
                // latency; subsequent lines stream behind it (hardware
                // prefetch pipelines remote-cache reads to roughly LLC
                // latency).
                let coherence = mem.cross_core
                    + mem
                        .llc_hit
                        .saturating_mul(Self::lines(bytes).saturating_sub(1));
                CostBreakdown {
                    app_core: coherence + self.doorbell(),
                    other_core: sidecar_consume + hooks + self.stack.protocol,
                    nic_latency: Dur::ZERO,
                }
            }
        }
    }

    /// Per-packet send cost for a frame of `bytes`.
    pub fn tx_cost(&mut self, bytes: usize) -> CostBreakdown {
        match self.kind {
            DatapathKind::KernelStack => {
                let hooks = Dur::from_ns(25).saturating_mul(self.filter_rules);
                CostBreakdown {
                    app_core: self.stack.syscalls.io_call(bytes),
                    other_core: self.stack.protocol + hooks,
                    nic_latency: Dur::ZERO,
                }
            }
            DatapathKind::RawBypass | DatapathKind::HypervisorSwitch | DatapathKind::Kopi => {
                let mem = self.mem.clone();
                let produce = self
                    .tx_ring
                    .produce_cpu(bytes, &mut self.llc, &mem)
                    .unwrap_or(Dur::ZERO);
                let _ = self.tx_ring.consume_dma(&mut self.llc, &mem);
                let nic_latency = match self.kind {
                    DatapathKind::Kopi => self.overlay_cycle.saturating_mul(self.overlay_cycles),
                    DatapathKind::HypervisorSwitch => Dur::from_ns(100),
                    _ => Dur::ZERO,
                };
                CostBreakdown {
                    app_core: produce + self.doorbell(),
                    other_core: Dur::ZERO,
                    nic_latency,
                }
            }
            DatapathKind::SidecarCore => {
                let mem = self.mem.clone();
                let produce = self
                    .tx_ring
                    .produce_cpu(bytes, &mut self.llc, &mem)
                    .unwrap_or(Dur::ZERO);
                let _ = self.tx_ring.consume_cpu(&mut self.llc, &mem);
                let hooks = Dur::from_ns(25).saturating_mul(self.filter_rules);
                let coherence = mem.cross_core
                    + mem
                        .llc_hit
                        .saturating_mul(Self::lines(bytes).saturating_sub(1));
                CostBreakdown {
                    app_core: produce + self.doorbell(),
                    other_core: coherence + hooks + self.stack.protocol,
                    nic_latency: Dur::ZERO,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rx(kind: DatapathKind, bytes: usize) -> CostBreakdown {
        let mut a = Architecture::new(kind);
        // Warm up, then average.
        for _ in 0..64 {
            a.rx_cost(bytes);
        }
        let mut total = CostBreakdown::default();
        let n = 256;
        for _ in 0..n {
            let c = a.rx_cost(bytes);
            total.app_core += c.app_core;
            total.other_core += c.other_core;
            total.nic_latency += c.nic_latency;
        }
        CostBreakdown {
            app_core: total.app_core / n,
            other_core: total.other_core / n,
            nic_latency: total.nic_latency / n,
        }
    }

    #[test]
    fn paper_ordering_holds_for_small_packets() {
        // §1: bypass ≈ KOPI < sidecar < kernel in host cost.
        let kernel = mean_rx(DatapathKind::KernelStack, 64).total_host();
        let bypass = mean_rx(DatapathKind::RawBypass, 64).total_host();
        let kopi = mean_rx(DatapathKind::Kopi, 64).total_host();
        let sidecar = mean_rx(DatapathKind::SidecarCore, 64).total_host();
        assert_eq!(bypass, kopi, "KOPI host cost must equal raw bypass");
        assert!(kopi < sidecar, "kopi {kopi} vs sidecar {sidecar}");
        assert!(sidecar < kernel, "sidecar {sidecar} vs kernel {kernel}");
    }

    #[test]
    fn kopi_pays_only_nic_latency() {
        let kopi = mean_rx(DatapathKind::Kopi, 64);
        let bypass = mean_rx(DatapathKind::RawBypass, 64);
        assert!(kopi.nic_latency > Dur::ZERO);
        assert_eq!(bypass.nic_latency, Dur::ZERO);
        assert_eq!(kopi.app_core, bypass.app_core);
    }

    #[test]
    fn kernel_cost_grows_with_packet_size_faster_than_bypass() {
        let k_small = mean_rx(DatapathKind::KernelStack, 64).total_host();
        let k_big = mean_rx(DatapathKind::KernelStack, 1500).total_host();
        let b_small = mean_rx(DatapathKind::RawBypass, 64).total_host();
        let b_big = mean_rx(DatapathKind::RawBypass, 1500).total_host();
        // Both grow, but the kernel adds copy cost on top of the memory
        // touches bypass also pays.
        assert!(k_big > k_small);
        assert!(b_big > b_small);
        assert!(k_big - k_small > Dur::from_ns(50));
        let _ = b_big;
    }

    #[test]
    fn sidecar_burns_another_core() {
        let c = mean_rx(DatapathKind::SidecarCore, 512);
        assert!(c.other_core > Dur::ZERO);
        let b = mean_rx(DatapathKind::RawBypass, 512);
        assert_eq!(b.other_core, Dur::ZERO);
    }

    #[test]
    fn capability_matrix_matches_paper() {
        use DatapathKind::*;
        // KOPI and the kernel stack are the only placements with *all*
        // policy capabilities; only KOPI also keeps the fast datapath.
        for kind in DatapathKind::ALL {
            let c = Architecture::capabilities(kind);
            match kind {
                KernelStack => {
                    assert_eq!(c.policy_score(), 6);
                    assert!(!c.line_rate_datapath);
                }
                RawBypass => {
                    assert!(!c.global_view);
                    assert!(!c.isolated_from_app);
                    assert!(c.line_rate_datapath);
                }
                SidecarCore => {
                    assert_eq!(c.policy_score(), 6);
                    assert!(!c.line_rate_datapath);
                }
                HypervisorSwitch => {
                    assert!(c.global_view);
                    assert!(
                        !c.process_view,
                        "AccelNet-style switches lack the process view"
                    );
                    assert!(!c.blocking_io);
                }
                Kopi => {
                    assert_eq!(c.policy_score(), 6);
                    assert!(c.line_rate_datapath);
                }
            }
        }
    }

    #[test]
    fn tx_costs_follow_same_ordering() {
        let mut kernel = Architecture::new(DatapathKind::KernelStack);
        let mut kopi = Architecture::new(DatapathKind::Kopi);
        let mut k_total = Dur::ZERO;
        let mut n_total = Dur::ZERO;
        for _ in 0..128 {
            k_total += kernel.tx_cost(256).total_host();
            n_total += kopi.tx_cost(256).total_host();
        }
        assert!(n_total < k_total);
    }

    #[test]
    fn more_filter_rules_cost_kernel_but_not_kopi_host_time() {
        let mut kernel = Architecture::new(DatapathKind::KernelStack);
        let mut kopi = Architecture::new(DatapathKind::Kopi);
        let k_before = kernel.rx_cost(64).total_host();
        let n_before = kopi.rx_cost(64).total_host();
        kernel.filter_rules = 1000;
        kopi.filter_rules = 1000;
        kopi.overlay_cycles = 200; // richer NIC program
        let k_after = kernel.rx_cost(64).total_host();
        let n_after = kopi.rx_cost(64).total_host();
        assert!(k_after > k_before + Dur::from_us(20));
        // KOPI's host cost is unchanged; only NIC latency grows.
        assert!(n_after <= n_before + Dur::from_ns(1));
        assert!(kopi.rx_cost(64).nic_latency >= Dur::from_ns(800));
    }
}
