//! Administrative tools: `ksniff`, `kfilter`, `kqdisc`, `knetstat`,
//! `npolicy`, `trace` (`ktrace`).
//!
//! Each tool is the Norman analogue of a classic utility (tcpdump,
//! iptables, tc, netstat) and works the way Figure 1 prescribes: the
//! tool calls into the **in-kernel control plane**, which updates the
//! on-NIC dataplane — the data path itself is never detoured. All tools
//! require privileged credentials; an unprivileged user cannot inspect
//! global traffic or rewrite policy (the isolation requirement of §3).
//!
//! Every policy-writing tool is a front-end over one transaction path:
//! [`Host::update_policy`], the two-phase epoch-versioned commit of
//! [`crate::ctrl`]. `npolicy` is the unified view onto that machinery —
//! the live generation number, commit/rollback/reconcile history, and a
//! whole-store apply.

use nicsim::sniff::CaptureEntry;
use nicsim::SnifferFilter;
use oskernel::Cred;
use pkt::IpProto;
use sim::Time;

use crate::host::Host;
use crate::policy::{PortReservation, ShapingPolicy};

/// Tool failures.
#[derive(Debug, PartialEq, Eq)]
pub enum ToolError {
    /// The credentials are not privileged.
    PermissionDenied {
        /// Which tool refused.
        tool: &'static str,
    },
    /// The control plane rejected the operation.
    Control(String),
    /// The trace pipeline (collection, event file, offline report)
    /// failed.
    Trace(String),
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::PermissionDenied { tool } => {
                write!(f, "{tool}: permission denied (requires root)")
            }
            ToolError::Control(e) => write!(f, "control plane error: {e}"),
            ToolError::Trace(e) => write!(f, "trace pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ToolError {}

fn require_root(cred: &Cred, tool: &'static str) -> Result<(), ToolError> {
    if cred.is_privileged() {
        Ok(())
    } else {
        Err(ToolError::PermissionDenied { tool })
    }
}

fn control(e: impl std::fmt::Display) -> ToolError {
    ToolError::Control(e.to_string())
}

/// `ksniff` — the tcpdump equivalent, reading the NIC capture tap.
pub mod ksniff {
    use super::*;

    /// Starts capturing with `filter` (a policy commit: the tap is part
    /// of the kernel policy store and survives NIC reprograms).
    pub fn start(
        host: &mut Host,
        cred: &Cred,
        filter: SnifferFilter,
        now: Time,
    ) -> Result<(), ToolError> {
        require_root(cred, "ksniff")?;
        host.update_policy(now, |p| p.sniffer = Some(filter))
            .map(|_| ())
            .map_err(control)
    }

    /// Stops capturing.
    pub fn stop(host: &mut Host, cred: &Cred, now: Time) -> Result<(), ToolError> {
        require_root(cred, "ksniff")?;
        host.update_policy(now, |p| p.sniffer = None)
            .map(|_| ())
            .map_err(control)
    }

    /// Drains and returns captured entries.
    pub fn dump(host: &mut Host, cred: &Cred) -> Result<Vec<CaptureEntry>, ToolError> {
        require_root(cred, "ksniff")?;
        Ok(host.nic.sniffer.drain())
    }

    /// Aggregates ARP frames by originating process — the §2 debugging
    /// scenario's one-command answer to "who is flooding ARP?".
    /// Returns (comm, pid, count) sorted by count descending.
    pub fn top_arp_talkers(entries: &[CaptureEntry]) -> Vec<(String, u32, u64)> {
        use std::collections::HashMap;
        let mut counts: HashMap<(String, u32), u64> = HashMap::new();
        for e in entries.iter().filter(|e| e.is_arp) {
            let comm = e.comm.clone().unwrap_or_else(|| "<unknown>".to_string());
            let pid = e.pid.unwrap_or(0);
            *counts.entry((comm, pid)).or_insert(0) += 1;
        }
        let mut out: Vec<(String, u32, u64)> = counts
            .into_iter()
            .map(|((comm, pid), n)| (comm, pid, n))
            .collect();
        out.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
        out
    }
}

/// `kfilter` — the iptables equivalent (owner-aware port policy).
pub mod kfilter {
    use super::*;

    /// Installs a port reservation (setup check + NIC dataplane filter).
    pub fn reserve(
        host: &mut Host,
        cred: &Cred,
        r: PortReservation,
        now: Time,
    ) -> Result<(), ToolError> {
        require_root(cred, "kfilter")?;
        host.update_policy(now, |p| p.reservations.push(r))
            .map(|_| ())
            .map_err(control)
    }

    /// Lists active reservations.
    pub fn list(host: &Host, cred: &Cred) -> Result<Vec<PortReservation>, ToolError> {
        require_root(cred, "kfilter")?;
        Ok(host.reservations().to_vec())
    }
}

/// `kqdisc` — the tc equivalent (per-user WFQ on the NIC scheduler).
pub mod kqdisc {
    use super::*;

    /// Installs a per-user WFQ policy.
    pub fn install_wfq(
        host: &mut Host,
        cred: &Cred,
        policy: ShapingPolicy,
        now: Time,
    ) -> Result<(), ToolError> {
        require_root(cred, "kqdisc")?;
        host.update_policy(now, |p| p.shaping = Some(policy))
            .map(|_| ())
            .map_err(control)
    }

    /// Returns per-class bytes transmitted (class 0 = default).
    pub fn class_bytes(host: &Host, cred: &Cred) -> Result<Vec<u64>, ToolError> {
        require_root(cred, "kqdisc")?;
        Ok(host.nic.scheduler_class_bytes())
    }
}

/// `npolicy` — the unified policy front-end over the [`crate::ctrl`]
/// control plane: apply whole-store transactions, read the live
/// generation, and inspect commit/rollback/reconcile history.
pub mod npolicy {
    use super::*;
    use crate::ctrl::{CommitRecord, PolicyStore};

    /// Applies one policy transaction (two-phase commit). Returns the
    /// new generation.
    pub fn apply(
        host: &mut Host,
        cred: &Cred,
        now: Time,
        mutate: impl FnOnce(&mut PolicyStore),
    ) -> Result<u64, ToolError> {
        require_root(cred, "npolicy")?;
        host.update_policy(now, mutate).map_err(control)
    }

    /// A point-in-time view of the control plane.
    #[derive(Clone, Debug)]
    pub struct Status {
        /// The live policy generation.
        pub generation: u64,
        /// Successful commits.
        pub commits: u64,
        /// Mid-commit failures recovered by rollback.
        pub rollbacks: u64,
        /// Bundle reinstalls after bitstream reprograms.
        pub reconciles: u64,
        /// Active port reservations.
        pub reservations: usize,
        /// Whether shaping policy is in force.
        pub shaping: bool,
        /// Whether the capture tap is on.
        pub sniffer: bool,
        /// Static NAT forwards in force.
        pub nat_rules: usize,
        /// Commit history, oldest first (bounded).
        pub history: Vec<CommitRecord>,
    }

    /// Reads control-plane status.
    pub fn status(host: &Host, cred: &Cred) -> Result<Status, ToolError> {
        require_root(cred, "npolicy")?;
        let store = host.policy();
        let stats = host.ctrl().stats();
        Ok(Status {
            generation: host.policy_generation(),
            commits: stats.commits,
            rollbacks: stats.rollbacks,
            reconciles: stats.reconciles,
            reservations: store.reservations.len(),
            shaping: store.shaping.is_some(),
            sniffer: store.sniffer.is_some(),
            nat_rules: store.nat_rules.len(),
            history: host.ctrl().history().to_vec(),
        })
    }

    /// Renders status as a human-readable report.
    pub fn render(s: &Status) -> String {
        let mut out = format!(
            "generation {}  (commits {}, rollbacks {}, reconciles {})\n\
             reservations {}  shaping {}  sniffer {}  nat-rules {}\n",
            s.generation,
            s.commits,
            s.rollbacks,
            s.reconciles,
            s.reservations,
            if s.shaping { "on" } else { "off" },
            if s.sniffer { "on" } else { "off" },
            s.nat_rules,
        );
        for r in &s.history {
            out.push_str(&format!(
                "  gen {:<4} t={:<12} {:<11} {}\n",
                r.generation,
                r.at.to_string(),
                r.action.to_string(),
                r.detail
            ));
        }
        out
    }
}

/// `knetstat` — the netstat equivalent: every connection on the host
/// with process attribution, read from the NIC flow table (fast path)
/// and the kernel socket table (slow path).
pub mod knetstat {
    use super::*;

    /// One connection row.
    #[derive(Clone, Debug)]
    pub struct ConnRow {
        /// Transport protocol.
        pub proto: IpProto,
        /// Local port.
        pub local_port: u16,
        /// Remote endpoint as text ("-" for listeners).
        pub remote: String,
        /// Owning uid.
        pub uid: u32,
        /// Owning pid.
        pub pid: u32,
        /// Owning command.
        pub comm: String,
        /// `"nic"` for fast-path connections, `"kernel"` for slow-path
        /// sockets.
        pub via: &'static str,
    }

    /// Lists all connections.
    pub fn connections(host: &Host, cred: &Cred) -> Result<Vec<ConnRow>, ToolError> {
        require_root(cred, "knetstat")?;
        let mut rows: Vec<ConnRow> = host
            .nic
            .flows
            .entries()
            .map(|e| ConnRow {
                proto: e.tuple.proto,
                local_port: e.tuple.dst_port,
                remote: if e.tuple.src_ip.is_unspecified() {
                    "-".to_string()
                } else {
                    format!("{}:{}", e.tuple.src_ip, e.tuple.src_port)
                },
                uid: e.uid,
                pid: e.pid,
                comm: e.comm.to_string(),
                via: "nic",
            })
            .collect();
        rows.extend(host.stack.socket_stats().into_iter().map(|s| ConnRow {
            proto: s.proto,
            local_port: s.port,
            remote: "-".to_string(),
            uid: s.uid,
            pid: s.pid.0,
            comm: s.comm,
            via: "kernel",
        }));
        rows.sort_by_key(|r| (r.proto.0, r.local_port, r.pid));
        Ok(rows)
    }

    /// Lists the kernel ARP cache (`arp -a` / `ip neigh`): the first
    /// thing Alice inspects in the §2 debugging scenario.
    pub fn arp_cache(
        host: &Host,
        cred: &Cred,
    ) -> Result<Vec<(std::net::Ipv4Addr, oskernel::ArpEntry)>, ToolError> {
        require_root(cred, "knetstat")?;
        Ok(host.arp.entries())
    }

    /// Renders rows as a netstat-style table.
    pub fn render(rows: &[ConnRow]) -> String {
        let mut out =
            String::from("proto  local  remote               uid    pid    comm             via\n");
        for r in rows {
            out.push_str(&format!(
                "{:<6} {:<6} {:<20} {:<6} {:<6} {:<16} {}\n",
                r.proto.to_string(),
                r.local_port,
                r.remote,
                r.uid,
                r.pid,
                r.comm,
                r.via
            ));
        }
        out
    }
}

/// `trace` (`ktrace`) — the paper's missing tool: per-packet lifecycle
/// introspection across the whole dataplane with process attribution.
///
/// Where `ksniff` gives the *global view* (every frame on the wire) and
/// `knetstat` the *process view* (who owns which connection), `ktrace`
/// joins them per packet: one query shows a frame's full path — NIC
/// pipeline stages, NAT rewrites, ring DMA, notification, kernel
/// delivery — with the owning (uid, pid, comm) and per-stage timing,
/// filtered BPF-style by flow, owner, stage, or verdict.
pub mod trace {
    use super::*;
    use std::path::Path;
    use telemetry::{
        sort_file, DropCause, EventFileReader, FlowReport, FlowTracker, Header, Profile, SinkStats,
        Snapshot, SortStats, TraceEvent, TraceFilter, TrackerConfig,
    };

    fn pipeline(e: impl std::fmt::Display) -> ToolError {
        ToolError::Trace(e.to_string())
    }

    /// Starts (or restarts) lifecycle tracing.
    pub fn start(host: &mut Host, cred: &Cred) -> Result<(), ToolError> {
        require_root(cred, "ktrace")?;
        host.start_trace();
        Ok(())
    }

    /// Stops tracing; captured events stay queryable.
    pub fn stop(host: &mut Host, cred: &Cred) -> Result<(), ToolError> {
        require_root(cred, "ktrace")?;
        host.stop_trace();
        Ok(())
    }

    /// Returns every captured event matching `filter`, in emission
    /// order.
    pub fn query(
        host: &Host,
        cred: &Cred,
        filter: &TraceFilter,
    ) -> Result<Vec<TraceEvent>, ToolError> {
        require_root(cred, "ktrace")?;
        Ok(host.telemetry().query(filter))
    }

    /// Returns the full lifecycle of one frame id.
    pub fn lifecycle(
        host: &Host,
        cred: &Cred,
        frame_id: u64,
    ) -> Result<Vec<TraceEvent>, ToolError> {
        require_root(cred, "ktrace")?;
        Ok(host.telemetry().lifecycle(frame_id))
    }

    /// Returns the unified cross-layer metrics snapshot.
    pub fn metrics(host: &Host, cred: &Cred) -> Result<Snapshot, ToolError> {
        require_root(cred, "ktrace")?;
        Ok(host.metrics_snapshot())
    }

    /// `ktrace collect` — starts a durable collection under the named
    /// built-in profile (`full-lifecycle`, `drop-forensics`,
    /// `flow-churn`, `recovery`), streaming selected events into the
    /// event-series file at `path`.
    pub fn collect(
        host: &mut Host,
        cred: &Cred,
        profile_name: &str,
        path: &Path,
    ) -> Result<(), ToolError> {
        require_root(cred, "ktrace")?;
        let profile = Profile::builtin(profile_name).ok_or_else(|| {
            ToolError::Trace(format!(
                "unknown profile: {profile_name} (built-in: {})",
                Profile::builtin_names().join(", ")
            ))
        })?;
        host.start_collect(&profile, path).map_err(pipeline)
    }

    /// Ends a `ktrace collect`, closing the file cleanly (final ledger
    /// snapshot + fin record) and returning writer statistics.
    pub fn collect_stop(host: &mut Host, cred: &Cred) -> Result<SinkStats, ToolError> {
        require_root(cred, "ktrace")?;
        host.stop_collect()
            .map_err(pipeline)?
            .ok_or_else(|| ToolError::Trace("no collection is running".to_string()))
    }

    /// `ktrace sort` — rewrites a recorded file ordered by `(time, seq)`
    /// with the sorted header flag set. Entirely offline: needs only the
    /// file, no host.
    pub fn sort(input: &Path, output: &Path) -> Result<SortStats, ToolError> {
        sort_file(input, output).map_err(pipeline)
    }

    /// The offline forensic answer assembled by [`report`].
    #[derive(Clone, Debug)]
    pub struct Forensics {
        /// The recorded file's header (profile, generation, sortedness).
        pub header: Header,
        /// Per-flow drop forensics from the flow tracker.
        pub report: FlowReport,
        /// Nonzero per-cause drop totals from the file's final ledger
        /// snapshot, when the profile wrote one.
        pub ledger_drops: Option<Vec<(DropCause, u64)>>,
        /// Drop-conservation violations: causes where the ledger
        /// snapshot and the recorded events disagree (empty = every
        /// ledgered drop is accounted for in the file).
        pub conservation: Vec<String>,
    }

    /// `ktrace report` — replays a recorded file through the flow
    /// tracker and cross-checks drop conservation against the file's
    /// ledger snapshot. Entirely offline: answers "which flows dropped,
    /// where, and whose were they" from the file alone.
    pub fn report(path: &Path) -> Result<Forensics, ToolError> {
        report_with(path, TrackerConfig::default())
    }

    /// [`report`] with explicit tracker sizing (live-flow cap, idle GC
    /// horizon) for traces with huge flow churn.
    pub fn report_with(path: &Path, cfg: TrackerConfig) -> Result<Forensics, ToolError> {
        let mut reader = EventFileReader::open(path).map_err(pipeline)?;
        let header = reader.header.clone();
        let (tracker, ledger) = FlowTracker::from_reader(&mut reader, cfg).map_err(pipeline)?;
        let report = tracker.report();
        let mut conservation = Vec::new();
        let ledger_drops = ledger.as_ref().map(|l| {
            for cause in DropCause::ALL {
                let want = l.drop_counts[cause.index()];
                let got = tracker.drops_by_cause(cause);
                if want != got {
                    conservation.push(format!(
                        "drop conservation: {} — ledger {want} != recorded events {got}",
                        cause.name()
                    ));
                }
            }
            DropCause::ALL
                .iter()
                .filter(|c| l.drop_counts[c.index()] != 0)
                .map(|c| (*c, l.drop_counts[c.index()]))
                .collect()
        });
        Ok(Forensics {
            header,
            report,
            ledger_drops,
            conservation,
        })
    }

    /// Renders a [`Forensics`] for terminal output.
    pub fn render_report(f: &Forensics) -> String {
        let mut out = format!(
            "profile {} (generation {}, {})\n",
            f.header.profile,
            f.header.generation,
            if f.header.sorted {
                "sorted"
            } else {
                "unsorted"
            }
        );
        out.push_str(&f.report.render());
        match (&f.ledger_drops, f.conservation.is_empty()) {
            (Some(_), true) => out.push_str("drop conservation: ok (ledger == recorded events)\n"),
            (Some(_), false) => {
                for v in &f.conservation {
                    out.push_str(&format!("VIOLATION: {v}\n"));
                }
            }
            (None, _) => out.push_str("drop conservation: no ledger snapshot in file\n"),
        }
        out
    }

    /// Renders events as a human-readable trace, one line per stage,
    /// with the virtual-time delta from the previous stage of the *same
    /// frame* in the right-hand column.
    pub fn render(events: &[TraceEvent]) -> String {
        use std::collections::HashMap;
        let mut out = String::from(
            "frame     time_us      stage             verdict       owner              +delta_ns\n",
        );
        let mut last_at: HashMap<u64, sim::Time> = HashMap::new();
        for e in events {
            let delta = last_at
                .get(&e.frame_id)
                .map(|&prev| format!("{:+.1}", (e.at.0.saturating_sub(prev.0)) as f64 / 1000.0))
                .unwrap_or_else(|| "-".to_string());
            last_at.insert(e.frame_id, e.at);
            let owner = e
                .owner
                .as_ref()
                .map(|o| format!("{}/{}({})", o.uid, o.pid, o.comm))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{:<9} {:<12.3} {:<17} {:<13} {:<18} {}\n",
                e.frame_id,
                e.at.0 as f64 / 1e6,
                e.stage.name(),
                e.verdict.to_string(),
                owner,
                delta
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostConfig;
    use oskernel::Uid;
    use pkt::{Mac, PacketBuilder};
    use std::net::Ipv4Addr;

    fn host_with_conn() -> (Host, oskernel::Pid) {
        let mut h = Host::new(HostConfig::default());
        let bob = h.spawn(Uid(1001), "bob", "postgres");
        h.connect(
            bob,
            IpProto::UDP,
            5432,
            Ipv4Addr::new(10, 0, 0, 2),
            9000,
            false,
        )
        .unwrap();
        (h, bob)
    }

    #[test]
    fn unprivileged_users_are_refused_everywhere() {
        let (mut h, _) = host_with_conn();
        let bob = Cred::new(Uid(1001), "bob");
        assert_eq!(
            ksniff::start(&mut h, &bob, SnifferFilter::all(), Time::ZERO),
            Err(ToolError::PermissionDenied { tool: "ksniff" })
        );
        assert!(kfilter::list(&h, &bob).is_err());
        assert!(kqdisc::class_bytes(&h, &bob).is_err());
        assert!(knetstat::connections(&h, &bob).is_err());
        assert!(npolicy::status(&h, &bob).is_err());
    }

    #[test]
    fn knetstat_lists_fast_path_connections_with_attribution() {
        let (h, _) = host_with_conn();
        let rows = knetstat::connections(&h, &Cred::root()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].local_port, 5432);
        assert_eq!(rows[0].comm, "postgres");
        assert_eq!(rows[0].uid, 1001);
        assert_eq!(rows[0].via, "nic");
        let table = knetstat::render(&rows);
        assert!(table.contains("postgres"));
        assert!(table.contains("5432"));
    }

    #[test]
    fn ksniff_captures_with_attribution_via_control_plane() {
        let (mut h, _) = host_with_conn();
        let root = Cred::root();
        ksniff::start(&mut h, &root, SnifferFilter::all(), Time::ZERO).unwrap();
        let pkt = PacketBuilder::new()
            .ether(Mac::local(9), h.cfg.mac)
            .ipv4(Ipv4Addr::new(10, 0, 0, 2), h.cfg.ip)
            .udp(9000, 5432, b"query")
            .build();
        h.deliver_from_wire(&pkt, Time::ZERO);
        let entries = ksniff::dump(&mut h, &root).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].comm.as_deref(), Some("postgres"));
        ksniff::stop(&mut h, &root, Time::ZERO).unwrap();
    }

    #[test]
    fn top_arp_talkers_ranks_flooders() {
        use nicsim::sniff::Direction;
        let mk = |comm: &str, pid: u32, is_arp: bool| CaptureEntry {
            at: Time::ZERO,
            direction: Direction::Tx,
            len: 42,
            tuple: None,
            is_arp,
            summary: String::new(),
            uid: Some(1001),
            pid: Some(pid),
            comm: Some(comm.to_string()),
        };
        let mut entries = Vec::new();
        for _ in 0..50 {
            entries.push(mk("flooder", 99, true));
        }
        for _ in 0..3 {
            entries.push(mk("innocent", 7, true));
        }
        entries.push(mk("tcp-app", 8, false));
        let top = ksniff::top_arp_talkers(&entries);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], ("flooder".to_string(), 99, 50));
        assert_eq!(top[1], ("innocent".to_string(), 7, 3));
    }

    #[test]
    fn knetstat_arp_view_requires_root_and_lists_entries() {
        let (mut h, _) = host_with_conn();
        // Learn a neighbour through the kernel responder.
        let req =
            pkt::PacketBuilder::arp_request(Mac::local(9), Ipv4Addr::new(10, 0, 0, 2), h.cfg.ip);
        h.deliver_from_wire(&req, Time::ZERO);
        let rows = knetstat::arp_cache(&h, &Cred::root()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, Ipv4Addr::new(10, 0, 0, 2));
        assert!(knetstat::arp_cache(&h, &Cred::new(Uid(1001), "bob")).is_err());
    }

    #[test]
    fn ktrace_requires_root_and_traces_a_lifecycle() {
        use telemetry::{Stage, TraceFilter};
        let (mut h, _) = host_with_conn();
        let bob = Cred::new(Uid(1001), "bob");
        assert_eq!(
            trace::start(&mut h, &bob),
            Err(ToolError::PermissionDenied { tool: "ktrace" })
        );
        let root = Cred::root();
        trace::start(&mut h, &root).unwrap();
        let pkt = PacketBuilder::new()
            .ether(Mac::local(9), h.cfg.mac)
            .ipv4(Ipv4Addr::new(10, 0, 0, 2), h.cfg.ip)
            .udp(9000, 5432, b"query")
            .build();
        h.deliver_from_wire(&pkt, Time::ZERO);
        // Owner filter: everything postgres touched.
        let events = trace::query(&h, &root, &TraceFilter::any().with_comm("postgres")).unwrap();
        assert!(!events.is_empty());
        // The frame's lifecycle runs ingress → ring enqueue.
        let fid = events[0].frame_id;
        let life = trace::lifecycle(&h, &root, fid).unwrap();
        let stages: Vec<Stage> = life.iter().map(|e| e.stage).collect();
        assert_eq!(stages.first(), Some(&Stage::RxIngress));
        assert_eq!(stages.last(), Some(&Stage::RingEnqueue));
        let table = trace::render(&life);
        assert!(table.contains("rx_ingress"));
        assert!(table.contains("ring_enqueue"));
        // Unified metrics include NIC counters and trace ledger keys.
        let snap = trace::metrics(&h, &root).unwrap();
        assert_eq!(snap.counter("nic.rx.frames"), Some(1));
        assert_eq!(snap.counter("trace.stage.rx_ingress"), Some(1));
        assert!(h.audit().is_empty(), "audit: {:?}", h.audit());
    }

    #[test]
    fn ktrace_collect_sort_report_offline_forensics() {
        use telemetry::{DropCause, Stage};
        let (mut h, _) = host_with_conn();
        let root = Cred::root();
        let dir = std::env::temp_dir().join("norman_ktrace_forensics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("run.ntrace");
        let sorted = dir.join("run.sorted.ntrace");

        // Unknown profiles and unprivileged users are refused up front.
        let bob = Cred::new(Uid(1001), "bob");
        assert_eq!(
            trace::collect(&mut h, &bob, "drop-forensics", &raw),
            Err(ToolError::PermissionDenied { tool: "ktrace" })
        );
        match trace::collect(&mut h, &root, "no-such-profile", &raw) {
            Err(ToolError::Trace(msg)) => assert!(msg.contains("unknown profile")),
            other => panic!("expected trace error, got {other:?}"),
        }

        // Record: overrun the 2-slot ring so RingFull drops land in the
        // file with postgres attribution.
        trace::collect(&mut h, &root, "drop-forensics", &raw).unwrap();
        for i in 0..10u64 {
            let pkt = PacketBuilder::new()
                .ether(Mac::local(9), h.cfg.mac)
                .ipv4(Ipv4Addr::new(10, 0, 0, 2), h.cfg.ip)
                .udp(9000, 5432, b"query")
                .build();
            h.deliver_from_wire(&pkt, Time(i * 1_000_000));
        }
        let ring_drops = h.stats().ring_drops;
        assert!(ring_drops > 0, "overrun did not fill the ring");
        assert!(h.audit().is_empty(), "audit: {:?}", h.audit());
        let stats = trace::collect_stop(&mut h, &root).unwrap();
        assert!(stats.events > 0);
        assert_eq!(
            trace::collect_stop(&mut h, &root),
            Err(ToolError::Trace("no collection is running".to_string()))
        );

        // Offline from here on: sort, then report from the file alone.
        let sstats = trace::sort(&raw, &sorted).unwrap();
        assert_eq!(sstats.events, stats.events);
        let f = trace::report(&sorted).unwrap();
        assert!(f.header.sorted);
        assert_eq!(f.header.profile, "drop-forensics");
        assert!(
            f.conservation.is_empty(),
            "conservation violations: {:?}",
            f.conservation
        );
        assert_eq!(f.report.total_drops, ring_drops);
        // The top drop site names the stage, cause, flow, and owner.
        let site = &f.report.sites[0];
        assert_eq!(site.stage, Stage::RingEnqueue);
        assert_eq!(site.cause, DropCause::RingFull);
        assert_eq!(site.count, ring_drops);
        assert_eq!(site.tuple.dst_port, 5432);
        let owner = site.owner.as_ref().expect("drop site is attributed");
        assert_eq!(owner.uid, 1001);
        assert_eq!(owner.comm, "postgres");
        assert_eq!(f.report.owners[0].drops, ring_drops);
        let rendered = trace::render_report(&f);
        assert!(rendered.contains("drop conservation: ok"));
        assert!(rendered.contains("postgres"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kfilter_roundtrip() {
        let (mut h, _) = host_with_conn();
        let root = Cred::root();
        kfilter::reserve(
            &mut h,
            &root,
            PortReservation::new(5432, Uid(1001)),
            Time::ZERO,
        )
        .unwrap();
        let rules = kfilter::list(&h, &root).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].port, 5432);
    }

    #[test]
    fn kqdisc_installs_and_reports() {
        let (mut h, _) = host_with_conn();
        let root = Cred::root();
        kqdisc::install_wfq(
            &mut h,
            &root,
            ShapingPolicy::new(vec![(Uid(1001), 2.0)]),
            Time::ZERO,
        )
        .unwrap();
        let bytes = kqdisc::class_bytes(&h, &root).unwrap();
        assert_eq!(bytes.len(), 2);
    }

    #[test]
    fn npolicy_reports_generation_and_history() {
        let (mut h, _) = host_with_conn();
        let root = Cred::root();
        npolicy::apply(&mut h, &root, Time::ZERO, |p| {
            p.reservations.push(PortReservation::new(5432, Uid(1001)));
        })
        .unwrap();
        npolicy::apply(&mut h, &root, Time::from_us(5), |p| {
            p.shaping = Some(ShapingPolicy::new(vec![(Uid(1001), 2.0)]));
        })
        .unwrap();
        let s = npolicy::status(&h, &root).unwrap();
        assert_eq!(s.generation, 2);
        assert_eq!(s.commits, 2);
        assert_eq!(s.rollbacks, 0);
        assert_eq!(s.reservations, 1);
        assert!(s.shaping);
        assert_eq!(s.history.len(), 2);
        let report = npolicy::render(&s);
        assert!(report.contains("generation 2"));
        assert!(report.contains("committed"));
    }
}
