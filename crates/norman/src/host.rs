//! The Norman host: one simulated machine running KOPI.
//!
//! [`Host`] owns every component of Figure 1 and exposes two faces:
//!
//! * **Control plane** (kernel): `spawn`, `connect`, `close`,
//!   `reserve_port`, `install_shaping`, sniffer control. These are the
//!   only paths that configure the NIC, and they consult the process
//!   table — policies are expressed over users and processes, not queues.
//! * **Dataplane** (library + NIC): `deliver_from_wire`, `app_send`,
//!   `app_recv`, `pump_tx`. Data never crosses the kernel on these paths;
//!   costs come from the ring/LLC model and the NIC pipeline.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use memsim::{DescRing, Llc, LlcConfig, LlcPartitionPlan, LlcStats, MemCosts, MmioBus};
use nicsim::pipeline::{DropReason, TxDeparture};
use nicsim::{
    ConnId, NatTable, NicConfig, NicError, Notification, NotifyKind, RxDisposition, SmartNic,
    SnifferFilter, TxDisposition,
};
use oskernel::{
    ArpCache, CgroupId, CgroupTree, Cred, NetStack, Pid, ProcessTable, RxOutcome, Scheduler, Uid,
};
use pkt::{BufArena, FiveTuple, IpProto, Mac, Packet};
use sim::fault::{CrashInjector, OpFaultInjector};
use sim::{Dur, Time};
use telemetry::{
    CollectError, CollectorRegistry, DropCause, FileError, Owner, Profile, RecoveryKind, Registry,
    SinkStats, Snapshot, Stage, Telemetry, TraceEvent, TraceVerdict,
};

use crate::ctrl::{ControlPlane, CtrlError, PolicyStore, StagedCommit};
use crate::policy::{PortReservation, ShapingPolicy};
use crate::workers::{DeliverJob, RecvReply, SendReply, ShardOutcome, WorkerError, WorkerPool};

/// Host configuration.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// NIC configuration.
    pub nic: NicConfig,
    /// LLC geometry (the DDIO way-cap lives here).
    pub llc: LlcConfig,
    /// Memory latencies.
    pub mem: MemCosts,
    /// Ring slots per direction per connection.
    pub ring_slots: usize,
    /// Payload bytes per ring slot.
    pub ring_slot_bytes: usize,
    /// This host's IP.
    pub ip: Ipv4Addr,
    /// This host's MAC.
    pub mac: Mac,
    /// Share one ring pair per *process* instead of per connection — the
    /// §5 ablation for scaling past per-connection semantics.
    pub shared_rings: bool,
    /// How many ring operations share one MMIO doorbell write (batched
    /// head/tail updates).
    pub doorbell_batch: u64,
    /// Frames the host buffers for retry while the NIC dataplane is down
    /// for a bitstream reprogram. Beyond this, sends are refused
    /// (backpressure) rather than growing memory unboundedly.
    pub tx_retry_cap: usize,
    /// Slots in the host's frame buffer arena (each `ring_slot_bytes`
    /// wide). Harness-built and wire-adopted frames live here so the
    /// whole RX path — NIC, rings, sniffer taps, app delivery — shares
    /// one buffer per frame. Exhaustion falls back to heap frames
    /// (correct, just not pooled), so sizing is a performance knob.
    pub arena_slots: usize,
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig {
            nic: NicConfig::default(),
            llc: LlcConfig::xeon_default(),
            mem: MemCosts::default(),
            ring_slots: 2,
            ring_slot_bytes: 2048,
            ip: Ipv4Addr::new(10, 0, 0, 1),
            mac: Mac::local(1),
            shared_rings: false,
            doorbell_batch: 4,
            tx_retry_cap: 64,
            arena_slots: 4096,
        }
    }
}

/// Why a connection could not be opened.
#[derive(Debug)]
pub enum ConnectError {
    /// The pid does not exist.
    NoSuchProcess(Pid),
    /// A port reservation denies this (uid, comm).
    PolicyDenied {
        /// The requested port.
        port: u16,
        /// The requesting user.
        uid: Uid,
    },
    /// The NIC could not allocate resources (SRAM exhaustion — §5).
    NicResources(String),
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::NoSuchProcess(pid) => write!(f, "no such process {pid}"),
            ConnectError::PolicyDenied { port, uid } => {
                write!(f, "port {port} is reserved; denied for {uid}")
            }
            ConnectError::NicResources(e) => write!(f, "NIC resource exhaustion: {e}"),
        }
    }
}

impl std::error::Error for ConnectError {}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum RingKey {
    Conn(ConnId),
    Proc(Pid),
}

/// See [`sim::FastMap`]: hot-path maps keyed by simulation-internal
/// values (iteration order never relied on; exposure paths sort).
pub(crate) use sim::FastMap;

/// A host ring whose descriptors are the frame handles themselves: the
/// slot a frame occupies in the memory model is paired with the
/// [`Packet`] that owns its bytes, so RX→app delivery moves a refcount,
/// never a payload.
pub(crate) type PktRing = DescRing<Packet>;

impl RingKey {
    /// A total order so worker shards can drain their rings
    /// deterministically regardless of hash-map iteration order.
    pub(crate) fn order(&self) -> (u8, u64) {
        match self {
            RingKey::Conn(c) => (0, c.0),
            RingKey::Proc(p) => (1, u64::from(p.0)),
        }
    }
}

/// One open connection.
#[derive(Clone, Debug)]
pub struct Connection {
    /// NIC connection id.
    pub id: ConnId,
    /// Owning process.
    pub pid: Pid,
    /// Owning user.
    pub uid: Uid,
    /// RX-direction five-tuple (remote → local).
    pub tuple: FiveTuple,
    /// Whether notifications (blocking I/O) are enabled.
    pub notify: bool,
    ring_key: RingKey,
}

/// What happened to a wire-delivered frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryOutcome {
    /// DMA'd into a connection's RX ring.
    FastPath(ConnId),
    /// The matched ring was full; the frame was dropped.
    RingFull(ConnId),
    /// Handled by the kernel software stack.
    SlowPath,
    /// Dropped by NIC policy or during reprogramming.
    Dropped,
}

/// Report for one delivered frame.
#[derive(Clone, Copy, Debug)]
pub struct DeliveryReport {
    /// Where it went.
    pub outcome: DeliveryOutcome,
    /// Memory-system time (DMA + cache effects).
    pub mem_cost: Dur,
    /// NIC pipeline latency.
    pub nic_latency: Dur,
    /// Kernel CPU consumed (slow path only).
    pub kernel_cpu: Dur,
    /// A process that was woken by this frame.
    pub woke: Option<Pid>,
}

/// Result of an `app_recv`.
#[derive(Clone, Debug)]
pub struct RecvResult {
    /// Payload length received, if any.
    pub len: Option<usize>,
    /// The received frame itself — the very buffer the NIC wrote,
    /// handed to the application as a refcounted handle (zero-copy
    /// delivery; `len == pkt.len()` when both are set).
    pub pkt: Option<Packet>,
    /// Application CPU consumed.
    pub cpu: Dur,
    /// Whether the process blocked (notify connections only).
    pub blocked: bool,
}

/// Result of an `app_send`.
#[derive(Clone, Copy, Debug)]
pub struct SendResult {
    /// Whether the frame was accepted for transmission.
    pub queued: bool,
    /// Whether the frame was buffered for retry (dataplane down for a
    /// reprogram; it will be re-offered on recovery by
    /// [`Host::pump_tx`]). Mutually exclusive with `queued`.
    pub deferred: bool,
    /// Application CPU consumed.
    pub cpu: Dur,
}

/// Host-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostStats {
    /// Frames delivered on the fast path.
    pub fast_delivered: u64,
    /// Frames dropped because an RX ring was full.
    pub ring_drops: u64,
    /// Frames that took the software slow path.
    pub slowpath: u64,
    /// Frames dropped by NIC policy.
    pub nic_dropped: u64,
    /// Frames the NIC dropped as malformed (unparseable or failed
    /// checksum verification) — corrupted-on-the-wire traffic that must
    /// never reach the flow table.
    pub malformed_dropped: u64,
    /// Frames delivered for a connection whose rings the host no longer
    /// has (stale NIC flow entry); punted to the slow path.
    pub ring_missing: u64,
    /// Connections refused for NIC resources.
    pub conns_refused: u64,
    /// TX frames buffered for retry during a reprogram outage.
    pub tx_deferred: u64,
    /// Deferred TX frames successfully re-offered after recovery.
    pub tx_retry_flushed: u64,
    /// Deferred TX frames lost: retry buffer full (backpressure) or the
    /// connection vanished before recovery.
    pub tx_retry_dropped: u64,
    /// Frames demoted to the software slow path by overload degradation
    /// (low-priority flows while the degrade detector is engaged).
    pub degraded_slowpath: u64,
    /// Frames rerouted through the slow path because their owning worker
    /// shard crashed mid-batch — accounted, never silently dropped.
    pub worker_rerouted: u64,
    /// Worker shards restarted by the supervisor after a panic.
    pub worker_restarts: u64,
}

/// The Norman host.
pub struct Host {
    /// Configuration.
    pub cfg: HostConfig,
    /// Process table.
    pub procs: ProcessTable,
    /// Cgroup hierarchy.
    pub cgroups: CgroupTree,
    /// Scheduler and CPU meters.
    pub sched: Scheduler,
    /// Last-level cache (with DDIO way-cap). Single-queue traffic goes
    /// through this cache; in multi-queue mode each worker shard owns a
    /// way-disjoint partition of it instead (see [`Host::run_workers`]).
    llc: Llc,
    /// MMIO accounting.
    pub mmio: MmioBus,
    /// The SmartNIC.
    pub nic: SmartNic,
    /// The software slow path.
    pub stack: NetStack,
    /// The kernel ARP cache (ARP is a slow-path protocol under KOPI).
    pub arp: ArpCache,
    conns: FastMap<ConnId, Connection>,
    listeners: FastMap<ConnId, (Pid, IpProto, u16)>,
    pending_accepts: FastMap<ConnId, std::collections::VecDeque<FiveTuple>>,
    rings: FastMap<RingKey, (PktRing, PktRing)>,
    tx_retry: VecDeque<(ConnId, Packet)>,
    /// The pooled frame arena: one slab of `arena_slots x ring_slot_bytes`
    /// backing every arena-built or wire-adopted frame on this host.
    arena: BufArena,
    /// Arena-backed descriptors resident in worker-shard rings, as summed
    /// at the most recent quiesce barrier (audit ledger input).
    shard_arena_resident: u64,
    /// The unified control plane: the only writer of dataplane policy.
    ctrl: ControlPlane,
    /// The kernel-owned NAT table, created and populated solely by
    /// `ctrl` when NAT policy is in force.
    nat: Option<NatTable>,
    next_ring_index: u64,
    ring_ops_since_doorbell: u64,
    /// Kernel CPU consumed by the slow path and control plane.
    pub kernel_cpu: Dur,
    stats: HostStats,
    /// The shared telemetry hub every layer (NIC, stack, host) emits into.
    tel: Telemetry,
    /// Frame ids currently sitting in each RX ring, FIFO order — lets
    /// `app_recv` attribute the dequeued slot to the frame that filled it
    /// (rings carry bytes, not descriptors). Maintained only while
    /// tracing is enabled.
    ring_frame_ids: FastMap<RingKey, VecDeque<u64>>,
    /// Host counters at the moment tracing was last enabled, so audits
    /// compare the event ledger against counter *deltas*.
    tel_baseline: HostStats,
    /// The per-queue worker fleet, when multi-queue mode is active
    /// ([`Host::run_workers`]). While set, every ring pair lives inside
    /// a worker shard and the maps above hold only non-sharded state.
    workers: Option<WorkerPool>,
    /// Overload-degradation detector state (engaged flag + the current
    /// pressure window), driven by the committed
    /// [`DegradationPolicy`](crate::ctrl::DegradationPolicy).
    degrade: DegradeState,
    /// `nic.stats().resets` value up to which kernel flow state
    /// (connections, listeners, NAT SRAM charges) has been restored —
    /// lets [`Host::maybe_reconcile`] rebuild the flow table exactly
    /// once per NIC reset, before the control plane reinstalls policy.
    resets_restored: u64,
    /// Cumulative LLC traffic per worker shard, merged at every quiesce
    /// barrier — the `llc.shard.<n>.*` metrics. Survives worker
    /// stop/start cycles.
    shard_llc: Vec<LlcStats>,
}

/// Watermark-detector state for overload degradation. The window counts
/// fast-path delivery attempts; a window where the pressured fraction
/// reaches the policy's high watermark engages degraded mode, and an
/// engaged detector promotes back once a window's pressured fraction
/// falls to the low watermark. Demoted deliveries count as unpressured
/// window entries, so a fully demoted workload still drains the window
/// and can promote.
#[derive(Clone, Copy, Debug, Default)]
struct DegradeState {
    engaged: bool,
    window_seen: u64,
    window_pressured: u64,
}

impl Host {
    /// Creates a host.
    ///
    /// One telemetry hub is shared by every layer — the NIC, the
    /// software stack, and the host's own ring bookkeeping all emit into
    /// it, so a single frame id threads the full lifecycle. Tracing
    /// starts disabled (free dataplane) unless `NORMAN_TELEMETRY=1` is
    /// set in the environment.
    pub fn new(cfg: HostConfig) -> Host {
        let tel = Telemetry::new();
        if std::env::var("NORMAN_TELEMETRY").as_deref() == Ok("1") {
            tel.set_enabled(true);
        }
        let mut nic = SmartNic::new(cfg.nic.clone());
        nic.set_telemetry(tel.clone());
        let mut stack = NetStack::new();
        stack.set_telemetry(tel.clone());
        Host {
            procs: ProcessTable::new(),
            cgroups: CgroupTree::new(),
            sched: Scheduler::with_defaults(),
            llc: Llc::new(cfg.llc.clone()),
            mmio: MmioBus::new(),
            nic,
            stack,
            arp: ArpCache::new(cfg.ip, cfg.mac),
            conns: FastMap::default(),
            listeners: FastMap::default(),
            pending_accepts: FastMap::default(),
            rings: FastMap::default(),
            tx_retry: VecDeque::new(),
            arena: BufArena::new(cfg.arena_slots, cfg.ring_slot_bytes),
            shard_arena_resident: 0,
            ctrl: ControlPlane::new(tel.clone()),
            nat: None,
            next_ring_index: 0,
            ring_ops_since_doorbell: 0,
            kernel_cpu: Dur::ZERO,
            stats: HostStats::default(),
            tel,
            ring_frame_ids: FastMap::default(),
            tel_baseline: HostStats::default(),
            workers: None,
            degrade: DegradeState::default(),
            resets_restored: 0,
            shard_llc: Vec::new(),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Multi-queue workers
    // ------------------------------------------------------------------

    /// Starts multi-queue mode: one worker thread per NIC RSS queue,
    /// each owning the ring pairs of every connection whose flow hash
    /// steers to its queue. `n` must equal the NIC's configured queue
    /// count so ownership is 1:1.
    ///
    /// Existing rings migrate into their owning shards; new connections
    /// are placed by the live RSS indirection table. Shard-local
    /// counters, CPU time, and trace events merge back into the host at
    /// the [`Host::quiesce`] barrier, which policy commits, reconciles,
    /// and audits all take automatically.
    ///
    /// With `n == 1` the worker path is byte-identical to the
    /// single-queue [`Host::pump`] path on a fresh host.
    pub fn run_workers(&mut self, n: usize) -> Result<(), WorkerError> {
        if self.workers.is_some() {
            return Err(WorkerError::AlreadyRunning);
        }
        if self.cfg.shared_rings {
            return Err(WorkerError::SharedRings);
        }
        let queues = self.nic.num_queues();
        if n == 0 || n != queues {
            return Err(WorkerError::QueueMismatch { workers: n, queues });
        }
        // Shared-nothing LLC: carve the host cache into way-disjoint
        // per-shard partitions, each with its own DDIO mask (floored at
        // one way per shard), so one shard's ring working set cannot
        // evict another's and no shard's DMA is forced to DRAM.
        let plan = LlcPartitionPlan::split(self.cfg.llc.clone(), n);
        if self.shard_llc.len() < n {
            self.shard_llc.resize_with(n, LlcStats::default);
        }
        let mut pool = WorkerPool::new(n, plan, self.cfg.mem.clone());
        let mut placements: Vec<(RingKey, usize)> = self
            .conns
            .values()
            .map(|c| (c.ring_key, self.shard_for_tuple(&c.tuple, n)))
            .collect();
        placements.sort_unstable_by_key(|(k, _)| k.order());
        for (key, shard) in placements {
            if let Some((rx, tx)) = self.rings.remove(&key) {
                let fids = self.ring_frame_ids.remove(&key).unwrap_or_default();
                pool.install(shard, key, rx, tx, fids);
            }
        }
        self.workers = Some(pool);
        Ok(())
    }

    /// Stops multi-queue mode: quiesces every shard, folds the rings
    /// back into the host, and joins the worker threads. The host then
    /// behaves exactly as before [`Host::run_workers`].
    pub fn stop_workers(&mut self) {
        self.quiesce();
        let Some(mut pool) = self.workers.take() else {
            return;
        };
        for e in pool.drain_all() {
            if !e.fids.is_empty() {
                self.ring_frame_ids.insert(e.key, e.fids);
            }
            self.rings.insert(e.key, (e.rx, e.tx));
        }
        pool.stop();
    }

    /// Whether multi-queue worker mode is active.
    pub fn workers_active(&self) -> bool {
        self.workers.is_some()
    }

    /// How many worker shards are running (0 in single-queue mode).
    pub fn num_workers(&self) -> usize {
        self.workers.as_ref().map_or(0, |p| p.num_workers())
    }

    /// The quiesce barrier: every worker drains its delivery counters,
    /// busy time, and buffered trace events back into the host — stats
    /// merge into [`Host::stats`], busy time lands on the per-core CPU
    /// meters, and events are absorbed into the telemetry hub with
    /// their original generation stamps. Returns the number of frames
    /// still resident in shard RX rings (the audit's occupancy ledger).
    ///
    /// Policy commits, bitstream reconciles, audits, and trace restarts
    /// all quiesce first, so a generation swap is atomic across shards.
    /// A no-op (returning 0) in single-queue mode.
    pub fn quiesce(&mut self) -> u64 {
        let Some(pool) = self.workers.as_mut() else {
            return 0;
        };
        let mut queued = 0;
        let mut shard_arena = 0;
        for (core, rep) in pool.quiesce().into_iter().enumerate() {
            self.stats.fast_delivered += rep.stats.fast_delivered;
            self.stats.ring_drops += rep.stats.ring_drops;
            self.stats.ring_missing += rep.stats.ring_missing;
            self.sched.charge_core_busy(core, rep.busy);
            self.shard_llc[core].absorb(&rep.llc);
            self.tel.absorb(rep.events);
            queued += rep.queued_fids;
            shard_arena += rep.arena_resident;
        }
        self.shard_arena_resident = shard_arena;
        self.absorb_worker_crashes(Time::ZERO);
        queued
    }

    /// Folds supervisor crash records into host accounting: restart
    /// counters, the backoff CPU penalty on the crashed shard's core,
    /// and `ShardPanic`/`ShardRestart` recovery events.
    fn absorb_worker_crashes(&mut self, now: Time) {
        let Some(pool) = self.workers.as_mut() else {
            return;
        };
        for crash in pool.take_crashes() {
            self.stats.worker_restarts += 1;
            self.sched.charge_core_busy(crash.shard, crash.penalty);
            self.tel.record_recovery(
                now,
                RecoveryKind::ShardPanic,
                format!("shard {}: {}", crash.shard, crash.payload),
            );
            self.tel.record_recovery(
                now,
                RecoveryKind::ShardRestart,
                format!(
                    "shard {} restart #{} (backoff {})",
                    crash.shard, crash.restarts, crash.penalty
                ),
            );
        }
    }

    /// Injects a panic into worker shard `shard` (chaos testing). The
    /// supervisor catches it synchronously: the shard's rings and
    /// counters are salvaged, a replacement shard is serving by the time
    /// this returns, and the crash is fully accounted. Always returns
    /// [`WorkerError::ShardPanicked`] describing the crash it caused
    /// (or [`WorkerError::NotRunning`] outside multi-queue mode).
    pub fn inject_worker_panic(
        &mut self,
        shard: usize,
        msg: &str,
        now: Time,
    ) -> Result<(), WorkerError> {
        let Some(pool) = self.workers.as_mut() else {
            return Err(WorkerError::NotRunning);
        };
        pool.inject_panic(shard, msg);
        self.absorb_worker_crashes(now);
        Err(WorkerError::ShardPanicked {
            shard,
            payload: msg.to_string(),
        })
    }

    /// Total worker-shard restarts performed by the supervisor.
    pub fn worker_restarts(&self) -> u64 {
        self.workers.as_ref().map_or(0, |p| p.total_restarts())
    }

    /// Which shard owns a connection with this RX tuple under the live
    /// RSS indirection table (modulo the worker count, so a policy that
    /// shrinks the queue set cannot strand a ring without an owner).
    fn shard_for_tuple(&self, tuple: &FiveTuple, n: usize) -> usize {
        usize::from(self.nic.rss().queue_for(pkt::meta::flow_hash_of(tuple))) % n
    }

    /// Re-shards ring ownership after a policy transaction may have
    /// changed the RSS steering. Runs under the quiesce barrier the
    /// caller already took; a commit that left the table unchanged
    /// reshuffles rings between shards without losing any state.
    fn rebalance_workers(&mut self) {
        let Some(pool) = self.workers.take() else {
            return;
        };
        let n = pool.num_workers();
        let assign: HashMap<RingKey, usize> = self
            .conns
            .values()
            .map(|c| (c.ring_key, self.shard_for_tuple(&c.tuple, n)))
            .collect();
        let mut pool = pool;
        pool.rebalance(&assign);
        self.workers = Some(pool);
    }

    /// Returns host counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// The host-side LLC (single-queue traffic; worker shards own
    /// private partitions instead).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Mutable access to the host-side LLC (benchmarks model application
    /// compute phases by sweeping working sets through it).
    pub fn llc_mut(&mut self) -> &mut Llc {
        &mut self.llc
    }

    /// Cumulative LLC traffic of worker shard `i`, as merged at quiesce
    /// barriers.
    pub fn shard_llc_stats(&self, i: usize) -> LlcStats {
        self.shard_llc.get(i).copied().unwrap_or_default()
    }

    /// Returns the shared telemetry handle (the hub every layer emits
    /// into).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Starts (or restarts) per-packet lifecycle tracing: clears the
    /// event buffer, rebaselines every layer's counters, and enables the
    /// hub. The `ktrace` analogue of `tcpdump -i any` + `strace` in one.
    pub fn start_trace(&mut self) {
        self.quiesce();
        self.tel.clear();
        self.ring_frame_ids.clear();
        if let Some(pool) = self.workers.as_mut() {
            pool.clear_trace();
        }
        self.tel.set_enabled(true);
        self.nic.mark_telemetry_baseline();
        self.tel_baseline = self.stats;
    }

    /// Stops tracing; the captured events remain queryable.
    pub fn stop_trace(&mut self) {
        self.tel.set_enabled(false);
    }

    /// Starts a durable collection: like [`Host::start_trace`], but every
    /// event the `profile` selects also streams into the event-series
    /// file at `path` (profile collectors resolved against the built-in
    /// [`CollectorRegistry`]). Memory stays bounded — events flow through
    /// the hub's fixed ring and one file buffer; call
    /// [`Host::spill_trace`] periodically to checkpoint the ledger and
    /// push bytes to the OS.
    pub fn start_collect(
        &mut self,
        profile: &Profile,
        path: &std::path::Path,
    ) -> Result<(), CollectError> {
        self.start_trace();
        if let Err(e) = self
            .tel
            .start_sink(path, profile, &CollectorRegistry::builtin())
        {
            self.stop_trace();
            return Err(e);
        }
        Ok(())
    }

    /// A collection spill point: takes the quiesce barrier (so worker
    /// shard events buffered since the last barrier reach the hub and
    /// therefore the file), writes a ledger snapshot when the profile
    /// asked for one, and flushes the file. Bounds collection memory to
    /// the inter-spill event volume. No-op when no collection is active.
    pub fn spill_trace(&mut self) -> Result<(), FileError> {
        self.quiesce();
        self.tel.spill_sink()
    }

    /// Stops a collection: merges outstanding worker events, writes the
    /// final ledger snapshot and fin record, detaches the sink, and
    /// disables tracing. Returns writer statistics (`None` when no
    /// collection was active). The in-memory buffer remains queryable,
    /// exactly like [`Host::stop_trace`].
    pub fn stop_collect(&mut self) -> Result<Option<SinkStats>, FileError> {
        self.quiesce();
        let stats = self.tel.finish_sink();
        self.stop_trace();
        stats
    }

    fn owner_of(&self, pid: Pid) -> Option<Owner> {
        self.procs
            .get(pid)
            .map(|p| Owner::new(p.cred.uid.0, pid.0, &p.comm))
    }

    /// Cross-checks the telemetry event ledger against the host's and
    /// NIC's independently maintained counters. Returns every violated
    /// invariant (empty = consistent). The trace ledger gives the audit
    /// a second, structurally different account of the same dataplane,
    /// so a bug has to corrupt both in the same way to hide.
    ///
    /// In multi-queue mode the audit first takes the quiesce barrier, so
    /// shard-local counters and events are merged before any ledger is
    /// compared — a frame resident in shard *k*'s rings counts toward
    /// occupancy exactly like one in a host-owned ring.
    pub fn audit(&mut self) -> Vec<String> {
        let shard_queued = self.quiesce();
        let mut violations = self.nic.audit();
        // Third ledger: NIC-resident policy state vs the kernel store.
        violations.extend(self.ctrl.audit(&self.nic, self.nat.as_ref()));
        // Way conservation: the per-shard partitions must tile the donor
        // cache exactly (no way lost, none double-owned).
        if let Some(pool) = self.workers.as_ref() {
            violations.extend(pool.plan().audit());
        }
        // Arena conservation: every live slot must be reachable from some
        // resident handle — host rings, shard rings (summed at the quiesce
        // barrier above), kernel socket queues, or the TX retry buffer. A
        // live count above residency means a leaked (unreachable) slot.
        // Residency can legitimately exceed liveness: many descriptors may
        // share one slot (taps, redeliveries), and heap-backed frames also
        // occupy descriptors.
        let live = self.arena.live() as u64;
        let resident = self
            .rings
            .values()
            .flat_map(|(rx, tx)| rx.iter_descs().chain(tx.iter_descs()))
            .filter(|p| p.is_arena())
            .count() as u64
            + self.shard_arena_resident
            + self.stack.arena_resident() as u64
            + self.tx_retry.iter().filter(|(_, p)| p.is_arena()).count() as u64;
        if live > resident {
            violations.push(format!(
                "arena occupancy: {live} live slots > {resident} resident handles (leak)"
            ));
        }
        if !self.tel.is_enabled() {
            return violations;
        }
        let mut check = |what: &str, ledger: u64, counters: u64| {
            if ledger != counters {
                violations.push(format!(
                    "telemetry {what}: ledger {ledger} != counters {counters}"
                ));
            }
        };
        let d = |now: u64, base: u64| now.saturating_sub(base);
        let ring_full = self.tel.drop_count(DropCause::RingFull);
        let ring_enq_pass = self
            .tel
            .stage_count(Stage::RingEnqueue)
            .saturating_sub(ring_full);
        check(
            "ring enqueue",
            ring_enq_pass,
            d(self.stats.fast_delivered, self.tel_baseline.fast_delivered),
        );
        check(
            "ring-full drops",
            ring_full,
            d(self.stats.ring_drops, self.tel_baseline.ring_drops),
        );
        let queued: u64 = self
            .ring_frame_ids
            .values()
            .map(|q| q.len() as u64)
            .sum::<u64>()
            + shard_queued;
        check(
            "ring occupancy",
            ring_enq_pass.saturating_sub(self.tel.stage_count(Stage::RingDequeue)),
            queued,
        );
        violations
    }

    /// Builds one unified metrics snapshot across every layer: NIC
    /// pipeline counters and stage histograms, scheduler classes,
    /// software-stack counters, host delivery counters, and the trace
    /// ledger itself. The single structured document the paper's
    /// "one place to look" management tools read.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut reg = Registry::new();
        self.nic.fill_registry(&mut reg);
        self.stack.fill_registry(&mut reg);
        self.tel.fill_registry(&mut reg);
        self.ctrl.fill_registry(&mut reg);
        if let Some(nat) = &self.nat {
            nat.fill_registry(&mut reg);
        }
        reg.set_counter("host.fast_delivered", self.stats.fast_delivered);
        reg.set_counter("host.ring_drops", self.stats.ring_drops);
        reg.set_counter("host.slowpath", self.stats.slowpath);
        reg.set_counter("host.nic_dropped", self.stats.nic_dropped);
        reg.set_counter("host.malformed_dropped", self.stats.malformed_dropped);
        reg.set_counter("host.ring_missing", self.stats.ring_missing);
        reg.set_counter("host.conns_refused", self.stats.conns_refused);
        reg.set_counter("host.tx_deferred", self.stats.tx_deferred);
        reg.set_counter("host.tx_retry_flushed", self.stats.tx_retry_flushed);
        reg.set_counter("host.tx_retry_dropped", self.stats.tx_retry_dropped);
        reg.set_counter("host.degraded_slowpath", self.stats.degraded_slowpath);
        reg.set_counter("host.worker_rerouted", self.stats.worker_rerouted);
        reg.set_counter("host.worker_restarts", self.stats.worker_restarts);
        reg.set_counter("host.degraded", u64::from(self.degrade.engaged));
        reg.set_counter("host.connections", self.conns.len() as u64);
        reg.set_counter("host.tx_retry_len", self.tx_retry.len() as u64);
        reg.set_counter("host.workers", self.num_workers() as u64);
        reg.set_gauge("host.kernel_cpu_us", self.kernel_cpu.as_us_f64());
        reg.set_counter("host.arena_live", self.arena.live() as u64);
        reg.set_counter("host.arena_slots", self.arena.slots() as u64);
        let llc = self.llc.stats();
        reg.set_counter("llc.ddio_evictions", llc.ddio_evictions);
        reg.set_counter("llc.dma_hits", llc.dma_hits);
        reg.set_counter("llc.dma_misses", llc.dma_misses);
        for (i, s) in self.shard_llc.iter().enumerate() {
            reg.set_counter(&format!("llc.shard.{i}.ddio_evictions"), s.ddio_evictions);
            reg.set_counter(&format!("llc.shard.{i}.dma_hits"), s.dma_hits);
            reg.set_counter(&format!("llc.shard.{i}.dma_misses"), s.dma_misses);
        }
        reg.snapshot()
    }

    /// Returns how many TX frames currently wait in the reprogram-outage
    /// retry buffer.
    pub fn tx_retry_len(&self) -> usize {
        self.tx_retry.len()
    }

    /// The host's pooled frame arena. Harnesses build frames here
    /// (via [`pkt::PacketBuilder::build_in`]) so injection is zero-copy
    /// end to end; tests read [`pkt::BufArena::live`] to assert the
    /// pool drains back to zero.
    pub fn arena(&self) -> &BufArena {
        &self.arena
    }

    /// Adopts raw wire bytes into the host arena, falling back to a
    /// heap-backed frame when the pool is exhausted (correct either
    /// way; only pooling is lost). This is the ingress edge: everything
    /// downstream — NIC, rings, taps, app delivery — shares the one
    /// buffer written here.
    pub fn adopt_frame(&self, bytes: &[u8]) -> Packet {
        match self.arena.adopt(bytes) {
            Some(frame) => Packet::from_arena(frame),
            None => Packet::from_bytes(bytes.to_vec()),
        }
    }

    /// Returns an open connection.
    pub fn connection(&self, id: ConnId) -> Option<&Connection> {
        self.conns.get(&id)
    }

    /// Returns the number of open connections.
    pub fn num_connections(&self) -> usize {
        self.conns.len()
    }

    // ------------------------------------------------------------------
    // Control plane
    // ------------------------------------------------------------------

    /// Spawns a process for `uid`.
    pub fn spawn(&mut self, uid: Uid, user: &str, comm: &str) -> Pid {
        self.procs.spawn(Cred::new(uid, user), comm, CgroupId::ROOT)
    }

    /// Spawns a process inside a cgroup.
    pub fn spawn_in_cgroup(&mut self, uid: Uid, user: &str, comm: &str, cg: CgroupId) -> Pid {
        self.procs.spawn(Cred::new(uid, user), comm, cg)
    }

    /// Mutates the kernel policy store inside a two-phase transaction:
    /// the mutated store is compiled and verified (phase 1), then swapped
    /// onto the NIC atomically under a new generation (phase 2). On any
    /// failure — compile rejection, frozen dataplane, or a mid-commit
    /// fault — the store, the NIC, and the generation are exactly as
    /// before. Returns the new generation.
    ///
    /// This is the *only* path that changes dataplane policy.
    pub fn update_policy(
        &mut self,
        now: Time,
        mutate: impl FnOnce(&mut PolicyStore),
    ) -> Result<u64, CtrlError> {
        self.quiesce();
        let ops_before = self.ctrl.stats().apply_ops;
        let Host {
            ref mut ctrl,
            ref mut nic,
            ref mut nat,
            ..
        } = *self;
        let result = ctrl.update(nic, nat, now, mutate);
        self.charge_policy_ops(ops_before);
        self.rebalance_workers();
        result
    }

    /// Phase 1 only: compiles and verifies a mutated copy of the policy
    /// store without touching the NIC or the live store. Commit the
    /// result with [`Host::commit_staged_policy`].
    pub fn stage_policy(
        &mut self,
        mutate: impl FnOnce(&mut PolicyStore),
    ) -> Result<StagedCommit, CtrlError> {
        self.ctrl.stage(mutate)
    }

    /// Phase 2 for a previously staged commit.
    pub fn commit_staged_policy(
        &mut self,
        staged: StagedCommit,
        now: Time,
    ) -> Result<u64, CtrlError> {
        self.quiesce();
        let ops_before = self.ctrl.stats().apply_ops;
        let Host {
            ref mut ctrl,
            ref mut nic,
            ref mut nat,
            ..
        } = *self;
        let result = ctrl.commit_staged(nic, nat, staged, now);
        self.charge_policy_ops(ops_before);
        self.rebalance_workers();
        result
    }

    /// Charges kernel CPU for a policy transaction: one control syscall
    /// plus one MMIO write per apply operation the commit executed.
    fn charge_policy_ops(&mut self, ops_before: u64) {
        let ops = self.ctrl.stats().apply_ops - ops_before;
        self.kernel_cpu += self.stack.costs().syscalls.control_call();
        for _ in 0..ops {
            self.kernel_cpu += self.mmio.write(&self.cfg.mem.clone());
        }
    }

    /// The control plane (generation, commit history, third audit
    /// ledger).
    pub fn ctrl(&self) -> &ControlPlane {
        &self.ctrl
    }

    /// The authoritative kernel policy store.
    pub fn policy(&self) -> &PolicyStore {
        self.ctrl.store()
    }

    /// The installed policy generation.
    pub fn policy_generation(&self) -> u64 {
        self.ctrl.generation()
    }

    /// The kernel-owned NAT table, if NAT policy is in force.
    pub fn nat(&self) -> Option<&NatTable> {
        self.nat.as_ref()
    }

    /// Arms fault injection on policy-commit apply steps (chaos testing;
    /// see [`sim::fault::OpFaultInjector`]).
    pub fn set_policy_fault_injector(&mut self, faults: OpFaultInjector) {
        self.ctrl.set_fault_injector(faults);
    }

    /// Sets the commit watchdog: a policy transaction whose phase 2
    /// exceeds this many apply ops is aborted and rolled back, so a
    /// stalled or dying device cannot wedge the control plane. `None`
    /// disables the deadline.
    pub fn set_commit_watchdog(&mut self, ops: Option<u64>) {
        self.ctrl.set_commit_watchdog(ops);
    }

    /// Takes the NIC down for a bitstream reprogram and returns when the
    /// dataplane comes back. The control plane reconciles — reinstalls
    /// the full policy bundle onto the new hardware — on the first
    /// dataplane operation after recovery.
    pub fn reprogram_nic(&mut self, now: Time) -> Time {
        self.nic.reprogram_bitstream(now)
    }

    /// Crashes the NIC at `now` (fault injection): all volatile device
    /// state is wiped and the dataplane goes dead until the kernel
    /// drives a reset — which the reconcile check does on the next
    /// dataplane entry.
    pub fn crash_nic(&mut self, now: Time) {
        self.nic.crash(now);
    }

    /// Kernel-driven NIC reset: crash-if-alive, then bring the device
    /// back (frozen for the reset cost). Policy and flow state reinstall
    /// on the first dataplane entry after the thaw. Returns when the
    /// device is back up.
    pub fn reset_nic(&mut self, now: Time) -> Time {
        self.quiesce();
        self.kernel_cpu += self.stack.costs().syscalls.control_call();
        self.nic.reset(now)
    }

    /// Arms the op-schedule crash injector on the NIC (chaos testing;
    /// see [`sim::fault::CrashInjector`]).
    pub fn set_nic_crash_injector(&mut self, injector: CrashInjector) {
        self.nic.set_crash_injector(injector);
    }

    /// Reinstalls NIC state if a bitstream reprogram or a crash/reset
    /// wiped it and the dataplane is back up. Called on every dataplane
    /// entry point so policies re-attach before the first post-recovery
    /// frame.
    ///
    /// This is the kernel's fail-operational loop: a dead NIC is reset
    /// here (nothing else in the system has the authority), then once
    /// the device thaws the kernel rebuilds what the crash wiped —
    /// connections and listeners back into the flow table, NAT SRAM
    /// charges, and finally the committed policy bundle via
    /// [`ControlPlane::reconcile`].
    fn maybe_reconcile(&mut self, now: Time) {
        if self.nic.is_dead() {
            self.quiesce();
            self.kernel_cpu += self.stack.costs().syscalls.control_call();
            self.nic.reset(now);
        }
        if !self.ctrl.needs_reconcile(&self.nic) || self.nic.is_frozen(now) {
            return;
        }
        self.quiesce();
        if self.nic.stats().resets != self.resets_restored {
            self.restore_flow_state(now);
            self.resets_restored = self.nic.stats().resets;
        }
        let ops_before = self.ctrl.stats().apply_ops;
        let Host {
            ref mut ctrl,
            ref mut nic,
            ref mut nat,
            ..
        } = *self;
        ctrl.reconcile(nic, nat, now)
            .expect("reconcile runs fault-free and reinstalls onto an empty NIC");
        self.charge_policy_ops(ops_before);
        self.rebalance_workers();
    }

    /// Rebuilds the kernel-owned NIC flow state a crash wiped: every
    /// open connection and listener is reinstalled (sorted by id, so
    /// recovery is deterministic and ids are preserved), and the NAT
    /// table re-charges its SRAM footprint. Must run before the control
    /// plane reconciles — policy steps release NAT SRAM they believe is
    /// charged.
    ///
    /// The committed flow-cache policy is reinstalled *first*, so both
    /// tiers rebuild deterministically under it: restored entries land
    /// hot until the policy's budget fills, then overflow to the cold
    /// tier — a million-connection restore cannot blow the hot tier's
    /// SRAM. (Reconcile re-applies the policy afterwards through the
    /// ordinary ctrl path; the second re-tier is a deterministic no-op.)
    fn restore_flow_state(&mut self, now: Time) {
        if let Some(fc) = self.ctrl.flow_cache().cloned() {
            let _ = self.nic.configure_flow_cache(Some(fc), now);
        }
        let mut conns: Vec<Connection> = self.conns.values().cloned().collect();
        conns.sort_unstable_by_key(|c| c.id.0);
        for c in &conns {
            let comm = self
                .procs
                .get(c.pid)
                .map(|p| p.comm.clone())
                .unwrap_or_default();
            self.nic
                .restore_connection(c.id, c.tuple, c.uid.0, c.pid.0, &comm, c.notify)
                .expect("restore onto a freshly reset NIC cannot exhaust SRAM");
            self.kernel_cpu += self.mmio.write(&self.cfg.mem.clone());
        }
        let mut listeners: Vec<(ConnId, Pid, IpProto, u16)> = self
            .listeners
            .iter()
            .map(|(&id, &(pid, proto, port))| (id, pid, proto, port))
            .collect();
        listeners.sort_unstable_by_key(|&(id, ..)| id.0);
        for (id, pid, proto, port) in listeners {
            let (uid, comm) = self
                .procs
                .get(pid)
                .map(|p| (p.cred.uid.0, p.comm.clone()))
                .unwrap_or_default();
            self.nic
                .restore_listener(id, proto, port, uid, pid.0, &comm)
                .expect("restore onto a freshly reset NIC cannot exhaust SRAM");
            self.kernel_cpu += self.mmio.write(&self.cfg.mem.clone());
        }
        if let Some(nat) = &self.nat {
            nat.restore_charges(&mut self.nic.sram)
                .expect("restore onto a freshly reset NIC cannot exhaust SRAM");
        }
    }

    /// Returns the active reservations.
    pub fn reservations(&self) -> &[PortReservation] {
        &self.ctrl.store().reservations
    }

    /// Installs a port reservation: recorded in the control plane (so
    /// `connect` refuses violators up front) *and* lowered onto the NIC's
    /// ingress and egress filters (so even a buggy or malicious bypass
    /// user cannot violate it in the dataplane).
    #[deprecated(note = "transition shim: use Host::update_policy")]
    pub fn reserve_port(&mut self, r: PortReservation, now: Time) -> Result<(), ConnectError> {
        self.update_policy(now, |p| p.reservations.push(r))
            .map(|_| ())
            .map_err(|e| ConnectError::NicResources(e.to_string()))
    }

    /// Installs a per-user WFQ shaping policy: compiles the classifier to
    /// an overlay program, loads it, fills its maps, and configures the
    /// NIC scheduler weights.
    #[deprecated(note = "transition shim: use Host::update_policy")]
    pub fn install_shaping(
        &mut self,
        policy: ShapingPolicy,
        now: Time,
    ) -> Result<(), ConnectError> {
        self.update_policy(now, |p| p.shaping = Some(policy))
            .map(|_| ())
            .map_err(|e| ConnectError::NicResources(e.to_string()))
    }

    /// Enables the NIC capture tap (privileged; `ksniff`).
    #[deprecated(note = "transition shim: use Host::update_policy")]
    pub fn enable_sniffer(&mut self, filter: SnifferFilter, now: Time) -> Result<(), ConnectError> {
        self.update_policy(now, |p| p.sniffer = Some(filter))
            .map(|_| ())
            .map_err(|e| ConnectError::NicResources(e.to_string()))
    }

    /// Opens a connection for `pid` on `local_port` to
    /// `(remote_ip, remote_port)`.
    ///
    /// This is the `connect(2)`/`accept(2)` path of §4.3: the kernel
    /// validates policy, allocates and pins a ring pair, programs the NIC
    /// flow table with the (uid, pid, comm) binding, and grants the app
    /// its doorbell registers.
    pub fn connect(
        &mut self,
        pid: Pid,
        proto: IpProto,
        local_port: u16,
        remote_ip: Ipv4Addr,
        remote_port: u16,
        notify: bool,
    ) -> Result<ConnId, ConnectError> {
        let (uid, comm) = {
            let p = self
                .procs
                .get(pid)
                .ok_or(ConnectError::NoSuchProcess(pid))?;
            (p.cred.uid, p.comm.clone())
        };
        // Policy check at setup time (defense in depth: the NIC filter
        // also enforces it per packet).
        if let Some(r) = self
            .ctrl
            .store()
            .reservations
            .iter()
            .find(|r| r.port == local_port)
        {
            if !r.permits(uid, &comm) {
                return Err(ConnectError::PolicyDenied {
                    port: local_port,
                    uid,
                });
            }
        }
        let tuple = FiveTuple {
            src_ip: remote_ip,
            dst_ip: self.cfg.ip,
            src_port: remote_port,
            dst_port: local_port,
            proto,
        };
        let id = match self.nic.open_connection(tuple, uid.0, pid.0, &comm, notify) {
            Ok(id) => id,
            Err(e) => {
                self.stats.conns_refused += 1;
                return Err(ConnectError::NicResources(e.to_string()));
            }
        };
        let ring_key = if self.cfg.shared_rings {
            RingKey::Proc(pid)
        } else {
            RingKey::Conn(id)
        };
        let slots = self.cfg.ring_slots;
        let slot_bytes = self.cfg.ring_slot_bytes;
        if self.workers.is_some() {
            // Multi-queue mode: the ring pair is born inside the shard
            // whose RSS queue the connection's flows steer to.
            let pool = self.workers.as_ref().expect("checked above");
            if pool.owner_of(ring_key).is_none() {
                let n = pool.num_workers();
                let shard = self.shard_for_tuple(&tuple, n);
                let rx = PktRing::new(self.alloc_ring_addr(), slots, slot_bytes);
                let tx = PktRing::new(self.alloc_ring_addr(), slots, slot_bytes);
                self.workers.as_mut().expect("checked above").install(
                    shard,
                    ring_key,
                    rx,
                    tx,
                    VecDeque::new(),
                );
            }
        } else if !self.rings.contains_key(&ring_key) {
            let rx = PktRing::new(self.alloc_ring_addr(), slots, slot_bytes);
            let tx = PktRing::new(self.alloc_ring_addr(), slots, slot_bytes);
            self.rings.insert(ring_key, (rx, tx));
        }
        self.conns.insert(
            id,
            Connection {
                id,
                pid,
                uid,
                tuple,
                notify,
                ring_key,
            },
        );
        // Connection setup costs kernel time (syscall + NIC programming).
        self.kernel_cpu += self.stack.costs().syscalls.control_call() + Dur::from_us(2);
        Ok(id)
    }

    /// Binds a listener on `(proto, port)` for `pid` — the first half of
    /// the `accept(2)` path of §4.3. First packets of inbound connections
    /// match the NIC's listener entry, take the slow path into the
    /// pending-accept queue, and [`Host::accept`] promotes them to
    /// fast-path connections.
    pub fn listen(&mut self, pid: Pid, proto: IpProto, port: u16) -> Result<ConnId, ConnectError> {
        let (uid, comm) = {
            let p = self
                .procs
                .get(pid)
                .ok_or(ConnectError::NoSuchProcess(pid))?;
            (p.cred.uid, p.comm.clone())
        };
        if let Some(r) = self
            .ctrl
            .store()
            .reservations
            .iter()
            .find(|r| r.port == port)
        {
            if !r.permits(uid, &comm) {
                return Err(ConnectError::PolicyDenied { port, uid });
            }
        }
        let id = self
            .nic
            .open_listener(proto, port, uid.0, pid.0, &comm)
            .map_err(|e| ConnectError::NicResources(e.to_string()))?;
        self.listeners.insert(id, (pid, proto, port));
        self.kernel_cpu += self.stack.costs().syscalls.control_call();
        Ok(id)
    }

    /// Accepts a pending inbound connection on `listener`: allocates the
    /// ring pair, installs the exact-match flow entry, and returns the
    /// new connection — the second half of `accept(2)`. Returns `None`
    /// when nothing is pending.
    pub fn accept(&mut self, listener: ConnId, notify: bool) -> Option<ConnId> {
        let tuple = self.pending_accepts.get_mut(&listener)?.pop_front()?;
        let &(pid, ..) = self.listeners.get(&listener)?;
        self.connect(
            pid,
            tuple.proto,
            tuple.dst_port,
            tuple.src_ip,
            tuple.src_port,
            notify,
        )
        .ok()
    }

    /// Returns how many inbound connections wait on `listener`.
    pub fn pending_accept_count(&self, listener: ConnId) -> usize {
        self.pending_accepts
            .get(&listener)
            .map(|q| q.len())
            .unwrap_or(0)
    }

    /// Closes a connection, releasing NIC state and (for per-connection
    /// rings) the pinned rings.
    pub fn close(&mut self, id: ConnId) -> bool {
        let Some(conn) = self.conns.remove(&id) else {
            return false;
        };
        let _ = self.nic.close_connection(id);
        if let RingKey::Conn(_) = conn.ring_key {
            if let Some(pool) = self.workers.as_mut() {
                pool.close(conn.ring_key);
            } else {
                self.rings.remove(&conn.ring_key);
                self.ring_frame_ids.remove(&conn.ring_key);
            }
        }
        true
    }

    /// Picks a pinned physical placement for the next ring.
    ///
    /// Physical pages backing pinned rings are not contiguous: placing
    /// rings back-to-back would alias their cache sets and fabricate
    /// associativity conflicts the real machine does not have. A
    /// bijective multiplicative permutation scatters ring cells across a
    /// 16 GiB physical arena instead.
    fn alloc_ring_addr(&mut self) -> u64 {
        let footprint =
            (self.cfg.ring_slots as u64) * (PktRing::DESC_BYTES + self.cfg.ring_slot_bytes as u64);
        let cell = footprint.next_multiple_of(4096);
        // Power-of-two cell count so the odd multiplier is a bijection.
        let cells = ((16u64 << 30) / cell).next_power_of_two() / 2;
        let idx = self.next_ring_index;
        self.next_ring_index += 1;
        let scattered = (idx.wrapping_mul(0x9E37_79B9)) & (cells - 1);
        0x1_0000_0000 + scattered * cell
    }

    // ------------------------------------------------------------------
    // Overload degradation
    // ------------------------------------------------------------------

    /// Whether overload degradation is currently engaged (low-priority
    /// flows demoted to the software slow path).
    pub fn degraded(&self) -> bool {
        self.degrade.engaged
    }

    /// Feeds one fast-path delivery attempt into the degradation
    /// detector. `pressured` means the attempt found its RX ring full —
    /// the occupancy signal. When a full window's pressured fraction
    /// reaches the committed policy's high watermark the detector
    /// engages; once engaged, a window at or below the low watermark
    /// promotes back. No-op without a committed [`DegradationPolicy`]
    /// (`crate::ctrl::DegradationPolicy`).
    fn note_ring_pressure(&mut self, pressured: bool, now: Time) {
        let (high, low, window) = match self.ctrl.degradation() {
            Some(p) => (p.high_watermark, p.low_watermark, p.window),
            None => return,
        };
        self.degrade.window_seen += 1;
        if pressured {
            self.degrade.window_pressured += 1;
        }
        if self.degrade.window_seen < window {
            return;
        }
        let frac = self.degrade.window_pressured as f64 / self.degrade.window_seen as f64;
        self.degrade.window_seen = 0;
        self.degrade.window_pressured = 0;
        if !self.degrade.engaged && frac >= high {
            self.degrade.engaged = true;
            self.tel.record_recovery(
                now,
                RecoveryKind::DegradeEngaged,
                format!(
                    "ring pressure {:.0}% >= {:.0}% over {window} deliveries",
                    frac * 100.0,
                    high * 100.0
                ),
            );
        } else if self.degrade.engaged && frac <= low {
            self.degrade.engaged = false;
            self.tel.record_recovery(
                now,
                RecoveryKind::DegradePromoted,
                format!(
                    "ring pressure {:.0}% <= {:.0}% over {window} deliveries",
                    frac * 100.0,
                    low * 100.0
                ),
            );
        }
    }

    /// Whether this connection's traffic is demoted to the slow path
    /// right now: the detector is engaged and the committed policy lists
    /// the connection's local port as low-priority.
    fn demote_now(&self, conn: &Connection) -> bool {
        self.degrade.engaged
            && self
                .ctrl
                .degradation()
                .is_some_and(|p| p.low_prio_ports.contains(&conn.tuple.dst_port))
    }

    // ------------------------------------------------------------------
    // Dataplane
    // ------------------------------------------------------------------

    fn doorbell_cost(&mut self) -> Dur {
        self.ring_ops_since_doorbell += 1;
        if self.ring_ops_since_doorbell >= self.cfg.doorbell_batch {
            self.ring_ops_since_doorbell = 0;
            self.mmio.write(&self.cfg.mem.clone())
        } else {
            Dur::ZERO
        }
    }

    /// Hands a frame to the software stack, reusing the NIC descriptor
    /// when the parser stage produced one.
    fn stack_rx(
        &mut self,
        packet: &Packet,
        meta: Option<&pkt::FrameMeta>,
        now: Time,
    ) -> (RxOutcome, Dur) {
        match meta {
            Some(m) => self.stack.rx_with_meta(packet, m, now),
            None => self.stack.rx(packet, now),
        }
    }

    /// A frame arrives from the wire at `now`.
    pub fn deliver_from_wire(&mut self, packet: &Packet, now: Time) -> DeliveryReport {
        self.deliver_frame(packet.clone(), now)
    }

    /// [`Host::deliver_from_wire`] with frame ownership handed over — the
    /// NIC presenting an already-DMA'd buffer rather than bytes to copy.
    /// On the fast path the frame handle moves straight into the RX ring
    /// descriptor with no refcount traffic at all; harnesses that own
    /// their frames (the wall-clock benches, the chaos driver) should
    /// prefer this entry point.
    pub fn deliver_frame(&mut self, packet: Packet, now: Time) -> DeliveryReport {
        self.maybe_reconcile(now);
        let rx = self.nic.rx(&packet, now);
        if self.workers.is_some() {
            return self
                .finish_batch_workers(std::slice::from_ref(&packet), vec![rx], now)
                .pop()
                .expect("one frame in, one report out");
        }
        self.finish_delivery(packet, rx, now)
    }

    /// Delivers a burst of frames arriving together at `now` through the
    /// NIC's batched ingress ([`SmartNic::rx_batch`]), then drains TX.
    /// One doorbell sweep amortizes per-frame dispatch; outcomes are
    /// identical to calling [`Host::deliver_from_wire`] per frame in
    /// order followed by [`Host::pump_tx`].
    pub fn pump(
        &mut self,
        packets: &[Packet],
        now: Time,
    ) -> (Vec<DeliveryReport>, Vec<TxDeparture>) {
        self.maybe_reconcile(now);
        let rxs = self.nic.rx_batch(packets, now);
        let deliveries = if self.workers.is_some() {
            self.finish_batch_workers(packets, rxs, now)
        } else {
            packets
                .iter()
                .zip(rxs)
                .map(|(p, rx)| self.finish_delivery(p.clone(), rx, now))
                .collect()
        };
        let departures = self.pump_tx(now);
        (deliveries, departures)
    }

    /// The multi-queue half of ingress: fast-path frames fan out to the
    /// worker owning their RSS queue (all shards run concurrently), while
    /// listener, slow-path, ARP, and drop verdicts stay on this thread.
    /// Replies reassemble in arrival order and wakeups are applied in
    /// arrival order, so the result is deterministic and — for one
    /// worker — byte-identical to [`Host::finish_delivery`] per frame.
    fn finish_batch_workers(
        &mut self,
        packets: &[Packet],
        rxs: Vec<nicsim::RxResult>,
        now: Time,
    ) -> Vec<DeliveryReport> {
        let n = self.num_workers();
        let trace = self.tel.is_enabled();
        let generation = self.tel.generation();
        let mut batches: Vec<Vec<DeliverJob>> = vec![Vec::new(); n];
        let mut reports: Vec<DeliveryReport> = Vec::with_capacity(packets.len());
        // conn + pending wake for each worker-dispatched index.
        let mut pending: HashMap<usize, (ConnId, Option<Pid>, Time)> = HashMap::new();
        for (idx, (packet, rx)) in packets.iter().zip(rxs).enumerate() {
            let fast_conn = match rx.disposition {
                RxDisposition::Deliver { conn, .. }
                    if !self.listeners.contains_key(&conn)
                        && self.conns.get(&conn).is_some_and(|c| !self.demote_now(c)) =>
                {
                    Some(conn)
                }
                _ => None,
            };
            let Some(conn) = fast_conn else {
                // Listener, stale-connection, slow-path, ARP, demoted,
                // and drop verdicts never touch a shard; handle them
                // inline.
                reports.push(self.finish_delivery(packet.clone(), rx, now));
                continue;
            };
            let c = &self.conns[&conn];
            let shard = usize::from(rx.meta.map_or(0, |m| m.queue)) % n;
            batches[shard].push(DeliverJob {
                idx,
                key: c.ring_key,
                len: packet.len(),
                pkt: packet.clone(),
                fid: rx.meta.map_or(0, |m| m.frame_id),
                tuple: rx.meta.and_then(|m| m.tuple),
                owner: if trace { self.owner_of(c.pid) } else { None },
                ready_at: rx.ready_at,
                cold: rx.cold,
                trace,
                generation,
            });
            let wake = if rx.interrupt { Some(c.pid) } else { None };
            pending.insert(idx, (conn, wake, rx.ready_at));
            reports.push(DeliveryReport {
                outcome: DeliveryOutcome::Dropped, // overwritten by the reply
                mem_cost: Dur::ZERO,
                nic_latency: rx.latency,
                kernel_cpu: Dur::ZERO,
                woke: None,
            });
        }
        let pool = self.workers.as_mut().expect("worker mode active");
        let mut replies = pool.deliver(batches);
        // Worker order is arbitrary across shards; arrival order is the
        // contract.
        replies.sort_unstable_by_key(|r| r.idx);
        for reply in replies {
            let (conn, wake, ready_at) = pending[&reply.idx];
            let report = &mut reports[reply.idx];
            match reply.outcome {
                ShardOutcome::Fast(cost) => {
                    report.outcome = DeliveryOutcome::FastPath(conn);
                    report.mem_cost = cost;
                    self.note_ring_pressure(false, ready_at);
                    if let Some(pid) = wake {
                        if self.sched.wake(pid, ready_at, &mut self.procs).is_some() {
                            report.woke = Some(pid);
                        }
                    }
                }
                ShardOutcome::RingFull => {
                    report.outcome = DeliveryOutcome::RingFull(conn);
                    self.note_ring_pressure(true, ready_at);
                }
                ShardOutcome::RingMissing => {
                    report.outcome = DeliveryOutcome::SlowPath;
                }
                ShardOutcome::Crashed => {
                    // The owning shard died before answering: reroute the
                    // frame through the software slow path so it is
                    // delivered and accounted rather than silently lost.
                    let (_, cost) = self.stack_rx(&packets[reply.idx], None, now);
                    self.kernel_cpu += cost;
                    report.kernel_cpu = cost;
                    report.outcome = DeliveryOutcome::SlowPath;
                    self.stats.slowpath += 1;
                    self.stats.worker_rerouted += 1;
                }
            }
        }
        self.absorb_worker_crashes(now);
        reports
    }

    /// The host-side half of ingress: routes one NIC verdict to rings,
    /// the slow path, or drop accounting, reusing the parse-once
    /// descriptor the NIC handed back (`rx.meta`) — the host never
    /// re-parses frame bytes.
    fn finish_delivery(
        &mut self,
        packet: Packet,
        rx: nicsim::RxResult,
        now: Time,
    ) -> DeliveryReport {
        let mut report = DeliveryReport {
            outcome: DeliveryOutcome::Dropped,
            mem_cost: Dur::ZERO,
            nic_latency: rx.latency,
            kernel_cpu: Dur::ZERO,
            woke: None,
        };
        match rx.disposition {
            RxDisposition::Deliver { conn, .. } => {
                if self.listeners.contains_key(&conn) {
                    // First packet of an inbound connection: queue it for
                    // accept() and hand the payload to the kernel stack.
                    if let Some(tuple) = rx.meta.and_then(|m| m.tuple) {
                        self.pending_accepts
                            .entry(conn)
                            .or_default()
                            .push_back(tuple);
                    }
                    let (_, cost) = self.stack_rx(&packet, rx.meta.as_ref(), now);
                    self.kernel_cpu += cost;
                    report.kernel_cpu = cost;
                    report.outcome = DeliveryOutcome::SlowPath;
                    self.stats.slowpath += 1;
                    return report;
                }
                let Some(c) = self.conns.get(&conn) else {
                    // NIC knows a connection the host forgot: treat as
                    // slow path (stale flow entry).
                    report.outcome = DeliveryOutcome::SlowPath;
                    return report;
                };
                let pid = c.pid;
                let key = c.ring_key;
                let demote = self.demote_now(c);
                if demote {
                    // Degraded mode: this low-priority flow yields the
                    // fast path so high-priority traffic keeps the
                    // rings. The frame is handled by the kernel stack —
                    // slower, but delivered and accounted.
                    let (outcome, cost) = self.stack_rx(&packet, rx.meta.as_ref(), now);
                    self.stack.note_degraded_rx();
                    self.kernel_cpu += cost;
                    report.kernel_cpu = cost;
                    report.outcome = DeliveryOutcome::SlowPath;
                    self.stats.slowpath += 1;
                    self.stats.degraded_slowpath += 1;
                    // Demoted deliveries count as unpressured window
                    // entries so a drained system can promote back.
                    self.note_ring_pressure(false, now);
                    if let RxOutcome::Delivered { pid, wake: true } = outcome {
                        if self.sched.wake(pid, now + cost, &mut self.procs).is_some() {
                            report.woke = Some(pid);
                        }
                    }
                    return report;
                }
                let mem = self.cfg.mem.clone();
                let Some((rx_ring, _)) = self.rings.get_mut(&key) else {
                    // The connection record outlived its rings (torn-down
                    // state mid-race). Punt to the slow path instead of
                    // panicking on the hot path.
                    self.stats.ring_missing += 1;
                    report.outcome = DeliveryOutcome::SlowPath;
                    return report;
                };
                let len = packet.len() as u32;
                // Cold-tier flows DMA with DDIO bypass: a demoted flow's
                // ring traffic must not evict the DDIO lines hot flows
                // depend on (the §5 cliff mechanism).
                // The descriptor *is* the frame handle: producing into the
                // ring bumps the frame's refcount instead of copying bytes.
                let plen = packet.len();
                let produced = if rx.cold {
                    rx_ring.produce_dma_bypass_with(packet, plen, &mut self.llc, &mem)
                } else {
                    rx_ring.produce_dma_with(packet, plen, &mut self.llc, &mem)
                };
                match produced {
                    Ok(cost) => {
                        report.mem_cost = cost;
                        report.outcome = DeliveryOutcome::FastPath(conn);
                        self.stats.fast_delivered += 1;
                        self.note_ring_pressure(false, now);
                        if self.tel.is_enabled() {
                            // Meta fields are only read for trace events, so
                            // the (wide) meta copy stays behind the gate.
                            let fid = rx.meta.as_ref().map_or(0, |m| m.frame_id);
                            let tuple = rx.meta.as_ref().and_then(|m| m.tuple);
                            self.ring_frame_ids.entry(key).or_default().push_back(fid);
                            self.tel.emit(|| TraceEvent {
                                frame_id: fid,
                                at: rx.ready_at,
                                stage: Stage::RingEnqueue,
                                verdict: TraceVerdict::Pass,
                                tuple,
                                len,
                                owner: self.owner_of(pid),
                                generation: 0,
                            });
                        }
                    }
                    Err(_) => {
                        report.outcome = DeliveryOutcome::RingFull(conn);
                        self.stats.ring_drops += 1;
                        self.note_ring_pressure(true, now);
                        let fid = rx.meta.as_ref().map_or(0, |m| m.frame_id);
                        let tuple = rx.meta.as_ref().and_then(|m| m.tuple);
                        self.tel.emit(|| TraceEvent {
                            frame_id: fid,
                            at: rx.ready_at,
                            stage: Stage::RingEnqueue,
                            verdict: TraceVerdict::Drop(DropCause::RingFull),
                            tuple,
                            len,
                            owner: self.owner_of(pid),
                            generation: 0,
                        });
                        return report;
                    }
                }
                if rx.interrupt {
                    if let Some(resumed) = self.sched.wake(pid, rx.ready_at, &mut self.procs) {
                        let _ = resumed;
                        report.woke = Some(pid);
                    }
                }
            }
            RxDisposition::SlowPath { .. } => {
                // ARP is handled by the kernel itself: update the cache
                // and answer who-has requests for our address.
                if rx.meta.map(|m| m.is_arp()).unwrap_or(false) {
                    let meta = rx.meta.expect("checked above");
                    let cost = Dur::from_ns(400); // cache update + reply build
                    self.kernel_cpu += cost;
                    report.kernel_cpu = cost;
                    report.outcome = DeliveryOutcome::SlowPath;
                    self.stats.slowpath += 1;
                    if let Some(reply) = self.arp.handle_meta(&packet, &meta, now) {
                        let _ = self.nic.tx_enqueue_kernel(&reply, now);
                    }
                    return report;
                }
                let (outcome, cost) = self.stack_rx(&packet, rx.meta.as_ref(), now);
                self.kernel_cpu += cost;
                report.kernel_cpu = cost;
                report.outcome = DeliveryOutcome::SlowPath;
                self.stats.slowpath += 1;
                if let RxOutcome::Delivered { pid, wake: true } = outcome {
                    if self.sched.wake(pid, now + cost, &mut self.procs).is_some() {
                        report.woke = Some(pid);
                    }
                }
            }
            RxDisposition::Drop { reason } => {
                if reason == DropReason::Malformed {
                    self.stats.malformed_dropped += 1;
                } else {
                    self.stats.nic_dropped += 1;
                }
            }
        }
        report
    }

    /// The application receives from a connection's RX ring.
    ///
    /// Pure memory operations — no kernel involvement (§4.3: "the
    /// application can directly send and receive data by merely accessing
    /// memory").
    pub fn app_recv(&mut self, id: ConnId, now: Time, blocking: bool) -> RecvResult {
        let Some(conn) = self.conns.get(&id) else {
            return RecvResult {
                len: None,
                pkt: None,
                cpu: Dur::ZERO,
                blocked: false,
            };
        };
        let pid = conn.pid;
        let notify = conn.notify;
        let key = conn.ring_key;
        if self.workers.is_some() {
            return self.app_recv_workers(pid, notify, key, now, blocking);
        }
        let mem = self.cfg.mem.clone();
        let Some((rx_ring, _)) = self.rings.get_mut(&key) else {
            // Rings already torn down: nothing to receive.
            self.stats.ring_missing += 1;
            return RecvResult {
                len: None,
                pkt: None,
                cpu: Dur::ZERO,
                blocked: false,
            };
        };
        match rx_ring.consume_cpu_desc(&mut self.llc, &mem) {
            Some((pkt, len, cost)) => {
                let cpu = cost + self.doorbell_cost();
                self.sched.charge_busy(pid, cpu);
                if self.tel.is_enabled() {
                    let fid = self
                        .ring_frame_ids
                        .get_mut(&key)
                        .and_then(|q| q.pop_front())
                        .unwrap_or(0);
                    let owner = self.owner_of(pid);
                    self.tel.emit(|| TraceEvent {
                        frame_id: fid,
                        at: now,
                        stage: Stage::RingDequeue,
                        verdict: TraceVerdict::Pass,
                        tuple: None,
                        len: len as u32,
                        owner: None,
                        generation: 0,
                    });
                    self.tel.emit(|| TraceEvent {
                        frame_id: fid,
                        at: now,
                        stage: Stage::AppDeliver,
                        verdict: TraceVerdict::Pass,
                        tuple: None,
                        len: len as u32,
                        owner,
                        generation: 0,
                    });
                }
                RecvResult {
                    len: Some(len),
                    pkt: Some(pkt),
                    cpu,
                    blocked: false,
                }
            }
            None => {
                // Check the head pointer: one cache read.
                let cpu = mem.llc_hit;
                let mut blocked = false;
                if blocking && notify {
                    self.nic.arm_interrupt(pid.0);
                    blocked = self.sched.block(pid, now, &mut self.procs);
                } else {
                    self.sched.charge_polling(pid, cpu);
                }
                RecvResult {
                    len: None,
                    pkt: None,
                    cpu,
                    blocked,
                }
            }
        }
    }

    /// [`Host::app_recv`] with the ring in a worker shard: the dequeue
    /// (and its LLC traffic) happens on the owning worker; doorbells,
    /// scheduling, and trace emission stay here. Costs and events match
    /// the single-queue path exactly.
    fn app_recv_workers(
        &mut self,
        pid: Pid,
        notify: bool,
        key: RingKey,
        now: Time,
        blocking: bool,
    ) -> RecvResult {
        let trace = self.tel.is_enabled();
        let owner = self
            .workers
            .as_ref()
            .expect("worker mode active")
            .owner_of(key);
        let Some(shard) = owner else {
            self.stats.ring_missing += 1;
            return RecvResult {
                len: None,
                pkt: None,
                cpu: Dur::ZERO,
                blocked: false,
            };
        };
        let reply = self
            .workers
            .as_mut()
            .expect("worker mode active")
            .recv(shard, key, trace);
        match reply {
            RecvReply::Data {
                pkt,
                len,
                cost,
                fid,
            } => {
                let cpu = cost + self.doorbell_cost();
                self.sched.charge_busy(pid, cpu);
                if trace {
                    let owner = self.owner_of(pid);
                    self.tel.emit(|| TraceEvent {
                        frame_id: fid,
                        at: now,
                        stage: Stage::RingDequeue,
                        verdict: TraceVerdict::Pass,
                        tuple: None,
                        len: len as u32,
                        owner: None,
                        generation: 0,
                    });
                    self.tel.emit(|| TraceEvent {
                        frame_id: fid,
                        at: now,
                        stage: Stage::AppDeliver,
                        verdict: TraceVerdict::Pass,
                        tuple: None,
                        len: len as u32,
                        owner,
                        generation: 0,
                    });
                }
                RecvResult {
                    len: Some(len),
                    pkt: Some(pkt),
                    cpu,
                    blocked: false,
                }
            }
            RecvReply::Empty => {
                let cpu = self.cfg.mem.llc_hit;
                let mut blocked = false;
                if blocking && notify {
                    self.nic.arm_interrupt(pid.0);
                    blocked = self.sched.block(pid, now, &mut self.procs);
                } else {
                    self.sched.charge_polling(pid, cpu);
                }
                RecvResult {
                    len: None,
                    pkt: None,
                    cpu,
                    blocked,
                }
            }
            RecvReply::Missing => {
                self.stats.ring_missing += 1;
                RecvResult {
                    len: None,
                    pkt: None,
                    cpu: Dur::ZERO,
                    blocked: false,
                }
            }
        }
    }

    /// POSIX-compatibility receive: like [`Host::app_recv`] but models
    /// `recv(2)` semantics where the payload is *copied* out of the ring
    /// into a caller-supplied buffer. §4.2: the Norman library "provides
    /// both POSIX APIs — so that applications can be easily portable …
    /// as well as more efficient abstractions that prevent unnecessary
    /// copies". The copy costs `copy_per_byte x len` extra CPU.
    pub fn app_recv_posix(&mut self, id: ConnId, now: Time, blocking: bool) -> RecvResult {
        let mut r = self.app_recv(id, now, blocking);
        if let Some(len) = r.len {
            let copy = self.cfg.mem.copy(len);
            r.cpu += copy;
            if let Some(conn) = self.conns.get(&id) {
                self.sched.charge_busy(conn.pid, copy);
            }
        }
        r
    }

    /// The application sends a frame on a connection: write payload into
    /// the TX ring (CPU stores), ring the doorbell (MMIO), NIC DMA-reads
    /// and runs egress policy, then schedules.
    pub fn app_send(&mut self, id: ConnId, packet: &Packet, now: Time) -> SendResult {
        let Some(conn) = self.conns.get(&id) else {
            return SendResult {
                queued: false,
                deferred: false,
                cpu: Dur::ZERO,
            };
        };
        let pid = conn.pid;
        let key = conn.ring_key;
        if self.workers.is_some() {
            return self.app_send_workers(id, pid, key, packet, now);
        }
        let mem = self.cfg.mem.clone();
        let Some((_, tx_ring)) = self.rings.get_mut(&key) else {
            self.stats.ring_missing += 1;
            return SendResult {
                queued: false,
                deferred: false,
                cpu: Dur::ZERO,
            };
        };
        let produce =
            match tx_ring.produce_cpu_with(packet.clone(), packet.len(), &mut self.llc, &mem) {
                Ok(cost) => cost,
                Err(_) => {
                    return SendResult {
                        queued: false,
                        deferred: false,
                        cpu: mem.llc_hit,
                    }
                }
            };
        let doorbell = self.doorbell_cost();
        // NIC side: DMA-read the frame out of the ring.
        if let Some((_, tx_ring)) = self.rings.get_mut(&key) {
            let _ = tx_ring.consume_dma(&mut self.llc, &mem);
        }
        let (queued, deferred) = self.offer_tx(id, packet, now);
        let cpu = produce + doorbell;
        self.sched.charge_busy(pid, cpu);
        SendResult {
            queued,
            deferred,
            cpu,
        }
    }

    /// Offers a frame to the NIC TX path, buffering it for retry when the
    /// dataplane is down for a bitstream reprogram. Returns
    /// `(queued, deferred)`.
    fn offer_tx(&mut self, id: ConnId, packet: &Packet, now: Time) -> (bool, bool) {
        match self.nic.tx_enqueue(id, packet, now) {
            Ok(TxDisposition::Queued { .. }) => (true, false),
            Ok(TxDisposition::Drop {
                reason: DropReason::Reprogramming,
            })
            | Err(NicError::Reprogramming { .. }) => {
                // The dataplane is down for a bitstream reprogram. Buffer
                // the frame for retry on recovery instead of silently
                // losing it — bounded, so a long outage applies
                // backpressure rather than growing without limit.
                if self.tx_retry.len() < self.cfg.tx_retry_cap {
                    self.tx_retry.push_back((id, packet.clone()));
                    self.stats.tx_deferred += 1;
                    (false, true)
                } else {
                    self.stats.tx_retry_dropped += 1;
                    (false, false)
                }
            }
            Ok(TxDisposition::Drop { .. }) => (false, false),
            Err(_) => (false, false),
        }
    }

    /// [`Host::app_send`] with the ring in a worker shard: the payload
    /// store and NIC DMA-read (and their LLC traffic) happen on the
    /// owning worker; doorbells, TX scheduling, and retry buffering stay
    /// here. Costs match the single-queue path exactly.
    fn app_send_workers(
        &mut self,
        id: ConnId,
        pid: Pid,
        key: RingKey,
        packet: &Packet,
        now: Time,
    ) -> SendResult {
        let owner = self
            .workers
            .as_ref()
            .expect("worker mode active")
            .owner_of(key);
        let Some(shard) = owner else {
            self.stats.ring_missing += 1;
            return SendResult {
                queued: false,
                deferred: false,
                cpu: Dur::ZERO,
            };
        };
        let reply = self.workers.as_mut().expect("worker mode active").send(
            shard,
            key,
            packet.clone(),
            packet.len(),
        );
        let produce = match reply {
            SendReply::Produced(cost) => cost,
            SendReply::Full => {
                return SendResult {
                    queued: false,
                    deferred: false,
                    cpu: self.cfg.mem.llc_hit,
                }
            }
            SendReply::Missing => {
                self.stats.ring_missing += 1;
                return SendResult {
                    queued: false,
                    deferred: false,
                    cpu: Dur::ZERO,
                };
            }
        };
        let doorbell = self.doorbell_cost();
        let (queued, deferred) = self.offer_tx(id, packet, now);
        let cpu = produce + doorbell;
        self.sched.charge_busy(pid, cpu);
        SendResult {
            queued,
            deferred,
            cpu,
        }
    }

    /// Re-offers frames deferred during a reprogram outage. Stops at the
    /// first frame the NIC still cannot take (still frozen, or scheduler
    /// full) so ordering is preserved.
    fn flush_tx_retry(&mut self, now: Time) {
        while let Some((conn, pkt)) = self.tx_retry.pop_front() {
            match self.nic.tx_enqueue(conn, &pkt, now) {
                Ok(TxDisposition::Queued { .. }) => {
                    self.stats.tx_retry_flushed += 1;
                }
                Ok(TxDisposition::Drop {
                    reason: DropReason::Reprogramming,
                })
                | Err(NicError::Reprogramming { .. })
                | Err(NicError::TxQueueFull) => {
                    // Not ready yet: put it back and try again later.
                    self.tx_retry.push_front((conn, pkt));
                    break;
                }
                Ok(TxDisposition::Drop { .. }) | Err(_) => {
                    // Policy drop or the connection is gone: the frame is
                    // lost for good.
                    self.stats.tx_retry_dropped += 1;
                }
            }
        }
    }

    /// Drains every frame the NIC can put on the wire up to `now`,
    /// first re-offering any TX frames deferred during a reprogram
    /// outage.
    pub fn pump_tx(&mut self, now: Time) -> Vec<TxDeparture> {
        self.maybe_reconcile(now);
        if !self.tx_retry.is_empty() {
            self.flush_tx_retry(now);
        }
        self.nic.tx_poll_batch(now, usize::MAX)
    }

    /// Pops a pending notification for `pid` (the kernel-side monitor or
    /// a woken process checking why it woke).
    pub fn pop_notification(&mut self, pid: Pid) -> Option<Notification> {
        self.nic.pop_notification(pid.0)
    }

    /// Blocks `pid` until *any* of its notify-enabled connections has
    /// data — the `epoll_wait`/select analogue over the §4.3 shared
    /// notification queue. Returns the ready connection if one is already
    /// pending (no block), or `None` after blocking the process.
    pub fn app_wait_any(&mut self, pid: Pid, now: Time) -> Option<ConnId> {
        // Drain the notification queue first: a pending RxReady means no
        // need to block.
        while let Some(n) = self.nic.pop_notification(pid.0) {
            if n.kind == NotifyKind::RxReady {
                return Some(n.conn);
            }
        }
        self.nic.arm_interrupt(pid.0);
        self.sched.block(pid, now, &mut self.procs);
        None
    }

    /// Convenience: did `pid` get an RX notification for `conn`?
    pub fn has_rx_notification(&mut self, pid: Pid, conn: ConnId) -> bool {
        let mut found = false;
        while let Some(n) = self.nic.pop_notification(pid.0) {
            if n.conn == conn && n.kind == NotifyKind::RxReady {
                found = true;
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::PacketBuilder;

    fn host() -> Host {
        Host::new(HostConfig::default())
    }

    fn wire_udp(host_ip: Ipv4Addr, src_port: u16, dst_port: u16, len: usize) -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(9), Mac::local(1))
            .ipv4(Ipv4Addr::new(10, 0, 0, 2), host_ip)
            .udp(src_port, dst_port, &vec![0u8; len])
            .build()
    }

    fn open_conn(h: &mut Host, pid: Pid, port: u16, notify: bool) -> ConnId {
        h.connect(
            pid,
            IpProto::UDP,
            port,
            Ipv4Addr::new(10, 0, 0, 2),
            9000,
            notify,
        )
        .unwrap()
    }

    #[test]
    fn fast_path_delivery_and_recv() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "server");
        let conn = open_conn(&mut h, bob, 7000, false);
        let pkt = wire_udp(h.cfg.ip, 9000, 7000, 500);
        let report = h.deliver_from_wire(&pkt, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::FastPath(conn));
        assert!(report.mem_cost > Dur::ZERO);
        assert_eq!(
            report.kernel_cpu,
            Dur::ZERO,
            "fast path must not touch the kernel"
        );
        let r = h.app_recv(conn, Time::ZERO, false);
        assert_eq!(r.len, Some(pkt.len()));
        assert!(r.cpu > Dur::ZERO);
    }

    #[test]
    fn unknown_traffic_takes_slow_path() {
        let mut h = host();
        let pkt = wire_udp(h.cfg.ip, 1, 9999, 64);
        let report = h.deliver_from_wire(&pkt, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::SlowPath);
        assert!(report.kernel_cpu > Dur::ZERO);
        assert_eq!(h.stats().slowpath, 1);
    }

    #[test]
    fn ring_overflow_drops() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "server");
        let conn = open_conn(&mut h, bob, 7000, false);
        let pkt = wire_udp(h.cfg.ip, 9000, 7000, 100);
        // Default rings hold 2 slots.
        h.deliver_from_wire(&pkt, Time::ZERO);
        h.deliver_from_wire(&pkt, Time::ZERO);
        let report = h.deliver_from_wire(&pkt, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::RingFull(conn));
        assert_eq!(h.stats().ring_drops, 1);
        // Draining frees space.
        h.app_recv(conn, Time::ZERO, false);
        let report = h.deliver_from_wire(&pkt, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::FastPath(conn));
    }

    #[test]
    fn reservation_blocks_connect() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "postgres");
        let charlie = h.spawn(Uid(1002), "charlie", "mysqld");
        h.update_policy(Time::ZERO, |p| {
            p.reservations.push(PortReservation::new(5432, Uid(1001)))
        })
        .unwrap();
        assert!(h
            .connect(
                bob,
                IpProto::UDP,
                5432,
                Ipv4Addr::new(10, 0, 0, 2),
                1,
                false
            )
            .is_ok());
        let err = h
            .connect(
                charlie,
                IpProto::UDP,
                5432,
                Ipv4Addr::new(10, 0, 0, 2),
                2,
                false,
            )
            .unwrap_err();
        assert!(matches!(err, ConnectError::PolicyDenied { port: 5432, .. }));
    }

    #[test]
    fn reservation_enforced_in_dataplane_too() {
        // Even if a connection existed before the reservation (the
        // "misconfiguration or bug" case of §2), the NIC filter drops
        // violating packets.
        let mut h = host();
        let charlie = h.spawn(Uid(1002), "charlie", "mysqld");
        let conn = open_conn(&mut h, charlie, 5432, false);
        h.update_policy(Time::ZERO, |p| {
            p.reservations.push(PortReservation::new(5432, Uid(1001)))
        })
        .unwrap();
        let pkt = wire_udp(h.cfg.ip, 9000, 5432, 100);
        let report = h.deliver_from_wire(&pkt, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::Dropped);
        assert_eq!(h.stats().nic_dropped, 1);
        let _ = conn;
    }

    #[test]
    fn blocking_recv_blocks_and_wakes() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "server");
        let conn = open_conn(&mut h, bob, 7000, true);
        // Nothing there: the process blocks.
        let r = h.app_recv(conn, Time::ZERO, true);
        assert!(r.blocked);
        assert_eq!(
            h.procs.get(bob).unwrap().state,
            oskernel::ProcState::Blocked
        );
        // A packet arrives: the NIC notification wakes the process.
        let pkt = wire_udp(h.cfg.ip, 9000, 7000, 64);
        let report = h.deliver_from_wire(&pkt, Time::from_us(50));
        assert_eq!(report.woke, Some(bob));
        assert_eq!(
            h.procs.get(bob).unwrap().state,
            oskernel::ProcState::Running
        );
        // And the data is there.
        let r = h.app_recv(conn, Time::from_us(60), true);
        assert_eq!(r.len, Some(pkt.len()));
    }

    #[test]
    fn polling_burns_cpu_blocking_does_not() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "poller");
        let conn = open_conn(&mut h, bob, 7000, false);
        for _ in 0..1000 {
            h.app_recv(conn, Time::ZERO, false);
        }
        let m = h.sched.meter(bob);
        assert!(m.polling > Dur::ZERO);
        assert!(m.efficiency() < 0.01);
    }

    #[test]
    fn send_path_reaches_wire() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "client");
        let conn = open_conn(&mut h, bob, 7000, false);
        let pkt = PacketBuilder::new()
            .ether(h.cfg.mac, Mac::local(9))
            .ipv4(h.cfg.ip, Ipv4Addr::new(10, 0, 0, 2))
            .udp(7000, 9000, &[0u8; 200])
            .build();
        let s = h.app_send(conn, &pkt, Time::ZERO);
        assert!(s.queued);
        assert!(s.cpu > Dur::ZERO);
        let departures = h.pump_tx(Time::ZERO);
        assert_eq!(departures.len(), 1);
        assert_eq!(departures[0].conn, conn);
    }

    #[test]
    fn shaping_policy_configures_scheduler() {
        let mut h = host();
        h.update_policy(Time::ZERO, |p| {
            p.shaping = Some(ShapingPolicy::new(vec![(Uid(1001), 4.0), (Uid(1002), 1.0)]))
        })
        .unwrap();
        // Scheduler now has 3 classes (default + 2 users).
        assert_eq!(h.nic.scheduler_class_bytes().len(), 3);
        assert_eq!(h.policy_generation(), 1);
    }

    #[test]
    fn shared_rings_mode_uses_one_pair_per_process() {
        let cfg = HostConfig {
            shared_rings: true,
            ring_slots: 64,
            ..HostConfig::default()
        };
        let mut h = Host::new(cfg);
        let bob = h.spawn(Uid(1001), "bob", "server");
        let c1 = open_conn(&mut h, bob, 7000, false);
        let c2 = open_conn(&mut h, bob, 7001, false);
        // Traffic to both connections lands in the same ring: receiving
        // on c2 returns c1's packet first (shared FIFO).
        let p1 = wire_udp(h.cfg.ip, 9000, 7000, 111);
        let p2 = wire_udp(h.cfg.ip, 9000, 7001, 222);
        h.deliver_from_wire(&p1, Time::ZERO);
        h.deliver_from_wire(&p2, Time::ZERO);
        let r = h.app_recv(c2, Time::ZERO, false);
        assert_eq!(r.len, Some(p1.len()));
        let _ = c1;
    }

    #[test]
    fn connection_exhaustion_reports_refusal() {
        let mut cfg = HostConfig::default();
        cfg.nic.sram_bytes = 4096; // tiny NIC
        let mut h = Host::new(cfg);
        let bob = h.spawn(Uid(1001), "bob", "server");
        let mut opened = 0;
        let mut refused = 0;
        for port in 0..32 {
            match h.connect(
                bob,
                IpProto::UDP,
                7000 + port,
                Ipv4Addr::new(10, 0, 0, 2),
                9000,
                false,
            ) {
                Ok(_) => opened += 1,
                Err(ConnectError::NicResources(_)) => refused += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(opened > 0);
        assert!(refused > 0);
        assert_eq!(h.stats().conns_refused, refused);
    }

    #[test]
    fn corrupted_frame_is_counted_not_delivered() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "server");
        let conn = open_conn(&mut h, bob, 7000, false);
        let pkt = wire_udp(h.cfg.ip, 9000, 7000, 500);
        // Flip a payload bit: the UDP checksum no longer verifies.
        let mut bytes = pkt.bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let bad = Packet::from_bytes(bytes);
        let report = h.deliver_from_wire(&bad, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::Dropped);
        assert_eq!(h.stats().malformed_dropped, 1);
        assert_eq!(h.stats().nic_dropped, 0);
        assert_eq!(h.stats().fast_delivered, 0);
        // The intact frame still flows.
        let report = h.deliver_from_wire(&pkt, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::FastPath(conn));
    }

    #[test]
    fn send_during_outage_defers_and_flushes_on_recovery() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "client");
        let conn = open_conn(&mut h, bob, 7000, false);
        let pkt = PacketBuilder::new()
            .ether(h.cfg.mac, Mac::local(9))
            .ipv4(h.cfg.ip, Ipv4Addr::new(10, 0, 0, 2))
            .udp(7000, 9000, &[0u8; 200])
            .build();
        let back_at = h.nic.reprogram_bitstream(Time::ZERO);
        let s = h.app_send(conn, &pkt, Time::from_us(1));
        assert!(!s.queued);
        assert!(s.deferred, "outage send must be buffered, not lost");
        assert_eq!(h.tx_retry_len(), 1);
        // Pumping while still frozen keeps the frame buffered.
        assert!(h.pump_tx(Time::from_us(2)).is_empty());
        assert_eq!(h.tx_retry_len(), 1);
        // After recovery the deferred frame reaches the wire.
        let deps = h.pump_tx(back_at + Dur::from_us(1));
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].conn, conn);
        assert_eq!(h.tx_retry_len(), 0);
        assert_eq!(h.stats().tx_deferred, 1);
        assert_eq!(h.stats().tx_retry_flushed, 1);
    }

    #[test]
    fn retry_buffer_cap_applies_backpressure() {
        let cfg = HostConfig {
            tx_retry_cap: 2,
            ring_slots: 64,
            ..HostConfig::default()
        };
        let mut h = Host::new(cfg);
        let bob = h.spawn(Uid(1001), "bob", "client");
        let conn = open_conn(&mut h, bob, 7000, false);
        let pkt = PacketBuilder::new()
            .ether(h.cfg.mac, Mac::local(9))
            .ipv4(h.cfg.ip, Ipv4Addr::new(10, 0, 0, 2))
            .udp(7000, 9000, &[0u8; 64])
            .build();
        h.nic.reprogram_bitstream(Time::ZERO);
        assert!(h.app_send(conn, &pkt, Time::from_us(1)).deferred);
        assert!(h.app_send(conn, &pkt, Time::from_us(2)).deferred);
        let s = h.app_send(conn, &pkt, Time::from_us(3));
        assert!(!s.deferred, "cap reached: send refused");
        assert!(!s.queued);
        assert_eq!(h.tx_retry_len(), 2);
        assert_eq!(h.stats().tx_retry_dropped, 1);
    }

    #[test]
    fn nic_crash_is_auto_recovered_by_the_kernel() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "server");
        let conn = open_conn(&mut h, bob, 7000, false);
        h.update_policy(Time::ZERO, |p| {
            p.shaping = Some(ShapingPolicy::new(vec![(Uid(1001), 4.0)]))
        })
        .unwrap();
        let pkt = wire_udp(h.cfg.ip, 9000, 7000, 200);
        assert_eq!(
            h.deliver_from_wire(&pkt, Time::ZERO).outcome,
            DeliveryOutcome::FastPath(conn)
        );
        h.crash_nic(Time::from_us(10));
        assert!(h.nic.is_dead());
        // First entry after the crash: the kernel resets the device.
        // The dataplane is still frozen, so the frame is lost.
        let r = h.deliver_from_wire(&pkt, Time::from_us(11));
        assert!(!h.nic.is_dead(), "kernel must have driven a reset");
        assert_ne!(r.outcome, DeliveryOutcome::FastPath(conn));
        // After the thaw the kernel reconciles: flow table and policy
        // are rebuilt, and traffic resumes on the same connection id.
        let later = Time::from_ms(200);
        let r = h.deliver_from_wire(&pkt, later);
        assert_eq!(r.outcome, DeliveryOutcome::FastPath(conn));
        assert_eq!(
            h.policy_generation(),
            1,
            "reconcile must not bump the generation"
        );
        assert!(
            h.audit().is_empty(),
            "restored NIC state must match the kernel store"
        );
        assert_eq!(h.telemetry().recovery_count(RecoveryKind::NicReset), 1);
        assert_eq!(h.telemetry().recovery_count(RecoveryKind::ReconcileDone), 1);
    }

    #[test]
    fn worker_panic_is_survived_with_frames_intact() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "server");
        let conn = open_conn(&mut h, bob, 7000, false);
        h.run_workers(1).unwrap();
        h.start_trace();
        let pkt = wire_udp(h.cfg.ip, 9000, 7000, 100);
        let (reports, _) = h.pump(std::slice::from_ref(&pkt), Time::ZERO);
        assert_eq!(reports[0].outcome, DeliveryOutcome::FastPath(conn));
        let err = h
            .inject_worker_panic(0, "injected shard fault", Time::from_us(5))
            .unwrap_err();
        assert!(matches!(err, WorkerError::ShardPanicked { shard: 0, .. }));
        assert_eq!(h.worker_restarts(), 1);
        assert_eq!(h.stats().worker_restarts, 1);
        // The frame enqueued before the crash survived in its ring.
        let r = h.app_recv(conn, Time::from_us(10), false);
        assert_eq!(r.len, Some(pkt.len()));
        // The replacement shard serves new traffic.
        let (reports, _) = h.pump(std::slice::from_ref(&pkt), Time::from_us(20));
        assert_eq!(reports[0].outcome, DeliveryOutcome::FastPath(conn));
        assert!(
            h.audit().is_empty(),
            "conservation must hold across the restart"
        );
        assert_eq!(h.telemetry().recovery_count(RecoveryKind::ShardPanic), 1);
        assert_eq!(h.telemetry().recovery_count(RecoveryKind::ShardRestart), 1);
        h.stop_workers();
    }

    #[test]
    fn overload_degrades_low_prio_flows_and_promotes_back() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "server");
        let hi = open_conn(&mut h, bob, 7000, false);
        let lo = open_conn(&mut h, bob, 7001, false);
        h.update_policy(Time::ZERO, |p| {
            p.degradation = Some(crate::ctrl::DegradationPolicy {
                high_watermark: 0.5,
                low_watermark: 0.25,
                window: 4,
                low_prio_ports: vec![7001],
            })
        })
        .unwrap();
        let hp = wire_udp(h.cfg.ip, 9000, 7000, 100);
        let lp = wire_udp(h.cfg.ip, 9000, 7001, 100);
        // Overload: 2-slot ring fills, then two drops → window 4 at 50%
        // pressured → the detector engages.
        for _ in 0..4 {
            h.deliver_from_wire(&hp, Time::ZERO);
        }
        assert!(h.degraded());
        // Low-priority traffic now takes the software slow path...
        let r = h.deliver_from_wire(&lp, Time::from_us(1));
        assert_eq!(r.outcome, DeliveryOutcome::SlowPath);
        assert_eq!(h.stats().degraded_slowpath, 1);
        assert_eq!(h.stack.rx_degraded(), 1);
        // ...while high-priority traffic keeps its ring (drain first).
        h.app_recv(hi, Time::from_us(2), false);
        h.app_recv(hi, Time::from_us(2), false);
        let r = h.deliver_from_wire(&hp, Time::from_us(3));
        assert_eq!(r.outcome, DeliveryOutcome::FastPath(hi));
        // A calm window (1 demoted + 2 fast + 1 fast = 0% pressured)
        // promotes back to normal operation.
        h.app_recv(hi, Time::from_us(4), false);
        h.deliver_from_wire(&hp, Time::from_us(5));
        h.app_recv(hi, Time::from_us(6), false);
        h.deliver_from_wire(&hp, Time::from_us(7));
        assert!(!h.degraded());
        let r = h.deliver_from_wire(&lp, Time::from_us(8));
        assert_eq!(r.outcome, DeliveryOutcome::FastPath(lo));
        let tel = h.telemetry();
        assert_eq!(tel.recovery_count(RecoveryKind::DegradeEngaged), 1);
        assert_eq!(tel.recovery_count(RecoveryKind::DegradePromoted), 1);
    }

    #[test]
    fn close_releases_resources() {
        let mut h = host();
        let bob = h.spawn(Uid(1001), "bob", "server");
        let conn = open_conn(&mut h, bob, 7000, false);
        let used_before = h.nic.sram.used();
        assert!(h.close(conn));
        assert!(h.nic.sram.used() < used_before);
        assert!(!h.close(conn));
        // Traffic now takes the slow path.
        let pkt = wire_udp(h.cfg.ip, 9000, 7000, 64);
        let report = h.deliver_from_wire(&pkt, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::SlowPath);
    }

    /// Lifecycle property: across seeded chaos — a lossy, corrupting,
    /// reordering wire, a seeded NIC crash injector, and tiny rings
    /// that overflow constantly — every arena slot reference is
    /// eventually returned. Occupancy must come back to zero once the
    /// rings drain, for every seed.
    #[test]
    fn arena_conserved_under_seeded_chaos() {
        for seed in [1u64, 0xBEEF, 0x9_E9_E9] {
            let mut h = Host::new(HostConfig {
                ring_slots: 4,
                arena_slots: 64,
                ..HostConfig::default()
            });
            let bob = h.spawn(Uid(1001), "bob", "server");
            let conn = open_conn(&mut h, bob, 7000, false);
            h.set_nic_crash_injector(sim::fault::CrashInjector::seeded_rate(seed ^ 0x55, 0.002));
            let schedule = sim::FaultSchedule {
                corrupt_rate: 0.01,
                reorder_rate: 0.02,
                reorder_window: 4,
                ..sim::FaultSchedule::steady_loss(0.05)
            };
            let mut wire = sim::FaultyLink::new(sim::Link::hundred_gbe(), seed, schedule);
            let template = wire_udp(h.cfg.ip, 9000, 7000, 1000);
            for i in 0..2_000u64 {
                let t = Time::ZERO + Dur(5_000) * i;
                for d in wire.transmit(t, template.bytes().to_vec()) {
                    let pkt = h.adopt_frame(&d.frame);
                    let _ = h.deliver_frame(pkt, d.at);
                }
                // Drain rarely, so RingFull drops exercise the
                // refused-descriptor release path.
                if i % 32 == 0 {
                    while h.app_recv(conn, t, false).len.is_some() {}
                }
            }
            let end = Time::ZERO + Dur(5_000) * 2_000;
            for d in wire.flush(end) {
                let pkt = h.adopt_frame(&d.frame);
                let _ = h.deliver_frame(pkt, d.at);
            }
            while h.app_recv(conn, end, false).len.is_some() {}
            assert!(h.audit().is_empty(), "seed {seed}: {:?}", h.audit());
            assert_eq!(h.arena().live(), 0, "seed {seed} leaked arena slots");
        }
    }

    /// Representation property: an identical seeded delivery sequence
    /// observed through heap-backed frames and through arena-adopted
    /// frames produces identical outcomes, costs, and model state — the
    /// arena changes where bytes live, never what the model sees.
    #[test]
    fn replay_heap_vs_arena_identical() {
        let run = |adopt: bool| {
            let mut h = Host::new(HostConfig {
                ring_slots: 4,
                ..HostConfig::default()
            });
            let bob = h.spawn(Uid(1001), "bob", "server");
            let conn = open_conn(&mut h, bob, 7000, false);
            let mut wire = sim::FaultyLink::new(
                sim::Link::hundred_gbe(),
                7,
                sim::FaultSchedule {
                    corrupt_rate: 0.01,
                    ..sim::FaultSchedule::steady_loss(0.02)
                },
            );
            let template = wire_udp(h.cfg.ip, 9000, 7000, 700);
            let mut log: Vec<(u8, u64, u64)> = Vec::new();
            let mut recv_cpu = Dur::ZERO;
            for i in 0..500u64 {
                let t = Time::ZERO + Dur(5_000) * i;
                for d in wire.transmit(t, template.bytes().to_vec()) {
                    let pkt = if adopt {
                        h.adopt_frame(&d.frame)
                    } else {
                        Packet::from_bytes(d.frame)
                    };
                    let rep = h.deliver_frame(pkt, d.at);
                    let tag = match rep.outcome {
                        DeliveryOutcome::FastPath(_) => 0,
                        DeliveryOutcome::RingFull(_) => 1,
                        DeliveryOutcome::SlowPath => 2,
                        DeliveryOutcome::Dropped => 3,
                    };
                    log.push((tag, rep.mem_cost.0, rep.nic_latency.0));
                }
                if i % 8 == 0 {
                    while {
                        let r = h.app_recv(conn, t, false);
                        recv_cpu += r.cpu;
                        r.len.is_some()
                    } {}
                }
            }
            let llc = h.llc().stats();
            (
                log,
                recv_cpu,
                h.stats(),
                (llc.cpu_hits, llc.cpu_misses, llc.dma_hits, llc.dma_misses),
            )
        };
        let heap = run(false);
        let arena = run(true);
        assert_eq!(heap.0, arena.0, "per-frame outcomes/costs diverged");
        assert_eq!(heap.1, arena.1, "receive-side cpu diverged");
        assert_eq!(heap.3, arena.3, "LLC state evolution diverged");
        assert_eq!(format!("{:?}", heap.2), format!("{:?}", arena.2));
    }
}
