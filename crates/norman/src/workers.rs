//! Per-queue dataplane workers: the multi-queue sharding layer.
//!
//! [`Host::run_workers`](crate::Host::run_workers) pins one worker thread
//! per NIC RSS queue. Each worker owns a *shard*: the ring pairs of every
//! connection whose flow hash steers to its queue, a private LLC slice,
//! local delivery counters, and a buffer of trace events stamped with the
//! policy generation in force when the frame was handled. Nothing a
//! worker owns is shared — the host talks to workers over channels, so
//! the dataplane hot path never takes a lock.
//!
//! Shard-local state is reconciled at a **quiesce barrier**
//! ([`Host::quiesce`](crate::Host::quiesce)): every worker drains its
//! counters, busy time, and buffered events back to the host, which
//! merges them into the global [`HostStats`](crate::host::HostStats),
//! the per-core CPU meters, and the telemetry hub (via
//! [`telemetry::Telemetry::absorb`], which preserves each event's
//! generation stamp). Policy commits, bitstream-reprogram reconciles,
//! and audits all quiesce first, so a generation swap is atomic across
//! shards: no shard can keep emitting under the old generation after the
//! commit returns.
//!
//! Determinism: workers run on real threads, but every exchange is a
//! bounded request/reply over per-worker channels and the host collects
//! replies in worker order, then reassembles per-frame results in
//! arrival order. A multi-worker run is therefore a pure function of its
//! inputs — replaying the same frame schedule twice produces identical
//! reports, and `run_workers(1)` is byte-identical to the single-queue
//! [`Host::pump`](crate::Host::pump) path.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use memsim::{Llc, LlcConfig, LlcPartitionPlan, LlcStats, MemCosts};
use pkt::{FiveTuple, Packet};
use sim::{Dur, Time};
use telemetry::{DropCause, Owner, Stage, TraceEvent, TraceVerdict};

use crate::host::{FastMap, PktRing, RingKey};

/// Why [`Host::run_workers`](crate::Host::run_workers) refused, or what
/// the shard supervisor reports after a worker crash.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkerError {
    /// Worker mode is already active; stop it first.
    AlreadyRunning,
    /// Worker mode is not active.
    NotRunning,
    /// The worker count must match the NIC's RSS queue count so each
    /// queue has exactly one owner.
    QueueMismatch {
        /// Requested worker count.
        workers: usize,
        /// The NIC's configured RSS queue count.
        queues: usize,
    },
    /// Shared (per-process) rings cannot be sharded by flow: two
    /// connections of one process may steer to different queues.
    SharedRings,
    /// A worker thread panicked. The supervisor caught it: the shard's
    /// rings, counters, and events were salvaged, the thread exited
    /// cleanly (joinable), and a replacement shard was started — the
    /// remaining shards never stop serving.
    ShardPanicked {
        /// Which shard crashed.
        shard: usize,
        /// The panic payload, stringified.
        payload: String,
    },
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::AlreadyRunning => write!(f, "workers already running"),
            WorkerError::NotRunning => write!(f, "workers not running"),
            WorkerError::QueueMismatch { workers, queues } => {
                write!(f, "{workers} workers cannot own {queues} RSS queues 1:1")
            }
            WorkerError::SharedRings => {
                write!(f, "shared per-process rings cannot be sharded by flow")
            }
            WorkerError::ShardPanicked { shard, payload } => {
                write!(f, "worker shard {shard} panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for WorkerError {}

/// Delivery counters a shard maintains locally between quiesces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Frames DMA'd into this shard's RX rings.
    pub fast_delivered: u64,
    /// Frames dropped because the target ring was full.
    pub ring_drops: u64,
    /// Frames whose connection had no ring in this shard.
    pub ring_missing: u64,
}

/// What one worker hands back at a quiesce barrier. Counters and events
/// are *deltas* since the previous quiesce; the worker resets them after
/// reporting.
#[derive(Debug)]
pub struct ShardReport {
    /// Delivery counters accumulated since the last quiesce.
    pub stats: ShardStats,
    /// Trace events buffered since the last quiesce, each stamped with
    /// the policy generation in force when it was recorded.
    pub events: Vec<TraceEvent>,
    /// Worker CPU consumed on deliveries since the last quiesce.
    pub busy: Dur,
    /// LLC traffic through this shard's private partition since the last
    /// quiesce (hits, misses, DDIO evictions).
    pub llc: LlcStats,
    /// Frames currently resident in this shard's RX rings (an absolute
    /// occupancy, not a delta — the audit's third ledger).
    pub queued_fids: u64,
    /// Arena-backed frame descriptors currently resident in this shard's
    /// rings, both directions (absolute occupancy — the host's arena
    /// leak audit sums these against the arena's live-slot count).
    pub arena_resident: u64,
}

/// One frame the host asks a worker to DMA into its shard.
#[derive(Clone, Debug)]
pub(crate) struct DeliverJob {
    /// Position in the pump batch, for reassembly in arrival order.
    pub idx: usize,
    /// The ring pair the frame targets.
    pub key: RingKey,
    /// The frame itself, riding the ring as its descriptor. Cloning a
    /// [`Packet`] is a refcount bump (never a byte copy), so handing the
    /// job across the channel — and keeping the host-side crash-recovery
    /// copy — shares the one buffer.
    pub pkt: Packet,
    /// Frame length on the wire.
    pub len: usize,
    /// Telemetry frame id (0 when tracing is off).
    pub fid: u64,
    /// RX five-tuple, for trace events.
    pub tuple: Option<FiveTuple>,
    /// Owning process of the destination ring, for drop attribution in
    /// trace events. Only populated when `trace` is set.
    pub owner: Option<Owner>,
    /// When the NIC finished with the frame.
    pub ready_at: Time,
    /// Whether the flow was resolved from the cold tier: its ring DMA
    /// bypasses DDIO allocation so demoted flows cannot thrash the
    /// shard's LLC partition.
    pub cold: bool,
    /// Whether tracing is enabled for this batch.
    pub trace: bool,
    /// Policy generation in force when the batch was dispatched.
    pub generation: u64,
}

/// Worker-side outcome of one [`DeliverJob`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct DeliverReply {
    pub idx: usize,
    pub outcome: ShardOutcome,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum ShardOutcome {
    /// DMA'd into the RX ring at this memory cost.
    Fast(Dur),
    /// The ring was full; the frame was dropped.
    RingFull,
    /// The shard has no ring for this key (torn-down state mid-race).
    RingMissing,
    /// The shard crashed before answering this job. The frame is still
    /// in host memory — the supervisor reroutes it through the software
    /// slow path so it is accounted, not silently dropped.
    Crashed,
}

/// Worker-side outcome of one receive.
#[derive(Clone, Debug)]
pub(crate) enum RecvReply {
    /// Dequeued the frame at this cost; `fid` is the frame id that
    /// filled the slot (0 when untracked).
    Data {
        pkt: Packet,
        len: usize,
        cost: Dur,
        fid: u64,
    },
    /// The ring is empty.
    Empty,
    /// The shard has no ring for this key.
    Missing,
}

/// Worker-side outcome of one send (payload write + NIC DMA read).
#[derive(Clone, Copy, Debug)]
pub(crate) enum SendReply {
    /// Payload written into the TX ring at this CPU cost.
    Produced(Dur),
    /// The TX ring is full.
    Full,
    /// The shard has no ring for this key.
    Missing,
}

/// One ring pair in flight between shards (rebalance / teardown).
pub(crate) struct RingEntry {
    pub key: RingKey,
    pub rx: PktRing,
    pub tx: PktRing,
    pub fids: VecDeque<u64>,
}

enum Op {
    Deliver(Vec<DeliverJob>),
    Recv {
        key: RingKey,
        trace: bool,
    },
    Send {
        key: RingKey,
        pkt: Packet,
        len: usize,
    },
    InstallRing(Box<RingEntry>),
    CloseRing {
        key: RingKey,
    },
    DrainRings,
    Quiesce,
    ClearTrace,
    /// Fault injection: panic inside the worker thread with this message.
    Panic(String),
    Stop,
}

/// Everything the shard loop rescues from a panicking worker before the
/// thread exits: ring pairs live in host memory and survive the thread,
/// counters and events are a normal quiesce-style report, and any
/// deliver replies completed before the panic come back so the host can
/// reassemble the batch.
pub(crate) struct CrashSalvage {
    /// Deliver replies the shard finished before the panic hit.
    pub partial: Vec<DeliverReply>,
    /// Ring pairs (with tracked frame ids) pulled out of the dead shard.
    pub rings: Vec<RingEntry>,
    /// Final counter/event report. The rings are drained *before* this
    /// is built, so `report.queued_fids == 0` — ring occupancy rides the
    /// reinstalled entries and is reported by the replacement shard,
    /// never counted twice.
    pub report: ShardReport,
    /// The panic payload, stringified.
    pub payload: String,
}

enum Reply {
    Delivered(Vec<DeliverReply>),
    Recv(RecvReply),
    Send(SendReply),
    Rings(Vec<RingEntry>),
    Quiesce(Box<ShardReport>),
    Crashed(Box<CrashSalvage>),
    Done,
}

/// The state one worker thread owns outright.
struct Shard {
    rings: HashMap<RingKey, (PktRing, PktRing)>,
    ring_frame_ids: FastMap<RingKey, VecDeque<u64>>,
    llc: Llc,
    mem: MemCosts,
    stats: ShardStats,
    events: Vec<TraceEvent>,
    busy: Dur,
    /// Deliver replies for the batch currently being processed. Kept on
    /// the shard (not the stack) so a panic mid-batch can salvage them.
    partial: Vec<DeliverReply>,
}

impl Shard {
    fn new(llc: LlcConfig, mem: MemCosts) -> Shard {
        Shard {
            rings: HashMap::new(),
            ring_frame_ids: FastMap::default(),
            llc: Llc::new(llc),
            mem,
            stats: ShardStats::default(),
            events: Vec::new(),
            busy: Dur::ZERO,
            partial: Vec::new(),
        }
    }

    fn deliver(&mut self, job: DeliverJob) -> DeliverReply {
        let Some((rx_ring, _)) = self.rings.get_mut(&job.key) else {
            self.stats.ring_missing += 1;
            return DeliverReply {
                idx: job.idx,
                outcome: ShardOutcome::RingMissing,
            };
        };
        // The packet handle itself is the ring descriptor: a refused
        // produce drops it (refcount release), never copies it.
        let produced = if job.cold {
            rx_ring.produce_dma_bypass_with(job.pkt, job.len, &mut self.llc, &self.mem)
        } else {
            rx_ring.produce_dma_with(job.pkt, job.len, &mut self.llc, &self.mem)
        };
        match produced {
            Ok(cost) => {
                self.stats.fast_delivered += 1;
                self.busy += cost;
                if job.trace {
                    self.ring_frame_ids
                        .entry(job.key)
                        .or_default()
                        .push_back(job.fid);
                    self.events.push(TraceEvent {
                        frame_id: job.fid,
                        at: job.ready_at,
                        stage: Stage::RingEnqueue,
                        verdict: TraceVerdict::Pass,
                        tuple: job.tuple,
                        len: job.len as u32,
                        owner: job.owner,
                        generation: job.generation,
                    });
                }
                DeliverReply {
                    idx: job.idx,
                    outcome: ShardOutcome::Fast(cost),
                }
            }
            Err(_) => {
                self.stats.ring_drops += 1;
                if job.trace {
                    self.events.push(TraceEvent {
                        frame_id: job.fid,
                        at: job.ready_at,
                        stage: Stage::RingEnqueue,
                        verdict: TraceVerdict::Drop(DropCause::RingFull),
                        tuple: job.tuple,
                        len: job.len as u32,
                        owner: job.owner,
                        generation: job.generation,
                    });
                }
                DeliverReply {
                    idx: job.idx,
                    outcome: ShardOutcome::RingFull,
                }
            }
        }
    }

    fn recv(&mut self, key: RingKey, trace: bool) -> RecvReply {
        let Some((rx_ring, _)) = self.rings.get_mut(&key) else {
            return RecvReply::Missing;
        };
        match rx_ring.consume_cpu_desc(&mut self.llc, &self.mem) {
            Some((pkt, len, cost)) => {
                let fid = if trace {
                    self.ring_frame_ids
                        .get_mut(&key)
                        .and_then(|q| q.pop_front())
                        .unwrap_or(0)
                } else {
                    0
                };
                RecvReply::Data {
                    pkt,
                    len,
                    cost,
                    fid,
                }
            }
            None => RecvReply::Empty,
        }
    }

    fn send(&mut self, key: RingKey, pkt: Packet, len: usize) -> SendReply {
        let Some((_, tx_ring)) = self.rings.get_mut(&key) else {
            return SendReply::Missing;
        };
        match tx_ring.produce_cpu_with(pkt, len, &mut self.llc, &self.mem) {
            Ok(cost) => {
                // NIC side: DMA-read the frame back out of the ring (the
                // discarded descriptor is the NIC releasing its reference).
                let _ = tx_ring.consume_dma(&mut self.llc, &self.mem);
                SendReply::Produced(cost)
            }
            Err(_) => SendReply::Full,
        }
    }

    fn drain_rings(&mut self) -> Vec<RingEntry> {
        let mut keys: Vec<RingKey> = self.rings.keys().copied().collect();
        keys.sort_unstable_by_key(|k| k.order());
        keys.into_iter()
            .map(|key| {
                let (rx, tx) = self.rings.remove(&key).expect("key came from the map");
                RingEntry {
                    key,
                    rx,
                    tx,
                    fids: self.ring_frame_ids.remove(&key).unwrap_or_default(),
                }
            })
            .collect()
    }

    fn report(&mut self) -> ShardReport {
        let llc = self.llc.stats();
        self.llc.reset_stats(); // contents stay; counters restart as deltas
        ShardReport {
            stats: std::mem::take(&mut self.stats),
            events: std::mem::take(&mut self.events),
            busy: std::mem::replace(&mut self.busy, Dur::ZERO),
            llc,
            queued_fids: self.ring_frame_ids.values().map(|q| q.len() as u64).sum(),
            arena_resident: self
                .rings
                .values()
                .map(|(rx, tx)| {
                    (rx.iter_descs().filter(|p| p.is_arena()).count()
                        + tx.iter_descs().filter(|p| p.is_arena()).count())
                        as u64
                })
                .sum(),
        }
    }

    fn handle(&mut self, op: Op) -> Reply {
        match op {
            Op::Deliver(jobs) => {
                for j in jobs {
                    let r = self.deliver(j);
                    self.partial.push(r);
                }
                Reply::Delivered(std::mem::take(&mut self.partial))
            }
            Op::Recv { key, trace } => Reply::Recv(self.recv(key, trace)),
            Op::Send { key, pkt, len } => Reply::Send(self.send(key, pkt, len)),
            Op::InstallRing(e) => {
                if !e.fids.is_empty() {
                    self.ring_frame_ids.insert(e.key, e.fids);
                }
                self.rings.insert(e.key, (e.rx, e.tx));
                Reply::Done
            }
            Op::CloseRing { key } => {
                self.rings.remove(&key);
                self.ring_frame_ids.remove(&key);
                Reply::Done
            }
            Op::DrainRings => Reply::Rings(self.drain_rings()),
            Op::Quiesce => Reply::Quiesce(Box::new(self.report())),
            Op::ClearTrace => {
                self.events.clear();
                self.ring_frame_ids.clear();
                Reply::Done
            }
            Op::Panic(msg) => panic!("{msg}"),
            Op::Stop => unreachable!("Stop is handled by the run loop"),
        }
    }

    fn run(mut self, ops: Receiver<Op>, replies: Sender<Reply>) {
        for op in ops {
            if matches!(op, Op::Stop) {
                let _ = replies.send(Reply::Done);
                return;
            }
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.handle(op)));
            let reply = match caught {
                Ok(reply) => reply,
                Err(e) => {
                    // The op panicked. Salvage everything the host needs
                    // — rings FIRST so the final report's queued_fids is
                    // zero (occupancy travels with the ring entries) —
                    // then exit so the thread stays cleanly joinable.
                    let payload = panic_message(e.as_ref());
                    let partial = std::mem::take(&mut self.partial);
                    let rings = self.drain_rings();
                    let report = self.report();
                    let _ = replies.send(Reply::Crashed(Box::new(CrashSalvage {
                        partial,
                        rings,
                        report,
                        payload,
                    })));
                    return;
                }
            };
            if replies.send(reply).is_err() {
                return; // host side went away
            }
        }
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Workers report panics through the supervisor, so the default panic
/// hook's backtrace spew on stderr is pure noise (and would make chaos
/// runs unreadable). Suppress it for worker threads only; every other
/// thread keeps the previous hook.
fn quiet_worker_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("norman-worker-"));
            if !in_worker {
                prev(info);
            }
        }));
    });
}

struct Worker {
    ops: Sender<Op>,
    replies: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn call(&self, op: Op) -> Reply {
        self.ops.send(op).expect("worker thread alive");
        self.replies.recv().expect("worker thread alive")
    }
}

/// One supervised shard restart, recorded for the host to account.
#[derive(Clone, Debug)]
pub(crate) struct ShardCrash {
    /// Which shard crashed.
    pub shard: usize,
    /// The panic payload, stringified.
    pub payload: String,
    /// Cumulative restarts of this shard (1 on the first crash).
    pub restarts: u64,
    /// Backoff penalty the supervisor charges for this restart:
    /// doubling from 50 µs, capped after six doublings.
    pub penalty: Dur,
}

/// The host-side handle to the worker fleet: one channel pair per
/// worker, plus the key→shard ownership map. Also the shard
/// *supervisor*: a `Reply::Crashed` from any worker triggers join →
/// salvage → restart at the same index, and the crash is recorded for
/// the host to account (restart counters, backoff CPU penalty,
/// recovery telemetry).
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    shard_of: HashMap<RingKey, usize>,
    /// The way-disjoint carve-up of the host LLC: shard `i` owns
    /// partition `i` outright, with a per-partition DDIO mask floored
    /// at one way, so one shard's ring working set cannot evict
    /// another's and every shard can absorb inbound DMA.
    plan: LlcPartitionPlan,
    mem: MemCosts,
    /// Per-shard cumulative restart counts (drives backoff doubling).
    restarts: Vec<u64>,
    /// Reports salvaged from crashed shards, folded into the next
    /// quiesce so no counter or event is lost.
    pending_reports: Vec<(usize, ShardReport)>,
    /// Crash records since the last [`WorkerPool::take_crashes`].
    crashes: Vec<ShardCrash>,
}

impl WorkerPool {
    pub(crate) fn new(n: usize, plan: LlcPartitionPlan, mem: MemCosts) -> WorkerPool {
        assert!(n > 0, "need at least one worker");
        assert_eq!(plan.len(), n, "one LLC partition per shard");
        quiet_worker_panics();
        let workers = (0..n)
            .map(|i| Self::spawn_worker(i, plan.shard(i), &mem))
            .collect();
        WorkerPool {
            workers,
            shard_of: HashMap::new(),
            plan,
            mem,
            restarts: vec![0; n],
            pending_reports: Vec::new(),
            crashes: Vec::new(),
        }
    }

    fn spawn_worker(i: usize, llc: &LlcConfig, mem: &MemCosts) -> Worker {
        let (op_tx, op_rx) = channel::<Op>();
        let (reply_tx, reply_rx) = channel::<Reply>();
        let shard = Shard::new(llc.clone(), mem.clone());
        let handle = std::thread::Builder::new()
            .name(format!("norman-worker-{i}"))
            .spawn(move || shard.run(op_rx, reply_tx))
            .expect("spawn worker thread");
        Worker {
            ops: op_tx,
            replies: reply_rx,
            handle: Some(handle),
        }
    }

    /// Receives one reply from worker `i`, supervising crashes. On
    /// [`Reply::Crashed`] the dead thread is joined, a replacement shard
    /// is spawned at the same index with a bounded doubling backoff
    /// penalty, the salvaged rings are reinstalled into it (ring memory
    /// is host memory — it survives the worker), the salvaged report is
    /// banked for the next quiesce, and the crash is recorded. Returns
    /// the panic payload and any partial deliver replies.
    fn recv_supervised(&mut self, i: usize) -> Result<Reply, (String, Vec<DeliverReply>)> {
        let reply = self.workers[i]
            .replies
            .recv()
            .expect("worker reply channel");
        let Reply::Crashed(salvage) = reply else {
            return Ok(reply);
        };
        let CrashSalvage {
            partial,
            rings,
            report,
            payload,
        } = *salvage;
        if let Some(h) = self.workers[i].handle.take() {
            let _ = h.join(); // the shard sent its salvage, then exited
        }
        self.restarts[i] += 1;
        let n = self.restarts[i];
        let penalty = Dur::from_us(50 << (n - 1).min(6));
        self.workers[i] = Self::spawn_worker(i, self.plan.shard(i), &self.mem);
        for e in rings {
            match self.workers[i].call(Op::InstallRing(Box::new(e))) {
                Reply::Done => {}
                _ => unreachable!("reinstall reply"),
            }
        }
        self.pending_reports.push((i, report));
        self.crashes.push(ShardCrash {
            shard: i,
            payload: payload.clone(),
            restarts: n,
            penalty,
        });
        Err((payload, partial))
    }

    /// Fault injection: make shard `shard` panic with `msg`. The
    /// supervisor handles the crash synchronously; by the time this
    /// returns the replacement shard is serving and the crash record is
    /// available via [`WorkerPool::take_crashes`].
    pub(crate) fn inject_panic(&mut self, shard: usize, msg: &str) {
        self.workers[shard]
            .ops
            .send(Op::Panic(msg.to_string()))
            .expect("worker thread alive");
        match self.recv_supervised(shard) {
            Err(_) => {}
            Ok(_) => unreachable!("panic op always crashes the shard"),
        }
    }

    /// Crash records accumulated since the last call.
    pub(crate) fn take_crashes(&mut self) -> Vec<ShardCrash> {
        std::mem::take(&mut self.crashes)
    }

    /// Total shard restarts over the pool's lifetime.
    pub(crate) fn total_restarts(&self) -> u64 {
        self.restarts.iter().sum()
    }

    pub(crate) fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The LLC partition plan shards were built from (audited by
    /// [`Host::audit`](crate::Host::audit) for way conservation).
    pub(crate) fn plan(&self) -> &LlcPartitionPlan {
        &self.plan
    }

    /// Which shard owns `key`, if any.
    pub(crate) fn owner_of(&self, key: RingKey) -> Option<usize> {
        self.shard_of.get(&key).copied()
    }

    /// Installs a ring pair (with its tracked frame ids) into `shard`.
    pub(crate) fn install(
        &mut self,
        shard: usize,
        key: RingKey,
        rx: PktRing,
        tx: PktRing,
        fids: VecDeque<u64>,
    ) {
        self.shard_of.insert(key, shard);
        self.workers[shard]
            .ops
            .send(Op::InstallRing(Box::new(RingEntry { key, rx, tx, fids })))
            .expect("worker thread alive");
        match self.recv_supervised(shard) {
            Ok(Reply::Done) | Err(_) => {}
            Ok(_) => unreachable!("install reply"),
        }
    }

    /// Tears down `key`'s rings wherever they live.
    pub(crate) fn close(&mut self, key: RingKey) {
        if let Some(shard) = self.shard_of.remove(&key) {
            self.workers[shard]
                .ops
                .send(Op::CloseRing { key })
                .expect("worker thread alive");
            match self.recv_supervised(shard) {
                Ok(Reply::Done) => {}
                Ok(_) => unreachable!("close reply"),
                Err(_) => {
                    // The salvage reinstalled the shard's rings — the one
                    // being closed included. Re-issue against the
                    // replacement shard.
                    self.workers[shard]
                        .ops
                        .send(Op::CloseRing { key })
                        .expect("worker thread alive");
                    match self.recv_supervised(shard) {
                        Ok(Reply::Done) => {}
                        _ => panic!("worker shard {shard} crashed twice during close"),
                    }
                }
            }
        }
    }

    /// Dispatches one per-shard job batch to every worker at once, lets
    /// them run concurrently, and returns the union of replies. Replies
    /// are collected in worker order, so the result is deterministic
    /// regardless of thread scheduling.
    pub(crate) fn deliver(&mut self, batches: Vec<Vec<DeliverJob>>) -> Vec<DeliverReply> {
        assert_eq!(batches.len(), self.workers.len());
        let mut busy = Vec::new();
        for (i, jobs) in batches.into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            // Keep a copy so a crashed shard's unanswered jobs can be
            // identified and rerouted (cloning a job bumps its packet's
            // refcount; the frame bytes stay in host memory either way).
            let copy = jobs.clone();
            self.workers[i]
                .ops
                .send(Op::Deliver(jobs))
                .expect("worker thread alive");
            busy.push((i, copy));
        }
        let mut replies = Vec::new();
        for (i, jobs) in busy {
            match self.recv_supervised(i) {
                Ok(Reply::Delivered(mut r)) => replies.append(&mut r),
                Ok(_) => unreachable!("deliver reply"),
                Err((_, mut partial)) => {
                    // Jobs the dead shard never answered come back as
                    // Crashed; the host reroutes those frames through
                    // the slow path, so nothing silently disappears.
                    let answered: HashSet<usize> = partial.iter().map(|r| r.idx).collect();
                    for j in &jobs {
                        if !answered.contains(&j.idx) {
                            partial.push(DeliverReply {
                                idx: j.idx,
                                outcome: ShardOutcome::Crashed,
                            });
                        }
                    }
                    replies.append(&mut partial);
                }
            }
        }
        replies
    }

    pub(crate) fn recv(&mut self, shard: usize, key: RingKey, trace: bool) -> RecvReply {
        self.workers[shard]
            .ops
            .send(Op::Recv { key, trace })
            .expect("worker thread alive");
        match self.recv_supervised(shard) {
            Ok(Reply::Recv(r)) => r,
            Ok(_) => unreachable!("recv reply"),
            Err(_) => {
                // Re-issue once against the replacement shard: the rings
                // (and their contents) survived the crash.
                self.workers[shard]
                    .ops
                    .send(Op::Recv { key, trace })
                    .expect("worker thread alive");
                match self.recv_supervised(shard) {
                    Ok(Reply::Recv(r)) => r,
                    _ => panic!("worker shard {shard} crashed twice during recv"),
                }
            }
        }
    }

    pub(crate) fn send(
        &mut self,
        shard: usize,
        key: RingKey,
        pkt: Packet,
        len: usize,
    ) -> SendReply {
        self.workers[shard]
            .ops
            .send(Op::Send {
                key,
                pkt: pkt.clone(),
                len,
            })
            .expect("worker thread alive");
        match self.recv_supervised(shard) {
            Ok(Reply::Send(r)) => r,
            Ok(_) => unreachable!("send reply"),
            Err(_) => {
                self.workers[shard]
                    .ops
                    .send(Op::Send { key, pkt, len })
                    .expect("worker thread alive");
                match self.recv_supervised(shard) {
                    Ok(Reply::Send(r)) => r,
                    _ => panic!("worker shard {shard} crashed twice during send"),
                }
            }
        }
    }

    /// The quiesce barrier: every worker drains its counters, busy time,
    /// and buffered events. Reports come back in worker (core) order,
    /// with anything salvaged from crashed shards folded back in so the
    /// merge is conservation-exact across restarts.
    pub(crate) fn quiesce(&mut self) -> Vec<ShardReport> {
        for w in &self.workers {
            w.ops.send(Op::Quiesce).expect("worker thread alive");
        }
        let mut reports = Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            let report = match self.recv_supervised(i) {
                Ok(Reply::Quiesce(r)) => *r,
                Ok(_) => unreachable!("quiesce reply"),
                Err(_) => {
                    // The shard crashed on the quiesce itself; its
                    // salvage report was banked. Quiesce the replacement
                    // (which inherited the rings) for the occupancy.
                    self.workers[i]
                        .ops
                        .send(Op::Quiesce)
                        .expect("worker thread alive");
                    match self.recv_supervised(i) {
                        Ok(Reply::Quiesce(r)) => *r,
                        _ => panic!("worker shard {i} crashed twice during quiesce"),
                    }
                }
            };
            reports.push(report);
        }
        // Fold in reports salvaged from crashed shards since the last
        // quiesce: their events predate the live report's, so prepend;
        // counters and busy time sum. queued_fids needs no folding — the
        // salvage drained the rings before reporting (so its own count
        // is zero) and the replacement shard that inherited them reports
        // the occupancy.
        for (i, banked) in std::mem::take(&mut self.pending_reports) {
            let live = &mut reports[i];
            live.stats.fast_delivered += banked.stats.fast_delivered;
            live.stats.ring_drops += banked.stats.ring_drops;
            live.stats.ring_missing += banked.stats.ring_missing;
            live.busy += banked.busy;
            live.llc.absorb(&banked.llc);
            let mut events = banked.events;
            events.append(&mut live.events);
            live.events = events;
        }
        reports
    }

    /// Clears trace buffers in every shard (a `start_trace` restart).
    pub(crate) fn clear_trace(&mut self) {
        for w in &self.workers {
            w.ops.send(Op::ClearTrace).expect("worker thread alive");
        }
        for i in 0..self.workers.len() {
            match self.recv_supervised(i) {
                Ok(Reply::Done) | Err(_) => {}
                Ok(_) => unreachable!("clear-trace reply"),
            }
        }
    }

    /// Pulls every ring pair out of every shard (teardown or rebalance).
    pub(crate) fn drain_all(&mut self) -> Vec<RingEntry> {
        let mut entries = Vec::new();
        for w in &self.workers {
            w.ops.send(Op::DrainRings).expect("worker thread alive");
        }
        for i in 0..self.workers.len() {
            match self.recv_supervised(i) {
                Ok(Reply::Rings(mut r)) => entries.append(&mut r),
                Ok(_) => unreachable!("drain reply"),
                Err(_) => {
                    // Crash mid-drain: the salvage reinstalled the rings
                    // into the replacement shard — drain that one.
                    self.workers[i]
                        .ops
                        .send(Op::DrainRings)
                        .expect("worker thread alive");
                    match self.recv_supervised(i) {
                        Ok(Reply::Rings(mut r)) => entries.append(&mut r),
                        _ => panic!("worker shard {i} crashed twice during drain"),
                    }
                }
            }
        }
        self.shard_of.clear();
        entries
    }

    /// Moves every ring pair to the shard `assign` names (missing keys
    /// default to shard 0). Called after a policy commit changed the RSS
    /// steering, under the quiesce barrier.
    pub(crate) fn rebalance(&mut self, assign: &HashMap<RingKey, usize>) {
        for e in self.drain_all() {
            let shard = assign.get(&e.key).copied().unwrap_or(0) % self.workers.len();
            self.install(shard, e.key, e.rx, e.tx, e.fids);
        }
    }

    /// Stops every worker thread and waits for it to exit.
    pub(crate) fn stop(&mut self) {
        for w in &self.workers {
            let _ = w.ops.send(Op::Stop);
        }
        for w in &mut self.workers {
            let _ = w.replies.recv();
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        self.workers.clear();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping the op senders ends each worker's loop; join so no
        // thread outlives the pool.
        for w in &mut self.workers {
            drop(std::mem::replace(&mut w.ops, channel().0));
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}
