//! Per-queue dataplane workers: the multi-queue sharding layer.
//!
//! [`Host::run_workers`](crate::Host::run_workers) pins one worker thread
//! per NIC RSS queue. Each worker owns a *shard*: the ring pairs of every
//! connection whose flow hash steers to its queue, a private LLC slice,
//! local delivery counters, and a buffer of trace events stamped with the
//! policy generation in force when the frame was handled. Nothing a
//! worker owns is shared — the host talks to workers over channels, so
//! the dataplane hot path never takes a lock.
//!
//! Shard-local state is reconciled at a **quiesce barrier**
//! ([`Host::quiesce`](crate::Host::quiesce)): every worker drains its
//! counters, busy time, and buffered events back to the host, which
//! merges them into the global [`HostStats`](crate::host::HostStats),
//! the per-core CPU meters, and the telemetry hub (via
//! [`telemetry::Telemetry::absorb`], which preserves each event's
//! generation stamp). Policy commits, bitstream-reprogram reconciles,
//! and audits all quiesce first, so a generation swap is atomic across
//! shards: no shard can keep emitting under the old generation after the
//! commit returns.
//!
//! Determinism: workers run on real threads, but every exchange is a
//! bounded request/reply over per-worker channels and the host collects
//! replies in worker order, then reassembles per-frame results in
//! arrival order. A multi-worker run is therefore a pure function of its
//! inputs — replaying the same frame schedule twice produces identical
//! reports, and `run_workers(1)` is byte-identical to the single-queue
//! [`Host::pump`](crate::Host::pump) path.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use memsim::{HostRing, Llc, LlcConfig, MemCosts};
use pkt::FiveTuple;
use sim::{Dur, Time};
use telemetry::{DropCause, Stage, TraceEvent, TraceVerdict};

use crate::host::RingKey;

/// Why [`Host::run_workers`](crate::Host::run_workers) refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkerError {
    /// Worker mode is already active; stop it first.
    AlreadyRunning,
    /// The worker count must match the NIC's RSS queue count so each
    /// queue has exactly one owner.
    QueueMismatch {
        /// Requested worker count.
        workers: usize,
        /// The NIC's configured RSS queue count.
        queues: usize,
    },
    /// Shared (per-process) rings cannot be sharded by flow: two
    /// connections of one process may steer to different queues.
    SharedRings,
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::AlreadyRunning => write!(f, "workers already running"),
            WorkerError::QueueMismatch { workers, queues } => {
                write!(f, "{workers} workers cannot own {queues} RSS queues 1:1")
            }
            WorkerError::SharedRings => {
                write!(f, "shared per-process rings cannot be sharded by flow")
            }
        }
    }
}

impl std::error::Error for WorkerError {}

/// Delivery counters a shard maintains locally between quiesces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Frames DMA'd into this shard's RX rings.
    pub fast_delivered: u64,
    /// Frames dropped because the target ring was full.
    pub ring_drops: u64,
    /// Frames whose connection had no ring in this shard.
    pub ring_missing: u64,
}

/// What one worker hands back at a quiesce barrier. Counters and events
/// are *deltas* since the previous quiesce; the worker resets them after
/// reporting.
#[derive(Debug)]
pub struct ShardReport {
    /// Delivery counters accumulated since the last quiesce.
    pub stats: ShardStats,
    /// Trace events buffered since the last quiesce, each stamped with
    /// the policy generation in force when it was recorded.
    pub events: Vec<TraceEvent>,
    /// Worker CPU consumed on deliveries since the last quiesce.
    pub busy: Dur,
    /// Frames currently resident in this shard's RX rings (an absolute
    /// occupancy, not a delta — the audit's third ledger).
    pub queued_fids: u64,
}

/// One frame the host asks a worker to DMA into its shard.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DeliverJob {
    /// Position in the pump batch, for reassembly in arrival order.
    pub idx: usize,
    /// The ring pair the frame targets.
    pub key: RingKey,
    /// Frame length on the wire.
    pub len: usize,
    /// Telemetry frame id (0 when tracing is off).
    pub fid: u64,
    /// RX five-tuple, for trace events.
    pub tuple: Option<FiveTuple>,
    /// When the NIC finished with the frame.
    pub ready_at: Time,
    /// Whether tracing is enabled for this batch.
    pub trace: bool,
    /// Policy generation in force when the batch was dispatched.
    pub generation: u64,
}

/// Worker-side outcome of one [`DeliverJob`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct DeliverReply {
    pub idx: usize,
    pub outcome: ShardOutcome,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum ShardOutcome {
    /// DMA'd into the RX ring at this memory cost.
    Fast(Dur),
    /// The ring was full; the frame was dropped.
    RingFull,
    /// The shard has no ring for this key (torn-down state mid-race).
    RingMissing,
}

/// Worker-side outcome of one receive.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RecvReply {
    /// Dequeued `len` bytes at this cost; `fid` is the frame id that
    /// filled the slot (0 when untracked).
    Data { len: usize, cost: Dur, fid: u64 },
    /// The ring is empty.
    Empty,
    /// The shard has no ring for this key.
    Missing,
}

/// Worker-side outcome of one send (payload write + NIC DMA read).
#[derive(Clone, Copy, Debug)]
pub(crate) enum SendReply {
    /// Payload written into the TX ring at this CPU cost.
    Produced(Dur),
    /// The TX ring is full.
    Full,
    /// The shard has no ring for this key.
    Missing,
}

/// One ring pair in flight between shards (rebalance / teardown).
pub(crate) struct RingEntry {
    pub key: RingKey,
    pub rx: HostRing,
    pub tx: HostRing,
    pub fids: VecDeque<u64>,
}

enum Op {
    Deliver(Vec<DeliverJob>),
    Recv { key: RingKey, trace: bool },
    Send { key: RingKey, len: usize },
    InstallRing(Box<RingEntry>),
    CloseRing { key: RingKey },
    DrainRings,
    Quiesce,
    ClearTrace,
    Stop,
}

enum Reply {
    Delivered(Vec<DeliverReply>),
    Recv(RecvReply),
    Send(SendReply),
    Rings(Vec<RingEntry>),
    Quiesce(Box<ShardReport>),
    Done,
}

/// The state one worker thread owns outright.
struct Shard {
    rings: HashMap<RingKey, (HostRing, HostRing)>,
    ring_frame_ids: HashMap<RingKey, VecDeque<u64>>,
    llc: Llc,
    mem: MemCosts,
    stats: ShardStats,
    events: Vec<TraceEvent>,
    busy: Dur,
}

impl Shard {
    fn new(llc: LlcConfig, mem: MemCosts) -> Shard {
        Shard {
            rings: HashMap::new(),
            ring_frame_ids: HashMap::new(),
            llc: Llc::new(llc),
            mem,
            stats: ShardStats::default(),
            events: Vec::new(),
            busy: Dur::ZERO,
        }
    }

    fn deliver(&mut self, job: DeliverJob) -> DeliverReply {
        let Some((rx_ring, _)) = self.rings.get_mut(&job.key) else {
            self.stats.ring_missing += 1;
            return DeliverReply {
                idx: job.idx,
                outcome: ShardOutcome::RingMissing,
            };
        };
        match rx_ring.produce_dma(job.len, &mut self.llc, &self.mem) {
            Ok(cost) => {
                self.stats.fast_delivered += 1;
                self.busy += cost;
                if job.trace {
                    self.ring_frame_ids
                        .entry(job.key)
                        .or_default()
                        .push_back(job.fid);
                    self.events.push(TraceEvent {
                        frame_id: job.fid,
                        at: job.ready_at,
                        stage: Stage::RingEnqueue,
                        verdict: TraceVerdict::Pass,
                        tuple: job.tuple,
                        len: job.len as u32,
                        owner: None,
                        generation: job.generation,
                    });
                }
                DeliverReply {
                    idx: job.idx,
                    outcome: ShardOutcome::Fast(cost),
                }
            }
            Err(_) => {
                self.stats.ring_drops += 1;
                if job.trace {
                    self.events.push(TraceEvent {
                        frame_id: job.fid,
                        at: job.ready_at,
                        stage: Stage::RingEnqueue,
                        verdict: TraceVerdict::Drop(DropCause::RingFull),
                        tuple: job.tuple,
                        len: job.len as u32,
                        owner: None,
                        generation: job.generation,
                    });
                }
                DeliverReply {
                    idx: job.idx,
                    outcome: ShardOutcome::RingFull,
                }
            }
        }
    }

    fn recv(&mut self, key: RingKey, trace: bool) -> RecvReply {
        let Some((rx_ring, _)) = self.rings.get_mut(&key) else {
            return RecvReply::Missing;
        };
        match rx_ring.consume_cpu(&mut self.llc, &self.mem) {
            Some((len, cost)) => {
                let fid = if trace {
                    self.ring_frame_ids
                        .get_mut(&key)
                        .and_then(|q| q.pop_front())
                        .unwrap_or(0)
                } else {
                    0
                };
                RecvReply::Data { len, cost, fid }
            }
            None => RecvReply::Empty,
        }
    }

    fn send(&mut self, key: RingKey, len: usize) -> SendReply {
        let Some((_, tx_ring)) = self.rings.get_mut(&key) else {
            return SendReply::Missing;
        };
        match tx_ring.produce_cpu(len, &mut self.llc, &self.mem) {
            Ok(cost) => {
                // NIC side: DMA-read the frame back out of the ring.
                let _ = tx_ring.consume_dma(&mut self.llc, &self.mem);
                SendReply::Produced(cost)
            }
            Err(_) => SendReply::Full,
        }
    }

    fn drain_rings(&mut self) -> Vec<RingEntry> {
        let mut keys: Vec<RingKey> = self.rings.keys().copied().collect();
        keys.sort_unstable_by_key(|k| k.order());
        keys.into_iter()
            .map(|key| {
                let (rx, tx) = self.rings.remove(&key).expect("key came from the map");
                RingEntry {
                    key,
                    rx,
                    tx,
                    fids: self.ring_frame_ids.remove(&key).unwrap_or_default(),
                }
            })
            .collect()
    }

    fn report(&mut self) -> ShardReport {
        ShardReport {
            stats: std::mem::take(&mut self.stats),
            events: std::mem::take(&mut self.events),
            busy: std::mem::replace(&mut self.busy, Dur::ZERO),
            queued_fids: self.ring_frame_ids.values().map(|q| q.len() as u64).sum(),
        }
    }

    fn run(mut self, ops: Receiver<Op>, replies: Sender<Reply>) {
        for op in ops {
            let reply = match op {
                Op::Deliver(jobs) => {
                    Reply::Delivered(jobs.into_iter().map(|j| self.deliver(j)).collect())
                }
                Op::Recv { key, trace } => Reply::Recv(self.recv(key, trace)),
                Op::Send { key, len } => Reply::Send(self.send(key, len)),
                Op::InstallRing(e) => {
                    if !e.fids.is_empty() {
                        self.ring_frame_ids.insert(e.key, e.fids);
                    }
                    self.rings.insert(e.key, (e.rx, e.tx));
                    Reply::Done
                }
                Op::CloseRing { key } => {
                    self.rings.remove(&key);
                    self.ring_frame_ids.remove(&key);
                    Reply::Done
                }
                Op::DrainRings => Reply::Rings(self.drain_rings()),
                Op::Quiesce => Reply::Quiesce(Box::new(self.report())),
                Op::ClearTrace => {
                    self.events.clear();
                    self.ring_frame_ids.clear();
                    Reply::Done
                }
                Op::Stop => {
                    let _ = replies.send(Reply::Done);
                    return;
                }
            };
            if replies.send(reply).is_err() {
                return; // host side went away
            }
        }
    }
}

struct Worker {
    ops: Sender<Op>,
    replies: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn call(&self, op: Op) -> Reply {
        self.ops.send(op).expect("worker thread alive");
        self.replies.recv().expect("worker thread alive")
    }
}

/// The host-side handle to the worker fleet: one channel pair per
/// worker, plus the key→shard ownership map.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    shard_of: HashMap<RingKey, usize>,
}

impl WorkerPool {
    pub(crate) fn new(n: usize, llc: LlcConfig, mem: MemCosts) -> WorkerPool {
        assert!(n > 0, "need at least one worker");
        let workers = (0..n)
            .map(|i| {
                let (op_tx, op_rx) = channel::<Op>();
                let (reply_tx, reply_rx) = channel::<Reply>();
                let shard = Shard::new(llc.clone(), mem.clone());
                let handle = std::thread::Builder::new()
                    .name(format!("norman-worker-{i}"))
                    .spawn(move || shard.run(op_rx, reply_tx))
                    .expect("spawn worker thread");
                Worker {
                    ops: op_tx,
                    replies: reply_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool {
            workers,
            shard_of: HashMap::new(),
        }
    }

    pub(crate) fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Which shard owns `key`, if any.
    pub(crate) fn owner_of(&self, key: RingKey) -> Option<usize> {
        self.shard_of.get(&key).copied()
    }

    /// Installs a ring pair (with its tracked frame ids) into `shard`.
    pub(crate) fn install(
        &mut self,
        shard: usize,
        key: RingKey,
        rx: HostRing,
        tx: HostRing,
        fids: VecDeque<u64>,
    ) {
        self.shard_of.insert(key, shard);
        match self.workers[shard].call(Op::InstallRing(Box::new(RingEntry { key, rx, tx, fids }))) {
            Reply::Done => {}
            _ => unreachable!("install reply"),
        }
    }

    /// Tears down `key`'s rings wherever they live.
    pub(crate) fn close(&mut self, key: RingKey) {
        if let Some(shard) = self.shard_of.remove(&key) {
            match self.workers[shard].call(Op::CloseRing { key }) {
                Reply::Done => {}
                _ => unreachable!("close reply"),
            }
        }
    }

    /// Dispatches one per-shard job batch to every worker at once, lets
    /// them run concurrently, and returns the union of replies. Replies
    /// are collected in worker order, so the result is deterministic
    /// regardless of thread scheduling.
    pub(crate) fn deliver(&mut self, batches: Vec<Vec<DeliverJob>>) -> Vec<DeliverReply> {
        assert_eq!(batches.len(), self.workers.len());
        let mut busy = Vec::new();
        for (i, jobs) in batches.into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            self.workers[i]
                .ops
                .send(Op::Deliver(jobs))
                .expect("worker thread alive");
            busy.push(i);
        }
        let mut replies = Vec::new();
        for i in busy {
            match self.workers[i].replies.recv().expect("worker thread alive") {
                Reply::Delivered(mut r) => replies.append(&mut r),
                _ => unreachable!("deliver reply"),
            }
        }
        replies
    }

    pub(crate) fn recv(&mut self, shard: usize, key: RingKey, trace: bool) -> RecvReply {
        match self.workers[shard].call(Op::Recv { key, trace }) {
            Reply::Recv(r) => r,
            _ => unreachable!("recv reply"),
        }
    }

    pub(crate) fn send(&mut self, shard: usize, key: RingKey, len: usize) -> SendReply {
        match self.workers[shard].call(Op::Send { key, len }) {
            Reply::Send(r) => r,
            _ => unreachable!("send reply"),
        }
    }

    /// The quiesce barrier: every worker drains its counters, busy time,
    /// and buffered events. Reports come back in worker (core) order.
    pub(crate) fn quiesce(&mut self) -> Vec<ShardReport> {
        for w in &self.workers {
            w.ops.send(Op::Quiesce).expect("worker thread alive");
        }
        self.workers
            .iter()
            .map(|w| match w.replies.recv().expect("worker thread alive") {
                Reply::Quiesce(r) => *r,
                _ => unreachable!("quiesce reply"),
            })
            .collect()
    }

    /// Clears trace buffers in every shard (a `start_trace` restart).
    pub(crate) fn clear_trace(&mut self) {
        for w in &self.workers {
            w.ops.send(Op::ClearTrace).expect("worker thread alive");
        }
        for w in &self.workers {
            match w.replies.recv().expect("worker thread alive") {
                Reply::Done => {}
                _ => unreachable!("clear-trace reply"),
            }
        }
    }

    /// Pulls every ring pair out of every shard (teardown or rebalance).
    pub(crate) fn drain_all(&mut self) -> Vec<RingEntry> {
        let mut entries = Vec::new();
        for w in &self.workers {
            w.ops.send(Op::DrainRings).expect("worker thread alive");
        }
        for w in &self.workers {
            match w.replies.recv().expect("worker thread alive") {
                Reply::Rings(mut r) => entries.append(&mut r),
                _ => unreachable!("drain reply"),
            }
        }
        self.shard_of.clear();
        entries
    }

    /// Moves every ring pair to the shard `assign` names (missing keys
    /// default to shard 0). Called after a policy commit changed the RSS
    /// steering, under the quiesce barrier.
    pub(crate) fn rebalance(&mut self, assign: &HashMap<RingKey, usize>) {
        for e in self.drain_all() {
            let shard = assign.get(&e.key).copied().unwrap_or(0) % self.workers.len();
            self.install(shard, e.key, e.rx, e.tx, e.fids);
        }
    }

    /// Stops every worker thread and waits for it to exit.
    pub(crate) fn stop(&mut self) {
        for w in &self.workers {
            let _ = w.ops.send(Op::Stop);
        }
        for w in &mut self.workers {
            let _ = w.replies.recv();
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        self.workers.clear();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping the op senders ends each worker's loop; join so no
        // thread outlives the pool.
        for w in &mut self.workers {
            drop(std::mem::replace(&mut w.ops, channel().0));
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}
