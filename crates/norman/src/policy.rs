//! Administrator-facing policy types.

use oskernel::Uid;

/// A port reservation: only processes of `uid` (and optionally only the
/// named command) may send or receive on `port` — the §2 partitioning
/// policy ("only Postgres instances run by Bob can send or receive
/// traffic on port 5432").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortReservation {
    /// The reserved port.
    pub port: u16,
    /// The owning user.
    pub uid: Uid,
    /// Optional command-name restriction.
    pub comm: Option<String>,
}

impl PortReservation {
    /// Reserves `port` for `uid`, any command.
    pub fn new(port: u16, uid: Uid) -> PortReservation {
        PortReservation {
            port,
            uid,
            comm: None,
        }
    }

    /// Restricts the reservation to one command name.
    pub fn for_comm(mut self, comm: &str) -> PortReservation {
        self.comm = Some(comm.to_string());
        self
    }

    /// Returns `true` if `(uid, comm)` may use the port.
    pub fn permits(&self, uid: Uid, comm: &str) -> bool {
        if uid != self.uid {
            return false;
        }
        match &self.comm {
            Some(want) => want == comm,
            None => true,
        }
    }
}

/// A per-user weighted-fair shaping policy (the §2 QoS scenario): each
/// listed user gets a WFQ class with the given weight; everyone else
/// shares the default class.
#[derive(Clone, Debug)]
pub struct ShapingPolicy {
    /// `(uid, weight)` pairs.
    pub user_weights: Vec<(Uid, f64)>,
    /// Weight of the default class.
    pub default_weight: f64,
}

impl ShapingPolicy {
    /// Creates a policy with default weight 1.0.
    pub fn new(user_weights: Vec<(Uid, f64)>) -> ShapingPolicy {
        ShapingPolicy {
            user_weights,
            default_weight: 1.0,
        }
    }

    /// Returns the WFQ class for `uid` under this policy (0 = default).
    pub fn class_of(&self, uid: Uid) -> u32 {
        self.user_weights
            .iter()
            .position(|&(u, _)| u == uid)
            .map(|i| i as u32 + 1)
            .unwrap_or(0)
    }

    /// Returns the class weight vector (class 0 first).
    pub fn weights(&self) -> Vec<f64> {
        let mut w = vec![self.default_weight];
        w.extend(self.user_weights.iter().map(|&(_, weight)| weight));
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_permits_owner_only() {
        let r = PortReservation::new(5432, Uid(1001));
        assert!(r.permits(Uid(1001), "postgres"));
        assert!(r.permits(Uid(1001), "anything"));
        assert!(!r.permits(Uid(1002), "postgres"));
    }

    #[test]
    fn comm_restriction() {
        let r = PortReservation::new(5432, Uid(1001)).for_comm("postgres");
        assert!(r.permits(Uid(1001), "postgres"));
        assert!(!r.permits(Uid(1001), "netcat"));
    }

    #[test]
    fn shaping_classes_and_weights() {
        let p = ShapingPolicy::new(vec![(Uid(1001), 4.0), (Uid(1002), 2.0)]);
        assert_eq!(p.class_of(Uid(1001)), 1);
        assert_eq!(p.class_of(Uid(1002)), 2);
        assert_eq!(p.class_of(Uid(9999)), 0);
        assert_eq!(p.weights(), vec![1.0, 4.0, 2.0]);
    }
}
