//! The Norman library: POSIX-flavoured sockets over the KOPI dataplane.
//!
//! §4.3: applications "use the familiar sockets interface" while "calls
//! that establish a new connection" go to the kernel and data operations
//! touch only rings and MMIO. [`NormanSocket`] is that handle: `connect`
//! is a control-plane call on [`Host`]; `send`/`recv` are ring
//! operations.

use std::net::Ipv4Addr;

use nicsim::ConnId;
use oskernel::Pid;
use pkt::{IpProto, Mac, Packet, PacketBuilder};
use sim::Time;

use crate::host::{ConnectError, Host, RecvResult, SendResult};

/// A connected Norman socket.
#[derive(Clone, Debug)]
pub struct NormanSocket {
    conn: ConnId,
    pid: Pid,
    proto: IpProto,
    local_ip: Ipv4Addr,
    local_port: u16,
    remote_ip: Ipv4Addr,
    remote_port: u16,
    local_mac: Mac,
    remote_mac: Mac,
}

impl NormanSocket {
    /// Opens a connection (the `connect(2)` path through the kernel
    /// control plane).
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        host: &mut Host,
        pid: Pid,
        proto: IpProto,
        local_port: u16,
        remote_ip: Ipv4Addr,
        remote_port: u16,
        remote_mac: Mac,
        blocking: bool,
    ) -> Result<NormanSocket, ConnectError> {
        let conn = host.connect(pid, proto, local_port, remote_ip, remote_port, blocking)?;
        Ok(NormanSocket {
            conn,
            pid,
            proto,
            local_ip: host.cfg.ip,
            local_port,
            remote_ip,
            remote_port,
            local_mac: host.cfg.mac,
            remote_mac,
        })
    }

    /// Returns the NIC connection id.
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Returns the owning pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Builds the wire frame for a payload (what the library's zero-copy
    /// TX path assembles directly in the ring).
    pub fn frame(&self, payload: &[u8]) -> Packet {
        let b = PacketBuilder::new()
            .ether(self.local_mac, self.remote_mac)
            .ipv4(self.local_ip, self.remote_ip);
        match self.proto {
            IpProto::TCP => b
                .tcp(
                    self.local_port,
                    self.remote_port,
                    pkt::TcpFlags::ACK,
                    payload,
                )
                .build(),
            _ => b.udp(self.local_port, self.remote_port, payload).build(),
        }
    }

    /// Sends a payload.
    pub fn send(&self, host: &mut Host, payload: &[u8], now: Time) -> SendResult {
        let frame = self.frame(payload);
        host.app_send(self.conn, &frame, now)
    }

    /// Receives the next payload zero-copy (the efficient abstraction of
    /// §4.2: the caller reads the payload in place in the ring).
    pub fn recv(&self, host: &mut Host, now: Time, blocking: bool) -> RecvResult {
        host.app_recv(self.conn, now, blocking)
    }

    /// POSIX-style receive: the payload is copied into the caller's
    /// buffer (portable, but pays `copy_per_byte x len`).
    pub fn recv_posix(&self, host: &mut Host, now: Time, blocking: bool) -> RecvResult {
        host.app_recv_posix(self.conn, now, blocking)
    }

    /// Closes the socket.
    pub fn close(self, host: &mut Host) {
        host.close(self.conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{DeliveryOutcome, HostConfig};
    use oskernel::Uid;

    fn remote_frame(host: &Host, src_port: u16, dst_port: u16, payload: &[u8]) -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(9), host.cfg.mac)
            .ipv4(Ipv4Addr::new(10, 0, 0, 2), host.cfg.ip)
            .udp(src_port, dst_port, payload)
            .build()
    }

    #[test]
    fn echo_round_trip() {
        let mut host = Host::new(HostConfig::default());
        let bob = host.spawn(Uid(1001), "bob", "echo");
        let sock = NormanSocket::connect(
            &mut host,
            bob,
            IpProto::UDP,
            7000,
            Ipv4Addr::new(10, 0, 0, 2),
            9000,
            Mac::local(9),
            false,
        )
        .unwrap();

        // Peer sends us a datagram.
        let req = remote_frame(&host, 9000, 7000, b"ping");
        let report = host.deliver_from_wire(&req, Time::ZERO);
        assert!(matches!(report.outcome, DeliveryOutcome::FastPath(_)));

        // We receive and reply.
        let r = sock.recv(&mut host, Time::from_us(1), false);
        assert_eq!(r.len, Some(req.len()));
        let s = sock.send(&mut host, b"pong", Time::from_us(2));
        assert!(s.queued);
        let deps = host.pump_tx(Time::from_us(2));
        assert_eq!(deps.len(), 1);
    }

    #[test]
    fn frame_uses_connection_endpoints() {
        let mut host = Host::new(HostConfig::default());
        let bob = host.spawn(Uid(1001), "bob", "client");
        let sock = NormanSocket::connect(
            &mut host,
            bob,
            IpProto::UDP,
            1234,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
            Mac::local(9),
            false,
        )
        .unwrap();
        let frame = sock.frame(b"GET /");
        let parsed = frame.parse().unwrap();
        assert_eq!(parsed.ports(), Some((1234, 80)));
        assert_eq!(parsed.ip().unwrap().dst, Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn tcp_socket_builds_tcp_frames() {
        let mut host = Host::new(HostConfig::default());
        let bob = host.spawn(Uid(1001), "bob", "client");
        let sock = NormanSocket::connect(
            &mut host,
            bob,
            IpProto::TCP,
            5555,
            Ipv4Addr::new(10, 0, 0, 2),
            22,
            Mac::local(9),
            false,
        )
        .unwrap();
        let frame = sock.frame(b"ssh");
        match frame.parse().unwrap().payload {
            pkt::Payload::Tcp { .. } => {}
            other => panic!("expected TCP, got {other:?}"),
        }
    }

    #[test]
    fn posix_recv_pays_the_copy_zero_copy_does_not() {
        let mut host = Host::new(HostConfig::default());
        let bob = host.spawn(Uid(1001), "bob", "app");
        let sock = NormanSocket::connect(
            &mut host,
            bob,
            IpProto::UDP,
            7000,
            Ipv4Addr::new(10, 0, 0, 2),
            9000,
            Mac::local(9),
            false,
        )
        .unwrap();
        let frame = remote_frame(&host, 9000, 7000, &[0u8; 1400]);
        // Same-size delivery twice; compare the two receive flavours.
        host.deliver_from_wire(&frame, Time::ZERO);
        host.deliver_from_wire(&frame, Time::ZERO);
        let zc = sock.recv(&mut host, Time::ZERO, false);
        let px = sock.recv_posix(&mut host, Time::ZERO, false);
        assert_eq!(zc.len, px.len);
        let copy = host.cfg.mem.copy(frame.len());
        assert_eq!(px.cpu, zc.cpu + copy, "POSIX pays exactly the copy");
    }

    #[test]
    fn close_tears_down() {
        let mut host = Host::new(HostConfig::default());
        let bob = host.spawn(Uid(1001), "bob", "client");
        let sock = NormanSocket::connect(
            &mut host,
            bob,
            IpProto::UDP,
            7000,
            Ipv4Addr::new(10, 0, 0, 2),
            9000,
            Mac::local(9),
            false,
        )
        .unwrap();
        let conn = sock.conn();
        sock.close(&mut host);
        assert!(host.connection(conn).is_none());
    }
}
