//! Norman: a KOPI (Kernel On-Path Interposition) operating system model.
//!
//! This crate is the paper's primary contribution, assembled from the
//! workspace substrates into the architecture of Figure 1:
//!
//! ```text
//!   App ──ring buffers / MMIO doorbells──▶ SmartNIC dataplane ──▶ wire
//!    │                                        ▲         │
//!    │ syscalls (connect/accept only)         │ config  │ notifications
//!    ▼                                        │         ▼
//!   Kernel control plane ─────────────────────┘   notification queues
//! ```
//!
//! * [`host`] — [`Host`], one simulated machine: process table, cgroups,
//!   scheduler, LLC/DDIO, the SmartNIC, the software slow path, and the
//!   in-kernel control plane that mediates *all* NIC configuration.
//! * [`ctrl`] — the unified control plane: one policy store, compiled
//!   into one bundle, applied with a two-phase epoch-versioned commit
//!   (verify/stage, then atomic swap with rollback), reconciled after
//!   bitstream reprograms, and audited against the NIC.
//! * [`policy`] — the administrator-facing policy types (port
//!   reservations, shaping policies) and how they lower onto the NIC.
//! * [`workers`] — the multi-queue sharding layer: [`Host::run_workers`]
//!   pins one worker thread per RSS queue, each owning its connections'
//!   ring pairs and telemetry shard, merged at a quiesce barrier so
//!   policy commits stay atomic across shards.
//! * [`tools`] — `ksniff` (tcpdump), `kfilter` (iptables), `kqdisc`
//!   (tc), `knetstat` (netstat), and [`tools::trace`] (`ktrace`, the
//!   per-packet lifecycle introspector the paper argues interposition
//!   makes possible): each routes through the control plane, never the
//!   dataplane.
//! * [`lib_api`] — the Norman library: [`lib_api::NormanSocket`], a
//!   POSIX-flavoured handle whose data operations never leave userspace
//!   plus the NIC (§4.3).
//! * [`arch`] — the five datapath architectures compared throughout the
//!   evaluation: in-kernel stack, raw kernel bypass, dedicated-core
//!   sidecar (IX/Snap), hypervisor SmartNIC switch (AccelNet), and KOPI.

pub mod arch;
pub mod ctrl;
pub mod host;
pub mod lib_api;
pub mod policy;
pub mod tools;
pub mod workers;

pub use arch::{Architecture, Capabilities, DatapathKind};
pub use ctrl::{
    ControlPlane, CtrlError, DegradationPolicy, NatRule, PolicyBundle, PolicyStore, RssPolicy,
    StagedCommit,
};
pub use host::{ConnectError, Connection, DeliveryReport, Host, HostConfig};
pub use lib_api::NormanSocket;
pub use policy::{PortReservation, ShapingPolicy};
pub use telemetry::{
    DropCause, Owner, Profile, SinkStats, Snapshot, Stage, TraceEvent, TraceFilter, TraceVerdict,
};
pub use workers::{ShardReport, ShardStats, WorkerError};
