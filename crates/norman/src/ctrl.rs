//! The unified, transactional control plane: the *only* writer of
//! dataplane policy.
//!
//! The paper's architecture (§4.4) has exactly one configurer of the
//! on-path SmartNIC — the kernel. This module enforces that shape in the
//! simulator: every policy the administrator can express (port
//! reservations, per-user shaping, capture filters, NAT forwards, raw
//! accounting programs) lives in one kernel-resident [`PolicyStore`],
//! compiles into one [`PolicyBundle`] (overlay programs + map fills +
//! scheduler weights + NAT entries + register writes), and reaches the
//! NIC only through an epoch-versioned two-phase commit:
//!
//! * **Phase 1 — verify & stage.** The bundle is compiled and every
//!   overlay program is run through the verifier; scheduler weights are
//!   validated. Each verified program is then ahead-of-time compiled to
//!   a native [`CompiledProgram`] artifact (unless
//!   [`PolicyStore::interpret_overlay`] asks for the interpreter); a
//!   program that verifies but fails to compile aborts phase 1 with
//!   [`CtrlError::CompileRejected`] and bumps `ctrl.compile_rejected` —
//!   the prior bundle stays installed, fingerprint untouched. Nothing
//!   on the NIC changes. A staged bundle is plain kernel memory — a
//!   concurrent app poking MMIO registers can fault all it wants
//!   without corrupting it.
//! * **Phase 2 — swap.** The resident bundle is replaced step by step
//!   and the new **generation number** is written to the NIC's
//!   kernel-only generation register ([`nicsim::POLICY_GENERATION_REG`])
//!   and stamped into every subsequent telemetry event. If any step
//!   fails mid-commit (injectable via [`sim::fault::OpFaultInjector`]),
//!   the control plane rolls the NIC back to the prior bundle and the
//!   generation does not advance — observers never see a
//!   partially-applied policy across a commit boundary.
//!
//! Two more duties round out the OS-owns-the-NIC story:
//!
//! * **Reconciliation.** A bitstream reprogram wipes all NIC-resident
//!   overlay state. The control plane notices (the reprogram counter
//!   moved) and re-derives and reinstalls the full bundle from the
//!   policy store as soon as the dataplane is back — policies survive
//!   new hardware.
//! * **The third audit ledger.** [`ControlPlane::audit`] cross-checks
//!   NIC-resident state (program fingerprints, filter map entries,
//!   scheduler classes, sniffer, NAT statics, the generation register)
//!   against the kernel's policy store, giving `Host::audit` a third,
//!   structurally independent account of the dataplane.

use std::net::Ipv4Addr;
use std::sync::Arc;

use nicsim::device::ProgramSlot;
use nicsim::rss::{RssTable, MAX_QUEUES, RSS_TABLE_SIZE};
use nicsim::{FlowCacheConfig, NatTable, SmartNic, POLICY_GENERATION_REG};
use overlay::{builtins, CompiledProgram, Program};
use pkt::IpProto;
use qdisc::compile;
use sim::fault::OpFaultInjector;
use sim::Time;
use telemetry::{RecoveryKind, Registry, Telemetry};

use crate::policy::{PortReservation, ShapingPolicy};
use nicsim::SnifferFilter;

/// Commit history entries kept for `npolicy status`.
const HISTORY_CAP: usize = 64;

/// Kernel RSS steering policy: the queue count and, optionally, an
/// explicit indirection table. An empty `indirection` means "spread
/// uniformly" (entry `i` → queue `i % num_queues`); a non-empty one must
/// have exactly [`nicsim::RSS_TABLE_SIZE`] entries, each naming a live
/// queue. Like every other policy, RSS reaches the NIC only through the
/// two-phase commit — a half-written steering table would misdeliver
/// frames to workers that do not own their connections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RssPolicy {
    /// RX/TX queue pairs to expose (`1..=nicsim::MAX_QUEUES`).
    pub num_queues: usize,
    /// Explicit indirection table, or empty for uniform spread.
    pub indirection: Vec<u16>,
}

impl RssPolicy {
    /// Uniform steering across `num_queues` queues.
    pub fn uniform(num_queues: usize) -> RssPolicy {
        RssPolicy {
            num_queues,
            indirection: Vec::new(),
        }
    }
}

/// Kernel overload-degradation policy (the paper's §5 mitigation made
/// kernel-programmable): when fast-path ring pressure stays above
/// `high_watermark` across a detection window, the host demotes flows
/// whose local port is listed in `low_prio_ports` to the software slow
/// path — freeing ring/LLC budget for everyone else — and promotes them
/// back once pressure falls below `low_watermark`. The policy is
/// kernel-side state: it rides the two-phase commit like every other
/// policy but installs nothing on the NIC, so it adds no NIC-audit
/// surface.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradationPolicy {
    /// Engage degraded mode when the fraction of pressured deliveries in
    /// a window reaches this (0, 1].
    pub high_watermark: f64,
    /// Leave degraded mode when the fraction falls to or below this.
    pub low_watermark: f64,
    /// Detection-window length in fast-path delivery attempts.
    pub window: u64,
    /// Local (destination) ports whose flows are demoted first.
    pub low_prio_ports: Vec<u16>,
}

/// A static NAT forward: inbound `(proto, ext_port)` is rewritten to
/// `internal`, and outbound traffic from `internal` masquerades with the
/// same external port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NatRule {
    /// Transport protocol.
    pub proto: IpProto,
    /// External (public) port.
    pub ext_port: u16,
    /// Internal endpoint the rule forwards to.
    pub internal: (Ipv4Addr, u16),
}

/// The kernel's complete, authoritative policy state. Mutated only
/// inside [`ControlPlane::update`]-style transactions; the store never
/// diverges from the installed bundle except while a reconcile is
/// pending after a bitstream reprogram.
#[derive(Clone, Debug, Default)]
pub struct PolicyStore {
    /// Port reservations (lowered to ingress+egress owner filters).
    pub reservations: Vec<PortReservation>,
    /// Per-user WFQ shaping (lowered to a classifier + scheduler
    /// weights).
    pub shaping: Option<ShapingPolicy>,
    /// Capture-tap filter, when sniffing is on.
    pub sniffer: Option<SnifferFilter>,
    /// Raw passive accounting programs (verdicts ignored).
    pub accounting: Vec<Program>,
    /// NAT masquerade address, when NAT policy is in force.
    pub nat_external_ip: Option<Ipv4Addr>,
    /// Static NAT forwards (require `nat_external_ip`).
    pub nat_rules: Vec<NatRule>,
    /// RSS steering (queue count + indirection). `None` leaves the NIC's
    /// boot-time configuration untouched, so unrelated commits never
    /// perturb queue steering.
    pub rss: Option<RssPolicy>,
    /// Overload degradation (watermarks + demotion set). `None` disables
    /// graceful degradation.
    pub degradation: Option<DegradationPolicy>,
    /// Flow-cache tiering policy (hot-tier budget + eviction discipline).
    /// `None` leaves the NIC untiered: every connection charges SRAM, the
    /// boot-time §5 behavior.
    pub flow_cache: Option<FlowCacheConfig>,
    /// Force the interpreted overlay engine instead of ahead-of-time
    /// compiled artifacts. Default `false` = every verified program is
    /// compiled at phase-1 and the NIC executes native closures; `true`
    /// keeps the single-stepping interpreter, which serves as the
    /// differential-testing oracle and the fallback when a program
    /// cannot be compiled.
    pub interpret_overlay: bool,
}

/// Everything phase 2 installs, in apply order. Compiled from a
/// [`PolicyStore`] by [`PolicyBundle::compile`]; immutable afterwards.
#[derive(Clone, Debug)]
pub struct PolicyBundle {
    /// Programs per overlay slot, each with its ahead-of-time compiled
    /// artifact (`None` = install interpreted). The artifact is stamped
    /// with the source program's fingerprint, so audit and
    /// crash-restore reconcile byte-for-byte regardless of engine.
    programs: Vec<(ProgramSlot, Program, Option<Arc<CompiledProgram>>)>,
    /// `(slot, map, key, value)` MMIO data writes after load.
    map_fills: Vec<(ProgramSlot, usize, usize, u64)>,
    /// Scheduler weights (always at least one class).
    sched_weights: Vec<f64>,
    /// Passive accounting programs with their compiled artifacts.
    accounting: Vec<(Program, Option<Arc<CompiledProgram>>)>,
    /// Capture-tap filter.
    sniffer: Option<SnifferFilter>,
    /// NAT masquerade address + static forwards.
    nat: Option<(Ipv4Addr, Vec<NatRule>)>,
    /// RSS steering, fully resolved: `(num_queues, explicit indirection
    /// table)`. `None` = the store has no RSS policy; the NIC keeps its
    /// boot configuration.
    rss: Option<(usize, Vec<u16>)>,
    /// Overload degradation policy, validated. Kernel-side only: apply
    /// installs nothing on the NIC for it.
    degradation: Option<DegradationPolicy>,
    /// Flow-cache tiering policy, validated and normalized (port lists
    /// sorted + deduped, so audit equality against the NIC is exact).
    flow_cache: Option<FlowCacheConfig>,
}

impl PolicyBundle {
    /// The boot-time bundle: pass-through overlay, single-class
    /// scheduler, no taps, no NAT.
    pub fn empty() -> PolicyBundle {
        PolicyBundle {
            programs: Vec::new(),
            map_fills: Vec::new(),
            sched_weights: vec![1.0],
            accounting: Vec::new(),
            sniffer: None,
            nat: None,
            rss: None,
            degradation: None,
            flow_cache: None,
        }
    }

    /// Phase 1: lowers the store to an installable bundle, running every
    /// program through the overlay verifier and validating scheduler
    /// weights. Pure — no NIC state is touched.
    pub fn compile(store: &PolicyStore) -> Result<PolicyBundle, CtrlError> {
        let mut programs = Vec::new();
        let mut map_fills = Vec::new();

        if !store.reservations.is_empty() {
            for slot in [ProgramSlot::IngressFilter, ProgramSlot::EgressFilter] {
                programs.push((slot, builtins::port_owner_filter()));
                for r in &store.reservations {
                    // uid+1 in the rules map (0 = unreserved).
                    map_fills.push((slot, 0, r.port as usize, u64::from(r.uid.0) + 1));
                }
            }
        }

        let sched_weights = match &store.shaping {
            Some(policy) => {
                let users: Vec<(u32, f64)> = policy
                    .user_weights
                    .iter()
                    .map(|&(uid, w)| (uid.0, w))
                    .collect();
                let setup = compile::try_compile_uid_wfq(&users, policy.default_weight)
                    .map_err(|e| CtrlError::Compile(e.to_string()))?;
                for (map, key, value) in setup.map_fills {
                    map_fills.push((ProgramSlot::Classifier, map, key, value));
                }
                programs.push((ProgramSlot::Classifier, setup.program));
                setup.class_weights
            }
            None => vec![1.0],
        };

        let nat = match (store.nat_external_ip, store.nat_rules.is_empty()) {
            (Some(ip), _) => {
                let mut seen = std::collections::HashSet::new();
                for r in &store.nat_rules {
                    if !seen.insert((r.proto, r.ext_port)) {
                        return Err(CtrlError::Compile(format!(
                            "duplicate NAT rule for {} port {}",
                            r.proto, r.ext_port
                        )));
                    }
                }
                Some((ip, store.nat_rules.clone()))
            }
            (None, false) => {
                return Err(CtrlError::Compile(
                    "NAT rules require an external ip".to_string(),
                ));
            }
            (None, true) => None,
        };

        let rss = match &store.rss {
            Some(policy) => {
                if !(1..=MAX_QUEUES).contains(&policy.num_queues) {
                    return Err(CtrlError::Compile(format!(
                        "RSS queue count {} outside 1..={MAX_QUEUES}",
                        policy.num_queues
                    )));
                }
                let table: Vec<u16> = if policy.indirection.is_empty() {
                    (0..RSS_TABLE_SIZE)
                        .map(|i| (i % policy.num_queues) as u16)
                        .collect()
                } else {
                    policy.indirection.clone()
                };
                RssTable::validated(policy.num_queues, &table)
                    .map_err(|e| CtrlError::Compile(format!("RSS policy rejected: {e}")))?;
                Some((policy.num_queues, table))
            }
            None => None,
        };

        let flow_cache = match &store.flow_cache {
            Some(fc) => {
                if fc.hot_capacity == 0 {
                    return Err(CtrlError::Compile(
                        "flow cache hot capacity must be nonzero".to_string(),
                    ));
                }
                // Normalize the port lists so audit can compare the
                // installed config against the bundle with plain equality.
                let mut fc = fc.clone();
                fc.high_prio_ports.sort_unstable();
                fc.high_prio_ports.dedup();
                fc.pinned_ports.sort_unstable();
                fc.pinned_ports.dedup();
                Some(fc)
            }
            None => None,
        };

        if let Some(d) = &store.degradation {
            if !(d.high_watermark > 0.0 && d.high_watermark <= 1.0) {
                return Err(CtrlError::Compile(format!(
                    "degradation high watermark {} outside (0, 1]",
                    d.high_watermark
                )));
            }
            if !(d.low_watermark >= 0.0 && d.low_watermark < d.high_watermark) {
                return Err(CtrlError::Compile(format!(
                    "degradation low watermark {} must be in [0, high {})",
                    d.low_watermark, d.high_watermark
                )));
            }
            if d.window == 0 {
                return Err(CtrlError::Compile(
                    "degradation window must be nonzero".to_string(),
                ));
            }
        }

        // Verify every program the bundle would install (the load path
        // verifies again; this keeps phase 1 side-effect-free while
        // still refusing bad bundles before anything is staged), then
        // ahead-of-time compile each one to a native artifact unless the
        // store pins the interpreter. An AOT failure after a clean
        // verify is a `CompileRejected`: the commit never reaches phase
        // 2, so the resident bundle (and its fingerprints) survive.
        let aot =
            |program: &Program, kind: &str| -> Result<Option<Arc<CompiledProgram>>, CtrlError> {
                overlay::verify(program).map_err(|e| {
                    CtrlError::Compile(format!("{kind} '{}' rejected: {e}", program.name))
                })?;
                if store.interpret_overlay {
                    return Ok(None);
                }
                overlay::compile(program)
                    .map(Some)
                    .map_err(|e| CtrlError::CompileRejected {
                        program: program.name.clone(),
                        reason: e.to_string(),
                    })
            };
        let programs = programs
            .into_iter()
            .map(|(slot, program)| {
                let artifact = aot(&program, "program")?;
                Ok((slot, program, artifact))
            })
            .collect::<Result<Vec<_>, CtrlError>>()?;
        let accounting = store
            .accounting
            .iter()
            .map(|program| {
                let artifact = aot(program, "accounting")?;
                Ok((program.clone(), artifact))
            })
            .collect::<Result<Vec<_>, CtrlError>>()?;

        Ok(PolicyBundle {
            programs,
            map_fills,
            sched_weights,
            accounting,
            sniffer: store.sniffer,
            nat,
            rss,
            degradation: store.degradation.clone(),
            flow_cache,
        })
    }

    fn program_for(&self, slot: ProgramSlot) -> Option<&Program> {
        self.programs
            .iter()
            .find(|(s, _, _)| *s == slot)
            .map(|(_, p, _)| p)
    }

    fn artifact_for(&self, slot: ProgramSlot) -> Option<&Arc<CompiledProgram>> {
        self.programs
            .iter()
            .find(|(s, _, _)| *s == slot)
            .and_then(|(_, _, a)| a.as_ref())
    }
}

/// A bundle that passed phase 1 and is waiting for phase 2. Plain
/// kernel memory: NIC-side faults (e.g. an app writing control
/// registers) cannot touch it.
#[derive(Clone, Debug)]
pub struct StagedCommit {
    store: PolicyStore,
    bundle: PolicyBundle,
}

impl StagedCommit {
    /// The store this staged commit will install.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }
}

/// Control-plane failures.
#[derive(Debug)]
pub enum CtrlError {
    /// Phase 1 refused the policy (verifier, weights, NAT conflicts).
    Compile(String),
    /// Phase 1 verified a program but could not ahead-of-time compile
    /// it to a native artifact. The commit aborts before phase 2: the
    /// prior bundle stays installed with its fingerprints intact, and
    /// `ctrl.compile_rejected` counts the refusal. Callers wanting the
    /// program anyway can retry with
    /// [`PolicyStore::interpret_overlay`] set.
    CompileRejected {
        /// Name of the program the AOT compiler refused.
        program: String,
        /// Compiler diagnostic.
        reason: String,
    },
    /// The dataplane is down for a bitstream reprogram.
    Frozen {
        /// When it comes back.
        until: Time,
    },
    /// Phase 2 failed at `step`; the NIC was rolled back to the prior
    /// generation.
    CommitFailed {
        /// The apply step that failed.
        step: String,
    },
    /// Phase 2 failed *and* the rollback failed — the NIC state is
    /// undefined. Only reachable if the fault model breaks the
    /// recovery path's invariants; treated as fatal by callers.
    RollbackFailed {
        /// The rollback step that failed.
        step: String,
    },
    /// The device died mid-transaction (or was already dead), so neither
    /// the commit nor the rollback could reach it. Unlike
    /// [`CtrlError::RollbackFailed`] this is *not* fatal: the kernel
    /// store keeps the prior committed policy, and reconcile reinstalls
    /// it after the device is reset — the transaction simply aborted.
    DeviceLost {
        /// The apply step at which the device was found dead.
        step: String,
    },
}

impl std::fmt::Display for CtrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlError::Compile(e) => write!(f, "policy rejected: {e}"),
            CtrlError::CompileRejected { program, reason } => {
                write!(
                    f,
                    "program '{program}' verified but failed native compilation: \
                     {reason}; prior bundle retained"
                )
            }
            CtrlError::Frozen { until } => write!(f, "dataplane reprogramming until {until}"),
            CtrlError::CommitFailed { step } => {
                write!(
                    f,
                    "commit failed at {step}; rolled back to prior generation"
                )
            }
            CtrlError::RollbackFailed { step } => {
                write!(f, "rollback failed at {step}; NIC state undefined")
            }
            CtrlError::DeviceLost { step } => {
                write!(
                    f,
                    "commit aborted at {step}: device dead; reconcile after reset"
                )
            }
        }
    }
}

impl std::error::Error for CtrlError {}

/// What a history entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitAction {
    /// A bundle was committed under a new generation.
    Committed,
    /// A commit failed mid-apply and the prior bundle was restored.
    RolledBack,
    /// The bundle was reinstalled after a bitstream reprogram.
    Reconciled,
    /// A commit was abandoned because the device died mid-transaction;
    /// the prior policy is reinstalled later by reconcile-after-reset.
    Aborted,
}

impl std::fmt::Display for CommitAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitAction::Committed => write!(f, "committed"),
            CommitAction::RolledBack => write!(f, "rolled-back"),
            CommitAction::Reconciled => write!(f, "reconciled"),
            CommitAction::Aborted => write!(f, "aborted"),
        }
    }
}

/// One line of commit history.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// The generation in force *after* the action.
    pub generation: u64,
    /// Virtual time of the action.
    pub at: Time,
    /// What happened.
    pub action: CommitAction,
    /// Human detail (failing step, program counts).
    pub detail: String,
}

/// Control-plane counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CtrlStats {
    /// Successful commits (== generation).
    pub commits: u64,
    /// Mid-commit failures recovered by rollback.
    pub rollbacks: u64,
    /// Bundle reinstalls after bitstream reprograms.
    pub reconciles: u64,
    /// Individual apply operations executed (including rollbacks).
    pub apply_ops: u64,
    /// Commits abandoned because the device died mid-transaction.
    pub aborts: u64,
    /// Commits the watchdog cancelled for exceeding their op deadline.
    pub watchdog_aborts: u64,
    /// Phase-1 refusals where a program verified but the ahead-of-time
    /// compiler rejected it (the prior bundle stayed installed).
    pub compile_rejected: u64,
}

/// The kernel control plane: policy store, installed bundle, generation
/// counter, and the commit/reconcile machinery.
pub struct ControlPlane {
    store: PolicyStore,
    installed: PolicyBundle,
    generation: u64,
    /// Scheduler weights currently programmed — the scheduler holds
    /// queued frames and per-class counters, so apply only reconfigures
    /// it when the weights actually change.
    applied_weights: Vec<f64>,
    /// RSS configuration the control plane has programmed, if any
    /// (`None` = the NIC still runs its boot-time steering). Reprogramming
    /// the indirection table mid-stream would re-steer in-flight flows,
    /// so apply only touches it on actual change — the same idempotence
    /// discipline as `applied_weights`.
    applied_rss: Option<(usize, Vec<u16>)>,
    /// Flow-cache tiering config currently programmed (`None` = the NIC
    /// still runs untiered boot behavior). Re-tiering moves entries
    /// between SRAM and host memory, so apply only touches it on actual
    /// change — the same idempotence discipline as `applied_rss`.
    applied_flow_cache: Option<FlowCacheConfig>,
    /// Bitstream reprograms already reflected in NIC-resident state.
    reprograms_seen: u64,
    /// Device resets already reconciled. A crash+reset wipes the NIC
    /// back to power-on, so every reset requires a full reinstall.
    resets_seen: u64,
    /// Commit watchdog: the op budget a single phase-2 transaction may
    /// spend before it is presumed wedged and aborted to rollback.
    /// `None` disables the deadline. Rollback and reconcile are exempt —
    /// recovery must always be allowed to finish.
    watchdog_ops: Option<u64>,
    faults: OpFaultInjector,
    stats: CtrlStats,
    history: Vec<CommitRecord>,
    tel: Telemetry,
}

impl ControlPlane {
    /// Creates a boot-state control plane sharing the host's telemetry
    /// hub (generation stamps).
    pub fn new(tel: Telemetry) -> ControlPlane {
        ControlPlane {
            store: PolicyStore::default(),
            installed: PolicyBundle::empty(),
            generation: 0,
            applied_weights: vec![1.0],
            applied_rss: None,
            applied_flow_cache: None,
            reprograms_seen: 0,
            resets_seen: 0,
            watchdog_ops: None,
            faults: OpFaultInjector::never(),
            stats: CtrlStats::default(),
            history: Vec::new(),
            tel,
        }
    }

    /// The authoritative policy store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    /// The installed policy generation (0 = boot, nothing committed).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Control-plane counters.
    pub fn stats(&self) -> CtrlStats {
        self.stats
    }

    /// Commit history, oldest first (bounded).
    pub fn history(&self) -> &[CommitRecord] {
        &self.history
    }

    /// Arms (or disarms) fault injection on phase-2 apply steps. The
    /// injector is consulted once per operation during commits — never
    /// during rollback or reconcile — so chaos schedules replay
    /// deterministically.
    pub fn set_fault_injector(&mut self, faults: OpFaultInjector) {
        self.faults = faults;
    }

    /// Arms (or disarms, with `None`) the commit watchdog: a phase-2
    /// transaction that issues more than `ops` apply operations is
    /// presumed stalled, cancelled, and rolled back — so a wedged or
    /// dying device can never hold the control plane mid-commit forever.
    pub fn set_commit_watchdog(&mut self, ops: Option<u64>) {
        self.watchdog_ops = ops;
    }

    /// The flow-cache policy of the *installed* (committed) bundle, if
    /// any — what the NIC's tiering machinery currently enforces.
    pub fn flow_cache(&self) -> Option<&FlowCacheConfig> {
        self.installed.flow_cache.as_ref()
    }

    /// The degradation policy of the *installed* (committed) bundle, if
    /// any — what the host's overload detector enforces.
    pub fn degradation(&self) -> Option<&DegradationPolicy> {
        self.installed.degradation.as_ref()
    }

    /// Phase 1: applies `mutate` to a scratch copy of the store and
    /// compiles + verifies the result, ahead-of-time compiling every
    /// verified program to its native artifact. The live store, the
    /// NIC, and the generation are untouched; the only mutation is the
    /// `ctrl.compile_rejected` counter when the AOT compiler refuses a
    /// verified program.
    pub fn stage(
        &mut self,
        mutate: impl FnOnce(&mut PolicyStore),
    ) -> Result<StagedCommit, CtrlError> {
        let mut store = self.store.clone();
        mutate(&mut store);
        let bundle = PolicyBundle::compile(&store).inspect_err(|e| {
            if matches!(e, CtrlError::CompileRejected { .. }) {
                self.stats.compile_rejected += 1;
            }
        })?;
        Ok(StagedCommit { store, bundle })
    }

    /// Phase 2: atomically swaps the staged bundle in under a new
    /// generation. On a mid-commit failure the prior bundle is fully
    /// reinstalled (rollback), the generation does not advance, and the
    /// store keeps its previous contents.
    pub fn commit_staged(
        &mut self,
        nic: &mut SmartNic,
        nat: &mut Option<NatTable>,
        staged: StagedCommit,
        now: Time,
    ) -> Result<u64, CtrlError> {
        if nic.is_dead() {
            // A dead device can take no policy at all; even an empty
            // apply would "succeed" without installing anything. Refuse
            // up front — the kernel resets the device, reconcile
            // reinstalls the committed policy, and the caller retries.
            return Err(CtrlError::DeviceLost {
                step: "commit refused: device dead".to_string(),
            });
        }
        if nic.is_frozen(now) {
            return Err(CtrlError::Frozen {
                until: nic.frozen_until(),
            });
        }
        let prior = self.installed.clone();
        match self.apply(nic, nat, &staged.bundle, now, true) {
            Ok(()) => {
                self.generation += 1;
                self.finish_apply(nic, &staged.bundle);
                self.store = staged.store;
                self.installed = staged.bundle;
                self.stats.commits += 1;
                self.record(
                    now,
                    CommitAction::Committed,
                    format!(
                        "{} programs, {} fills, {} classes",
                        self.installed.programs.len(),
                        self.installed.map_fills.len(),
                        self.installed.sched_weights.len()
                    ),
                );
                Ok(self.generation)
            }
            Err(step) => {
                // Roll back: reinstall the prior bundle, with fault
                // injection off — recovery must not recurse.
                // `applied_weights` tracks the *actual* scheduler state,
                // so the rollback reconfigures the scheduler only if the
                // failed apply got far enough to change it.
                if let Err(rb_step) = self.apply(nic, nat, &prior, now, false) {
                    if nic.is_dead() {
                        // The device died mid-commit and cannot even take
                        // the rollback. That is not "NIC state undefined":
                        // the NIC holds *nothing* (volatile state wiped),
                        // the kernel store still holds the prior committed
                        // policy, and reconcile-after-reset reinstalls it
                        // byte-for-byte. Abort the transaction instead of
                        // declaring the control plane wedged.
                        self.stats.aborts += 1;
                        self.record(now, CommitAction::Aborted, format!("device lost at {step}"));
                        self.tel.record_recovery(
                            now,
                            RecoveryKind::CommitAborted,
                            format!("commit aborted at {step}: device dead"),
                        );
                        return Err(CtrlError::DeviceLost { step });
                    }
                    return Err(CtrlError::RollbackFailed { step: rb_step });
                }
                self.finish_apply(nic, &prior);
                self.stats.rollbacks += 1;
                if step.contains("(watchdog") {
                    self.stats.watchdog_aborts += 1;
                    self.tel.record_recovery(
                        now,
                        RecoveryKind::CommitAborted,
                        format!("watchdog cancelled commit at {step}; rolled back"),
                    );
                }
                self.record(now, CommitAction::RolledBack, format!("failed at {step}"));
                Err(CtrlError::CommitFailed { step })
            }
        }
    }

    /// The transaction most callers want: stage + commit in one call.
    /// On any failure the store is left exactly as before.
    pub fn update(
        &mut self,
        nic: &mut SmartNic,
        nat: &mut Option<NatTable>,
        now: Time,
        mutate: impl FnOnce(&mut PolicyStore),
    ) -> Result<u64, CtrlError> {
        let staged = self.stage(mutate)?;
        self.commit_staged(nic, nat, staged, now)
    }

    /// Whether NIC-resident state diverges from the kernel store and
    /// must be reinstalled: the device is dead (reset pending), a
    /// bitstream reprogram replaced the hardware, or a crash+reset wiped
    /// volatile state back to power-on.
    pub fn needs_reconcile(&self, nic: &SmartNic) -> bool {
        nic.is_dead()
            || nic.stats().bitstream_reprograms != self.reprograms_seen
            || nic.stats().resets != self.resets_seen
    }

    /// Reinstalls the full bundle from the policy store after a
    /// bitstream reprogram or a crash+reset wiped the NIC (same
    /// generation — the policy did not change, the hardware did). No-op
    /// while the device is dead (the kernel must reset it first) or
    /// still frozen, or when nothing was wiped. Returns whether a
    /// reconcile ran.
    pub fn reconcile(
        &mut self,
        nic: &mut SmartNic,
        nat: &mut Option<NatTable>,
        now: Time,
    ) -> Result<bool, CtrlError> {
        if nic.is_dead() || !self.needs_reconcile(nic) || nic.is_frozen(now) {
            return Ok(false);
        }
        let resets = nic.stats().resets;
        if resets != self.resets_seen {
            // A crash rebuilt the scheduler and RSS steering to power-on
            // defaults, so the idempotence trackers are stale — clear
            // them or apply would skip the reprogramming below. (A plain
            // bitstream reprogram leaves the scheduler alone, so the
            // trackers stay valid on that path.)
            self.applied_weights = vec![1.0];
            self.applied_rss = None;
            self.applied_flow_cache = None;
        }
        let bundle = self.installed.clone();
        // Apply with faults off: reconcile is the recovery path.
        if let Err(step) = self.apply(nic, nat, &bundle, now, false) {
            return Err(CtrlError::RollbackFailed { step });
        }
        self.finish_apply(nic, &bundle);
        self.reprograms_seen = nic.stats().bitstream_reprograms;
        self.resets_seen = resets;
        self.stats.reconciles += 1;
        self.record(
            now,
            CommitAction::Reconciled,
            format!(
                "after reprogram #{} / reset #{}",
                self.reprograms_seen, self.resets_seen
            ),
        );
        self.tel.record_recovery(
            now,
            RecoveryKind::ReconcileDone,
            format!("policy generation {} reinstalled", self.generation),
        );
        Ok(true)
    }

    /// Wipe-then-install of `bundle` onto the NIC. Returns the failing
    /// step name on error. When `use_faults`, the op-fault injector is
    /// consulted before every operation.
    fn apply(
        &mut self,
        nic: &mut SmartNic,
        nat: &mut Option<NatTable>,
        bundle: &PolicyBundle,
        now: Time,
        use_faults: bool,
    ) -> Result<(), String> {
        // The watchdog deadline applies only to fault-eligible commits;
        // rollback and reconcile must always run to completion.
        let mut budget = if use_faults { self.watchdog_ops } else { None };
        let op = |stats: &mut CtrlStats,
                  faults: &mut OpFaultInjector,
                  budget: &mut Option<u64>,
                  step: &str|
         -> Result<(), String> {
            if let Some(b) = budget {
                if *b == 0 {
                    return Err(format!("{step} (watchdog: op deadline exceeded)"));
                }
                *b -= 1;
            }
            stats.apply_ops += 1;
            if use_faults && faults.should_fail() {
                return Err(format!("{step} (injected)"));
            }
            Ok(())
        };

        // Wipe the overlay slots the bundle does not reinstall, so a
        // shrinking policy converges too. Slots it does reinstall are
        // hot-swapped by load_program (no pass-through window beyond
        // the swap itself).
        for slot in [
            ProgramSlot::IngressFilter,
            ProgramSlot::EgressFilter,
            ProgramSlot::Classifier,
        ] {
            if bundle.program_for(slot).is_none() && nic.program_loaded(slot) {
                op(
                    &mut self.stats,
                    &mut self.faults,
                    &mut budget,
                    "unload_program",
                )?;
                nic.unload_program(slot);
            }
        }
        while nic.num_accounting() > 0 {
            op(
                &mut self.stats,
                &mut self.faults,
                &mut budget,
                "clear_accounting",
            )?;
            nic.remove_accounting(nic.num_accounting() - 1);
        }

        for (slot, program, artifact) in &bundle.programs {
            op(
                &mut self.stats,
                &mut self.faults,
                &mut budget,
                "load_program",
            )?;
            match artifact {
                Some(artifact) => nic
                    .load_program_compiled(*slot, program.clone(), Arc::clone(artifact), now)
                    .map_err(|e| format!("load_program: {e}"))?,
                None => nic
                    .load_program(*slot, program.clone(), now)
                    .map_err(|e| format!("load_program: {e}"))?,
            };
        }
        for &(slot, map, key, value) in &bundle.map_fills {
            op(&mut self.stats, &mut self.faults, &mut budget, "fill_map")?;
            nic.fill_map(slot, map, key, value)
                .map_err(|e| format!("fill_map: {e}"))?;
        }

        if self.applied_weights != bundle.sched_weights {
            op(
                &mut self.stats,
                &mut self.faults,
                &mut budget,
                "configure_scheduler",
            )?;
            nic.configure_scheduler(&bundle.sched_weights)
                .map_err(|e| format!("configure_scheduler: {e}"))?;
            self.applied_weights = bundle.sched_weights.clone();
        }

        match &bundle.rss {
            Some((queues, table)) => {
                let differs = match &self.applied_rss {
                    Some((q, t)) => q != queues || t != table,
                    None => true,
                };
                if differs {
                    op(
                        &mut self.stats,
                        &mut self.faults,
                        &mut budget,
                        "configure_rss",
                    )?;
                    nic.configure_rss(*queues, table, now)
                        .map_err(|e| format!("configure_rss: {e}"))?;
                    self.applied_rss = Some((*queues, table.clone()));
                }
            }
            None => {
                // Wipe-then-install: a bundle without RSS policy reverts
                // the NIC to its boot-time uniform steering — but only if
                // the control plane programmed RSS before (so unrelated
                // commits on a freshly booted NIC never touch steering,
                // and rollbacks of a first RSS commit fully undo it).
                if self.applied_rss.is_some() {
                    op(
                        &mut self.stats,
                        &mut self.faults,
                        &mut budget,
                        "configure_rss",
                    )?;
                    let boot = nic.config().num_queues;
                    let uniform: Vec<u16> =
                        (0..RSS_TABLE_SIZE).map(|i| (i % boot) as u16).collect();
                    nic.configure_rss(boot, &uniform, now)
                        .map_err(|e| format!("configure_rss: {e}"))?;
                    self.applied_rss = None;
                }
            }
        }

        match &bundle.flow_cache {
            Some(fc) => {
                if self.applied_flow_cache.as_ref() != Some(fc) {
                    op(
                        &mut self.stats,
                        &mut self.faults,
                        &mut budget,
                        "configure_flow_cache",
                    )?;
                    nic.configure_flow_cache(Some(fc.clone()), now)
                        .map_err(|e| format!("configure_flow_cache: {e}"))?;
                    self.applied_flow_cache = Some(fc.clone());
                }
            }
            None => {
                // Same revert discipline as RSS: only undo tiering the
                // control plane itself programmed, so rollback of a first
                // flow-cache commit restores untiered boot behavior.
                if self.applied_flow_cache.is_some() {
                    op(
                        &mut self.stats,
                        &mut self.faults,
                        &mut budget,
                        "configure_flow_cache",
                    )?;
                    nic.configure_flow_cache(None, now)
                        .map_err(|e| format!("configure_flow_cache: {e}"))?;
                    self.applied_flow_cache = None;
                }
            }
        }

        for (program, artifact) in &bundle.accounting {
            op(
                &mut self.stats,
                &mut self.faults,
                &mut budget,
                "add_accounting",
            )?;
            match artifact {
                Some(artifact) => nic
                    .add_accounting_compiled(program.clone(), Arc::clone(artifact), now)
                    .map_err(|e| format!("add_accounting: {e}"))?,
                None => nic
                    .add_accounting(program.clone(), now)
                    .map_err(|e| format!("add_accounting: {e}"))?,
            };
        }

        op(&mut self.stats, &mut self.faults, &mut budget, "sniffer")?;
        match bundle.sniffer {
            Some(filter) => nic.enable_sniffer(filter),
            None => nic.disable_sniffer(),
        }

        match &bundle.nat {
            Some((ip, rules)) => {
                if nat.is_none() {
                    op(&mut self.stats, &mut self.faults, &mut budget, "nat_create")?;
                    let mut table = NatTable::new(*ip);
                    table.set_telemetry(self.tel.clone());
                    *nat = Some(table);
                }
                let table = nat.as_mut().expect("just ensured");
                if table.external_ip() != *ip {
                    return Err("nat_rebind: external ip changed under live table".to_string());
                }
                table.clear_statics(&mut nic.sram);
                for r in rules {
                    op(&mut self.stats, &mut self.faults, &mut budget, "nat_static")?;
                    table
                        .install_static(r.proto, r.ext_port, r.internal, &mut nic.sram)
                        .map_err(|e| format!("nat_static: {e}"))?;
                }
            }
            None => {
                if let Some(table) = nat.as_mut() {
                    table.clear_statics(&mut nic.sram);
                }
            }
        }
        Ok(())
    }

    /// Post-apply bookkeeping shared by commit, rollback, and
    /// reconcile: write the generation register and restamp telemetry.
    fn finish_apply(&mut self, nic: &mut SmartNic, _bundle: &PolicyBundle) {
        let _ = nic.regs.write(POLICY_GENERATION_REG, self.generation, None);
        self.tel.set_generation(self.generation);
    }

    fn record(&mut self, at: Time, action: CommitAction, detail: String) {
        if self.history.len() == HISTORY_CAP {
            self.history.remove(0);
        }
        self.history.push(CommitRecord {
            generation: self.generation,
            at,
            action,
            detail,
        });
    }

    /// The third audit ledger: cross-checks NIC-resident state against
    /// the kernel policy store. Returns violations (empty = the NIC
    /// holds exactly what the kernel believes it holds).
    ///
    /// While a reconcile is pending (a reprogram wiped the NIC and the
    /// control plane has not yet run), NIC-resident checks are skipped —
    /// the divergence is real, known, and about to be repaired; only
    /// the generation stamps are still required to agree.
    pub fn audit(&self, nic: &SmartNic, nat: Option<&NatTable>) -> Vec<String> {
        let mut violations = Vec::new();

        match nic.regs.peek(POLICY_GENERATION_REG) {
            Some(reg) if reg == self.generation => {}
            Some(reg) => violations.push(format!(
                "generation register {reg} != kernel generation {}",
                self.generation
            )),
            None => violations.push("generation register missing".to_string()),
        }
        if self.tel.generation() != self.generation {
            violations.push(format!(
                "telemetry generation {} != kernel generation {}",
                self.tel.generation(),
                self.generation
            ));
        }

        if self.needs_reconcile(nic) {
            return violations;
        }

        let bundle = &self.installed;
        for slot in [
            ProgramSlot::IngressFilter,
            ProgramSlot::EgressFilter,
            ProgramSlot::Classifier,
        ] {
            match (bundle.program_for(slot), nic.program_fingerprint(slot)) {
                (Some(want), Some(got)) => {
                    if want.fingerprint() != got {
                        violations.push(format!(
                            "{slot:?}: resident program fingerprint {got:#x} != store '{}'",
                            want.name
                        ));
                    }
                    // The execution engine must match the bundle too: a
                    // compiled artifact that silently fell back to the
                    // interpreter (or vice versa) is a policy divergence
                    // even though the fingerprints agree.
                    let want_compiled = bundle.artifact_for(slot).is_some();
                    if let Some(got_compiled) = nic.program_compiled(slot) {
                        if got_compiled != want_compiled {
                            violations.push(format!(
                                "{slot:?}: resident engine compiled={got_compiled} \
                                 != bundle compiled={want_compiled}"
                            ));
                        }
                    }
                }
                (Some(want), None) => violations.push(format!(
                    "{slot:?}: store expects '{}' but no program resident",
                    want.name
                )),
                (None, Some(_)) => violations.push(format!(
                    "{slot:?}: resident program not present in policy store"
                )),
                (None, None) => {}
            }
        }

        for r in &self.store.reservations {
            for slot in [ProgramSlot::IngressFilter, ProgramSlot::EgressFilter] {
                let want = u64::from(r.uid.0) + 1;
                match nic.read_map(slot, 0, r.port as usize) {
                    Some(got) if got == want => {}
                    got => violations.push(format!(
                        "{slot:?} map[port {}]: resident {got:?} != reserved uid+1 {want}",
                        r.port
                    )),
                }
            }
        }

        let classes = nic.scheduler_class_bytes().len();
        if classes != bundle.sched_weights.len() {
            violations.push(format!(
                "scheduler has {classes} classes, store expects {}",
                bundle.sched_weights.len()
            ));
        }

        if let Some((queues, table)) = &bundle.rss {
            if nic.num_queues() != *queues {
                violations.push(format!(
                    "NIC exposes {} queues, RSS policy expects {queues}",
                    nic.num_queues()
                ));
            }
            if nic.rss().indirection() != &table[..] {
                violations
                    .push("NIC RSS indirection table diverges from the policy store".to_string());
            }
        }

        if nic.flow_cache() != bundle.flow_cache.as_ref() {
            violations.push(format!(
                "NIC flow cache {:?} diverges from store {:?}",
                nic.flow_cache().map(|fc| fc.mode.name()),
                bundle.flow_cache.as_ref().map(|fc| fc.mode.name())
            ));
        }

        if nic.sniffer.is_enabled() != bundle.sniffer.is_some() {
            violations.push(format!(
                "sniffer enabled={} but store says {}",
                nic.sniffer.is_enabled(),
                bundle.sniffer.is_some()
            ));
        }

        let acct = nic.accounting_fingerprints();
        let want_acct: Vec<u64> = bundle
            .accounting
            .iter()
            .map(|(p, _)| p.fingerprint())
            .collect();
        if acct != want_acct {
            violations.push(format!(
                "accounting programs resident {} != store {}",
                acct.len(),
                want_acct.len()
            ));
        }

        match (&bundle.nat, nat) {
            (Some((ip, rules)), Some(table)) => {
                if table.external_ip() != *ip {
                    violations.push(format!(
                        "NAT external ip {} != store {ip}",
                        table.external_ip()
                    ));
                }
                if table.num_statics() != rules.len() {
                    violations.push(format!(
                        "NAT statics resident {} != store {}",
                        table.num_statics(),
                        rules.len()
                    ));
                }
                for r in rules {
                    if table.static_target(r.proto, r.ext_port) != Some(r.internal) {
                        violations.push(format!(
                            "NAT static {} port {} does not forward to {:?}",
                            r.proto, r.ext_port, r.internal
                        ));
                    }
                }
            }
            (Some(_), None) => violations.push("store has NAT policy but no table".to_string()),
            (None, Some(table)) => {
                if table.num_statics() != 0 {
                    violations.push(format!(
                        "{} NAT statics resident with no NAT policy in store",
                        table.num_statics()
                    ));
                }
            }
            (None, None) => {}
        }

        violations
    }

    /// Registers control-plane counters under `ctrl.*`.
    pub fn fill_registry(&self, reg: &mut Registry) {
        reg.set_counter("ctrl.generation", self.generation);
        reg.set_counter("ctrl.commits", self.stats.commits);
        reg.set_counter("ctrl.rollbacks", self.stats.rollbacks);
        reg.set_counter("ctrl.reconciles", self.stats.reconciles);
        reg.set_counter("ctrl.apply_ops", self.stats.apply_ops);
        reg.set_counter("ctrl.aborts", self.stats.aborts);
        reg.set_counter("ctrl.watchdog_aborts", self.stats.watchdog_aborts);
        reg.set_counter("ctrl.compile_rejected", self.stats.compile_rejected);
        reg.set_counter("ctrl.fault_injected", self.faults.injected());
        reg.set_counter("fault.ops", self.faults.ops());
        reg.set_counter("fault.injected", self.faults.injected());
        reg.set_counter(
            "ctrl.rss_queues",
            self.store
                .rss
                .as_ref()
                .map(|p| p.num_queues as u64)
                .unwrap_or(0),
        );
        reg.set_counter(
            "ctrl.flow_cache_hot",
            self.store
                .flow_cache
                .as_ref()
                .map(|fc| fc.hot_capacity as u64)
                .unwrap_or(0),
        );
    }
}
