//! Control groups with network class ids.
//!
//! The §2 QoS scenario: "Alice can move the game to its own control group
//! (cgroup) and then use tc and qdisc to enforce a shaping policy." The
//! `net_cls` class id a cgroup carries is what the classifier matches on.

use std::collections::HashMap;

/// A cgroup identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CgroupId(pub u32);

impl CgroupId {
    /// The root cgroup every process starts in.
    pub const ROOT: CgroupId = CgroupId(0);
}

/// One cgroup.
#[derive(Clone, Debug)]
pub struct Cgroup {
    /// Identifier.
    pub id: CgroupId,
    /// Path-like name ("/", "/game").
    pub name: String,
    /// Parent (None for the root).
    pub parent: Option<CgroupId>,
    /// Network class id (`net_cls.classid`); inherited when `None`.
    pub net_class: Option<u32>,
}

/// The cgroup hierarchy.
pub struct CgroupTree {
    groups: HashMap<CgroupId, Cgroup>,
    next_id: u32,
}

impl Default for CgroupTree {
    fn default() -> Self {
        Self::new()
    }
}

impl CgroupTree {
    /// Creates a tree containing only the root cgroup (net class 0).
    pub fn new() -> CgroupTree {
        let mut groups = HashMap::new();
        groups.insert(
            CgroupId::ROOT,
            Cgroup {
                id: CgroupId::ROOT,
                name: "/".to_string(),
                parent: None,
                net_class: Some(0),
            },
        );
        CgroupTree { groups, next_id: 1 }
    }

    /// Creates a child cgroup under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist.
    pub fn create(&mut self, parent: CgroupId, name: &str) -> CgroupId {
        assert!(self.groups.contains_key(&parent), "no such parent cgroup");
        let id = CgroupId(self.next_id);
        self.next_id += 1;
        self.groups.insert(
            id,
            Cgroup {
                id,
                name: name.to_string(),
                parent: Some(parent),
                net_class: None,
            },
        );
        id
    }

    /// Sets a cgroup's network class id (the `tc` handle).
    ///
    /// Returns `false` if the cgroup does not exist.
    pub fn set_net_class(&mut self, id: CgroupId, class: u32) -> bool {
        match self.groups.get_mut(&id) {
            Some(g) => {
                g.net_class = Some(class);
                true
            }
            None => false,
        }
    }

    /// Returns the effective network class of `id`, walking up the
    /// hierarchy for inherited values.
    pub fn net_class(&self, id: CgroupId) -> u32 {
        let mut cur = Some(id);
        while let Some(cid) = cur {
            let Some(g) = self.groups.get(&cid) else {
                break;
            };
            if let Some(c) = g.net_class {
                return c;
            }
            cur = g.parent;
        }
        0
    }

    /// Returns a cgroup by id.
    pub fn get(&self, id: CgroupId) -> Option<&Cgroup> {
        self.groups.get(&id)
    }

    /// Returns the number of cgroups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Returns `true` if only the root exists — never true in practice
    /// since the root always exists.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_exists_with_class_zero() {
        let t = CgroupTree::new();
        assert_eq!(t.net_class(CgroupId::ROOT), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn child_inherits_until_set() {
        let mut t = CgroupTree::new();
        let game = t.create(CgroupId::ROOT, "/game");
        assert_eq!(t.net_class(game), 0);
        t.set_net_class(game, 42);
        assert_eq!(t.net_class(game), 42);
        // Grandchild inherits from the game group.
        let sub = t.create(game, "/game/session1");
        assert_eq!(t.net_class(sub), 42);
    }

    #[test]
    fn set_class_on_missing_group_fails() {
        let mut t = CgroupTree::new();
        assert!(!t.set_net_class(CgroupId(99), 1));
    }

    #[test]
    #[should_panic(expected = "no such parent")]
    fn create_under_missing_parent_panics() {
        let mut t = CgroupTree::new();
        t.create(CgroupId(99), "/orphan");
    }

    #[test]
    fn unknown_group_class_defaults_to_zero() {
        let t = CgroupTree::new();
        assert_eq!(t.net_class(CgroupId(7)), 0);
    }
}
