//! The kernel ARP cache and responder.
//!
//! §2's debugging scenario begins: "Without kernel bypass, Alice can
//! inspect her server's ARP cache and ifconfig to determine if her
//! server is the source of the problem." On a Norman host ARP stays a
//! kernel (slow-path) protocol: the NIC punts ARP frames to the kernel,
//! which maintains this cache and answers who-has requests for the
//! host's address — so the cache exists for Alice to inspect.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use pkt::{ArpOp, ArpPacket, FrameMeta, Mac, Packet, PacketBuilder};
use sim::Time;

/// One cache entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArpEntry {
    /// The resolved hardware address.
    pub mac: Mac,
    /// When it was learned/refreshed.
    pub updated: Time,
}

/// The kernel ARP cache + responder for one interface.
pub struct ArpCache {
    my_ip: Ipv4Addr,
    my_mac: Mac,
    entries: HashMap<Ipv4Addr, ArpEntry>,
    requests_answered: u64,
    replies_learned: u64,
}

impl ArpCache {
    /// Creates the cache for an interface with address `my_ip`/`my_mac`.
    pub fn new(my_ip: Ipv4Addr, my_mac: Mac) -> ArpCache {
        ArpCache {
            my_ip,
            my_mac,
            entries: HashMap::new(),
            requests_answered: 0,
            replies_learned: 0,
        }
    }

    /// Returns the entry for `ip`.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&ArpEntry> {
        self.entries.get(&ip)
    }

    /// Returns all entries (the `ip neigh`/`arp -a` view Alice inspects),
    /// sorted by address.
    pub fn entries(&self) -> Vec<(Ipv4Addr, ArpEntry)> {
        let mut v: Vec<(Ipv4Addr, ArpEntry)> =
            self.entries.iter().map(|(&ip, &e)| (ip, e)).collect();
        v.sort_by_key(|&(ip, _)| ip);
        v
    }

    /// Returns (requests answered, replies learned).
    pub fn counters(&self) -> (u64, u64) {
        (self.requests_answered, self.replies_learned)
    }

    /// Processes an ARP frame from the wire. Learns the sender mapping
    /// and, for who-has requests targeting this host, returns the reply
    /// frame to transmit.
    pub fn handle(&mut self, frame: &Packet, now: Time) -> Option<Packet> {
        let meta = FrameMeta::of(frame).ok()?;
        self.handle_meta(frame, &meta, now)
    }

    /// [`ArpCache::handle`] with the parse-once descriptor supplied by
    /// the caller (the KOPI slow path hands down the NIC's descriptor).
    /// Only the 28 ARP payload bytes are decoded — the descriptor already
    /// establishes the frame class and offsets.
    pub fn handle_meta(&mut self, frame: &Packet, meta: &FrameMeta, now: Time) -> Option<Packet> {
        if !meta.is_arp() {
            return None;
        }
        let arp = ArpPacket::parse(&frame.bytes()[meta.payload().start..]).ok()?;
        // Learn (or refresh) the sender's mapping, as kernels do for any
        // ARP traffic that names us or that we already track.
        if arp.sender_ip != Ipv4Addr::UNSPECIFIED {
            let known = self.entries.contains_key(&arp.sender_ip);
            if arp.target_ip == self.my_ip || known {
                self.entries.insert(
                    arp.sender_ip,
                    ArpEntry {
                        mac: arp.sender_mac,
                        updated: now,
                    },
                );
                if arp.op == ArpOp::Reply {
                    self.replies_learned += 1;
                }
            }
        }
        if arp.op == ArpOp::Request && arp.target_ip == self.my_ip {
            self.requests_answered += 1;
            return Some(PacketBuilder::arp_reply(&arp, self.my_mac));
        }
        None
    }

    /// Builds a who-has request the kernel would send to resolve `ip`.
    pub fn request_for(&self, ip: Ipv4Addr) -> Packet {
        PacketBuilder::arp_request(self.my_mac, self.my_ip, ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::Payload;

    fn cache() -> ArpCache {
        ArpCache::new("10.0.0.1".parse().unwrap(), Mac::local(1))
    }

    fn who_has(sender_ip: &str, sender_mac: Mac, target: &str) -> Packet {
        PacketBuilder::arp_request(
            sender_mac,
            sender_ip.parse().unwrap(),
            target.parse().unwrap(),
        )
    }

    #[test]
    fn answers_requests_for_own_address() {
        let mut c = cache();
        let req = who_has("10.0.0.2", Mac::local(2), "10.0.0.1");
        let reply = c.handle(&req, Time::ZERO).expect("must answer");
        let parsed = reply.parse().unwrap();
        match parsed.payload {
            Payload::Arp(arp) => {
                assert_eq!(arp.op, ArpOp::Reply);
                assert_eq!(arp.sender_mac, Mac::local(1));
                assert_eq!(arp.sender_ip, "10.0.0.1".parse::<Ipv4Addr>().unwrap());
                assert_eq!(arp.target_mac, Mac::local(2));
            }
            other => panic!("expected ARP, got {other:?}"),
        }
        assert_eq!(parsed.ether.dst, Mac::local(2));
        assert_eq!(c.counters().0, 1);
    }

    #[test]
    fn ignores_requests_for_other_hosts() {
        let mut c = cache();
        let req = who_has("10.0.0.2", Mac::local(2), "10.0.0.3");
        assert!(c.handle(&req, Time::ZERO).is_none());
    }

    #[test]
    fn learns_requester_mapping() {
        let mut c = cache();
        c.handle(
            &who_has("10.0.0.2", Mac::local(2), "10.0.0.1"),
            Time::from_ms(5),
        );
        let e = c.lookup("10.0.0.2".parse().unwrap()).unwrap();
        assert_eq!(e.mac, Mac::local(2));
        assert_eq!(e.updated, Time::from_ms(5));
    }

    #[test]
    fn learns_replies_to_own_requests() {
        let mut c = cache();
        let our_req = c.request_for("10.0.0.9".parse().unwrap());
        // Peer replies.
        let parsed = our_req.parse().unwrap();
        let Payload::Arp(req) = parsed.payload else {
            unreachable!()
        };
        let reply = PacketBuilder::arp_reply(&req, Mac::local(9));
        c.handle(&reply, Time::ZERO);
        assert_eq!(
            c.lookup("10.0.0.9".parse().unwrap()).unwrap().mac,
            Mac::local(9)
        );
        assert_eq!(c.counters().1, 1);
    }

    #[test]
    fn refresh_updates_timestamp_and_mac() {
        let mut c = cache();
        c.handle(&who_has("10.0.0.2", Mac::local(2), "10.0.0.1"), Time::ZERO);
        c.handle(
            &who_has("10.0.0.2", Mac::local(7), "10.0.0.1"),
            Time::from_secs(1),
        );
        let e = c.lookup("10.0.0.2".parse().unwrap()).unwrap();
        assert_eq!(e.mac, Mac::local(7));
        assert_eq!(e.updated, Time::from_secs(1));
    }

    #[test]
    fn entries_view_is_sorted() {
        let mut c = cache();
        c.handle(&who_has("10.0.0.9", Mac::local(9), "10.0.0.1"), Time::ZERO);
        c.handle(&who_has("10.0.0.2", Mac::local(2), "10.0.0.1"), Time::ZERO);
        let rows = c.entries();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].0 < rows[1].0);
    }

    #[test]
    fn non_arp_frames_ignored() {
        let mut c = cache();
        let udp = PacketBuilder::new()
            .ether(Mac::local(2), Mac::local(1))
            .ipv4("10.0.0.2".parse().unwrap(), "10.0.0.1".parse().unwrap())
            .udp(1, 2, b"x")
            .build();
        assert!(c.handle(&udp, Time::ZERO).is_none());
        assert!(c.entries().is_empty());
    }
}
