//! The simulated operating system kernel.
//!
//! Norman keeps the kernel as the *control plane* (Figure 1): it owns the
//! process table, credentials, cgroups, scheduling, and the only
//! privileged path to the NIC. This crate provides those OS structures
//! plus a complete software network stack that serves two roles:
//!
//! 1. the **kernel-stack baseline** architecture (today's Linux path:
//!    syscalls, copies, netfilter hooks, qdiscs), and
//! 2. **KOPI's software slow path** for traffic the NIC punts (§5).
//!
//! Modules:
//!
//! * [`arp`] — the kernel ARP cache and responder (the "ARP cache"
//!   Alice inspects in §2's debugging scenario; ARP stays a slow-path
//!   kernel protocol under KOPI).
//! * [`cred`] — users and credentials (the `uid-owner` of the §2 port
//!   partitioning policy).
//! * [`process`] — the process table binding pids to uids, command names,
//!   and cgroups: the *process view* that on-NIC and in-kernel
//!   interposition have but hypervisors and switches do not.
//! * [`cgroup`] — control groups with network class ids (`net_cls`), the
//!   handle `tc` uses in the §2 QoS scenario.
//! * [`sched`] — blocking and wakeup with context-switch accounting, plus
//!   per-process CPU meters (the §2 process-scheduling scenario's
//!   polling-vs-blocking comparison).
//! * [`syscall`] — syscall entry/exit and copy cost model.
//! * [`hooks`] — netfilter-style chains with owner matching.
//! * [`netstack`] — socket demux + hook evaluation + qdisc egress, with
//!   per-packet cost accounting.

pub mod arp;
pub mod cgroup;
pub mod cred;
pub mod hooks;
pub mod netstack;
pub mod process;
pub mod sched;
pub mod syscall;

pub use arp::{ArpCache, ArpEntry};
pub use cgroup::{Cgroup, CgroupId, CgroupTree};
pub use cred::{Cred, Uid};
pub use hooks::{Chain, HookVerdict, Rule};
pub use netstack::{NetStack, RxOutcome, StackCosts};
pub use process::{Pid, ProcState, Process, ProcessTable};
pub use sched::{CpuMeter, Scheduler};
pub use syscall::SyscallCosts;
