//! The in-kernel software network stack.
//!
//! This is both the **baseline** (the path every packet takes on a
//! conventional host: syscall, copy, netfilter, qdisc, driver) and
//! **KOPI's slow path** for punted traffic. All per-packet costs are
//! explicit so experiments can compare it head-to-head with the other
//! datapath architectures.

use std::collections::{HashMap, VecDeque};

use pkt::{FrameMeta, IpProto, Packet};
use qdisc::classify::ClassMatch;
use qdisc::{Fifo, QPkt, Qdisc, QdiscStats};
use sim::{Dur, Time};
use telemetry::{DropCause, Owner, Stage, Telemetry, TraceEvent, TraceVerdict};

use crate::hooks::{Chain, HookVerdict};
use crate::process::{Pid, ProcessTable};
use crate::syscall::SyscallCosts;

/// Per-packet software-stack costs.
#[derive(Clone, Debug)]
pub struct StackCosts {
    /// Syscall model.
    pub syscalls: SyscallCosts,
    /// Protocol processing (IP + transport) per packet.
    pub protocol: Dur,
    /// Driver/softirq work per received packet.
    pub softirq: Dur,
}

impl Default for StackCosts {
    fn default() -> StackCosts {
        StackCosts {
            syscalls: SyscallCosts::default(),
            protocol: Dur::from_ns(250),
            softirq: Dur::from_ns(200),
        }
    }
}

/// Builds a netstack lifecycle event (free function so hot paths can
/// defer construction behind [`Telemetry::emit`]'s enabled gate).
fn stack_ev(
    fid: u64,
    at: Time,
    stage: Stage,
    verdict: TraceVerdict,
    tuple: Option<pkt::FiveTuple>,
    len: u32,
    owner: Option<(u32, u32, &str)>,
) -> TraceEvent {
    TraceEvent {
        frame_id: fid,
        at,
        stage,
        verdict,
        tuple,
        len,
        owner: owner.map(|(uid, pid, comm)| Owner::new(uid, pid, comm)),
        generation: 0,
    }
}

struct SocketEntry {
    pid: Pid,
    uid: u32,
    comm: telemetry::Comm,
    rx_queue: VecDeque<Packet>,
    rx_bytes: u64,
    tx_bytes: u64,
    /// Whether the owner is blocked waiting for data.
    blocking_reader: bool,
}

/// Where an ingress packet ended up.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxOutcome {
    /// Queued on a socket owned by `pid`; `wake` means the owner was
    /// blocked and must be woken.
    Delivered {
        /// Socket owner.
        pid: Pid,
        /// Whether a blocked reader should be woken.
        wake: bool,
    },
    /// Dropped by the INPUT chain.
    Filtered,
    /// No socket bound to the destination (port unreachable).
    NoSocket,
}

/// Per-socket statistics row (for `knetstat`).
#[derive(Clone, Debug)]
pub struct SocketStat {
    /// Protocol.
    pub proto: IpProto,
    /// Local port.
    pub port: u16,
    /// Owning pid.
    pub pid: Pid,
    /// Owning uid.
    pub uid: u32,
    /// Owning command.
    pub comm: String,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Packets waiting in the receive queue.
    pub rx_queued: usize,
}

/// The software stack.
pub struct NetStack {
    costs: StackCosts,
    /// The INPUT netfilter chain.
    pub input: Chain,
    /// The OUTPUT netfilter chain.
    pub output: Chain,
    egress: Box<dyn Qdisc>,
    sockets: HashMap<(IpProto, u16), SocketEntry>,
    tx_frames: HashMap<u64, Packet>,
    next_tx_id: u64,
    rx_packets: u64,
    tx_packets: u64,
    rx_degraded: u64,
    tel: Telemetry,
}

impl NetStack {
    /// Creates a stack with default costs, empty accept-all chains, and a
    /// 1024-packet FIFO egress qdisc.
    pub fn new() -> NetStack {
        NetStack::with_costs(StackCosts::default())
    }

    /// Creates a stack with explicit costs.
    pub fn with_costs(costs: StackCosts) -> NetStack {
        NetStack {
            costs,
            input: Chain::new("INPUT", HookVerdict::Accept),
            output: Chain::new("OUTPUT", HookVerdict::Accept),
            egress: Box::new(Fifo::new(1024)),
            sockets: HashMap::new(),
            tx_frames: HashMap::new(),
            next_tx_id: 0,
            rx_packets: 0,
            tx_packets: 0,
            rx_degraded: 0,
            tel: Telemetry::new(),
        }
    }

    /// Attaches a shared telemetry hub; the stack then emits
    /// `Netstack*` lifecycle events for every frame it handles.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Returns the cost model.
    pub fn costs(&self) -> &StackCosts {
        &self.costs
    }

    /// Replaces the egress qdisc (what `tc qdisc replace dev eth0 root`
    /// does).
    pub fn set_egress_qdisc(&mut self, q: Box<dyn Qdisc>) {
        self.egress = q;
    }

    /// Binds a socket to `(proto, port)` for `pid`.
    ///
    /// Returns `false` if the port is taken.
    pub fn bind(&mut self, proto: IpProto, port: u16, pid: Pid, procs: &ProcessTable) -> bool {
        if self.sockets.contains_key(&(proto, port)) {
            return false;
        }
        let Some(p) = procs.get(pid) else {
            return false;
        };
        self.sockets.insert(
            (proto, port),
            SocketEntry {
                pid,
                uid: p.cred.uid.0,
                comm: p.comm.clone(),
                rx_queue: VecDeque::new(),
                rx_bytes: 0,
                tx_bytes: 0,
                blocking_reader: false,
            },
        );
        true
    }

    /// Unbinds a socket.
    pub fn unbind(&mut self, proto: IpProto, port: u16) -> bool {
        self.sockets.remove(&(proto, port)).is_some()
    }

    /// Processes one received frame. Returns the outcome and the kernel
    /// CPU time consumed (softirq + protocol + INPUT chain).
    ///
    /// Derives the frame descriptor when the caller has none; the KOPI
    /// slow path should use [`NetStack::rx_with_meta`] with the
    /// descriptor the NIC parser stage already computed.
    pub fn rx(&mut self, packet: &Packet, now: Time) -> (RxOutcome, Dur) {
        match FrameMeta::of(packet) {
            Ok(meta) => self.rx_with_meta(packet, &meta, now),
            Err(_) => {
                self.rx_packets += 1;
                let fid = self.tel.adopt_frame_id(0);
                let len = packet.len() as u32;
                self.tel.emit(|| {
                    stack_ev(
                        fid,
                        now,
                        Stage::NetstackDrop,
                        TraceVerdict::Drop(DropCause::Malformed),
                        None,
                        len,
                        None,
                    )
                });
                (
                    RxOutcome::NoSocket,
                    self.costs.softirq + self.costs.protocol,
                )
            }
        }
    }

    /// [`NetStack::rx`] with the parse-once descriptor supplied by the
    /// caller — the stack never re-parses the frame bytes.
    pub fn rx_with_meta(
        &mut self,
        packet: &Packet,
        meta: &FrameMeta,
        now: Time,
    ) -> (RxOutcome, Dur) {
        self.rx_packets += 1;
        let mut cost = self.costs.softirq + self.costs.protocol;
        let fid = self.tel.adopt_frame_id(meta.frame_id);
        let len = packet.len() as u32;
        let Some(tuple) = meta.tuple else {
            // Non-TCP/UDP (e.g. ARP) is handled by the kernel itself, not
            // delivered to sockets.
            self.tel.emit(|| {
                stack_ev(
                    fid,
                    now,
                    Stage::NetstackDrop,
                    TraceVerdict::Drop(DropCause::NoSocket),
                    None,
                    len,
                    None,
                )
            });
            return (RxOutcome::NoSocket, cost);
        };
        let key = (tuple.proto, tuple.dst_port);
        // Socket demux first: the INPUT owner match needs the receiving
        // socket's identity.
        let (uid, pid, comm) = match self.sockets.get(&key) {
            Some(s) => (s.uid, s.pid, s.comm.clone()),
            None => {
                self.tel.emit(|| {
                    stack_ev(
                        fid,
                        now,
                        Stage::NetstackDrop,
                        TraceVerdict::Drop(DropCause::NoSocket),
                        Some(tuple),
                        len,
                        None,
                    )
                });
                return (RxOutcome::NoSocket, cost);
            }
        };
        let m = ClassMatch::from_meta(meta, uid, pid.0);
        let (verdict, hook_cost) = self.input.evaluate(&m, Some(&comm));
        cost += hook_cost;
        if verdict == HookVerdict::Drop {
            self.tel.emit(|| {
                stack_ev(
                    fid,
                    now,
                    Stage::NetstackDrop,
                    TraceVerdict::Drop(DropCause::NetfilterDrop),
                    Some(tuple),
                    len,
                    Some((uid, pid.0, &comm)),
                )
            });
            return (RxOutcome::Filtered, cost);
        }
        let entry = self.sockets.get_mut(&key).expect("checked above");
        entry.rx_queue.push_back(packet.clone());
        entry.rx_bytes += packet.len() as u64;
        let wake = entry.blocking_reader && entry.rx_queue.len() == 1;
        if wake {
            entry.blocking_reader = false;
        }
        self.tel.emit(|| {
            stack_ev(
                fid,
                now,
                Stage::NetstackDeliver,
                TraceVerdict::Pass,
                Some(tuple),
                len,
                Some((uid, pid.0, &comm)),
            )
        });
        (RxOutcome::Delivered { pid, wake }, cost)
    }

    /// A `recv()` call by `pid` on its socket. Returns the packet (if
    /// any) and the syscall cost. With an empty queue the cost is the
    /// bare syscall and, if `block` is set, the socket is marked so the
    /// next delivery reports `wake = true`.
    pub fn recv(&mut self, proto: IpProto, port: u16, block: bool) -> (Option<Packet>, Dur) {
        let Some(entry) = self.sockets.get_mut(&(proto, port)) else {
            return (None, self.costs.syscalls.control_call());
        };
        match entry.rx_queue.pop_front() {
            Some(pkt) => {
                let cost = self.costs.syscalls.io_call(pkt.len());
                (Some(pkt), cost)
            }
            None => {
                if block {
                    entry.blocking_reader = true;
                }
                (None, self.costs.syscalls.control_call())
            }
        }
    }

    /// A `send()` call: charges the syscall + copy + OUTPUT chain +
    /// protocol work, then hands the frame to the egress qdisc.
    ///
    /// Returns the total kernel time and whether the frame was queued
    /// (`false` = dropped by policy or full qdisc).
    pub fn tx(
        &mut self,
        pid: Pid,
        packet: &Packet,
        now: Time,
        procs: &ProcessTable,
    ) -> (bool, Dur) {
        self.tx_packets += 1;
        let mut cost = self.costs.syscalls.io_call(packet.len()) + self.costs.protocol;
        // Builder-made frames carry their descriptor; `of` only parses
        // for hand-rolled byte buffers.
        let meta = FrameMeta::of(packet).ok();
        let tuple = meta.and_then(|m| m.tuple);
        let (uid, comm) = match procs.get(pid) {
            Some(p) => (p.cred.uid.0, p.comm.clone()),
            None => (u32::MAX, telemetry::Comm::default()),
        };
        let m = match &meta {
            Some(meta) => ClassMatch::from_meta(meta, uid, pid.0),
            None => ClassMatch {
                tuple: None,
                uid,
                pid: pid.0,
                mark: 0,
                dscp: 0,
            },
        };
        let (verdict, hook_cost) = self.output.evaluate(&m, Some(&comm));
        cost += hook_cost;
        let fid = self.tel.adopt_frame_id(meta.map_or(0, |m| m.frame_id));
        let len = packet.len() as u32;
        if verdict == HookVerdict::Drop {
            self.tel.emit(|| {
                stack_ev(
                    fid,
                    now,
                    Stage::NetstackTxDrop,
                    TraceVerdict::Drop(DropCause::NetfilterDrop),
                    tuple,
                    len,
                    Some((uid, pid.0, &comm)),
                )
            });
            return (false, cost);
        }
        if let Some(t) = tuple {
            if let Some(s) = self.sockets.get_mut(&(t.proto, t.src_port)) {
                s.tx_bytes += packet.len() as u64;
            }
        }
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let qpkt = QPkt::new(id, packet.len() as u32, now);
        match self.egress.enqueue(qpkt, now) {
            Ok(()) => {
                self.tx_frames.insert(id, packet.clone());
                self.tel.emit(|| {
                    stack_ev(
                        fid,
                        now,
                        Stage::NetstackTx,
                        TraceVerdict::Pass,
                        tuple,
                        len,
                        Some((uid, pid.0, &comm)),
                    )
                });
                (true, cost)
            }
            Err(e) => {
                self.tel.emit(|| {
                    stack_ev(
                        fid,
                        now,
                        Stage::NetstackTxDrop,
                        TraceVerdict::Drop(e.cause()),
                        tuple,
                        len,
                        Some((uid, pid.0, &comm)),
                    )
                });
                (false, cost)
            }
        }
    }

    /// Pulls the next frame the egress qdisc releases at `now`.
    pub fn tx_poll(&mut self, now: Time) -> Option<Packet> {
        let qpkt = self.egress.dequeue(now)?;
        self.tx_frames.remove(&qpkt.id)
    }

    /// When the egress qdisc will next release a frame.
    pub fn tx_next_ready(&self, now: Time) -> Option<Time> {
        self.egress.next_ready(now)
    }

    /// Returns the egress backlog in packets.
    pub fn tx_backlog(&self) -> usize {
        self.egress.len()
    }

    /// Returns (rx_packets, tx_packets) seen by the stack.
    pub fn counters(&self) -> (u64, u64) {
        (self.rx_packets, self.tx_packets)
    }

    /// Number of queued packets (socket receive queues plus frames parked
    /// in the egress qdisc) whose bytes live in a buffer arena — the
    /// netstack's contribution to the host's arena-occupancy ledger.
    /// Since [`Packet`] clones are refcount bumps, every packet counted
    /// here pins exactly one arena slot reference.
    pub fn arena_resident(&self) -> usize {
        self.sockets
            .values()
            .map(|s| s.rx_queue.iter().filter(|p| p.is_arena()).count())
            .sum::<usize>()
            + self.tx_frames.values().filter(|p| p.is_arena()).count()
    }

    /// Records that a frame reached this stack because the host demoted
    /// its flow under overload (graceful degradation), not because it
    /// was slow-path traffic to begin with. Called by the host right
    /// after handing the frame to [`NetStack::rx_with_meta`].
    pub fn note_degraded_rx(&mut self) {
        self.rx_degraded += 1;
    }

    /// Frames received via overload demotion (see
    /// [`NetStack::note_degraded_rx`]).
    pub fn rx_degraded(&self) -> u64 {
        self.rx_degraded
    }

    /// Returns the egress qdisc's accumulated counters.
    pub fn egress_stats(&self) -> QdiscStats {
        self.egress.stats()
    }

    /// Registers the stack's counters into the unified registry under
    /// `netstack.*` keys.
    pub fn fill_registry(&self, reg: &mut telemetry::Registry) {
        reg.set_counter("netstack.rx.packets", self.rx_packets);
        reg.set_counter("netstack.rx.degraded", self.rx_degraded);
        reg.set_counter("netstack.tx.packets", self.tx_packets);
        reg.set_counter("netstack.sockets", self.sockets.len() as u64);
        reg.set_counter("netstack.input.rules", self.input.len() as u64);
        reg.set_counter("netstack.output.rules", self.output.len() as u64);
        self.egress.stats().fill_registry(reg, "netstack.egress");
    }

    /// Returns `knetstat`-style rows for every socket.
    pub fn socket_stats(&self) -> Vec<SocketStat> {
        let mut rows: Vec<SocketStat> = self
            .sockets
            .iter()
            .map(|(&(proto, port), s)| SocketStat {
                proto,
                port,
                pid: s.pid,
                uid: s.uid,
                comm: s.comm.to_string(),
                rx_bytes: s.rx_bytes,
                tx_bytes: s.tx_bytes,
                rx_queued: s.rx_queue.len(),
            })
            .collect();
        rows.sort_by_key(|r| (r.proto.0, r.port));
        rows
    }
}

impl Default for NetStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupId;
    use crate::cred::{Cred, Uid};
    use crate::hooks::Rule;
    use pkt::{Mac, PacketBuilder};
    use qdisc::classify::ClassifierRule;
    use qdisc::Tbf;
    use std::net::Ipv4Addr;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn udp(src_port: u16, dst_port: u16, len: usize) -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.2"), addr("10.0.0.1"))
            .udp(src_port, dst_port, &vec![0u8; len])
            .build()
    }

    fn setup() -> (NetStack, ProcessTable, Pid) {
        let mut procs = ProcessTable::new();
        let pid = procs.spawn(Cred::new(Uid(1001), "bob"), "postgres", CgroupId::ROOT);
        let mut stack = NetStack::new();
        assert!(stack.bind(IpProto::UDP, 5432, pid, &procs));
        (stack, procs, pid)
    }

    #[test]
    fn rx_delivers_to_bound_socket() {
        let (mut stack, _procs, pid) = setup();
        let (outcome, cost) = stack.rx(&udp(9000, 5432, 100), Time::ZERO);
        assert_eq!(outcome, RxOutcome::Delivered { pid, wake: false });
        assert!(cost >= Dur::from_ns(450)); // softirq + protocol at least
        let (pkt, _) = stack.recv(IpProto::UDP, 5432, false);
        assert!(pkt.is_some());
    }

    #[test]
    fn rx_without_socket_is_unreachable() {
        let (mut stack, _, _) = setup();
        let (outcome, _) = stack.rx(&udp(9000, 9999, 10), Time::ZERO);
        assert_eq!(outcome, RxOutcome::NoSocket);
    }

    #[test]
    fn double_bind_rejected() {
        let (mut stack, procs, pid) = setup();
        assert!(!stack.bind(IpProto::UDP, 5432, pid, &procs));
        assert!(stack.unbind(IpProto::UDP, 5432));
        assert!(stack.bind(IpProto::UDP, 5432, pid, &procs));
    }

    #[test]
    fn input_chain_filters_with_owner() {
        let (mut stack, _procs, _pid) = setup();
        // Drop anything on 5432 not owned by uid 9999 (so: everything).
        let mut allow = Rule::new(HookVerdict::Accept);
        allow.matcher = ClassifierRule::any(0).match_dst_port(5432).match_uid(9999);
        stack.input.append(allow);
        let mut deny = Rule::new(HookVerdict::Drop);
        deny.matcher = ClassifierRule::any(0).match_dst_port(5432);
        stack.input.append(deny);
        let (outcome, _) = stack.rx(&udp(9000, 5432, 10), Time::ZERO);
        assert_eq!(outcome, RxOutcome::Filtered);
    }

    #[test]
    fn blocking_reader_wakes_on_first_packet_only() {
        let (mut stack, _procs, pid) = setup();
        // Empty queue, blocking recv arms the waiter.
        let (pkt, _) = stack.recv(IpProto::UDP, 5432, true);
        assert!(pkt.is_none());
        let (o1, _) = stack.rx(&udp(9000, 5432, 10), Time::ZERO);
        assert_eq!(o1, RxOutcome::Delivered { pid, wake: true });
        // Second packet while data already queued: no wake needed.
        let (o2, _) = stack.rx(&udp(9000, 5432, 10), Time::ZERO);
        assert_eq!(o2, RxOutcome::Delivered { pid, wake: false });
    }

    #[test]
    fn tx_charges_syscall_and_copies() {
        let (mut stack, procs, pid) = setup();
        let small = udp(5432, 9000, 10);
        let large = udp(5432, 9000, 1400);
        let (ok, cost_small) = stack.tx(pid, &small, Time::ZERO, &procs);
        assert!(ok);
        let (_, cost_large) = stack.tx(pid, &large, Time::ZERO, &procs);
        assert!(cost_large > cost_small, "copy cost should scale");
        assert_eq!(stack.tx_backlog(), 2);
        assert!(stack.tx_poll(Time::ZERO).is_some());
    }

    #[test]
    fn output_chain_blocks_spoofed_source_port() {
        let mut procs = ProcessTable::new();
        let thief = procs.spawn(Cred::new(Uid(1002), "charlie"), "netcat", CgroupId::ROOT);
        let mut stack = NetStack::new();
        // Only postgres/uid1001 may send from 5432.
        let mut allow = Rule::new(HookVerdict::Accept);
        allow.matcher = ClassifierRule::any(0).match_src_port(5432).match_uid(1001);
        allow.comm = Some("postgres".into());
        stack.output.append(allow);
        let mut deny = Rule::new(HookVerdict::Drop);
        deny.matcher = ClassifierRule::any(0).match_src_port(5432);
        stack.output.append(deny);

        let (sent, _) = stack.tx(thief, &udp(5432, 9000, 10), Time::ZERO, &procs);
        assert!(!sent, "thief's spoofed send must be dropped");
    }

    #[test]
    fn egress_qdisc_shapes_tx() {
        let (mut stack, procs, pid) = setup();
        // 1 kB/s, 200 B burst.
        stack.set_egress_qdisc(Box::new(Tbf::new(1000, 200, 64)));
        let pkt = udp(5432, 9000, 150); // ~192 B frame
        stack.tx(pid, &pkt, Time::ZERO, &procs);
        stack.tx(pid, &pkt, Time::ZERO, &procs);
        assert!(stack.tx_poll(Time::ZERO).is_some());
        assert!(stack.tx_poll(Time::ZERO).is_none(), "second frame shaped");
        let ready = stack
            .tx_next_ready(Time::ZERO)
            .expect("shaper reports readiness");
        assert!(stack.tx_poll(ready).is_some());
    }

    #[test]
    fn socket_stats_report_attribution() {
        let (mut stack, procs, pid) = setup();
        stack.rx(&udp(9000, 5432, 100), Time::ZERO);
        stack.tx(pid, &udp(5432, 9000, 50), Time::ZERO, &procs);
        let rows = stack.socket_stats();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.port, 5432);
        assert_eq!(r.comm, "postgres");
        assert_eq!(r.uid, 1001);
        assert!(r.rx_bytes > 0);
        assert!(r.tx_bytes > 0);
        assert_eq!(r.rx_queued, 1);
    }

    #[test]
    fn arp_is_not_delivered_to_sockets() {
        let (mut stack, _, _) = setup();
        let arp = PacketBuilder::arp_request(Mac::local(1), addr("10.0.0.2"), addr("10.0.0.1"));
        let (outcome, _) = stack.rx(&arp, Time::ZERO);
        assert_eq!(outcome, RxOutcome::NoSocket);
    }
}
