//! Blocking, wakeup, and CPU accounting.
//!
//! The §2 process-scheduling scenario: with kernel bypass, "Charlie and
//! Bob are forced to use non-blocking operations and poll for packets,
//! 'burning' CPU cores unnecessarily." This module gives the simulation
//! the machinery to quantify that: processes can block (costing a context
//! switch) or spin (costing CPU the whole time), and per-process
//! [`CpuMeter`]s record where the cycles went.

use sim::{Dur, FastMap, Time};

use crate::process::{Pid, ProcState, ProcessTable};

/// Where a process's CPU time went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuMeter {
    /// Useful work (packet processing, application logic).
    pub busy: Dur,
    /// Spinning on a poll loop waiting for I/O.
    pub polling: Dur,
    /// Context-switch overhead (entering/leaving blocked state).
    pub switching: Dur,
}

impl CpuMeter {
    /// Total CPU consumed.
    pub fn total(&self) -> Dur {
        self.busy + self.polling + self.switching
    }

    /// Fraction of consumed CPU that was useful work (1.0 when idle).
    pub fn efficiency(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            1.0
        } else {
            self.busy.as_ns_f64() / total.as_ns_f64()
        }
    }
}

/// The scheduler: blocking state plus CPU meters.
pub struct Scheduler {
    /// Cost of one context switch (block or wake transition).
    pub ctx_switch: Dur,
    meters: FastMap<Pid, CpuMeter>,
    /// Per-core kernel-worker meters (multi-queue mode pins one dataplane
    /// worker per core; this records where each core's cycles went,
    /// independent of process attribution).
    core_meters: Vec<CpuMeter>,
    blocked_since: FastMap<Pid, Time>,
    wakeups: u64,
    blocks: u64,
}

impl Scheduler {
    /// Creates a scheduler with the given context-switch cost (a few
    /// microseconds on contemporary Linux once cache effects are
    /// included).
    pub fn new(ctx_switch: Dur) -> Scheduler {
        Scheduler {
            ctx_switch,
            meters: FastMap::default(),
            core_meters: Vec::new(),
            blocked_since: FastMap::default(),
            wakeups: 0,
            blocks: 0,
        }
    }

    /// A default 2 µs context switch.
    pub fn with_defaults() -> Scheduler {
        Scheduler::new(Dur::from_us(2))
    }

    /// Returns the CPU meter for `pid` (zeroed if never charged).
    pub fn meter(&self, pid: Pid) -> CpuMeter {
        self.meters.get(&pid).copied().unwrap_or_default()
    }

    /// Returns (blocks, wakeups).
    pub fn counters(&self) -> (u64, u64) {
        (self.blocks, self.wakeups)
    }

    /// Charges useful work to `pid`.
    pub fn charge_busy(&mut self, pid: Pid, d: Dur) {
        self.meters.entry(pid).or_default().busy += d;
    }

    /// Charges poll-loop spinning to `pid`.
    pub fn charge_polling(&mut self, pid: Pid, d: Dur) {
        self.meters.entry(pid).or_default().polling += d;
    }

    /// Charges useful kernel-worker work to `core` (growing the per-core
    /// meter bank on first touch).
    pub fn charge_core_busy(&mut self, core: usize, d: Dur) {
        if core >= self.core_meters.len() {
            self.core_meters.resize(core + 1, CpuMeter::default());
        }
        self.core_meters[core].busy += d;
    }

    /// Returns the CPU meter for `core` (zeroed if never charged).
    pub fn core_meter(&self, core: usize) -> CpuMeter {
        self.core_meters.get(core).copied().unwrap_or_default()
    }

    /// Number of cores that have been charged at least once.
    pub fn num_cores_charged(&self) -> usize {
        self.core_meters.len()
    }

    /// Blocks `pid` at `now`, charging half a context switch (the switch
    /// away). Returns `false` if the process is missing or already
    /// blocked.
    pub fn block(&mut self, pid: Pid, now: Time, procs: &mut ProcessTable) -> bool {
        let Some(p) = procs.get_mut(pid) else {
            return false;
        };
        if p.state != ProcState::Running {
            return false;
        }
        p.state = ProcState::Blocked;
        self.blocked_since.insert(pid, now);
        self.meters.entry(pid).or_default().switching += self.ctx_switch / 2;
        self.blocks += 1;
        true
    }

    /// Wakes `pid` at `now`, charging the switch back in. Returns the
    /// instant the process actually resumes (wakeup latency included) or
    /// `None` if it was not blocked.
    pub fn wake(&mut self, pid: Pid, now: Time, procs: &mut ProcessTable) -> Option<Time> {
        let p = procs.get_mut(pid)?;
        if p.state != ProcState::Blocked {
            return None;
        }
        p.state = ProcState::Running;
        self.blocked_since.remove(&pid);
        self.meters.entry(pid).or_default().switching += self.ctx_switch / 2;
        self.wakeups += 1;
        Some(now + self.ctx_switch / 2)
    }

    /// Returns how long `pid` has been blocked at `now`, if blocked.
    pub fn blocked_for(&self, pid: Pid, now: Time) -> Option<Dur> {
        self.blocked_since.get(&pid).map(|&since| now - since)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupId;
    use crate::cred::{Cred, Uid};

    fn setup() -> (Scheduler, ProcessTable, Pid) {
        let mut procs = ProcessTable::new();
        let pid = procs.spawn(Cred::new(Uid(1001), "bob"), "server", CgroupId::ROOT);
        (Scheduler::with_defaults(), procs, pid)
    }

    #[test]
    fn block_and_wake_cycle() {
        let (mut sched, mut procs, pid) = setup();
        assert!(sched.block(pid, Time::ZERO, &mut procs));
        assert_eq!(procs.get(pid).unwrap().state, ProcState::Blocked);
        assert_eq!(
            sched.blocked_for(pid, Time::from_us(10)),
            Some(Dur::from_us(10))
        );
        let resumed = sched.wake(pid, Time::from_us(10), &mut procs).unwrap();
        assert_eq!(resumed, Time::from_us(10) + Dur::from_us(1));
        assert_eq!(procs.get(pid).unwrap().state, ProcState::Running);
        // A full context switch charged across the pair.
        assert_eq!(sched.meter(pid).switching, Dur::from_us(2));
        assert_eq!(sched.counters(), (1, 1));
    }

    #[test]
    fn double_block_rejected() {
        let (mut sched, mut procs, pid) = setup();
        assert!(sched.block(pid, Time::ZERO, &mut procs));
        assert!(!sched.block(pid, Time::ZERO, &mut procs));
    }

    #[test]
    fn wake_running_process_is_none() {
        let (mut sched, mut procs, pid) = setup();
        assert!(sched.wake(pid, Time::ZERO, &mut procs).is_none());
    }

    #[test]
    fn meters_separate_busy_from_polling() {
        let (mut sched, _procs, pid) = setup();
        sched.charge_busy(pid, Dur::from_us(10));
        sched.charge_polling(pid, Dur::from_us(90));
        let m = sched.meter(pid);
        assert_eq!(m.total(), Dur::from_us(100));
        assert!((m.efficiency() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn idle_meter_is_fully_efficient() {
        let (sched, _procs, pid) = setup();
        assert_eq!(sched.meter(pid).efficiency(), 1.0);
    }

    #[test]
    fn core_meters_track_per_core_work() {
        let (mut sched, _procs, _pid) = setup();
        assert_eq!(sched.num_cores_charged(), 0);
        assert_eq!(sched.core_meter(3), CpuMeter::default());
        sched.charge_core_busy(2, Dur::from_us(50));
        sched.charge_core_busy(0, Dur::from_us(10));
        sched.charge_core_busy(2, Dur::from_us(25));
        assert_eq!(sched.num_cores_charged(), 3);
        assert_eq!(sched.core_meter(2).busy, Dur::from_us(75));
        assert_eq!(sched.core_meter(0).busy, Dur::from_us(10));
        assert_eq!(sched.core_meter(1), CpuMeter::default());
    }

    #[test]
    fn blocked_process_consumes_no_cpu_while_waiting() {
        // The whole point of blocking I/O: a blocked process's meter does
        // not grow with wall-clock time.
        let (mut sched, mut procs, pid) = setup();
        sched.block(pid, Time::ZERO, &mut procs);
        let before = sched.meter(pid).total();
        // ... a second of simulated time passes ...
        sched.wake(pid, Time::from_secs(1), &mut procs);
        let after = sched.meter(pid).total();
        assert_eq!(after - before, Dur::from_us(1)); // only the wake half-switch
    }
}
