//! The process table.
//!
//! Interposition tasks "require knowledge of processes, their ownership
//! and privileges, and how to signal/interrupt them" (§3). This table is
//! that knowledge: pids bound to uids, command names, cgroups, and
//! run/block state.

use std::collections::HashMap;
use std::fmt;

use crate::cgroup::CgroupId;
use crate::cred::{Cred, Uid};

/// A process id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// Run state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    /// Runnable or running.
    Running,
    /// Blocked in a syscall, waiting for a wakeup.
    Blocked,
    /// Exited.
    Exited,
}

/// One process.
#[derive(Clone, Debug)]
pub struct Process {
    /// The process id.
    pub pid: Pid,
    /// Owner credentials.
    pub cred: Cred,
    /// Command name (`comm`), the `cmd-owner` match target. Refcounted
    /// so per-packet owner attribution clones a pointer, not the string.
    pub comm: telemetry::Comm,
    /// Containing cgroup.
    pub cgroup: CgroupId,
    /// Run state.
    pub state: ProcState,
}

/// The process table.
#[derive(Default)]
pub struct ProcessTable {
    procs: HashMap<Pid, Process>,
    next_pid: u32,
}

impl ProcessTable {
    /// Creates an empty table; pids start at 1.
    pub fn new() -> ProcessTable {
        ProcessTable {
            procs: HashMap::new(),
            next_pid: 1,
        }
    }

    /// Spawns a process.
    pub fn spawn(&mut self, cred: Cred, comm: &str, cgroup: CgroupId) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Process {
                pid,
                cred,
                comm: telemetry::Comm::new(comm),
                cgroup,
                state: ProcState::Running,
            },
        );
        pid
    }

    /// Terminates a process.
    pub fn exit(&mut self, pid: Pid) -> bool {
        match self.procs.get_mut(&pid) {
            Some(p) => {
                p.state = ProcState::Exited;
                true
            }
            None => false,
        }
    }

    /// Returns a process by pid.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Returns a mutable process by pid.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// Returns the uid owning `pid`, if it exists.
    pub fn uid_of(&self, pid: Pid) -> Option<Uid> {
        self.get(pid).map(|p| p.cred.uid)
    }

    /// Returns the command name of `pid`.
    pub fn comm_of(&self, pid: Pid) -> Option<&str> {
        self.get(pid).map(|p| p.comm.as_str())
    }

    /// Iterates over live (non-exited) processes.
    pub fn live(&self) -> impl Iterator<Item = &Process> {
        self.procs.values().filter(|p| p.state != ProcState::Exited)
    }

    /// Returns all processes owned by `uid`.
    pub fn by_uid(&self, uid: Uid) -> Vec<&Process> {
        let mut v: Vec<&Process> = self.live().filter(|p| p.cred.uid == uid).collect();
        v.sort_by_key(|p| p.pid);
        v
    }

    /// Finds live processes by command name.
    pub fn by_comm(&self, comm: &str) -> Vec<&Process> {
        let mut v: Vec<&Process> = self.live().filter(|p| p.comm == comm).collect();
        v.sort_by_key(|p| p.pid);
        v
    }

    /// Returns the number of processes ever spawned (including exited).
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Returns `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_two() -> (ProcessTable, Pid, Pid) {
        let mut t = ProcessTable::new();
        let bob = t.spawn(Cred::new(Uid(1001), "bob"), "postgres", CgroupId::ROOT);
        let charlie = t.spawn(Cred::new(Uid(1002), "charlie"), "mysqld", CgroupId::ROOT);
        (t, bob, charlie)
    }

    #[test]
    fn pids_are_unique_and_sequential() {
        let (_, bob, charlie) = table_with_two();
        assert_eq!(bob, Pid(1));
        assert_eq!(charlie, Pid(2));
    }

    #[test]
    fn attribution_queries() {
        let (t, bob, _) = table_with_two();
        assert_eq!(t.uid_of(bob), Some(Uid(1001)));
        assert_eq!(t.comm_of(bob), Some("postgres"));
        assert_eq!(t.by_uid(Uid(1001)).len(), 1);
        assert_eq!(t.by_comm("mysqld").len(), 1);
        assert!(t.by_comm("nginx").is_empty());
    }

    #[test]
    fn exited_processes_leave_live_views() {
        let (mut t, bob, _) = table_with_two();
        assert!(t.exit(bob));
        assert!(t.by_uid(Uid(1001)).is_empty());
        assert_eq!(t.live().count(), 1);
        // Still in the table (zombie-ish), state reflects exit.
        assert_eq!(t.get(bob).unwrap().state, ProcState::Exited);
    }

    #[test]
    fn exit_unknown_pid_is_false() {
        let mut t = ProcessTable::new();
        assert!(!t.exit(Pid(42)));
    }
}
