//! Syscall cost model.
//!
//! "Virtual movement occurs when network traffic must traverse an
//! isolation boundary on the same core, e.g., moving from userspace to
//! the kernel in the OS stack, which introduces well-known overheads"
//! (§1). This module prices those overheads for the kernel-stack
//! baseline: mode-switch entry/exit plus a per-byte copy between user and
//! kernel buffers.

use sim::Dur;

/// Syscall costs.
#[derive(Clone, Debug)]
pub struct SyscallCosts {
    /// Mode switch in and out (KPTI-era, including TLB/branch-predictor
    /// effects).
    pub entry_exit: Dur,
    /// Copy between user and kernel space, per byte.
    pub copy_per_byte: Dur,
    /// Fixed socket-layer bookkeeping per send/recv call.
    pub socket_overhead: Dur,
}

impl Default for SyscallCosts {
    fn default() -> SyscallCosts {
        SyscallCosts {
            entry_exit: Dur::from_ns(500),
            copy_per_byte: Dur::from_ps(50),
            socket_overhead: Dur::from_ns(150),
        }
    }
}

impl SyscallCosts {
    /// Total cost of a send/recv syscall moving `bytes` of payload.
    pub fn io_call(&self, bytes: usize) -> Dur {
        self.entry_exit + self.socket_overhead + self.copy_per_byte.saturating_mul(bytes as u64)
    }

    /// Cost of a data-less control syscall (e.g. `connect`, `epoll_wait`
    /// returning immediately).
    pub fn control_call(&self) -> Dur {
        self.entry_exit + self.socket_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_cost_scales_with_bytes() {
        let c = SyscallCosts::default();
        let small = c.io_call(64);
        let big = c.io_call(1500);
        assert!(big > small);
        assert_eq!(big - small, c.copy_per_byte * (1500 - 64));
    }

    #[test]
    fn control_call_has_no_copy() {
        let c = SyscallCosts::default();
        assert_eq!(c.control_call(), c.io_call(0));
    }

    #[test]
    fn per_packet_overhead_dwarfs_wire_time_for_small_frames() {
        // The kernel-bypass motivation: a 64 B frame serializes in ~7 ns
        // at 100 Gbps, but one syscall costs ~650 ns.
        let c = SyscallCosts::default();
        assert!(c.io_call(64) > Dur::from_ns(500));
    }
}
