//! Users and credentials.

use std::fmt;

/// A user id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Returns `true` for root.
    pub fn is_root(self) -> bool {
        self == Uid::ROOT
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid {}", self.0)
    }
}

/// Credentials attached to a process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cred {
    /// The owning user.
    pub uid: Uid,
    /// The user's login name (for tool output).
    pub user: String,
}

impl Cred {
    /// Creates credentials.
    pub fn new(uid: Uid, user: impl Into<String>) -> Cred {
        Cred {
            uid,
            user: user.into(),
        }
    }

    /// Root credentials.
    pub fn root() -> Cred {
        Cred::new(Uid::ROOT, "root")
    }

    /// Returns `true` if these credentials may perform privileged
    /// operations (configure the NIC, read global captures).
    pub fn is_privileged(&self) -> bool {
        self.uid.is_root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_privileged_others_are_not() {
        assert!(Cred::root().is_privileged());
        assert!(!Cred::new(Uid(1001), "bob").is_privileged());
    }

    #[test]
    fn uid_display() {
        assert_eq!(Uid(7).to_string(), "uid 7");
    }
}
