//! Netfilter-style hook chains with owner matching.
//!
//! The §2 port-partitioning policy is expressed in Linux as iptables
//! rules matching `cmd-owner` and `uid-owner` — possible only because
//! netfilter runs inside the kernel with the process table at hand. These
//! chains model `INPUT`/`OUTPUT` with exactly that power, and each rule
//! evaluation carries a small per-rule cost (linear scan, as in
//! iptables).

use qdisc::classify::{ClassMatch, ClassifierRule};
use sim::Dur;

/// Rule verdicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HookVerdict {
    /// Let the packet continue.
    Accept,
    /// Discard the packet.
    Drop,
}

/// One rule: a match spec (including uid/pid owner fields) plus a
/// verdict. The owner/comm fields make sense only on locally-originated
/// or locally-delivered traffic, as with iptables.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The match (reuses the classifier's matcher; its `class` field is
    /// ignored).
    pub matcher: ClassifierRule,
    /// Optional command-name owner match (`-m owner --cmd-owner`).
    pub comm: Option<String>,
    /// Verdict on match.
    pub verdict: HookVerdict,
}

impl Rule {
    /// Creates an accept-all/drop-all rule to build on.
    pub fn new(verdict: HookVerdict) -> Rule {
        Rule {
            matcher: ClassifierRule::default(),
            comm: None,
            verdict,
        }
    }

    fn matches(&self, m: &ClassMatch, comm: Option<&str>) -> bool {
        if !self.matcher.matches(m) {
            return false;
        }
        if let Some(want) = &self.comm {
            if comm != Some(want.as_str()) {
                return false;
            }
        }
        true
    }
}

/// An ordered chain with a default policy.
#[derive(Clone, Debug)]
pub struct Chain {
    /// Chain name ("INPUT", "OUTPUT").
    pub name: String,
    rules: Vec<Rule>,
    default: HookVerdict,
    /// Per-rule evaluation cost.
    per_rule_cost: Dur,
    evaluated: u64,
    drops: u64,
}

impl Chain {
    /// Creates a chain with the given default policy and a 25 ns per-rule
    /// cost (cache-resident linear scan).
    pub fn new(name: &str, default: HookVerdict) -> Chain {
        Chain {
            name: name.to_string(),
            rules: Vec::new(),
            default,
            per_rule_cost: Dur::from_ns(25),
            evaluated: 0,
            drops: 0,
        }
    }

    /// Appends a rule.
    pub fn append(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Clears all rules.
    pub fn flush(&mut self) {
        self.rules.clear();
    }

    /// Returns the number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when the chain has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Returns (packets evaluated, packets dropped).
    pub fn counters(&self) -> (u64, u64) {
        (self.evaluated, self.drops)
    }

    /// Evaluates the chain over a packet, returning the verdict and the
    /// evaluation cost (rules scanned × per-rule cost).
    pub fn evaluate(&mut self, m: &ClassMatch, comm: Option<&str>) -> (HookVerdict, Dur) {
        self.evaluated += 1;
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.matches(m, comm) {
                if rule.verdict == HookVerdict::Drop {
                    self.drops += 1;
                }
                return (
                    rule.verdict,
                    self.per_rule_cost.saturating_mul(i as u64 + 1),
                );
            }
        }
        (
            self.default,
            self.per_rule_cost.saturating_mul(self.rules.len() as u64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::FiveTuple;
    use std::net::Ipv4Addr;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn match_for(dst_port: u16, uid: u32) -> ClassMatch {
        ClassMatch {
            tuple: Some(FiveTuple::tcp(
                addr("10.0.0.2"),
                40_000,
                addr("10.0.0.1"),
                dst_port,
            )),
            uid,
            pid: 1,
            mark: 0,
            dscp: 0,
        }
    }

    /// The §2 policy: only uid 1001's postgres may use port 5432.
    fn port_partition_chain() -> Chain {
        let mut chain = Chain::new("INPUT", HookVerdict::Accept);
        // Rule 1: accept postgres owned by bob on 5432.
        let mut allow = Rule::new(HookVerdict::Accept);
        allow.matcher = ClassifierRule::any(0).match_dst_port(5432).match_uid(1001);
        allow.comm = Some("postgres".to_string());
        chain.append(allow);
        // Rule 2: drop everything else on 5432.
        let mut deny = Rule::new(HookVerdict::Drop);
        deny.matcher = ClassifierRule::any(0).match_dst_port(5432);
        chain.append(deny);
        chain
    }

    #[test]
    fn owner_match_enforces_partition() {
        let mut chain = port_partition_chain();
        let (v, _) = chain.evaluate(&match_for(5432, 1001), Some("postgres"));
        assert_eq!(v, HookVerdict::Accept);
        // Charlie's process on the same port is dropped.
        let (v, _) = chain.evaluate(&match_for(5432, 1002), Some("mysqld"));
        assert_eq!(v, HookVerdict::Drop);
        // Bob running a different binary is also dropped (cmd-owner).
        let (v, _) = chain.evaluate(&match_for(5432, 1001), Some("netcat"));
        assert_eq!(v, HookVerdict::Drop);
        assert_eq!(chain.counters(), (3, 2));
    }

    #[test]
    fn unrelated_ports_hit_default() {
        let mut chain = port_partition_chain();
        let (v, cost) = chain.evaluate(&match_for(8080, 1002), Some("nginx"));
        assert_eq!(v, HookVerdict::Accept);
        // Scanned both rules.
        assert_eq!(cost, Dur::from_ns(50));
    }

    #[test]
    fn first_match_cost_is_lower() {
        let mut chain = port_partition_chain();
        let (_, cost) = chain.evaluate(&match_for(5432, 1001), Some("postgres"));
        assert_eq!(cost, Dur::from_ns(25));
    }

    #[test]
    fn flush_empties() {
        let mut chain = port_partition_chain();
        chain.flush();
        assert!(chain.is_empty());
        let (v, cost) = chain.evaluate(&match_for(5432, 1002), Some("mysqld"));
        assert_eq!(v, HookVerdict::Accept);
        assert_eq!(cost, Dur::ZERO);
    }

    #[test]
    fn default_drop_chain() {
        let mut chain = Chain::new("INPUT", HookVerdict::Drop);
        let (v, _) = chain.evaluate(&match_for(1, 1), None);
        assert_eq!(v, HookVerdict::Drop);
    }
}
