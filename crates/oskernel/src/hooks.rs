//! Netfilter-style hook chains with owner matching.
//!
//! The §2 port-partitioning policy is expressed in Linux as iptables
//! rules matching `cmd-owner` and `uid-owner` — possible only because
//! netfilter runs inside the kernel with the process table at hand. These
//! chains model `INPUT`/`OUTPUT` with exactly that power, and each rule
//! evaluation carries a small per-rule cost (linear scan, as in
//! iptables).
//!
//! Like the NIC overlay, chains execute through an ahead-of-time
//! compiled form: on first evaluation each rule is lowered to the list
//! of field predicates it actually constrains (a rule matching only
//! `dst_port` tests one closure, not eight `Option` branches), the
//! kernel analogue of nftables' bytecode-over-linear-rules design. The
//! original linear scan survives as [`Chain::evaluate_interp`], the
//! differential-testing oracle — both paths must return identical
//! verdicts, costs, and counters on every packet.

use qdisc::classify::{ClassMatch, ClassifierRule};
use sim::Dur;

/// Rule verdicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HookVerdict {
    /// Let the packet continue.
    Accept,
    /// Discard the packet.
    Drop,
}

/// One rule: a match spec (including uid/pid owner fields) plus a
/// verdict. The owner/comm fields make sense only on locally-originated
/// or locally-delivered traffic, as with iptables.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The match (reuses the classifier's matcher; its `class` field is
    /// ignored).
    pub matcher: ClassifierRule,
    /// Optional command-name owner match (`-m owner --cmd-owner`).
    pub comm: Option<String>,
    /// Verdict on match.
    pub verdict: HookVerdict,
}

impl Rule {
    /// Creates an accept-all/drop-all rule to build on.
    pub fn new(verdict: HookVerdict) -> Rule {
        Rule {
            matcher: ClassifierRule::default(),
            comm: None,
            verdict,
        }
    }

    fn matches(&self, m: &ClassMatch, comm: Option<&str>) -> bool {
        if !self.matcher.matches(m) {
            return false;
        }
        if let Some(want) = &self.comm {
            if comm != Some(want.as_str()) {
                return false;
            }
        }
        true
    }
}

/// One rule predicate in compiled form: a specialized closure over the
/// packet metadata and (optionally) the owning command name.
type Pred = Box<dyn Fn(&ClassMatch, Option<&str>) -> bool + Send + Sync>;

/// A rule lowered to exactly the predicates it constrains. All must
/// hold for the rule to fire.
struct CompiledRule {
    preds: Vec<Pred>,
    verdict: HookVerdict,
}

impl CompiledRule {
    fn lower(rule: &Rule) -> CompiledRule {
        let mut preds: Vec<Pred> = Vec::new();
        let r = &rule.matcher;
        // Tuple-field constraints cannot match tuple-less packets (ARP),
        // same contract as `ClassifierRule::matches`.
        if let Some(ip) = r.src_ip {
            preds.push(Box::new(move |m, _| {
                m.tuple.as_ref().is_some_and(|t| t.src_ip == ip)
            }));
        }
        if let Some(ip) = r.dst_ip {
            preds.push(Box::new(move |m, _| {
                m.tuple.as_ref().is_some_and(|t| t.dst_ip == ip)
            }));
        }
        if let Some(p) = r.src_port {
            preds.push(Box::new(move |m, _| {
                m.tuple.as_ref().is_some_and(|t| t.src_port == p)
            }));
        }
        if let Some(p) = r.dst_port {
            preds.push(Box::new(move |m, _| {
                m.tuple.as_ref().is_some_and(|t| t.dst_port == p)
            }));
        }
        if let Some(pr) = r.proto {
            preds.push(Box::new(move |m, _| {
                m.tuple.as_ref().is_some_and(|t| t.proto == pr)
            }));
        }
        if let Some(uid) = r.uid {
            preds.push(Box::new(move |m, _| m.uid == uid));
        }
        if let Some(pid) = r.pid {
            preds.push(Box::new(move |m, _| m.pid == pid));
        }
        if let Some(dscp) = r.dscp {
            preds.push(Box::new(move |m, _| m.dscp == dscp));
        }
        if let Some(want) = rule.comm.clone() {
            preds.push(Box::new(move |_, comm| comm == Some(want.as_str())));
        }
        CompiledRule {
            preds,
            verdict: rule.verdict,
        }
    }

    fn matches(&self, m: &ClassMatch, comm: Option<&str>) -> bool {
        self.preds.iter().all(|p| p(m, comm))
    }
}

/// An ordered chain with a default policy.
pub struct Chain {
    /// Chain name ("INPUT", "OUTPUT").
    pub name: String,
    rules: Vec<Rule>,
    default: HookVerdict,
    /// Per-rule evaluation cost.
    per_rule_cost: Dur,
    evaluated: u64,
    drops: u64,
    /// Lowered rule list, rebuilt lazily after `append`/`flush`.
    compiled: Option<Vec<CompiledRule>>,
}

impl Clone for Chain {
    fn clone(&self) -> Chain {
        // The compiled form is derived state; the clone re-lowers on its
        // next evaluation.
        Chain {
            name: self.name.clone(),
            rules: self.rules.clone(),
            default: self.default,
            per_rule_cost: self.per_rule_cost,
            evaluated: self.evaluated,
            drops: self.drops,
            compiled: None,
        }
    }
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chain")
            .field("name", &self.name)
            .field("rules", &self.rules)
            .field("default", &self.default)
            .field("per_rule_cost", &self.per_rule_cost)
            .field("evaluated", &self.evaluated)
            .field("drops", &self.drops)
            .field("compiled", &self.compiled.is_some())
            .finish()
    }
}

impl Chain {
    /// Creates a chain with the given default policy and a 25 ns per-rule
    /// cost (cache-resident linear scan).
    pub fn new(name: &str, default: HookVerdict) -> Chain {
        Chain {
            name: name.to_string(),
            rules: Vec::new(),
            default,
            per_rule_cost: Dur::from_ns(25),
            evaluated: 0,
            drops: 0,
            compiled: None,
        }
    }

    /// Appends a rule, invalidating the compiled form.
    pub fn append(&mut self, rule: Rule) {
        self.rules.push(rule);
        self.compiled = None;
    }

    /// Clears all rules, invalidating the compiled form.
    pub fn flush(&mut self) {
        self.rules.clear();
        self.compiled = None;
    }

    /// Returns whether the chain currently holds a lowered rule list.
    pub fn is_compiled(&self) -> bool {
        self.compiled.is_some()
    }

    /// Returns the number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when the chain has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Returns (packets evaluated, packets dropped).
    pub fn counters(&self) -> (u64, u64) {
        (self.evaluated, self.drops)
    }

    /// Evaluates the chain over a packet through the compiled rule
    /// list (lowering it first if rules changed), returning the verdict
    /// and the evaluation cost (rules scanned × per-rule cost). Cost
    /// accounting is identical to the interpreted scan: the lowering
    /// specializes *what* each rule tests, not the iptables linear-walk
    /// cost model.
    pub fn evaluate(&mut self, m: &ClassMatch, comm: Option<&str>) -> (HookVerdict, Dur) {
        if self.compiled.is_none() {
            self.compiled = Some(self.rules.iter().map(CompiledRule::lower).collect());
        }
        self.evaluated += 1;
        let compiled = self.compiled.as_ref().expect("lowered above");
        for (i, rule) in compiled.iter().enumerate() {
            if rule.matches(m, comm) {
                if rule.verdict == HookVerdict::Drop {
                    self.drops += 1;
                }
                return (
                    rule.verdict,
                    self.per_rule_cost.saturating_mul(i as u64 + 1),
                );
            }
        }
        (
            self.default,
            self.per_rule_cost.saturating_mul(self.rules.len() as u64),
        )
    }

    /// The original interpreted linear scan, kept as the differential
    /// oracle for [`Chain::evaluate`]: identical verdicts, costs, and
    /// counter updates, straight off the un-lowered [`Rule`] list.
    pub fn evaluate_interp(&mut self, m: &ClassMatch, comm: Option<&str>) -> (HookVerdict, Dur) {
        self.evaluated += 1;
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.matches(m, comm) {
                if rule.verdict == HookVerdict::Drop {
                    self.drops += 1;
                }
                return (
                    rule.verdict,
                    self.per_rule_cost.saturating_mul(i as u64 + 1),
                );
            }
        }
        (
            self.default,
            self.per_rule_cost.saturating_mul(self.rules.len() as u64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::FiveTuple;
    use std::net::Ipv4Addr;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn match_for(dst_port: u16, uid: u32) -> ClassMatch {
        ClassMatch {
            tuple: Some(FiveTuple::tcp(
                addr("10.0.0.2"),
                40_000,
                addr("10.0.0.1"),
                dst_port,
            )),
            uid,
            pid: 1,
            mark: 0,
            dscp: 0,
        }
    }

    /// The §2 policy: only uid 1001's postgres may use port 5432.
    fn port_partition_chain() -> Chain {
        let mut chain = Chain::new("INPUT", HookVerdict::Accept);
        // Rule 1: accept postgres owned by bob on 5432.
        let mut allow = Rule::new(HookVerdict::Accept);
        allow.matcher = ClassifierRule::any(0).match_dst_port(5432).match_uid(1001);
        allow.comm = Some("postgres".to_string());
        chain.append(allow);
        // Rule 2: drop everything else on 5432.
        let mut deny = Rule::new(HookVerdict::Drop);
        deny.matcher = ClassifierRule::any(0).match_dst_port(5432);
        chain.append(deny);
        chain
    }

    #[test]
    fn owner_match_enforces_partition() {
        let mut chain = port_partition_chain();
        let (v, _) = chain.evaluate(&match_for(5432, 1001), Some("postgres"));
        assert_eq!(v, HookVerdict::Accept);
        // Charlie's process on the same port is dropped.
        let (v, _) = chain.evaluate(&match_for(5432, 1002), Some("mysqld"));
        assert_eq!(v, HookVerdict::Drop);
        // Bob running a different binary is also dropped (cmd-owner).
        let (v, _) = chain.evaluate(&match_for(5432, 1001), Some("netcat"));
        assert_eq!(v, HookVerdict::Drop);
        assert_eq!(chain.counters(), (3, 2));
    }

    #[test]
    fn unrelated_ports_hit_default() {
        let mut chain = port_partition_chain();
        let (v, cost) = chain.evaluate(&match_for(8080, 1002), Some("nginx"));
        assert_eq!(v, HookVerdict::Accept);
        // Scanned both rules.
        assert_eq!(cost, Dur::from_ns(50));
    }

    #[test]
    fn first_match_cost_is_lower() {
        let mut chain = port_partition_chain();
        let (_, cost) = chain.evaluate(&match_for(5432, 1001), Some("postgres"));
        assert_eq!(cost, Dur::from_ns(25));
    }

    #[test]
    fn flush_empties() {
        let mut chain = port_partition_chain();
        chain.flush();
        assert!(chain.is_empty());
        let (v, cost) = chain.evaluate(&match_for(5432, 1002), Some("mysqld"));
        assert_eq!(v, HookVerdict::Accept);
        assert_eq!(cost, Dur::ZERO);
    }

    #[test]
    fn default_drop_chain() {
        let mut chain = Chain::new("INPUT", HookVerdict::Drop);
        let (v, _) = chain.evaluate(&match_for(1, 1), None);
        assert_eq!(v, HookVerdict::Drop);
    }

    #[test]
    fn append_invalidates_compiled_form() {
        let mut chain = port_partition_chain();
        assert!(!chain.is_compiled());
        let (v, _) = chain.evaluate(&match_for(5432, 1002), Some("mysqld"));
        assert_eq!(v, HookVerdict::Drop);
        assert!(chain.is_compiled());
        // A rule appended after lowering must take effect on the next
        // packet: accept uid 1002 on 5432 ahead of nothing — it lands
        // after the deny, so instead append a broader accept for 9999.
        let mut allow = Rule::new(HookVerdict::Accept);
        allow.matcher = ClassifierRule::any(0).match_dst_port(9999).match_uid(1002);
        chain.append(allow);
        assert!(!chain.is_compiled());
        let (v, _) = chain.evaluate(&match_for(9999, 1002), Some("mysqld"));
        assert_eq!(v, HookVerdict::Accept);
    }

    /// Differential oracle: the compiled path and the interpreted scan
    /// must agree on verdict, cost, and counters over randomized chains
    /// and packet streams.
    #[test]
    fn compiled_matches_interpreter_on_random_chains() {
        struct XorShift(u64);
        impl XorShift {
            fn next(&mut self) -> u64 {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                self.0
            }
            fn below(&mut self, n: u64) -> u64 {
                self.next() % n
            }
        }
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        let comms = ["postgres", "mysqld", "nginx", "netcat"];
        for _ in 0..50 {
            let default = if rng.below(2) == 0 {
                HookVerdict::Accept
            } else {
                HookVerdict::Drop
            };
            let mut chain = Chain::new("FUZZ", default);
            for _ in 0..rng.below(6) {
                let verdict = if rng.below(2) == 0 {
                    HookVerdict::Accept
                } else {
                    HookVerdict::Drop
                };
                let mut rule = Rule::new(verdict);
                let mut m = ClassifierRule::any(0);
                if rng.below(2) == 0 {
                    m = m.match_dst_port(5000 + rng.below(4) as u16);
                }
                if rng.below(2) == 0 {
                    m = m.match_uid(1000 + rng.below(4) as u32);
                }
                rule.matcher = m;
                if rng.below(3) == 0 {
                    rule.comm = Some(comms[rng.below(4) as usize].to_string());
                }
                chain.append(rule);
            }
            let mut oracle = chain.clone();
            for _ in 0..40 {
                let m = match_for(5000 + rng.below(4) as u16, 1000 + rng.below(4) as u32);
                let comm = if rng.below(4) == 0 {
                    None
                } else {
                    Some(comms[rng.below(4) as usize])
                };
                assert_eq!(chain.evaluate(&m, comm), oracle.evaluate_interp(&m, comm));
                assert_eq!(chain.counters(), oracle.counters());
            }
        }
    }
}
