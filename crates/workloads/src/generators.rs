//! Traffic arrival and size generators.

use sim::{DetRng, Dur, Time};

/// Poisson packet arrivals (exponential inter-arrival times).
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rng: DetRng,
    mean_gap_ns: f64,
    next: Time,
}

impl PoissonArrivals {
    /// Creates a process with `rate_pps` packets per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_pps` is not positive.
    pub fn new(rate_pps: f64, rng: DetRng) -> PoissonArrivals {
        assert!(rate_pps > 0.0, "rate must be positive");
        PoissonArrivals {
            rng,
            mean_gap_ns: 1e9 / rate_pps,
            next: Time::ZERO,
        }
    }

    /// Returns the next arrival instant.
    pub fn next_arrival(&mut self) -> Time {
        let gap = self.rng.exponential(self.mean_gap_ns);
        self.next += Dur::from_ns_f64(gap);
        self.next
    }
}

/// Constant-bit-rate arrivals.
#[derive(Clone, Debug)]
pub struct CbrArrivals {
    interval: Dur,
    next: Time,
}

impl CbrArrivals {
    /// Creates arrivals every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: Dur) -> CbrArrivals {
        assert!(!interval.is_zero(), "interval must be positive");
        CbrArrivals {
            interval,
            next: Time::ZERO,
        }
    }

    /// Creates arrivals that saturate `gbps` with `frame_bytes` frames.
    pub fn at_rate(gbps: f64, frame_bytes: u64) -> CbrArrivals {
        let ns_per_frame = (frame_bytes * 8) as f64 / gbps;
        CbrArrivals::new(Dur::from_ns_f64(ns_per_frame))
    }

    /// Returns the next arrival instant.
    pub fn next_arrival(&mut self) -> Time {
        self.next += self.interval;
        self.next
    }
}

/// An on/off (bursty, "game-like") source: alternating exponentially
/// distributed on-periods (CBR packets) and off-periods (silence).
#[derive(Clone, Debug)]
pub struct OnOffSource {
    rng: DetRng,
    packet_gap: Dur,
    mean_on_ns: f64,
    mean_off_ns: f64,
    burst_until: Time,
    next: Time,
}

impl OnOffSource {
    /// Creates a source sending a packet every `packet_gap` during bursts
    /// of mean length `mean_on`, separated by silences of mean `mean_off`.
    pub fn new(packet_gap: Dur, mean_on: Dur, mean_off: Dur, rng: DetRng) -> OnOffSource {
        OnOffSource {
            rng,
            packet_gap,
            mean_on_ns: mean_on.as_ns_f64(),
            mean_off_ns: mean_off.as_ns_f64(),
            burst_until: Time::ZERO,
            next: Time::ZERO,
        }
    }

    /// Returns the next packet instant.
    pub fn next_arrival(&mut self) -> Time {
        if self.next >= self.burst_until {
            // Start a new burst after an off period.
            let off = self.rng.exponential(self.mean_off_ns);
            let on = self.rng.exponential(self.mean_on_ns);
            self.next += Dur::from_ns_f64(off);
            self.burst_until = self.next + Dur::from_ns_f64(on);
        }
        let t = self.next;
        self.next += self.packet_gap;
        t
    }
}

/// The classic IMIX packet-size mix (7:4:1 of 64/576/1500-byte frames).
#[derive(Clone, Debug)]
pub struct Imix {
    rng: DetRng,
}

impl Imix {
    /// Creates an IMIX sampler.
    pub fn new(rng: DetRng) -> Imix {
        Imix { rng }
    }

    /// Samples a frame size in bytes.
    pub fn sample(&mut self) -> usize {
        match self.rng.range_u64(0, 12) {
            0..=6 => 64,
            7..=10 => 576,
            _ => 1500,
        }
    }

    /// The expected mean size of the mix.
    pub fn mean() -> f64 {
        (7.0 * 64.0 + 4.0 * 576.0 + 1500.0) / 12.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_converges() {
        let mut p = PoissonArrivals::new(1_000_000.0, DetRng::seed_from_u64(1));
        let n = 100_000;
        let mut last = Time::ZERO;
        for _ in 0..n {
            last = p.next_arrival();
        }
        // n arrivals at 1 Mpps should take ~n microseconds.
        let secs = last.as_secs_f64();
        let expect = n as f64 / 1e6;
        assert!((secs - expect).abs() / expect < 0.02, "took {secs}s");
    }

    #[test]
    fn poisson_is_monotone() {
        let mut p = PoissonArrivals::new(100.0, DetRng::seed_from_u64(2));
        let mut last = Time::ZERO;
        for _ in 0..1000 {
            let t = p.next_arrival();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn cbr_is_exact() {
        let mut c = CbrArrivals::new(Dur::from_ns(100));
        assert_eq!(c.next_arrival(), Time::from_ns(100));
        assert_eq!(c.next_arrival(), Time::from_ns(200));
    }

    #[test]
    fn cbr_at_line_rate() {
        // 1500B at 100 Gbps = 120 ns per frame (payload bits only).
        let mut c = CbrArrivals::at_rate(100.0, 1500);
        assert_eq!(c.next_arrival(), Time::from_ns(120));
    }

    #[test]
    fn onoff_has_bursts_and_gaps() {
        let mut src = OnOffSource::new(
            Dur::from_us(1),
            Dur::from_ms(1),
            Dur::from_ms(5),
            DetRng::seed_from_u64(3),
        );
        let times: Vec<Time> = (0..10_000).map(|_| src.next_arrival()).collect();
        // Gaps bimodal: mostly 1us (in-burst), some much larger.
        let big_gaps = times
            .windows(2)
            .filter(|w| w[1] - w[0] > Dur::from_ms(1))
            .count();
        assert!(big_gaps > 3, "expected several off periods, got {big_gaps}");
        // Still monotone.
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn imix_mean_and_support() {
        let mut imix = Imix::new(DetRng::seed_from_u64(4));
        let n = 50_000;
        let mut sum = 0usize;
        for _ in 0..n {
            let s = imix.sample();
            assert!([64, 576, 1500].contains(&s));
            sum += s;
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - Imix::mean()).abs() / Imix::mean() < 0.05,
            "mean {mean}"
        );
    }
}
