//! Workload generators and scenario harnesses.
//!
//! Real applications (Postgres, MySQL, SSH game sessions) are replaced by
//! synthetic traffic with the properties the paper's scenarios depend on:
//! per-process flow ownership, heavy-tailed sizes, bursty "game" traffic,
//! and one misbehaving ARP flooder. See DESIGN.md §2 for the substitution
//! rationale.

pub mod generators;
pub mod scenarios;

pub use generators::{CbrArrivals, Imix, OnOffSource, PoissonArrivals};
pub use scenarios::{AliceTestbed, TenantApp, BOB, CHARLIE};
