//! The §2 testbed: Alice's server with Bob's and Charlie's applications.
//!
//! One builder assembles the exact cast of the paper's four management
//! scenarios: Bob runs Postgres on port 5432, Charlie runs MySQL on
//! 3306, both occasionally play an online game over changing ports, and
//! one buggy application floods ARP.

use std::net::Ipv4Addr;

use nicsim::ConnId;
use norman::{Host, HostConfig};
use oskernel::{Pid, Uid};
use pkt::{IpProto, Mac, Packet, PacketBuilder};

/// Bob's uid.
pub const BOB: Uid = Uid(1001);
/// Charlie's uid.
pub const CHARLIE: Uid = Uid(1002);

/// One tenant application with an open connection.
#[derive(Clone, Debug)]
pub struct TenantApp {
    /// The owning user.
    pub uid: Uid,
    /// The process.
    pub pid: Pid,
    /// Command name.
    pub comm: String,
    /// Local port.
    pub port: u16,
    /// The fast-path connection.
    pub conn: ConnId,
}

/// Alice's server, populated per §2.
pub struct AliceTestbed {
    /// The host.
    pub host: Host,
    /// Bob's Postgres (port 5432).
    pub postgres: TenantApp,
    /// Charlie's MySQL (port 3306).
    pub mysql: TenantApp,
    /// Bob's game client (ephemeral port).
    pub bob_game: TenantApp,
    /// Charlie's game client (ephemeral port).
    pub charlie_game: TenantApp,
    /// The buggy ARP flooder (Bob's, naturally).
    pub flooder_pid: Pid,
    /// The remote peer's address.
    pub peer_ip: Ipv4Addr,
    /// The remote peer's MAC.
    pub peer_mac: Mac,
}

impl AliceTestbed {
    /// Builds the testbed on a default host configuration.
    pub fn new() -> AliceTestbed {
        AliceTestbed::with_config(HostConfig::default())
    }

    /// Builds the testbed on a custom host configuration.
    pub fn with_config(cfg: HostConfig) -> AliceTestbed {
        let peer_ip = Ipv4Addr::new(10, 0, 0, 2);
        let peer_mac = Mac::local(9);
        let mut host = Host::new(cfg);

        let app = |host: &mut Host, uid: Uid, user: &str, comm: &str, port: u16, notify: bool| {
            let pid = host.spawn(uid, user, comm);
            let conn = host
                .connect(pid, IpProto::UDP, port, peer_ip, 9000 + port, notify)
                .expect("testbed connection");
            TenantApp {
                uid,
                pid,
                comm: comm.to_string(),
                port,
                conn,
            }
        };

        let postgres = app(&mut host, BOB, "bob", "postgres", 5432, true);
        let mysql = app(&mut host, CHARLIE, "charlie", "mysqld", 3306, true);
        let bob_game = app(&mut host, BOB, "bob", "game", 42_001, false);
        let charlie_game = app(&mut host, CHARLIE, "charlie", "game", 42_002, false);
        let flooder_pid = host.spawn(BOB, "bob", "arp-flooder");

        AliceTestbed {
            host,
            postgres,
            mysql,
            bob_game,
            charlie_game,
            flooder_pid,
            peer_ip,
            peer_mac,
        }
    }

    /// Builds a frame arriving from the peer to `app`, directly into a
    /// slot of the host's arena — no scratch payload `Vec`, no heap
    /// frame (the zero-length-payload form writes zeroes in place).
    pub fn inbound(&self, app: &TenantApp, payload_len: usize) -> Packet {
        PacketBuilder::new()
            .ether(self.peer_mac, self.host.cfg.mac)
            .ipv4(self.peer_ip, self.host.cfg.ip)
            .udp_zeroes(9000 + app.port, app.port, payload_len)
            .build_in(self.host.arena())
    }

    /// Builds a frame for `app` to transmit, arena-backed as
    /// [`AliceTestbed::inbound`] is.
    pub fn outbound(&self, app: &TenantApp, payload_len: usize) -> Packet {
        PacketBuilder::new()
            .ether(self.host.cfg.mac, self.peer_mac)
            .ipv4(self.host.cfg.ip, self.peer_ip)
            .udp_zeroes(app.port, 9000 + app.port, payload_len)
            .build_in(self.host.arena())
    }

    /// Builds one frame of the buggy app's ARP flood. In a kernel-bypass
    /// world the flooder generates its own ARP traffic (§2: "each
    /// application is responsible for generating their own ARP traffic"),
    /// with a source MAC nobody recognizes.
    pub fn arp_flood_frame(&self, seq: u32) -> Packet {
        PacketBuilder::arp_request(
            Mac::local(0xBAD),
            self.host.cfg.ip,
            Ipv4Addr::new(10, 0, (seq >> 8) as u8, seq as u8),
        )
    }

    /// Sends the ARP flood through the flooder's NIC path (egress), so
    /// the KOPI tap sees and attributes it. Returns how many frames were
    /// offered.
    ///
    /// The flooder has no flow-table connection (ARP is not TCP/UDP), so
    /// on a real Norman host its raw frames would reach the NIC through a
    /// raw-frame ring bound to its pid; we model that binding by opening
    /// a raw connection for the flooder on first use.
    pub fn run_arp_flood(&mut self, frames: u32, now: sim::Time) -> u32 {
        // Bind a raw connection so the NIC can attribute the flooder's
        // frames (Norman binds every TX ring to a pid at setup).
        let conn = self
            .host
            .connect(
                self.flooder_pid,
                IpProto::UDP,
                61_000,
                self.peer_ip,
                61_000,
                false,
            )
            .expect("flooder raw binding");
        for seq in 0..frames {
            let frame = self.arp_flood_frame(seq);
            let _ = self.host.nic.tx_enqueue(conn, &frame, now);
        }
        frames
    }
}

impl Default for AliceTestbed {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use norman::host::DeliveryOutcome;
    use sim::Time;

    #[test]
    fn testbed_builds_the_cast() {
        let tb = AliceTestbed::new();
        assert_eq!(tb.postgres.uid, BOB);
        assert_eq!(tb.mysql.uid, CHARLIE);
        assert_eq!(tb.host.num_connections(), 4);
        // Distinct processes.
        let pids = [
            tb.postgres.pid,
            tb.mysql.pid,
            tb.bob_game.pid,
            tb.charlie_game.pid,
            tb.flooder_pid,
        ];
        let mut unique = pids.to_vec();
        unique.dedup();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn inbound_frames_reach_their_apps() {
        let mut tb = AliceTestbed::new();
        let pkt = tb.inbound(&tb.postgres.clone(), 200);
        let report = tb.host.deliver_from_wire(&pkt, Time::ZERO);
        assert_eq!(report.outcome, DeliveryOutcome::FastPath(tb.postgres.conn));
    }

    #[test]
    fn outbound_frames_parse_with_app_ports() {
        let tb = AliceTestbed::new();
        let pkt = tb.outbound(&tb.mysql, 100);
        let parsed = pkt.parse().unwrap();
        assert_eq!(parsed.ports(), Some((3306, 9000 + 3306)));
    }

    #[test]
    fn arp_flood_is_attributable_through_sniffer() {
        let mut tb = AliceTestbed::new();
        tb.host
            .update_policy(Time::ZERO, |p| {
                p.sniffer = Some(nicsim::SnifferFilter {
                    arp_only: true,
                    ..nicsim::SnifferFilter::all()
                })
            })
            .unwrap();
        tb.run_arp_flood(25, Time::ZERO);
        let entries = tb.host.nic.sniffer.entries();
        assert_eq!(entries.len(), 25);
        assert!(entries
            .iter()
            .all(|e| e.comm.as_deref() == Some("arp-flooder")));
    }
}
