//! The NIC's bounded on-board memory.
//!
//! "SmartNICs inherently have limited memory relative to the amount of
//! available on-host memory" (§5). Every stateful NIC feature allocates
//! from this budget, and allocation failure is an expected, recoverable
//! outcome that the control plane answers by refusing a connection or
//! routing traffic through the software slow path.

use std::fmt;

/// What an allocation is for (reported by `knetstat` and the E3
/// experiment).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SramCategory {
    /// Flow-table entries (per connection).
    FlowTable,
    /// Per-connection DMA ring context (descriptors cached on-NIC).
    RingContext,
    /// Overlay instruction store.
    Program,
    /// Overlay map state.
    Maps,
    /// Packet buffering between pipeline stages.
    Buffers,
    /// NAT translation entries.
    Nat,
}

impl SramCategory {
    /// All categories, for reporting.
    pub const ALL: [SramCategory; 6] = [
        SramCategory::FlowTable,
        SramCategory::RingContext,
        SramCategory::Program,
        SramCategory::Maps,
        SramCategory::Buffers,
        SramCategory::Nat,
    ];
}

impl fmt::Display for SramCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SramCategory::FlowTable => "flow-table",
            SramCategory::RingContext => "ring-context",
            SramCategory::Program => "program",
            SramCategory::Maps => "maps",
            SramCategory::Buffers => "buffers",
            SramCategory::Nat => "nat",
        };
        f.write_str(s)
    }
}

/// Allocation failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SramError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub free: u64,
    /// The requesting category.
    pub category: SramCategory,
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NIC SRAM exhausted: {} requested {} bytes, {} free",
            self.category, self.requested, self.free
        )
    }
}

impl std::error::Error for SramError {}

/// A byte-budget allocator with per-category accounting.
#[derive(Clone, Debug)]
pub struct Sram {
    capacity: u64,
    used: u64,
    by_category: [u64; 6],
    failures: u64,
}

fn cat_index(c: SramCategory) -> usize {
    match c {
        SramCategory::FlowTable => 0,
        SramCategory::RingContext => 1,
        SramCategory::Program => 2,
        SramCategory::Maps => 3,
        SramCategory::Buffers => 4,
        SramCategory::Nat => 5,
    }
}

impl Sram {
    /// Creates an allocator with `capacity` bytes.
    pub fn new(capacity: u64) -> Sram {
        Sram {
            capacity,
            used: 0,
            by_category: [0; 6],
            failures: 0,
        }
    }

    /// A 16 MiB part, typical of mid-range FPGA NICs' on-chip SRAM.
    pub fn typical() -> Sram {
        Sram::new(16 << 20)
    }

    /// Returns total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Returns bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Returns bytes free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Returns bytes allocated to `category`.
    pub fn used_by(&self, category: SramCategory) -> u64 {
        self.by_category[cat_index(category)]
    }

    /// Returns the number of failed allocations (exhaustion events).
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Allocates `bytes` for `category`.
    pub fn alloc(&mut self, category: SramCategory, bytes: u64) -> Result<(), SramError> {
        if bytes > self.free() {
            self.failures += 1;
            return Err(SramError {
                requested: bytes,
                free: self.free(),
                category,
            });
        }
        self.used += bytes;
        self.by_category[cat_index(category)] += bytes;
        Ok(())
    }

    /// Frees `bytes` from `category`.
    ///
    /// # Panics
    ///
    /// Panics if more is freed than the category holds (an accounting bug,
    /// never a data-dependent condition).
    pub fn release(&mut self, category: SramCategory, bytes: u64) {
        let idx = cat_index(category);
        assert!(
            self.by_category[idx] >= bytes,
            "over-free of {category}: freeing {bytes}, holds {}",
            self.by_category[idx]
        );
        self.by_category[idx] -= bytes;
        self.used -= bytes;
    }

    /// Returns a (category, bytes) usage report.
    pub fn report(&self) -> Vec<(SramCategory, u64)> {
        SramCategory::ALL
            .iter()
            .map(|&c| (c, self.used_by(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release_round_trip() {
        let mut s = Sram::new(1000);
        s.alloc(SramCategory::FlowTable, 400).unwrap();
        s.alloc(SramCategory::Program, 100).unwrap();
        assert_eq!(s.used(), 500);
        assert_eq!(s.free(), 500);
        assert_eq!(s.used_by(SramCategory::FlowTable), 400);
        s.release(SramCategory::FlowTable, 400);
        assert_eq!(s.used(), 100);
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut s = Sram::new(100);
        s.alloc(SramCategory::RingContext, 80).unwrap();
        let err = s.alloc(SramCategory::RingContext, 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.free, 20);
        assert_eq!(s.failures(), 1);
        // State unchanged by the failed allocation.
        assert_eq!(s.used(), 80);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut s = Sram::new(100);
        assert!(s.alloc(SramCategory::Buffers, 100).is_ok());
        assert_eq!(s.free(), 0);
    }

    #[test]
    #[should_panic(expected = "over-free")]
    fn over_free_is_a_bug() {
        let mut s = Sram::new(100);
        s.alloc(SramCategory::Maps, 10).unwrap();
        s.release(SramCategory::Maps, 20);
    }

    #[test]
    fn report_lists_all_categories() {
        let mut s = Sram::new(1000);
        s.alloc(SramCategory::Program, 64).unwrap();
        let report = s.report();
        assert_eq!(report.len(), 6);
        assert!(report.contains(&(SramCategory::Program, 64)));
        assert!(report.contains(&(SramCategory::Maps, 0)));
    }

    #[test]
    fn error_display() {
        let e = SramError {
            requested: 100,
            free: 10,
            category: SramCategory::FlowTable,
        };
        let s = e.to_string();
        assert!(s.contains("flow-table"));
        assert!(s.contains("100"));
    }
}
