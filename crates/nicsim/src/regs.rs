//! The SmartNIC MMIO register file.
//!
//! Two regions model the §3 isolation property:
//!
//! * **App region** — per-connection ring head/tail registers and
//!   doorbells. The kernel *grants* an application access to exactly the
//!   registers of its own connections at connection setup.
//! * **Kernel region** — configuration command registers (program load,
//!   flow-table updates, sniffer control). Only privileged accesses may
//!   touch these; an application attempting to reconfigure the NIC gets a
//!   fault, not a policy bypass.

use std::collections::HashMap;
use std::fmt;

/// Which region a register lives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegRegion {
    /// Application-accessible (if granted).
    App,
    /// Kernel-only.
    Kernel,
}

/// A register access fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegError {
    /// Unprivileged access to a kernel register.
    PrivilegeViolation {
        /// The register address.
        addr: u64,
    },
    /// Access to an app register not granted to this principal.
    NotGranted {
        /// The register address.
        addr: u64,
        /// The accessing principal (pid).
        pid: u32,
    },
    /// The register does not exist.
    NoSuchRegister {
        /// The register address.
        addr: u64,
    },
}

impl fmt::Display for RegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegError::PrivilegeViolation { addr } => {
                write!(f, "unprivileged access to kernel register {addr:#x}")
            }
            RegError::NotGranted { addr, pid } => {
                write!(f, "register {addr:#x} not granted to pid {pid}")
            }
            RegError::NoSuchRegister { addr } => write!(f, "no register at {addr:#x}"),
        }
    }
}

impl std::error::Error for RegError {}

struct Register {
    region: RegRegion,
    value: u64,
    /// For app registers: the pid allowed to touch it.
    owner_pid: Option<u32>,
}

/// The register file.
#[derive(Default)]
pub struct RegFile {
    regs: HashMap<u64, Register>,
    violations: u64,
}

impl RegFile {
    /// Creates an empty register file.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Defines a kernel-region register.
    pub fn define_kernel(&mut self, addr: u64) {
        self.regs.insert(
            addr,
            Register {
                region: RegRegion::Kernel,
                value: 0,
                owner_pid: None,
            },
        );
    }

    /// Defines an app-region register owned by `pid` (the grant the
    /// kernel issues at connection setup).
    ///
    /// # Panics
    ///
    /// Panics if `addr` already holds a kernel register: an app grant
    /// silently replacing kernel configuration state is an MMIO layout
    /// bug, never a legal grant.
    pub fn define_app(&mut self, addr: u64, pid: u32) {
        assert!(
            !self
                .regs
                .get(&addr)
                .is_some_and(|r| r.region == RegRegion::Kernel),
            "app register grant at {addr:#x} would clobber a kernel register"
        );
        self.regs.insert(
            addr,
            Register {
                region: RegRegion::App,
                value: 0,
                owner_pid: Some(pid),
            },
        );
    }

    /// Removes a register (connection teardown).
    pub fn remove(&mut self, addr: u64) {
        self.regs.remove(&addr);
    }

    /// Returns the number of rejected accesses.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    fn check(&mut self, addr: u64, pid: Option<u32>) -> Result<(), RegError> {
        let Some(reg) = self.regs.get(&addr) else {
            self.violations += 1;
            return Err(RegError::NoSuchRegister { addr });
        };
        match (reg.region, pid) {
            // Privileged access (kernel): anything goes.
            (_, None) => Ok(()),
            (RegRegion::Kernel, Some(_)) => {
                self.violations += 1;
                Err(RegError::PrivilegeViolation { addr })
            }
            (RegRegion::App, Some(p)) => {
                if reg.owner_pid == Some(p) {
                    Ok(())
                } else {
                    self.violations += 1;
                    Err(RegError::NotGranted { addr, pid: p })
                }
            }
        }
    }

    /// Writes a register. `pid = None` denotes a privileged (kernel)
    /// access.
    pub fn write(&mut self, addr: u64, value: u64, pid: Option<u32>) -> Result<(), RegError> {
        self.check(addr, pid)?;
        self.regs.get_mut(&addr).expect("checked").value = value;
        Ok(())
    }

    /// Reads a register. `pid = None` denotes a privileged access.
    pub fn read(&mut self, addr: u64, pid: Option<u32>) -> Result<u64, RegError> {
        self.check(addr, pid)?;
        Ok(self.regs[&addr].value)
    }

    /// Non-mutating privileged read for audits: no access check, no
    /// violation accounting, `None` when the register does not exist.
    pub fn peek(&self, addr: u64) -> Option<u64> {
        self.regs.get(&addr).map(|r| r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_registers_reject_apps() {
        let mut rf = RegFile::new();
        rf.define_kernel(0x1000);
        assert_eq!(
            rf.write(0x1000, 1, Some(42)),
            Err(RegError::PrivilegeViolation { addr: 0x1000 })
        );
        assert_eq!(rf.violations(), 1);
        // The kernel itself may write.
        assert!(rf.write(0x1000, 7, None).is_ok());
        assert_eq!(rf.read(0x1000, None), Ok(7));
    }

    #[test]
    fn app_registers_enforce_grants() {
        let mut rf = RegFile::new();
        rf.define_app(0x2000, 10);
        assert!(rf.write(0x2000, 5, Some(10)).is_ok());
        assert_eq!(rf.read(0x2000, Some(10)), Ok(5));
        // Another process cannot touch it.
        assert_eq!(
            rf.read(0x2000, Some(11)),
            Err(RegError::NotGranted {
                addr: 0x2000,
                pid: 11
            })
        );
        // The kernel always can.
        assert_eq!(rf.read(0x2000, None), Ok(5));
    }

    #[test]
    fn unknown_register_faults() {
        let mut rf = RegFile::new();
        assert_eq!(
            rf.read(0x9999, None),
            Err(RegError::NoSuchRegister { addr: 0x9999 })
        );
    }

    #[test]
    fn remove_revokes_access() {
        let mut rf = RegFile::new();
        rf.define_app(0x2000, 10);
        rf.remove(0x2000);
        assert!(matches!(
            rf.write(0x2000, 1, Some(10)),
            Err(RegError::NoSuchRegister { .. })
        ));
    }

    #[test]
    fn peek_never_faults_or_counts() {
        let mut rf = RegFile::new();
        rf.define_kernel(0x1000);
        rf.write(0x1000, 9, None).unwrap();
        assert_eq!(rf.peek(0x1000), Some(9));
        assert_eq!(rf.peek(0x9999), None);
        assert_eq!(rf.violations(), 0);
    }

    #[test]
    #[should_panic(expected = "clobber a kernel register")]
    fn app_grant_cannot_overlay_kernel_register() {
        // Regression: connection 65536's doorbells used to land exactly
        // on the kernel config region and silently zero it.
        let mut rf = RegFile::new();
        rf.define_kernel(0x20_0000);
        rf.define_app(0x20_0000, 10);
    }

    #[test]
    fn error_display() {
        assert!(RegError::PrivilegeViolation { addr: 0x10 }
            .to_string()
            .contains("0x10"));
        assert!(RegError::NotGranted { addr: 0x20, pid: 3 }
            .to_string()
            .contains("pid 3"));
    }
}
