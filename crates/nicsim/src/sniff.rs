//! The dataplane capture tap (`ksniff`, the tcpdump equivalent).
//!
//! The §2 debugging scenario: Alice sees an ARP flood and must trace it
//! to a *process*. Application-level capture requires inspecting every
//! application one by one; hypervisor/network capture sees packets but
//! not processes. The KOPI tap sits on the NIC where every frame passes
//! (global view) and reads the flow table's process binding (process
//! view), so each captured frame carries (uid, pid, comm).

use std::fmt;

use pkt::{FiveTuple, FrameMeta, IpProto, Packet};
use sim::Time;

/// Capture direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Received from the wire.
    Rx,
    /// Transmitted by the host.
    Tx,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Rx => write!(f, "RX"),
            Direction::Tx => write!(f, "TX"),
        }
    }
}

/// A BPF-expression-like capture filter (all set fields must match).
#[derive(Clone, Copy, Debug, Default)]
pub struct SnifferFilter {
    /// Only this direction.
    pub direction: Option<Direction>,
    /// Only ARP frames.
    pub arp_only: bool,
    /// Only this protocol.
    pub proto: Option<IpProto>,
    /// Only frames touching this port (src or dst).
    pub port: Option<u16>,
    /// Only frames from this uid (requires process attribution).
    pub uid: Option<u32>,
}

impl SnifferFilter {
    /// Matches everything.
    pub fn all() -> SnifferFilter {
        SnifferFilter::default()
    }

    fn matches(&self, entry: &CaptureEntry) -> bool {
        if let Some(d) = self.direction {
            if entry.direction != d {
                return false;
            }
        }
        if self.arp_only && !entry.is_arp {
            return false;
        }
        if let Some(p) = self.proto {
            if entry.tuple.map(|t| t.proto) != Some(p) {
                return false;
            }
        }
        if let Some(port) = self.port {
            let hit = entry
                .tuple
                .is_some_and(|t| t.src_port == port || t.dst_port == port);
            if !hit {
                return false;
            }
        }
        if let Some(uid) = self.uid {
            if entry.uid != Some(uid) {
                return false;
            }
        }
        true
    }
}

/// One captured frame with attribution.
#[derive(Clone, Debug)]
pub struct CaptureEntry {
    /// Capture instant.
    pub at: Time,
    /// Direction.
    pub direction: Direction,
    /// Frame length.
    pub len: usize,
    /// Flow tuple if TCP/UDP.
    pub tuple: Option<FiveTuple>,
    /// Whether the frame is ARP.
    pub is_arp: bool,
    /// tcpdump-style one-line summary.
    pub summary: String,
    /// Owning uid, when the flow table attributes the frame.
    pub uid: Option<u32>,
    /// Owning pid.
    pub pid: Option<u32>,
    /// Owning command name.
    pub comm: Option<String>,
}

impl fmt::Display for CaptureEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {} {}",
            self.at.to_string(),
            self.direction,
            self.summary
        )?;
        match (&self.comm, self.pid, self.uid) {
            (Some(comm), Some(pid), Some(uid)) => {
                write!(f, "  ({comm}[{pid}] uid={uid})")
            }
            _ => write!(f, "  (unattributed)"),
        }
    }
}

/// The NIC capture tap: disabled by default (zero fast-path cost), a
/// bounded ring when enabled.
pub struct Sniffer {
    filter: Option<SnifferFilter>,
    capacity: usize,
    entries: Vec<CaptureEntry>,
    captured: u64,
    dropped: u64,
}

impl Sniffer {
    /// Creates a disabled sniffer with a capture buffer of `capacity`
    /// entries.
    pub fn new(capacity: usize) -> Sniffer {
        Sniffer {
            filter: None,
            capacity,
            entries: Vec::new(),
            captured: 0,
            dropped: 0,
        }
    }

    /// Enables capture with `filter` (kernel-only operation; enforced by
    /// the caller via the register file).
    pub fn enable(&mut self, filter: SnifferFilter) {
        self.filter = Some(filter);
    }

    /// Disables capture.
    pub fn disable(&mut self) {
        self.filter = None;
    }

    /// Returns whether the tap is active.
    pub fn is_enabled(&self) -> bool {
        self.filter.is_some()
    }

    /// Offers a frame to the tap, reusing the parse-once descriptor the
    /// parser stage already computed — the tap never re-parses.
    ///
    /// `attribution` is the flow-table binding, when one exists.
    pub fn tap(
        &mut self,
        at: Time,
        direction: Direction,
        packet: &Packet,
        meta: &FrameMeta,
        attribution: Option<(u32, u32, &str)>,
    ) {
        if self.filter.is_none() {
            return;
        }
        self.record(
            at,
            direction,
            packet.len(),
            meta.tuple,
            meta.is_arp(),
            meta.summarize(packet.bytes()),
            attribution,
        );
    }

    /// Offers a frame the parser stage rejected (no descriptor exists).
    pub fn tap_unparsed(
        &mut self,
        at: Time,
        direction: Direction,
        packet: &Packet,
        err: &pkt::PktError,
        attribution: Option<(u32, u32, &str)>,
    ) {
        if self.filter.is_none() {
            return;
        }
        self.record(
            at,
            direction,
            packet.len(),
            None,
            false,
            format!("unparsed ({err})"),
            attribution,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        at: Time,
        direction: Direction,
        len: usize,
        tuple: Option<FiveTuple>,
        is_arp: bool,
        summary: String,
        attribution: Option<(u32, u32, &str)>,
    ) {
        let Some(filter) = self.filter else {
            return;
        };
        let entry = CaptureEntry {
            at,
            direction,
            len,
            tuple,
            is_arp,
            summary,
            uid: attribution.map(|(uid, _, _)| uid),
            pid: attribution.map(|(_, pid, _)| pid),
            comm: attribution.map(|(_, _, c)| c.to_string()),
        };
        if !filter.matches(&entry) {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.captured += 1;
        self.entries.push(entry);
    }

    /// Returns captured entries.
    pub fn entries(&self) -> &[CaptureEntry] {
        &self.entries
    }

    /// Drains captured entries (the control plane reading the capture
    /// ring).
    pub fn drain(&mut self) -> Vec<CaptureEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Returns (captured, dropped-due-to-full-buffer).
    pub fn counters(&self) -> (u64, u64) {
        (self.captured, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::{Mac, PacketBuilder};

    fn udp_pkt(sport: u16, dport: u16) -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .udp(sport, dport, b"x")
            .build()
    }

    fn arp_pkt() -> Packet {
        PacketBuilder::arp_request(
            Mac::local(3),
            "10.0.0.3".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
        )
    }

    /// Taps a built packet, supplying its build-time descriptor the way
    /// the NIC parser stage would.
    fn tap_pkt(
        s: &mut Sniffer,
        at: Time,
        dir: Direction,
        p: &Packet,
        attr: Option<(u32, u32, &str)>,
    ) {
        let meta = *p.meta().expect("built packets carry meta");
        s.tap(at, dir, p, &meta, attr);
    }

    #[test]
    fn disabled_tap_captures_nothing() {
        let mut s = Sniffer::new(16);
        tap_pkt(&mut s, Time::ZERO, Direction::Rx, &udp_pkt(1, 2), None);
        assert!(s.entries().is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn capture_all_with_attribution() {
        let mut s = Sniffer::new(16);
        s.enable(SnifferFilter::all());
        tap_pkt(
            &mut s,
            Time::from_us(5),
            Direction::Tx,
            &udp_pkt(5432, 9000),
            Some((1001, 314, "postgres")),
        );
        let e = &s.entries()[0];
        assert_eq!(e.uid, Some(1001));
        assert_eq!(e.comm.as_deref(), Some("postgres"));
        let line = e.to_string();
        assert!(line.contains("postgres[314]"), "{line}");
        assert!(line.contains("TX"));
    }

    #[test]
    fn arp_only_filter() {
        let mut s = Sniffer::new(16);
        s.enable(SnifferFilter {
            arp_only: true,
            ..SnifferFilter::all()
        });
        tap_pkt(&mut s, Time::ZERO, Direction::Tx, &udp_pkt(1, 2), None);
        tap_pkt(
            &mut s,
            Time::ZERO,
            Direction::Tx,
            &arp_pkt(),
            Some((0, 999, "flooder")),
        );
        assert_eq!(s.entries().len(), 1);
        assert!(s.entries()[0].is_arp);
        assert_eq!(s.entries()[0].pid, Some(999));
    }

    #[test]
    fn port_filter_matches_either_direction_port() {
        let mut s = Sniffer::new(16);
        s.enable(SnifferFilter {
            port: Some(5432),
            ..SnifferFilter::all()
        });
        tap_pkt(
            &mut s,
            Time::ZERO,
            Direction::Rx,
            &udp_pkt(9000, 5432),
            None,
        );
        tap_pkt(
            &mut s,
            Time::ZERO,
            Direction::Tx,
            &udp_pkt(5432, 9000),
            None,
        );
        tap_pkt(&mut s, Time::ZERO, Direction::Rx, &udp_pkt(1, 2), None);
        assert_eq!(s.entries().len(), 2);
    }

    #[test]
    fn uid_filter_requires_attribution() {
        let mut s = Sniffer::new(16);
        s.enable(SnifferFilter {
            uid: Some(1001),
            ..SnifferFilter::all()
        });
        tap_pkt(
            &mut s,
            Time::ZERO,
            Direction::Tx,
            &udp_pkt(1, 2),
            Some((1001, 3, "app")),
        );
        tap_pkt(
            &mut s,
            Time::ZERO,
            Direction::Tx,
            &udp_pkt(1, 2),
            Some((1002, 4, "other")),
        );
        tap_pkt(&mut s, Time::ZERO, Direction::Tx, &udp_pkt(1, 2), None);
        assert_eq!(s.entries().len(), 1);
        assert_eq!(s.entries()[0].uid, Some(1001));
    }

    #[test]
    fn buffer_bounds_respected() {
        let mut s = Sniffer::new(2);
        s.enable(SnifferFilter::all());
        for _ in 0..5 {
            tap_pkt(&mut s, Time::ZERO, Direction::Rx, &udp_pkt(1, 2), None);
        }
        assert_eq!(s.entries().len(), 2);
        assert_eq!(s.counters(), (2, 3));
    }

    #[test]
    fn drain_empties_buffer() {
        let mut s = Sniffer::new(4);
        s.enable(SnifferFilter::all());
        tap_pkt(&mut s, Time::ZERO, Direction::Rx, &udp_pkt(1, 2), None);
        let drained = s.drain();
        assert_eq!(drained.len(), 1);
        assert!(s.entries().is_empty());
    }

    #[test]
    fn direction_filter() {
        let mut s = Sniffer::new(16);
        s.enable(SnifferFilter {
            direction: Some(Direction::Rx),
            ..SnifferFilter::all()
        });
        tap_pkt(&mut s, Time::ZERO, Direction::Rx, &udp_pkt(1, 2), None);
        tap_pkt(&mut s, Time::ZERO, Direction::Tx, &udp_pkt(1, 2), None);
        assert_eq!(s.entries().len(), 1);
    }
}
