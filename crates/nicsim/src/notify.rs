//! Per-process notification queues.
//!
//! §4.3: "the NIC adds notification to a shared notification queue when
//! packets are added to a queue (allowing blocking receive calls) or when
//! a queue is drained (allowing blocking for sends). A process's
//! notification queue is accessible to both the process and the kernel."
//!
//! The kernel control plane monitors these queues to wake blocked
//! threads; for low-activity queues it can enable *interrupts* so it does
//! not burn a core polling (the paper's efficiency argument for blocking
//! I/O support).

use std::collections::VecDeque;

use sim::Time;

use crate::flowtable::ConnId;

/// What happened on a connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NotifyKind {
    /// Data arrived in the RX ring.
    RxReady,
    /// The TX ring drained below its threshold (space available).
    TxSpace,
}

/// One notification entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Notification {
    /// The connection.
    pub conn: ConnId,
    /// The event kind.
    pub kind: NotifyKind,
    /// When the NIC posted it.
    pub at: Time,
}

/// A bounded per-process notification queue with duplicate coalescing.
#[derive(Clone, Debug)]
pub struct NotifyQueue {
    entries: VecDeque<Notification>,
    capacity: usize,
    /// Whether the kernel asked for an interrupt on next post (armed for
    /// low-activity queues; cleared on delivery).
    interrupts_armed: bool,
    posted: u64,
    coalesced: u64,
    overflows: u64,
    interrupts_fired: u64,
}

impl NotifyQueue {
    /// Creates a queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> NotifyQueue {
        assert!(capacity > 0, "notification queue needs capacity");
        NotifyQueue {
            entries: VecDeque::new(),
            capacity,
            interrupts_armed: false,
            posted: 0,
            coalesced: 0,
            overflows: 0,
            interrupts_fired: 0,
        }
    }

    /// Arms interrupt delivery: the next successful post reports
    /// `fired = true` and disarms.
    pub fn arm_interrupt(&mut self) {
        self.interrupts_armed = true;
    }

    /// Returns whether interrupts are currently armed.
    pub fn interrupts_armed(&self) -> bool {
        self.interrupts_armed
    }

    /// Posts a notification. Returns `true` if an interrupt fired.
    ///
    /// Consecutive duplicate (conn, kind) entries coalesce: a reader that
    /// hasn't consumed the previous entry learns nothing from a second
    /// identical one, and coalescing keeps a hot connection from flooding
    /// the queue.
    pub fn post(&mut self, n: Notification) -> bool {
        self.posted += 1;
        let dup = self
            .entries
            .back()
            .is_some_and(|last| last.conn == n.conn && last.kind == n.kind);
        if dup {
            self.coalesced += 1;
        } else if self.entries.len() >= self.capacity {
            // Overflow: drop the new entry but remember that we did — the
            // kernel falls back to a full scan on overflow.
            self.overflows += 1;
        } else {
            self.entries.push_back(n);
        }
        if self.interrupts_armed {
            self.interrupts_armed = false;
            self.interrupts_fired += 1;
            true
        } else {
            false
        }
    }

    /// Consumes the oldest notification.
    pub fn pop(&mut self) -> Option<Notification> {
        self.entries.pop_front()
    }

    /// Returns the number of pending notifications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no notifications are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns (posted, coalesced, overflows, interrupts_fired).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.posted,
            self.coalesced,
            self.overflows,
            self.interrupts_fired,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(conn: u64, kind: NotifyKind) -> Notification {
        Notification {
            conn: ConnId(conn),
            kind,
            at: Time::ZERO,
        }
    }

    #[test]
    fn post_and_pop_fifo() {
        let mut q = NotifyQueue::new(8);
        q.post(n(1, NotifyKind::RxReady));
        q.post(n(2, NotifyKind::RxReady));
        assert_eq!(q.pop().unwrap().conn, ConnId(1));
        assert_eq!(q.pop().unwrap().conn, ConnId(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn consecutive_duplicates_coalesce() {
        let mut q = NotifyQueue::new(8);
        q.post(n(1, NotifyKind::RxReady));
        q.post(n(1, NotifyKind::RxReady));
        q.post(n(1, NotifyKind::RxReady));
        assert_eq!(q.len(), 1);
        assert_eq!(q.counters().1, 2);
        // A different kind on the same conn does not coalesce.
        q.post(n(1, NotifyKind::TxSpace));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_conns_do_not_coalesce() {
        let mut q = NotifyQueue::new(8);
        q.post(n(1, NotifyKind::RxReady));
        q.post(n(2, NotifyKind::RxReady));
        q.post(n(1, NotifyKind::RxReady));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn overflow_counts_and_drops() {
        let mut q = NotifyQueue::new(2);
        q.post(n(1, NotifyKind::RxReady));
        q.post(n(2, NotifyKind::RxReady));
        q.post(n(3, NotifyKind::RxReady));
        assert_eq!(q.len(), 2);
        assert_eq!(q.counters().2, 1);
    }

    #[test]
    fn interrupt_fires_once_per_arm() {
        let mut q = NotifyQueue::new(8);
        assert!(!q.post(n(1, NotifyKind::RxReady)));
        q.arm_interrupt();
        assert!(q.interrupts_armed());
        assert!(q.post(n(2, NotifyKind::RxReady)));
        // Disarmed after firing.
        assert!(!q.interrupts_armed());
        assert!(!q.post(n(3, NotifyKind::RxReady)));
        assert_eq!(q.counters().3, 1);
    }

    #[test]
    fn interrupt_fires_even_for_coalesced_post() {
        // A blocked reader must be woken even if the entry coalesced.
        let mut q = NotifyQueue::new(8);
        q.post(n(1, NotifyKind::RxReady));
        q.arm_interrupt();
        assert!(q.post(n(1, NotifyKind::RxReady)));
    }
}
