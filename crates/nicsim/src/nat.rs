//! On-NIC network address translation.
//!
//! §5 names NAT among "everything else the kernel does today" that KOPI
//! must offload. This module is a source-NAT (masquerade) engine as the
//! NIC would implement it: a bounded translation table in SRAM plus
//! RFC 1624 incremental header rewriting ([`pkt::mutate`]) at line rate.
//! Port exhaustion and SRAM exhaustion are both first-class outcomes —
//! NAT state is exactly the kind of per-flow NIC memory §5 worries
//! about.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use pkt::{mutate, Frame, IpProto, Packet};
use sim::Time;
use telemetry::{Stage, Telemetry, TraceEvent, TraceVerdict};

use crate::sram::{Sram, SramCategory, SramError};

/// SRAM bytes per translation entry (two hash slots + timestamps).
pub const NAT_ENTRY_BYTES: u64 = 64;

/// First external port the allocator hands out.
const PORT_LO: u16 = 32_768;

/// NAT failures.
#[derive(Debug)]
pub enum NatError {
    /// The frame is not rewritable TCP/UDP-over-IPv4.
    NotTranslatable,
    /// No inbound mapping exists for this (proto, port).
    NoMapping {
        /// The transport protocol.
        proto: IpProto,
        /// The untranslated external port.
        port: u16,
    },
    /// The external port pool is exhausted.
    PortsExhausted,
    /// A static rule would collide with an existing mapping on this
    /// (proto, external port).
    Conflict {
        /// The transport protocol.
        proto: IpProto,
        /// The contested external port.
        port: u16,
    },
    /// The NIC SRAM budget refused a new entry.
    Sram(SramError),
}

impl std::fmt::Display for NatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NatError::NotTranslatable => write!(f, "frame is not translatable TCP/UDP/IPv4"),
            NatError::NoMapping { proto, port } => {
                write!(f, "no NAT mapping for inbound {proto} port {port}")
            }
            NatError::PortsExhausted => write!(f, "NAT external port pool exhausted"),
            NatError::Conflict { proto, port } => {
                write!(f, "NAT mapping for {proto} port {port} already exists")
            }
            NatError::Sram(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NatError {}

impl From<SramError> for NatError {
    fn from(e: SramError) -> NatError {
        NatError::Sram(e)
    }
}

/// A source-NAT (masquerade) table for one external address.
pub struct NatTable {
    external_ip: Ipv4Addr,
    /// (internal ip, internal port, proto) → external port.
    outbound: HashMap<(Ipv4Addr, u16, IpProto), u16>,
    /// (proto, external port) → (internal ip, internal port).
    inbound: HashMap<(IpProto, u16), (Ipv4Addr, u16)>,
    /// Keys in `inbound` pinned by control-plane static rules (port
    /// forwards); never expired by dataplane aging.
    statics: HashMap<(IpProto, u16), (Ipv4Addr, u16)>,
    next_port: u16,
    translated_out: u64,
    translated_in: u64,
    misses: u64,
    tel: Telemetry,
}

impl NatTable {
    /// Creates a NAT table masquerading as `external_ip`.
    pub fn new(external_ip: Ipv4Addr) -> NatTable {
        NatTable {
            external_ip,
            outbound: HashMap::new(),
            inbound: HashMap::new(),
            statics: HashMap::new(),
            next_port: PORT_LO,
            translated_out: 0,
            translated_in: 0,
            misses: 0,
            tel: Telemetry::new(),
        }
    }

    /// Attaches a shared telemetry hub so translations appear in frame
    /// lifecycles (stage [`Stage::RxNat`]), with the NAT engine tagging
    /// untagged frames and downstream stages adopting the same id.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Emits the RxNat lifecycle event for a translated (or missed)
    /// frame.
    fn trace(&self, fid: u64, at: Time, verdict: TraceVerdict, frame: &Frame) {
        self.tel.emit(|| TraceEvent {
            frame_id: fid,
            at,
            stage: Stage::RxNat,
            verdict,
            tuple: frame.meta.tuple,
            len: frame.len() as u32,
            owner: None,
            generation: 0,
        });
    }

    /// Returns the external (masquerade) address.
    pub fn external_ip(&self) -> Ipv4Addr {
        self.external_ip
    }

    /// Returns the number of live mappings.
    pub fn len(&self) -> usize {
        self.inbound.len()
    }

    /// Returns `true` when no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.inbound.is_empty()
    }

    /// Returns (outbound translations, inbound translations, inbound
    /// misses).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.translated_out, self.translated_in, self.misses)
    }

    fn alloc_port(&mut self, proto: IpProto) -> Result<u16, NatError> {
        // Linear probe over the dynamic range; u16 wrap bounded by pool
        // size.
        for _ in 0..(u16::MAX - PORT_LO) {
            let candidate = self.next_port;
            self.next_port = if self.next_port == u16::MAX {
                PORT_LO
            } else {
                self.next_port + 1
            };
            if !self.inbound.contains_key(&(proto, candidate)) {
                return Ok(candidate);
            }
        }
        Err(NatError::PortsExhausted)
    }

    /// Translates an outbound frame: rewrites (src ip, src port) to
    /// (external ip, mapped port), allocating a mapping (and SRAM) on
    /// first use.
    ///
    /// Ingress convenience wrapper around
    /// [`NatTable::translate_outbound_frame`]: admits the packet (reusing
    /// an attached descriptor; deriving one only for foreign bytes) and
    /// returns the rewritten buffer. Consumes the packet, so a
    /// sole-owner buffer is rewritten in place — no clone, no copy.
    pub fn translate_outbound(
        &mut self,
        packet: Packet,
        sram: &mut Sram,
    ) -> Result<Packet, NatError> {
        let frame = Frame::ingress(packet).map_err(|_| NatError::NotTranslatable)?;
        Ok(self.translate_outbound_frame(frame, sram, Time::ZERO)?.pkt)
    }

    /// The hot path: translates an outbound frame using its parse-once
    /// descriptor — no parse, RFC 1624 checksum deltas applied in place
    /// when the frame owns its buffer (one copy only when shared), and
    /// an incrementally patched descriptor on the result. `now` stamps
    /// the lifecycle trace event when telemetry is attached.
    pub fn translate_outbound_frame(
        &mut self,
        frame: Frame,
        sram: &mut Sram,
        now: Time,
    ) -> Result<Frame, NatError> {
        let tuple = frame.meta.tuple.ok_or(NatError::NotTranslatable)?;
        let key = (tuple.src_ip, tuple.src_port, tuple.proto);
        let (ext_port, verdict) = match self.outbound.get(&key) {
            Some(&p) => (p, TraceVerdict::Hit),
            None => {
                let p = self.alloc_port(tuple.proto)?;
                sram.alloc(SramCategory::Nat, NAT_ENTRY_BYTES)?;
                self.outbound.insert(key, p);
                self.inbound
                    .insert((tuple.proto, p), (tuple.src_ip, tuple.src_port));
                (p, TraceVerdict::Miss)
            }
        };
        let out = mutate::rewrite_endpoints_owned(frame, Some((self.external_ip, ext_port)), None)
            .map_err(|_| NatError::NotTranslatable)?;
        self.translated_out += 1;
        let out = self.tag_frame(out);
        self.trace(out.meta.frame_id, now, verdict, &out);
        Ok(out)
    }

    /// Translates an inbound frame: rewrites (dst ip, dst port) back to
    /// the internal endpoint. Ingress wrapper around
    /// [`NatTable::translate_inbound_frame`]; consumes the packet for
    /// the in-place rewrite.
    pub fn translate_inbound(&mut self, packet: Packet) -> Result<Packet, NatError> {
        let frame = Frame::ingress(packet).map_err(|_| NatError::NotTranslatable)?;
        Ok(self.translate_inbound_frame(frame, Time::ZERO)?.pkt)
    }

    /// The inbound hot path, descriptor-driven like
    /// [`NatTable::translate_outbound_frame`].
    pub fn translate_inbound_frame(&mut self, frame: Frame, now: Time) -> Result<Frame, NatError> {
        let tuple = frame.meta.tuple.ok_or(NatError::NotTranslatable)?;
        let Some(&(int_ip, int_port)) = self.inbound.get(&(tuple.proto, tuple.dst_port)) else {
            self.misses += 1;
            let fid = self.tel.adopt_frame_id(frame.meta.frame_id);
            self.trace(fid, now, TraceVerdict::Miss, &frame);
            return Err(NatError::NoMapping {
                proto: tuple.proto,
                port: tuple.dst_port,
            });
        };
        let out = mutate::rewrite_endpoints_owned(frame, None, Some((int_ip, int_port)))
            .map_err(|_| NatError::NotTranslatable)?;
        self.translated_in += 1;
        let out = self.tag_frame(out);
        self.trace(out.meta.frame_id, now, TraceVerdict::Hit, &out);
        Ok(out)
    }

    /// Ensures the (rewritten) frame carries a nonzero lifecycle id,
    /// allocating one from the hub when the input was untagged. The id
    /// rides in the descriptor, so the NIC downstream adopts it.
    fn tag_frame(&self, frame: Frame) -> Frame {
        let fid = self.tel.adopt_frame_id(frame.meta.frame_id);
        if fid == frame.meta.frame_id {
            return frame;
        }
        let mut meta = frame.meta;
        meta.frame_id = fid;
        Frame {
            pkt: frame.pkt.with_meta(meta),
            meta,
        }
    }

    /// Registers NAT counters and occupancy into the unified registry.
    pub fn fill_registry(&self, reg: &mut telemetry::Registry) {
        reg.set_counter("nat.translated_out", self.translated_out);
        reg.set_counter("nat.translated_in", self.translated_in);
        reg.set_counter("nat.misses", self.misses);
        reg.set_counter("nat.mappings", self.inbound.len() as u64);
        reg.set_counter("nat.static_mappings", self.statics.len() as u64);
    }

    /// Expires the mapping for an internal endpoint, returning SRAM.
    /// Static rules are control-plane state and never expire this way.
    pub fn expire(&mut self, internal: (Ipv4Addr, u16, IpProto), sram: &mut Sram) -> bool {
        let Some(&ext_port) = self.outbound.get(&internal) else {
            return false;
        };
        if self.statics.contains_key(&(internal.2, ext_port)) {
            return false;
        }
        self.outbound.remove(&internal);
        self.inbound.remove(&(internal.2, ext_port));
        sram.release(SramCategory::Nat, NAT_ENTRY_BYTES);
        true
    }

    /// Installs a static inbound rule (port forward): traffic to
    /// `(proto, ext_port)` on the external address is rewritten to
    /// `internal`, and outbound traffic from `internal` masquerades with
    /// the same external port. Charges one SRAM entry; refuses ports
    /// already mapped (dynamically or statically).
    pub fn install_static(
        &mut self,
        proto: IpProto,
        ext_port: u16,
        internal: (Ipv4Addr, u16),
        sram: &mut Sram,
    ) -> Result<(), NatError> {
        if self.inbound.contains_key(&(proto, ext_port)) {
            return Err(NatError::Conflict {
                proto,
                port: ext_port,
            });
        }
        sram.alloc(SramCategory::Nat, NAT_ENTRY_BYTES)?;
        self.inbound.insert((proto, ext_port), internal);
        self.statics.insert((proto, ext_port), internal);
        self.outbound
            .insert((internal.0, internal.1, proto), ext_port);
        Ok(())
    }

    /// Removes a static rule, returning its SRAM. `false` when no such
    /// rule exists.
    pub fn remove_static(&mut self, proto: IpProto, ext_port: u16, sram: &mut Sram) -> bool {
        let Some(internal) = self.statics.remove(&(proto, ext_port)) else {
            return false;
        };
        self.inbound.remove(&(proto, ext_port));
        self.outbound.remove(&(internal.0, internal.1, proto));
        sram.release(SramCategory::Nat, NAT_ENTRY_BYTES);
        true
    }

    /// Removes every static rule (control-plane bundle teardown).
    pub fn clear_statics(&mut self, sram: &mut Sram) {
        let keys: Vec<(IpProto, u16)> = self.statics.keys().copied().collect();
        for (proto, port) in keys {
            self.remove_static(proto, port, sram);
        }
    }

    /// Re-charges SRAM for every resident mapping after a device crash
    /// wiped the on-NIC tables to zero. The kernel still holds the
    /// authoritative mappings (this table is kernel memory) and
    /// re-installs their device copies wholesale during recovery, so the
    /// fresh SRAM must account for them before any entry can be removed
    /// again — otherwise the first expiry would over-free.
    pub fn restore_charges(&self, sram: &mut Sram) -> Result<(), crate::sram::SramError> {
        sram.alloc(
            SramCategory::Nat,
            self.inbound.len() as u64 * NAT_ENTRY_BYTES,
        )
    }

    /// Number of installed static rules.
    pub fn num_statics(&self) -> usize {
        self.statics.len()
    }

    /// The internal endpoint a static rule forwards `(proto, ext_port)`
    /// to, if one is installed (audit hook; non-mutating, no miss count).
    pub fn static_target(&self, proto: IpProto, ext_port: u16) -> Option<(Ipv4Addr, u16)> {
        self.statics.get(&(proto, ext_port)).copied()
    }

    /// Non-mutating inbound lookup for audits: what the dataplane would
    /// rewrite `(proto, ext_port)` to, without counting a miss.
    pub fn lookup_inbound(&self, proto: IpProto, ext_port: u16) -> Option<(Ipv4Addr, u16)> {
        self.inbound.get(&(proto, ext_port)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::{FiveTuple, Mac, PacketBuilder};

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn outbound_pkt(src: &str, sport: u16) -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr(src), addr("8.8.8.8"))
            .udp(sport, 53, b"query")
            .build()
    }

    fn setup() -> (NatTable, Sram) {
        (NatTable::new(addr("203.0.113.1")), Sram::new(1 << 20))
    }

    #[test]
    fn outbound_masquerades_and_inbound_restores() {
        let (mut nat, mut sram) = setup();
        let out = nat
            .translate_outbound(outbound_pkt("192.168.1.10", 5555), &mut sram)
            .unwrap();
        let parsed = out.parse().unwrap();
        let ft = FiveTuple::from_parsed(&parsed).unwrap();
        assert_eq!(ft.src_ip, addr("203.0.113.1"));
        assert!(ft.src_port >= 32_768);

        // The reply comes back to the external endpoint.
        let reply = PacketBuilder::new()
            .ether(Mac::local(2), Mac::local(1))
            .ipv4(addr("8.8.8.8"), addr("203.0.113.1"))
            .udp(53, ft.src_port, b"answer")
            .build();
        let restored = nat.translate_inbound(reply).unwrap();
        let rt = FiveTuple::from_parsed(&restored.parse().unwrap()).unwrap();
        assert_eq!(rt.dst_ip, addr("192.168.1.10"));
        assert_eq!(rt.dst_port, 5555);
        assert_eq!(nat.counters(), (1, 1, 0));
    }

    #[test]
    fn same_flow_reuses_mapping() {
        let (mut nat, mut sram) = setup();
        let a = nat
            .translate_outbound(outbound_pkt("192.168.1.10", 5555), &mut sram)
            .unwrap();
        let b = nat
            .translate_outbound(outbound_pkt("192.168.1.10", 5555), &mut sram)
            .unwrap();
        let pa = FiveTuple::from_parsed(&a.parse().unwrap()).unwrap();
        let pb = FiveTuple::from_parsed(&b.parse().unwrap()).unwrap();
        assert_eq!(pa.src_port, pb.src_port);
        assert_eq!(nat.len(), 1);
        assert_eq!(sram.used_by(SramCategory::Nat), NAT_ENTRY_BYTES);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let (mut nat, mut sram) = setup();
        let mut ports = std::collections::HashSet::new();
        for host in 0..50u8 {
            let out = nat
                .translate_outbound(outbound_pkt(&format!("192.168.1.{host}"), 5555), &mut sram)
                .unwrap();
            ports.insert(
                FiveTuple::from_parsed(&out.parse().unwrap())
                    .unwrap()
                    .src_port,
            );
        }
        assert_eq!(ports.len(), 50);
        assert_eq!(nat.len(), 50);
    }

    #[test]
    fn unknown_inbound_is_dropped_with_miss() {
        let (mut nat, _) = setup();
        let stray = PacketBuilder::new()
            .ether(Mac::local(2), Mac::local(1))
            .ipv4(addr("8.8.8.8"), addr("203.0.113.1"))
            .udp(53, 40_000, b"stray")
            .build();
        assert!(matches!(
            nat.translate_inbound(stray),
            Err(NatError::NoMapping { port: 40_000, .. })
        ));
        assert_eq!(nat.counters().2, 1);
    }

    #[test]
    fn sram_exhaustion_refuses_new_flows() {
        let mut nat = NatTable::new(addr("203.0.113.1"));
        let mut sram = Sram::new(NAT_ENTRY_BYTES * 2);
        nat.translate_outbound(outbound_pkt("192.168.1.1", 1), &mut sram)
            .unwrap();
        nat.translate_outbound(outbound_pkt("192.168.1.2", 1), &mut sram)
            .unwrap();
        let err = nat.translate_outbound(outbound_pkt("192.168.1.3", 1), &mut sram);
        assert!(matches!(err, Err(NatError::Sram(_))));
        // Existing flows still translate.
        assert!(nat
            .translate_outbound(outbound_pkt("192.168.1.1", 1), &mut sram)
            .is_ok());
    }

    #[test]
    fn expire_frees_sram_and_port() {
        let (mut nat, mut sram) = setup();
        let out = nat
            .translate_outbound(outbound_pkt("192.168.1.10", 5555), &mut sram)
            .unwrap();
        let ext_port = FiveTuple::from_parsed(&out.parse().unwrap())
            .unwrap()
            .src_port;
        assert!(nat.expire((addr("192.168.1.10"), 5555, IpProto::UDP), &mut sram));
        assert_eq!(sram.used_by(SramCategory::Nat), 0);
        // Inbound to the old port now misses.
        let reply = PacketBuilder::new()
            .ether(Mac::local(2), Mac::local(1))
            .ipv4(addr("8.8.8.8"), addr("203.0.113.1"))
            .udp(53, ext_port, b"late")
            .build();
        assert!(nat.translate_inbound(reply).is_err());
        assert!(!nat.expire((addr("192.168.1.10"), 5555, IpProto::UDP), &mut sram));
    }

    #[test]
    fn static_rules_forward_and_survive_expiry() {
        let (mut nat, mut sram) = setup();
        nat.install_static(IpProto::UDP, 8053, (addr("192.168.1.10"), 53), &mut sram)
            .unwrap();
        assert_eq!(nat.num_statics(), 1);
        assert_eq!(
            nat.static_target(IpProto::UDP, 8053),
            Some((addr("192.168.1.10"), 53))
        );
        assert_eq!(sram.used_by(SramCategory::Nat), NAT_ENTRY_BYTES);

        // Inbound traffic to the forwarded port reaches the internal host.
        let inbound = PacketBuilder::new()
            .ether(Mac::local(2), Mac::local(1))
            .ipv4(addr("8.8.8.8"), addr("203.0.113.1"))
            .udp(5353, 8053, b"query")
            .build();
        let fwd = nat.translate_inbound(inbound).unwrap();
        let ft = FiveTuple::from_parsed(&fwd.parse().unwrap()).unwrap();
        assert_eq!((ft.dst_ip, ft.dst_port), (addr("192.168.1.10"), 53));

        // A second rule on the same port conflicts.
        assert!(matches!(
            nat.install_static(IpProto::UDP, 8053, (addr("192.168.1.11"), 53), &mut sram),
            Err(NatError::Conflict { port: 8053, .. })
        ));

        // Dataplane expiry cannot evict control-plane state.
        assert!(!nat.expire((addr("192.168.1.10"), 53, IpProto::UDP), &mut sram));
        assert_eq!(nat.num_statics(), 1);

        // Removal returns the SRAM.
        assert!(nat.remove_static(IpProto::UDP, 8053, &mut sram));
        assert_eq!(sram.used_by(SramCategory::Nat), 0);
        assert!(nat.lookup_inbound(IpProto::UDP, 8053).is_none());
    }

    #[test]
    fn clear_statics_releases_everything_but_dynamics() {
        let (mut nat, mut sram) = setup();
        nat.translate_outbound(outbound_pkt("192.168.1.50", 9999), &mut sram)
            .unwrap();
        nat.install_static(IpProto::UDP, 8053, (addr("192.168.1.10"), 53), &mut sram)
            .unwrap();
        nat.install_static(IpProto::UDP, 8054, (addr("192.168.1.11"), 53), &mut sram)
            .unwrap();
        assert_eq!(sram.used_by(SramCategory::Nat), 3 * NAT_ENTRY_BYTES);
        nat.clear_statics(&mut sram);
        assert_eq!(nat.num_statics(), 0);
        assert_eq!(sram.used_by(SramCategory::Nat), NAT_ENTRY_BYTES);
        // The dynamic mapping still translates.
        assert!(nat
            .translate_outbound(outbound_pkt("192.168.1.50", 9999), &mut sram)
            .is_ok());
    }

    #[test]
    fn arp_is_not_translatable() {
        let (mut nat, mut sram) = setup();
        let arp = PacketBuilder::arp_request(Mac::local(1), addr("1.1.1.1"), addr("2.2.2.2"));
        assert!(matches!(
            nat.translate_outbound(arp, &mut sram),
            Err(NatError::NotTranslatable)
        ));
    }

    #[test]
    fn translated_checksums_always_verify() {
        // The parse() in translate paths verifies the IP checksum; run a
        // chain of translations and ensure every product parses.
        let (mut nat, mut sram) = setup();
        for i in 0..20u16 {
            let out = nat
                .translate_outbound(outbound_pkt("192.168.1.77", 1000 + i), &mut sram)
                .unwrap();
            assert!(out.parse().is_ok());
        }
    }
}
