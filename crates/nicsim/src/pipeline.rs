//! Pipeline configuration and verdict types for the NIC dataplane.

use pkt::FrameMeta;
use sim::{Dur, Time};

use crate::flowtable::ConnId;

/// SmartNIC configuration.
///
/// Stage costs approximate an FPGA pipeline: parsing and table lookup are
/// fixed-latency hardware stages; overlay execution costs one soft-
/// processor cycle per instruction. The pipeline is, well, pipelined:
/// per-packet *occupancy* (which bounds throughput) is the slowest stage,
/// while *latency* is the sum of stages.
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// Line rate in Gbps.
    pub gbps: f64,
    /// Wire propagation delay.
    pub propagation: Dur,
    /// Parser stage latency.
    pub parse_cost: Dur,
    /// Flow-table lookup latency (hot tier: on-SRAM exact match).
    pub lookup_cost: Dur,
    /// Extra lookup latency for a cold-tier hit: the NIC walks the
    /// host-memory flow table over PCIe (several dependent DRAM reads)
    /// before it can steer the frame. Paid on top of `lookup_cost`, and
    /// it occupies the lookup stage, so heavy cold traffic throttles
    /// pipeline throughput — the incentive the eviction policy trades
    /// against.
    pub cold_lookup_cost: Dur,
    /// Overlay cycle time.
    pub overlay_cycle: Dur,
    /// Fixed traversal latency (SerDes, CRC, buffering).
    pub base_latency: Dur,
    /// On-board SRAM bytes.
    pub sram_bytes: u64,
    /// Notification queue capacity per process.
    pub notify_capacity: usize,
    /// Sniffer capture buffer entries.
    pub sniffer_capacity: usize,
    /// TX scheduler per-class queue limit (packets).
    pub tx_queue_limit: usize,
    /// Cost of swapping an overlay program (control-plane side; the
    /// dataplane keeps running).
    pub overlay_swap_cost: Dur,
    /// Duration of a full bitstream reprogram, during which the dataplane
    /// is down (§4.4: "these operations take seconds or longer").
    pub bitstream_reprogram: Dur,
    /// Number of RX/TX queue pairs the NIC exposes. The boot-time RSS
    /// indirection table spreads hashes uniformly across them; the kernel
    /// can reprogram both via the control plane. `1` (the default) is the
    /// pre-multi-queue NIC, byte-identical to the single-queue pipeline.
    pub num_queues: usize,
    /// Duration of a kernel-driven device reset after a crash: firmware
    /// reload plus self-test, during which the dataplane behaves exactly
    /// like a bitstream reprogram window (frames dropped with a counted
    /// cause). Much cheaper than a full reprogram, much dearer than an
    /// overlay swap.
    pub reset_cost: Dur,
}

impl Default for NicConfig {
    fn default() -> NicConfig {
        NicConfig {
            gbps: 100.0,
            propagation: Dur::from_ns(500),
            parse_cost: Dur::from_ns(30),
            lookup_cost: Dur::from_ns(40),
            cold_lookup_cost: Dur::from_ns(600),
            overlay_cycle: Dur::from_ns(4),
            base_latency: Dur::from_ns(300),
            sram_bytes: 16 << 20,
            notify_capacity: 1024,
            sniffer_capacity: 1 << 16,
            tx_queue_limit: 1024,
            overlay_swap_cost: Dur::from_us(20),
            bitstream_reprogram: Dur::from_secs(3),
            num_queues: 1,
            reset_cost: Dur::from_ms(100),
        }
    }
}

/// Where an ingress packet ends up.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxDisposition {
    /// DMA to the connection's RX ring.
    Deliver {
        /// The matched connection.
        conn: ConnId,
        /// Whether a notification should be posted (blocking I/O).
        notify: bool,
    },
    /// Punt to the kernel software path.
    SlowPath {
        /// Why (for counters).
        reason: SlowPathReason,
    },
    /// Discarded.
    Drop {
        /// Why (for counters).
        reason: DropReason,
    },
}

/// Why a packet took the software slow path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SlowPathReason {
    /// No flow-table match (e.g. ARP, unknown flows — the kernel handles
    /// them as it does today).
    NoFlowMatch,
    /// A policy program returned `slowpath` (low-priority traffic routed
    /// through software to save NIC resources, §5).
    PolicyPunt,
}

/// Why a packet was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DropReason {
    /// The ingress/egress filter said so.
    Filter,
    /// The dataplane was down for a bitstream reprogram.
    Reprogramming,
    /// A policy program faulted (fail closed).
    PolicyFault,
    /// Unparseable frame.
    Malformed,
    /// The device crashed: volatile state is gone and the dataplane is
    /// dark until a kernel-driven reset.
    DeviceDead,
}

impl DropReason {
    /// Maps this NIC-local reason onto the stack-wide telemetry
    /// vocabulary, so trace consumers see one drop taxonomy.
    pub fn cause(self) -> telemetry::DropCause {
        match self {
            DropReason::Filter => telemetry::DropCause::Filter,
            DropReason::Reprogramming => telemetry::DropCause::Reprogramming,
            DropReason::PolicyFault => telemetry::DropCause::PolicyFault,
            DropReason::Malformed => telemetry::DropCause::Malformed,
            DropReason::DeviceDead => telemetry::DropCause::DeviceDead,
        }
    }
}

/// Result of ingress processing.
#[derive(Clone, Debug)]
pub struct RxResult {
    /// Final placement.
    pub disposition: RxDisposition,
    /// When the packet emerges from the pipeline (DMA may start then).
    pub ready_at: Time,
    /// Pipeline latency experienced.
    pub latency: Dur,
    /// Whether a notification interrupt fired (kernel should wake the
    /// owner).
    pub interrupt: bool,
    /// The parse-once descriptor computed by the parser stage, for reuse
    /// by every later consumer (slow path, ARP, accept path). `None` only
    /// when the frame never made it through the parser (reprogramming
    /// drops, unparseable frames).
    pub meta: Option<FrameMeta>,
    /// Whether the steering entry was cold-tier when probed: the lookup
    /// paid the host walk, and the kernel routes this frame's ring DMA
    /// around the DDIO ways (demoted flows must not thrash hot rings).
    pub cold: bool,
}

/// Where an egress packet ends up.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxDisposition {
    /// Accepted into the scheduler with this class.
    Queued {
        /// Scheduler class assigned by the classifier.
        class: u32,
    },
    /// Dropped by egress policy.
    Drop {
        /// Why.
        reason: DropReason,
    },
}

/// A frame leaving the NIC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxDeparture {
    /// Scheduler packet id.
    pub pkt_id: u64,
    /// Originating connection.
    pub conn: ConnId,
    /// Frame length.
    pub len: u32,
    /// When the last bit arrives at the far end.
    pub arrives_at: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = NicConfig::default();
        assert!(c.gbps > 0.0);
        assert!(c.overlay_cycle > Dur::ZERO);
        assert!(c.bitstream_reprogram >= Dur::from_secs(1));
        assert!(c.overlay_swap_cost < Dur::from_ms(1));
        // The headline comparison of §4.4: overlay updates are orders of
        // magnitude cheaper than bitstream reprogramming.
        assert!(c.bitstream_reprogram.0 / c.overlay_swap_cost.0 > 10_000);
        // Crash recovery sits between the two: a reset is not free, but
        // it must not cost a full reprogram either.
        assert!(c.reset_cost > c.overlay_swap_cost);
        assert!(c.reset_cost < c.bitstream_reprogram);
        // A cold-tier lookup dominates the hot lookup by an order of
        // magnitude — that asymmetry is what the eviction policy manages.
        assert!(c.cold_lookup_cost.0 >= c.lookup_cost.0 * 10);
    }
}
