//! The NIC flow table: a two-tier exact-match connection store with
//! process attribution.
//!
//! Each entry binds a five-tuple to the rings of one connection *and* to
//! the (uid, pid, comm) of the process that opened it — the binding the
//! kernel control plane installs at `connect()`/`accept()` time, and the
//! reason the on-NIC dataplane can evaluate owner-aware policies that
//! hypervisor switches cannot (§2, §3). Listener entries (proto + local
//! port) catch first packets of inbound connections.
//!
//! Flow state is hierarchical (the §5 scaling answer): a bounded **hot
//! tier** of SRAM-resident entries ([`crate::sram`]: entry slot + DMA
//! ring context, charged atomically) and an unbounded **cold tier** in
//! host memory that costs no SRAM but pays a host-walk latency on every
//! lookup. Promotion and eviction between the tiers are driven by a
//! kernel-programmable [`FlowCacheConfig`] (LRU, priority-aware, or
//! pinned), with victims tracked per RSS queue so each worker shard owns
//! its slice of the hot tier — shared-nothing by construction. Without a
//! committed policy the table is *untiered*: every insert is hot and
//! exhaustion is an insert failure, exactly the pre-hierarchy behavior
//! (§5's resource-exhaustion concern).

use std::collections::BTreeSet;

use sim::FastMap;

use pkt::{FiveTuple, IpProto};

use crate::sram::{Sram, SramCategory, SramError};

/// A connection identifier on the NIC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConnId(pub u64);

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// SRAM cost of one exact-match entry (key + state + ring context
/// pointers), approximating a hardware CAM/hash slot.
pub const ENTRY_BYTES: u64 = 128;

/// SRAM cost of one listener entry.
pub const LISTENER_BYTES: u64 = 32;

/// SRAM charged per *hot* connection for its on-NIC DMA ring context
/// (descriptor state cached on-board). Cold connections keep their ring
/// context in host memory: no SRAM charge, dearer lookups.
pub const RING_CONTEXT_BYTES: u64 = 512;

/// Which tier a connection's steering state lives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowTier {
    /// On-NIC SRAM: exact-match slot + cached ring context.
    Hot,
    /// Host memory: no SRAM charge, each lookup pays a host-table walk.
    Cold,
}

/// Eviction/promotion discipline for the hot tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowCacheMode {
    /// Pure recency: a cold hit always promotes, evicting the
    /// least-recently-used hot entry on its queue when full.
    Lru,
    /// Priority-aware: entries on `high_prio_ports` outrank the rest and
    /// are never evicted by lower-ranked traffic; `pinned_ports` outrank
    /// everything. Equal ranks behave like LRU.
    PriorityAware,
    /// Only `pinned_ports` entries may occupy the hot tier; everything
    /// else stays cold forever.
    Pinned,
}

impl FlowCacheMode {
    /// Stable lower-snake name (bench JSON, registry keys).
    pub fn name(self) -> &'static str {
        match self {
            FlowCacheMode::Lru => "lru",
            FlowCacheMode::PriorityAware => "priority_aware",
            FlowCacheMode::Pinned => "pinned",
        }
    }
}

/// The kernel-programmable flow-cache policy: how large the hot tier is
/// and how entries are promoted into (and evicted from) it. Committed
/// through the control plane's two-phase path; `None` at the device
/// means the untiered boot behavior.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlowCacheConfig {
    /// Maximum hot exact-match entries, divided evenly across RSS queues
    /// (remainder to the low queues) so each shard owns its slice.
    pub hot_capacity: usize,
    /// Promotion/eviction discipline.
    pub mode: FlowCacheMode,
    /// Local ports whose connections rank above normal traffic
    /// ([`FlowCacheMode::PriorityAware`]).
    pub high_prio_ports: Vec<u16>,
    /// Local ports whose connections are never evicted once hot (and the
    /// only hot-eligible ones under [`FlowCacheMode::Pinned`]).
    pub pinned_ports: Vec<u16>,
}

impl FlowCacheConfig {
    /// A pure-LRU cache of `hot_capacity` entries.
    pub fn lru(hot_capacity: usize) -> FlowCacheConfig {
        FlowCacheConfig {
            hot_capacity,
            mode: FlowCacheMode::Lru,
            high_prio_ports: Vec::new(),
            pinned_ports: Vec::new(),
        }
    }

    /// A priority-aware cache protecting connections on `high` ports.
    pub fn priority_aware(hot_capacity: usize, high: &[u16]) -> FlowCacheConfig {
        FlowCacheConfig {
            hot_capacity,
            mode: FlowCacheMode::PriorityAware,
            high_prio_ports: high.to_vec(),
            pinned_ports: Vec::new(),
        }
    }

    /// A pinned cache: only connections on `pinned` ports go hot.
    pub fn pinned(hot_capacity: usize, pinned: &[u16]) -> FlowCacheConfig {
        FlowCacheConfig {
            hot_capacity,
            mode: FlowCacheMode::Pinned,
            high_prio_ports: Vec::new(),
            pinned_ports: pinned.to_vec(),
        }
    }

    /// Eviction rank of a connection with local port `port`: higher ranks
    /// displace lower ones; rank 0 is never hot.
    fn rank_of(&self, port: u16) -> u8 {
        match self.mode {
            FlowCacheMode::Lru => 1,
            FlowCacheMode::PriorityAware => {
                if self.pinned_ports.contains(&port) {
                    3
                } else if self.high_prio_ports.contains(&port) {
                    2
                } else {
                    1
                }
            }
            FlowCacheMode::Pinned => {
                if self.pinned_ports.contains(&port) {
                    3
                } else {
                    0
                }
            }
        }
    }
}

/// One flow-table entry.
#[derive(Clone, Debug)]
pub struct ConnEntry {
    /// The connection id.
    pub id: ConnId,
    /// Exact-match key (remote -> local direction as seen on RX).
    pub tuple: FiveTuple,
    /// Owning user.
    pub uid: u32,
    /// Owning process.
    pub pid: u32,
    /// Owning command name (kept for `ksniff`/`knetstat` display and
    /// per-event attribution; the dataplane matches on uid/pid). Stored
    /// refcounted so trace events clone a pointer, not the string.
    pub comm: telemetry::Comm,
    /// Whether the connection requested notifications (blocking I/O).
    pub notify: bool,
    /// Which tier the entry currently occupies (listeners are always
    /// hot: they are tiny and catch first packets).
    pub tier: FlowTier,
    /// The RSS queue that owns this entry's hot-tier slice.
    pub queue: u16,
    /// Eviction rank under the active cache policy (recomputed on every
    /// policy commit).
    pub rank: u8,
    /// Logical clock of the last lookup hit (promotion recency).
    pub last_use: u64,
}

/// What a lookup resolved to, after recency/promotion side effects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LookupHit {
    /// The matched connection (exact entry or listener).
    pub id: ConnId,
    /// The tier the entry occupied *when probed* — a cold hit pays the
    /// host-walk cost even if this very lookup promoted it.
    pub tier: FlowTier,
    /// Whether this lookup promoted the entry into the hot tier.
    pub promoted: bool,
    /// The victim this promotion demoted to make room, if any.
    pub demoted: Option<(ConnId, FiveTuple)>,
    /// Whether the connection requested notifications — copied out of
    /// the entry at probe time so the RX completion path can steer
    /// without a second table probe.
    pub notify: bool,
    /// Owning user (copied at probe time, as above).
    pub uid: u32,
    /// Owning process (copied at probe time, as above).
    pub pid: u32,
}

/// Tier/churn counters (registry keys `flowtable.*`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that matched nothing.
    pub misses: u64,
    /// Hits served from the hot tier (listeners included).
    pub hot_hits: u64,
    /// Hits served from the cold tier (host-walk latency).
    pub cold_hits: u64,
    /// Cold→hot promotions (lookup-driven and policy re-tiers).
    pub promotions: u64,
    /// Hot→cold evictions (promotion victims and policy re-tiers).
    pub evictions: u64,
    /// Promotions refused: SRAM full, queue slice full of higher-ranked
    /// entries, or a zero-width slice.
    pub promotion_refusals: u64,
}

/// What a policy re-tier moved, in deterministic (id-sorted) order.
#[derive(Clone, Debug, Default)]
pub struct RetierReport {
    /// Entries promoted cold→hot.
    pub promoted: Vec<(ConnId, FiveTuple)>,
    /// Entries demoted hot→cold.
    pub demoted: Vec<(ConnId, FiveTuple)>,
}

/// Victim-ordering key: `(rank, last_use, id)` ascending, so the minimum
/// element is the lowest-ranked, least-recently-used hot entry.
type VictimKey = (u8, u64, u64);

/// Packs a [`FiveTuple`] into one 128-bit exact-match key: two hasher
/// rounds instead of the derive's field-by-field (and per-octet) walk.
/// The packing is injective, so key equality is tuple equality. Public
/// because the same packing keys the overlay's per-flow scratch maps
/// (`PktCtx::flow_key`), so kernel tools can address both uniformly.
#[inline]
pub fn exact_key(t: &FiveTuple) -> u128 {
    (u128::from(u32::from(t.src_ip)) << 96)
        | (u128::from(u32::from(t.dst_ip)) << 64)
        | (u128::from(t.src_port) << 48)
        | (u128::from(t.dst_port) << 32)
        | u128::from(t.proto.0)
}

/// The flow table.
pub struct FlowTable {
    /// Exact-match index, keyed by the packed tuple ([`exact_key`]).
    exact: FastMap<u128, ConnId>,
    listeners: FastMap<(IpProto, u16), ConnId>,
    entries: FastMap<ConnId, ConnEntry>,
    /// Active cache policy; `None` = untiered boot behavior.
    cache: Option<FlowCacheConfig>,
    /// RSS queue count the hot tier is sliced across.
    num_queues: usize,
    /// Per-queue victim order over hot exact entries.
    hot: Vec<BTreeSet<VictimKey>>,
    /// Cold exact-entry count (the hot count is the victim sets' total).
    cold: usize,
    next_id: u64,
    /// Logical recency clock, ticked per insert and per exact hit.
    tick: u64,
    stats: FlowStats,
}

impl Default for FlowTable {
    fn default() -> FlowTable {
        FlowTable::new()
    }
}

impl FlowTable {
    /// Creates an empty, untiered table with a single queue slice.
    pub fn new() -> FlowTable {
        FlowTable {
            exact: FastMap::default(),
            listeners: FastMap::default(),
            entries: FastMap::default(),
            cache: None,
            num_queues: 1,
            hot: vec![BTreeSet::new()],
            cold: 0,
            next_id: 0,
            tick: 0,
            stats: FlowStats::default(),
        }
    }

    /// Returns the number of exact-match entries (both tiers).
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Returns the number of exact-match entries (alias of `len`, named
    /// for audit readability).
    pub fn num_exact(&self) -> usize {
        self.exact.len()
    }

    /// Returns the number of hot-tier exact-match entries.
    pub fn num_hot(&self) -> usize {
        self.hot.iter().map(BTreeSet::len).sum()
    }

    /// Returns the number of cold-tier exact-match entries.
    pub fn num_cold(&self) -> usize {
        self.cold
    }

    /// Returns the number of hot entries owned by RSS queue `q`.
    pub fn num_hot_on_queue(&self, q: usize) -> usize {
        self.hot.get(q).map_or(0, BTreeSet::len)
    }

    /// Returns the number of listener entries.
    pub fn num_listeners(&self) -> usize {
        self.listeners.len()
    }

    /// Returns the total number of entry records (exact + listeners).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no connections are installed.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.listeners.is_empty()
    }

    /// Returns (lookups, misses).
    pub fn counters(&self) -> (u64, u64) {
        (self.stats.lookups, self.stats.misses)
    }

    /// Returns the tier/churn counters.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// Returns the active cache policy (`None` = untiered).
    pub fn cache_config(&self) -> Option<&FlowCacheConfig> {
        self.cache.as_ref()
    }

    /// Returns the tier of connection `id`, if it exists.
    pub fn tier_of(&self, id: ConnId) -> Option<FlowTier> {
        self.entries.get(&id).map(|e| e.tier)
    }

    fn rank_for(&self, local_port: u16) -> u8 {
        self.cache.as_ref().map_or(1, |c| c.rank_of(local_port))
    }

    /// Hot-entry budget of queue `q` under the active policy.
    fn queue_capacity(&self, q: usize) -> usize {
        match &self.cache {
            None => usize::MAX,
            Some(c) => {
                c.hot_capacity / self.num_queues + usize::from(q < c.hot_capacity % self.num_queues)
            }
        }
    }

    fn victim_key(e: &ConnEntry) -> VictimKey {
        (e.rank, e.last_use, e.id.0)
    }

    /// Charges the SRAM for one hot exact entry (slot + ring context),
    /// atomically: on failure nothing is held.
    fn charge_hot(sram: &mut Sram) -> Result<(), SramError> {
        sram.alloc(SramCategory::FlowTable, ENTRY_BYTES)?;
        if let Err(e) = sram.alloc(SramCategory::RingContext, RING_CONTEXT_BYTES) {
            sram.release(SramCategory::FlowTable, ENTRY_BYTES);
            return Err(e);
        }
        Ok(())
    }

    fn release_hot(sram: &mut Sram) {
        sram.release(SramCategory::FlowTable, ENTRY_BYTES);
        sram.release(SramCategory::RingContext, RING_CONTEXT_BYTES);
    }

    /// Installs an exact-match connection on RSS queue `queue`.
    ///
    /// `tuple` is the RX-direction key (remote source, local destination).
    /// Untiered, the entry is hot and SRAM exhaustion refuses it (the
    /// legacy §5 failure). Tiered, the entry goes hot only if its queue
    /// slice and the SRAM both have room — overflowing to the cold tier
    /// otherwise, never failing.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        tuple: FiveTuple,
        uid: u32,
        pid: u32,
        comm: &str,
        notify: bool,
        queue: u16,
        sram: &mut Sram,
    ) -> Result<(ConnId, FlowTier), SramError> {
        let id = ConnId(self.next_id);
        let tier = self.place_exact(id, tuple, uid, pid, comm, notify, queue, sram, false)?;
        self.next_id += 1;
        Ok((id, tier))
    }

    /// Deprecated pre-tiering installer: single-queue, legacy signature.
    #[deprecated(note = "use FlowTable::insert, which routes through the tiered cache")]
    pub fn install(
        &mut self,
        tuple: FiveTuple,
        uid: u32,
        pid: u32,
        comm: &str,
        notify: bool,
        sram: &mut Sram,
    ) -> Result<ConnId, SramError> {
        self.insert(tuple, uid, pid, comm, notify, 0, sram)
            .map(|(id, _)| id)
    }

    /// Reinstalls an exact-match connection under a *caller-chosen* id —
    /// the crash-recovery path, where the kernel re-populates a wiped
    /// table from its own connection records and the original ids must
    /// survive (ring keys, doorbell registers and process handles all
    /// reference them). SRAM exhaustion never fails a restore: entries
    /// that no longer fit the hot tier land cold (the control plane's
    /// reconcile re-tiers them under the committed policy afterwards), so
    /// conservation holds across both tiers — no connection is lost to a
    /// crash. Panics if the id or tuple is already taken. `next_id` is
    /// bumped past `id` so later fresh inserts never collide.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        &mut self,
        id: ConnId,
        tuple: FiveTuple,
        uid: u32,
        pid: u32,
        comm: &str,
        notify: bool,
        queue: u16,
        sram: &mut Sram,
    ) -> FlowTier {
        assert!(
            !self.entries.contains_key(&id) && !self.exact.contains_key(&exact_key(&tuple)),
            "restore must target a free id and tuple"
        );
        let tier = self
            .place_exact(id, tuple, uid, pid, comm, notify, queue, sram, true)
            .expect("restore overflows to cold instead of failing");
        self.next_id = self.next_id.max(id.0 + 1);
        tier
    }

    /// Shared insert/restore body: decides the tier, charges SRAM, and
    /// registers the entry. `overflow` routes SRAM refusals to the cold
    /// tier instead of erroring (the restore path).
    #[allow(clippy::too_many_arguments)]
    fn place_exact(
        &mut self,
        id: ConnId,
        tuple: FiveTuple,
        uid: u32,
        pid: u32,
        comm: &str,
        notify: bool,
        queue: u16,
        sram: &mut Sram,
        overflow: bool,
    ) -> Result<FlowTier, SramError> {
        let q = usize::from(queue).min(self.num_queues - 1);
        let rank = self.rank_for(tuple.dst_port);
        let hot_eligible = rank > 0 && self.hot[q].len() < self.queue_capacity(q);
        let tier = if hot_eligible {
            match Self::charge_hot(sram) {
                Ok(()) => FlowTier::Hot,
                Err(e) if self.cache.is_none() && !overflow => return Err(e),
                Err(_) => FlowTier::Cold,
            }
        } else {
            FlowTier::Cold
        };
        self.tick += 1;
        let entry = ConnEntry {
            id,
            tuple,
            uid,
            pid,
            comm: telemetry::Comm::new(comm),
            notify,
            tier,
            queue: q as u16,
            rank,
            last_use: self.tick,
        };
        match tier {
            FlowTier::Hot => {
                self.hot[q].insert(Self::victim_key(&entry));
            }
            FlowTier::Cold => self.cold += 1,
        }
        self.exact.insert(exact_key(&tuple), id);
        self.entries.insert(id, entry);
        Ok(tier)
    }

    /// Reinstalls a listener under a caller-chosen id (crash recovery;
    /// see [`FlowTable::restore`]). Listeners are always hot.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_listener(
        &mut self,
        id: ConnId,
        proto: IpProto,
        port: u16,
        uid: u32,
        pid: u32,
        comm: &str,
        sram: &mut Sram,
    ) -> Result<(), SramError> {
        assert!(
            !self.entries.contains_key(&id) && !self.listeners.contains_key(&(proto, port)),
            "restore must target a free id and listener key"
        );
        sram.alloc(SramCategory::FlowTable, LISTENER_BYTES)?;
        self.next_id = self.next_id.max(id.0 + 1);
        self.register_listener(id, proto, port, uid, pid, comm);
        Ok(())
    }

    /// Installs a listener for `(proto, local_port)`, charging SRAM.
    pub fn insert_listener(
        &mut self,
        proto: IpProto,
        port: u16,
        uid: u32,
        pid: u32,
        comm: &str,
        sram: &mut Sram,
    ) -> Result<ConnId, SramError> {
        sram.alloc(SramCategory::FlowTable, LISTENER_BYTES)?;
        let id = ConnId(self.next_id);
        self.next_id += 1;
        self.register_listener(id, proto, port, uid, pid, comm);
        Ok(id)
    }

    fn register_listener(
        &mut self,
        id: ConnId,
        proto: IpProto,
        port: u16,
        uid: u32,
        pid: u32,
        comm: &str,
    ) {
        self.listeners.insert((proto, port), id);
        self.entries.insert(
            id,
            ConnEntry {
                id,
                // Listener entries have no remote endpoint; use a zeroed
                // tuple with only the local port meaningful.
                tuple: FiveTuple {
                    src_ip: std::net::Ipv4Addr::UNSPECIFIED,
                    dst_ip: std::net::Ipv4Addr::UNSPECIFIED,
                    src_port: 0,
                    dst_port: port,
                    proto,
                },
                uid,
                pid,
                comm: telemetry::Comm::new(comm),
                notify: false,
                tier: FlowTier::Hot,
                queue: 0,
                rank: u8::MAX,
                last_use: 0,
            },
        );
    }

    /// Removes a connection, returning its SRAM (per its tier).
    pub fn remove(&mut self, id: ConnId, sram: &mut Sram) -> bool {
        let Some(entry) = self.entries.remove(&id) else {
            return false;
        };
        if self.exact.remove(&exact_key(&entry.tuple)).is_some() {
            match entry.tier {
                FlowTier::Hot => {
                    self.hot[usize::from(entry.queue)].remove(&Self::victim_key(&entry));
                    Self::release_hot(sram);
                }
                FlowTier::Cold => self.cold -= 1,
            }
        } else if self
            .listeners
            .remove(&(entry.tuple.proto, entry.tuple.dst_port))
            .is_some()
        {
            sram.release(SramCategory::FlowTable, LISTENER_BYTES);
        }
        true
    }

    /// Pure steering resolution for an RX-direction tuple: exact match
    /// first, then a listener on the destination port. No counters, no
    /// recency, no promotion — pair with [`FlowTable::touch_lookup`],
    /// which applies those side effects in arrival order (the split that
    /// keeps batched lookups byte-identical to sequential ones).
    pub fn resolve(&self, tuple: &FiveTuple) -> Option<ConnId> {
        self.exact
            .get(&exact_key(tuple))
            .or_else(|| self.listeners.get(&(tuple.proto, tuple.dst_port)))
            .copied()
    }

    /// Batched [`FlowTable::resolve`]: probes in flow-hash order — the
    /// way hardware bank-sorts a burst to maximize SRAM locality — and
    /// returns results in the caller's original order, coalescing
    /// same-flow runs into one probe. Pure: tier movements never change
    /// which connection a tuple steers to, so resolution order is free.
    pub fn resolve_batch(&self, queries: &[(u32, FiveTuple)]) -> Vec<Option<ConnId>> {
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by_key(|&i| queries[i].0);
        let mut results = vec![None; queries.len()];
        let mut prev: Option<(usize, Option<ConnId>)> = None;
        for i in order {
            results[i] = match prev {
                Some((p, hit)) if queries[p].1 == queries[i].1 => hit,
                _ => self.resolve(&queries[i].1),
            };
            prev = Some((i, results[i]));
        }
        results
    }

    /// Applies the stateful half of one lookup: counters, recency, and —
    /// under a tiered policy — promotion of cold hits into the hot tier
    /// (possibly demoting a victim). Returns what the caller needs for
    /// latency accounting and lifecycle events.
    pub fn touch_lookup(&mut self, resolved: Option<ConnId>, sram: &mut Sram) -> Option<LookupHit> {
        self.stats.lookups += 1;
        let Some(id) = resolved else {
            self.stats.misses += 1;
            return None;
        };
        // One probe serves both the listener check and the recency
        // update: `entries`, `listeners`, `stats`, and `tick` are
        // disjoint fields, so the mutable entry borrow can stay live
        // across them.
        let entry = self.entries.get_mut(&id).expect("resolved id has an entry");
        // Listener hit: always hot, no recency bookkeeping (and no tick
        // consumed — listener hits must not perturb flow recency stamps).
        if self
            .listeners
            .get(&(entry.tuple.proto, entry.tuple.dst_port))
            == Some(&id)
        {
            self.stats.hot_hits += 1;
            return Some(LookupHit {
                id,
                tier: FlowTier::Hot,
                promoted: false,
                demoted: None,
                notify: entry.notify,
                uid: entry.uid,
                pid: entry.pid,
            });
        }
        self.tick += 1;
        let tick = self.tick;
        let q = usize::from(entry.queue);
        match entry.tier {
            FlowTier::Hot => {
                self.stats.hot_hits += 1;
                let old = Self::victim_key(entry);
                entry.last_use = tick;
                let new = Self::victim_key(entry);
                let (notify, uid, pid) = (entry.notify, entry.uid, entry.pid);
                let set = &mut self.hot[q];
                set.remove(&old);
                set.insert(new);
                Some(LookupHit {
                    id,
                    tier: FlowTier::Hot,
                    promoted: false,
                    demoted: None,
                    notify,
                    uid,
                    pid,
                })
            }
            FlowTier::Cold => {
                self.stats.cold_hits += 1;
                entry.last_use = tick;
                let rank = entry.rank;
                let (notify, uid, pid) = (entry.notify, entry.uid, entry.pid);
                let (promoted, demoted) = if self.cache.is_some() && rank > 0 {
                    self.try_promote(id, q, sram)
                } else {
                    (false, None)
                };
                Some(LookupHit {
                    id,
                    tier: FlowTier::Cold,
                    promoted,
                    demoted,
                    notify,
                    uid,
                    pid,
                })
            }
        }
    }

    /// Attempts to promote cold entry `id` (already recency-stamped) into
    /// queue `q`'s hot slice, demoting a victim if the policy allows.
    fn try_promote(
        &mut self,
        id: ConnId,
        q: usize,
        sram: &mut Sram,
    ) -> (bool, Option<(ConnId, FiveTuple)>) {
        let cap = self.queue_capacity(q);
        let candidate_rank = self.entries[&id].rank;
        let mut demoted = None;
        if self.hot[q].len() >= cap {
            // Full: the lowest-ranked, least-recent hot entry is the only
            // candidate victim, and it must not outrank the newcomer.
            let Some(&victim_key) = self.hot[q].first() else {
                // Zero-capacity slice: nothing can ever go hot here.
                self.stats.promotion_refusals += 1;
                return (false, None);
            };
            let (vrank, _, vid) = victim_key;
            if vrank > candidate_rank {
                self.stats.promotion_refusals += 1;
                return (false, None);
            }
            self.hot[q].remove(&victim_key);
            let victim = self.entries.get_mut(&ConnId(vid)).expect("victim exists");
            victim.tier = FlowTier::Cold;
            let vtuple = victim.tuple;
            Self::release_hot(sram);
            self.cold += 1;
            self.stats.evictions += 1;
            demoted = Some((ConnId(vid), vtuple));
        }
        if Self::charge_hot(sram).is_err() {
            // SRAM exhausted by other categories; stay cold. (If a victim
            // was just demoted this cannot happen — its release freed
            // exactly what we need.)
            self.stats.promotion_refusals += 1;
            return (false, demoted);
        }
        let entry = self.entries.get_mut(&id).expect("candidate exists");
        entry.tier = FlowTier::Hot;
        self.hot[q].insert(Self::victim_key(entry));
        self.cold -= 1;
        self.stats.promotions += 1;
        (true, demoted)
    }

    /// Looks up the connection for an RX-direction tuple, with full side
    /// effects (counters, recency, promotion).
    pub fn lookup(&mut self, tuple: &FiveTuple, sram: &mut Sram) -> Option<LookupHit> {
        let resolved = self.resolve(tuple);
        self.touch_lookup(resolved, sram)
    }

    /// Batched lookup: hash-sorted resolution, then side effects applied
    /// in the caller's arrival order — the outcome (results, counters,
    /// tier movements) is identical to issuing [`FlowTable::lookup`] once
    /// per query in arrival order.
    pub fn lookup_batch(
        &mut self,
        queries: &[(u32, FiveTuple)],
        sram: &mut Sram,
    ) -> Vec<Option<LookupHit>> {
        self.resolve_batch(queries)
            .into_iter()
            .map(|r| self.touch_lookup(r, sram))
            .collect()
    }

    /// Installs (or clears) the cache policy and re-tiers every exact
    /// entry deterministically under it: per queue, the highest-ranked,
    /// most-recent entries go hot up to the queue's slice of
    /// `hot_capacity` (and the SRAM budget); the rest go cold. `queue_of`
    /// maps each entry's RX tuple to its owning RSS queue (the same
    /// steering the dataplane uses), so hot-tier ownership follows the
    /// shards. Returns what moved, id-sorted, for lifecycle events.
    pub fn configure_cache<F: Fn(&FiveTuple) -> u16>(
        &mut self,
        cache: Option<FlowCacheConfig>,
        num_queues: usize,
        queue_of: F,
        sram: &mut Sram,
    ) -> RetierReport {
        assert!(num_queues > 0, "need at least one queue slice");
        self.cache = cache;
        self.num_queues = num_queues;
        let mut ids: Vec<ConnId> = self.exact.values().copied().collect();
        ids.sort();
        for &id in &ids {
            let rank = self
                .cache
                .as_ref()
                .map_or(1, |c| c.rank_of(self.entries[&id].tuple.dst_port));
            let entry = self.entries.get_mut(&id).expect("exact id has an entry");
            entry.queue = queue_of(&entry.tuple).min(num_queues as u16 - 1);
            entry.rank = rank;
        }
        // Desired hot set per queue: best (rank, recency) first.
        let mut by_queue: Vec<Vec<ConnId>> = vec![Vec::new(); num_queues];
        for &id in &ids {
            let e = &self.entries[&id];
            if e.rank > 0 {
                by_queue[usize::from(e.queue)].push(id);
            }
        }
        let mut desired_set: std::collections::HashSet<ConnId> = std::collections::HashSet::new();
        for (q, group) in by_queue.iter_mut().enumerate() {
            group.sort_by_key(|id| {
                let e = &self.entries[id];
                (
                    std::cmp::Reverse(e.rank),
                    std::cmp::Reverse(e.last_use),
                    e.id.0,
                )
            });
            let cap = self.queue_capacity(q).min(group.len());
            desired_set.extend(&group[..cap]);
        }
        let mut report = RetierReport::default();
        // Demotions first, freeing SRAM for the promotions.
        for &id in &ids {
            let e = self.entries.get_mut(&id).expect("exact id has an entry");
            if e.tier == FlowTier::Hot && !desired_set.contains(&id) {
                e.tier = FlowTier::Cold;
                let tuple = e.tuple;
                Self::release_hot(sram);
                self.cold += 1;
                self.stats.evictions += 1;
                report.demoted.push((id, tuple));
            }
        }
        for &id in &ids {
            if self.entries[&id].tier == FlowTier::Cold && desired_set.contains(&id) {
                // SRAM shared with programs/NAT may refuse; refused
                // entries stay cold (deterministically: id order).
                if Self::charge_hot(sram).is_ok() {
                    let e = self.entries.get_mut(&id).expect("exact id has an entry");
                    e.tier = FlowTier::Hot;
                    self.cold -= 1;
                    self.stats.promotions += 1;
                    report.promoted.push((id, e.tuple));
                } else {
                    self.stats.promotion_refusals += 1;
                }
            }
        }
        // Rebuild the per-queue victim order from the entries' new state.
        self.hot = vec![BTreeSet::new(); num_queues];
        for &id in &ids {
            let e = &self.entries[&id];
            if e.tier == FlowTier::Hot {
                self.hot[usize::from(e.queue)].insert(Self::victim_key(e));
            }
        }
        report
    }

    /// Internal-consistency audit: the victim sets, tier tags, and cold
    /// counter must describe the same partition of the exact entries.
    pub fn audit_tiers(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let hot_tagged = self
            .exact
            .values()
            .filter(|id| self.entries[id].tier == FlowTier::Hot)
            .count();
        let cold_tagged = self.exact.len() - hot_tagged;
        if hot_tagged != self.num_hot() {
            violations.push(format!(
                "flow tiers: {hot_tagged} hot-tagged entries != {} victim-set members",
                self.num_hot()
            ));
        }
        if cold_tagged != self.cold {
            violations.push(format!(
                "flow tiers: {cold_tagged} cold-tagged entries != cold counter {}",
                self.cold
            ));
        }
        for (q, set) in self.hot.iter().enumerate() {
            for &(_, _, id) in set {
                match self.entries.get(&ConnId(id)) {
                    None => violations.push(format!("victim set q{q} names dead conn#{id}")),
                    Some(e) if e.tier != FlowTier::Hot || usize::from(e.queue) != q => {
                        violations.push(format!("victim set q{q} disagrees with conn#{id}'s entry"))
                    }
                    Some(_) => {}
                }
            }
            if let Some(c) = &self.cache {
                if set.len() > self.queue_capacity(q) {
                    violations.push(format!(
                        "queue {q} holds {} hot entries over its {} slice of {}",
                        set.len(),
                        self.queue_capacity(q),
                        c.hot_capacity
                    ));
                }
            }
        }
        violations
    }

    /// Returns the entry for a connection id.
    pub fn entry(&self, id: ConnId) -> Option<&ConnEntry> {
        self.entries.get(&id)
    }

    /// Iterates over all entries (for `knetstat`).
    pub fn entries(&self) -> impl Iterator<Item = &ConnEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn tuple(sp: u16, dp: u16) -> FiveTuple {
        FiveTuple::udp(addr("10.0.0.2"), sp, addr("10.0.0.1"), dp)
    }

    /// Hot footprint of one exact entry.
    const HOT_BYTES: u64 = ENTRY_BYTES + RING_CONTEXT_BYTES;

    fn insert(ft: &mut FlowTable, sram: &mut Sram, sp: u16, dp: u16) -> (ConnId, FlowTier) {
        ft.insert(tuple(sp, dp), 0, 1, "app", false, 0, sram)
            .unwrap()
    }

    fn hit(ft: &mut FlowTable, sram: &mut Sram, sp: u16, dp: u16) -> LookupHit {
        ft.lookup(&tuple(sp, dp), sram).expect("hit")
    }

    #[test]
    fn exact_match_beats_listener() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let listener = ft
            .insert_listener(IpProto::UDP, 53, 0, 1, "dnsd", &mut sram)
            .unwrap();
        let (conn, tier) = ft
            .insert(tuple(9999, 53), 1001, 42, "resolver", false, 0, &mut sram)
            .unwrap();
        assert_eq!(tier, FlowTier::Hot);
        assert_eq!(ft.lookup(&tuple(9999, 53), &mut sram).unwrap().id, conn);
        // A different remote port falls back to the listener.
        assert_eq!(ft.lookup(&tuple(1234, 53), &mut sram).unwrap().id, listener);
    }

    #[test]
    fn miss_is_counted() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        assert_eq!(ft.lookup(&tuple(1, 2), &mut sram), None);
        assert_eq!(ft.counters(), (1, 1));
    }

    #[test]
    fn lookup_batch_matches_sequential() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let (a, _) = insert(&mut ft, &mut sram, 1000, 53);
        let (b, _) = insert(&mut ft, &mut sram, 2000, 80);
        // Hashes chosen so sorted probe order differs from arrival order.
        let queries = vec![
            (9u32, tuple(2000, 80)),
            (1u32, tuple(1000, 53)),
            (5u32, tuple(7, 7)),
        ];
        let batch: Vec<_> = ft
            .lookup_batch(&queries, &mut sram)
            .into_iter()
            .map(|h| h.map(|h| h.id))
            .collect();
        assert_eq!(batch, vec![Some(b), Some(a), None]);
        let (lookups, misses) = ft.counters();
        assert_eq!((lookups, misses), (3, 1));
    }

    #[test]
    fn entries_carry_process_attribution() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let (id, _) = ft
            .insert(tuple(5000, 5432), 1001, 314, "postgres", true, 0, &mut sram)
            .unwrap();
        let e = ft.entry(id).unwrap();
        assert_eq!(e.uid, 1001);
        assert_eq!(e.pid, 314);
        assert_eq!(e.comm, "postgres");
        assert!(e.notify);
        assert_eq!(e.tier, FlowTier::Hot);
    }

    #[test]
    fn hot_entry_charges_slot_and_ring_context() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let (id, _) = insert(&mut ft, &mut sram, 1, 2);
        assert_eq!(sram.used_by(SramCategory::FlowTable), ENTRY_BYTES);
        assert_eq!(sram.used_by(SramCategory::RingContext), RING_CONTEXT_BYTES);
        assert!(ft.remove(id, &mut sram));
        assert_eq!(sram.used(), 0);
        assert!(!ft.remove(id, &mut sram));
    }

    #[test]
    fn untiered_sram_exhaustion_refuses_connection() {
        let mut sram = Sram::new(HOT_BYTES + HOT_BYTES / 2);
        let mut ft = FlowTable::new();
        insert(&mut ft, &mut sram, 1, 2);
        let err = ft
            .insert(tuple(3, 4), 0, 1, "b", false, 0, &mut sram)
            .unwrap_err();
        assert_eq!(err.category, SramCategory::RingContext);
        // The table did not register a half-installed connection, and the
        // failed attempt holds no SRAM.
        assert_eq!(ft.len(), 1);
        assert_eq!(sram.used(), HOT_BYTES);
        assert_eq!(ft.lookup(&tuple(3, 4), &mut sram), None);
    }

    #[test]
    fn tiered_insert_overflows_to_cold() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        ft.configure_cache(Some(FlowCacheConfig::lru(2)), 1, |_| 0, &mut sram);
        insert(&mut ft, &mut sram, 1, 80);
        insert(&mut ft, &mut sram, 2, 80);
        let (_, tier) = insert(&mut ft, &mut sram, 3, 80);
        assert_eq!(tier, FlowTier::Cold);
        assert_eq!((ft.num_hot(), ft.num_cold()), (2, 1));
        assert_eq!(
            sram.used_by(SramCategory::RingContext),
            2 * RING_CONTEXT_BYTES
        );
        assert!(ft.audit_tiers().is_empty(), "{:?}", ft.audit_tiers());
    }

    #[test]
    fn lru_cold_hit_promotes_and_evicts_lru_victim() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        ft.configure_cache(Some(FlowCacheConfig::lru(2)), 1, |_| 0, &mut sram);
        let (a, _) = insert(&mut ft, &mut sram, 1, 80);
        let (b, _) = insert(&mut ft, &mut sram, 2, 80);
        let (c, _) = insert(&mut ft, &mut sram, 3, 80); // cold
                                                        // Touch a so b becomes the LRU victim.
        assert_eq!(hit(&mut ft, &mut sram, 1, 80).tier, FlowTier::Hot);
        let h = hit(&mut ft, &mut sram, 3, 80);
        assert_eq!(h.tier, FlowTier::Cold); // paid the cold walk...
        assert!(h.promoted); // ...and was promoted for next time
        assert_eq!(h.demoted, Some((b, tuple(2, 80))));
        assert_eq!(ft.tier_of(c), Some(FlowTier::Hot));
        assert_eq!(ft.tier_of(a), Some(FlowTier::Hot));
        assert_eq!(ft.tier_of(b), Some(FlowTier::Cold));
        let s = ft.stats();
        assert_eq!((s.promotions, s.evictions, s.cold_hits), (1, 1, 1));
        assert!(ft.audit_tiers().is_empty(), "{:?}", ft.audit_tiers());
    }

    #[test]
    fn priority_aware_protects_high_prio_from_normal_churn() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        ft.configure_cache(
            Some(FlowCacheConfig::priority_aware(1, &[443])),
            1,
            |_| 0,
            &mut sram,
        );
        let (hi, _) = ft
            .insert(tuple(1, 443), 0, 1, "tls", false, 0, &mut sram)
            .unwrap();
        insert(&mut ft, &mut sram, 2, 80); // cold (table full)
                                           // A storm of normal-traffic cold hits cannot displace the
                                           // high-priority resident.
        for _ in 0..3 {
            let h = hit(&mut ft, &mut sram, 2, 80);
            assert!(!h.promoted);
        }
        assert_eq!(ft.tier_of(hi), Some(FlowTier::Hot));
        assert_eq!(ft.stats().promotion_refusals, 3);
        // But a high-priority cold entry displaces a normal resident.
        let mut ft2 = FlowTable::new();
        ft2.configure_cache(
            Some(FlowCacheConfig::priority_aware(1, &[443])),
            1,
            |_| 0,
            &mut sram,
        );
        let (norm, _) = ft2
            .insert(tuple(5, 80), 0, 1, "web", false, 0, &mut sram)
            .unwrap();
        let (hi2, _) = ft2
            .insert(tuple(6, 443), 0, 1, "tls", false, 0, &mut sram)
            .unwrap();
        let h = ft2.lookup(&tuple(6, 443), &mut sram).unwrap();
        assert!(h.promoted);
        assert_eq!(h.demoted.map(|d| d.0), Some(norm));
        assert_eq!(ft2.tier_of(hi2), Some(FlowTier::Hot));
    }

    #[test]
    fn pinned_mode_keeps_unpinned_cold_forever() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        ft.configure_cache(Some(FlowCacheConfig::pinned(4, &[22])), 1, |_| 0, &mut sram);
        let (ssh, t) = ft
            .insert(tuple(1, 22), 0, 1, "sshd", false, 0, &mut sram)
            .unwrap();
        assert_eq!(t, FlowTier::Hot);
        let (web, t) = insert(&mut ft, &mut sram, 2, 80);
        assert_eq!(t, FlowTier::Cold);
        // Free hot space, yet the unpinned flow never promotes.
        for _ in 0..3 {
            assert!(!hit(&mut ft, &mut sram, 2, 80).promoted);
        }
        assert_eq!(ft.tier_of(web), Some(FlowTier::Cold));
        assert_eq!(ft.tier_of(ssh), Some(FlowTier::Hot));
    }

    #[test]
    fn tiered_batch_with_promotions_matches_sequential() {
        type Observed = (Vec<Option<(ConnId, FlowTier, bool)>>, FlowStats, u64);
        let run = |batched: bool| -> Observed {
            let mut sram = Sram::new(1 << 20);
            let mut ft = FlowTable::new();
            ft.configure_cache(Some(FlowCacheConfig::lru(2)), 1, |_| 0, &mut sram);
            for sp in 1..=4 {
                insert(&mut ft, &mut sram, sp, 80);
            }
            // Repeated cold hits interleaved with hot ones: promotions and
            // demotions must land identically either way.
            let queries: Vec<(u32, FiveTuple)> = [3u16, 1, 3, 4, 2, 4, 9]
                .iter()
                .map(|&sp| (u32::from(sp) * 7 % 5, tuple(sp, 80)))
                .collect();
            let hits: Vec<Option<LookupHit>> = if batched {
                ft.lookup_batch(&queries, &mut sram)
            } else {
                queries
                    .iter()
                    .map(|(_, t)| ft.lookup(t, &mut sram))
                    .collect()
            };
            (
                hits.into_iter()
                    .map(|h| h.map(|h| (h.id, h.tier, h.promoted)))
                    .collect(),
                ft.stats(),
                sram.used(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn per_queue_slices_are_shard_local() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        // 3 slots over 2 queues: queue 0 gets 2, queue 1 gets 1.
        ft.configure_cache(
            Some(FlowCacheConfig::lru(3)),
            2,
            |t| t.src_port % 2,
            &mut sram,
        );
        for sp in [2u16, 4, 6] {
            let (_, tier) = ft
                .insert(tuple(sp, 80), 0, 1, "a", false, sp % 2, &mut sram)
                .unwrap();
            assert_eq!(
                tier,
                if sp == 6 {
                    FlowTier::Cold
                } else {
                    FlowTier::Hot
                }
            );
        }
        // Queue 1 has its own slot: churn on queue 0 cannot consume it.
        let (_, tier) = ft
            .insert(tuple(3, 80), 0, 1, "a", false, 1, &mut sram)
            .unwrap();
        assert_eq!(tier, FlowTier::Hot);
        assert_eq!(ft.num_hot_on_queue(0), 2);
        assert_eq!(ft.num_hot_on_queue(1), 1);
        // A cold hit on queue 0 evicts only queue-0 state.
        let h = hit(&mut ft, &mut sram, 6, 80);
        assert!(h.promoted);
        assert_eq!(ft.num_hot_on_queue(1), 1);
        assert!(ft.audit_tiers().is_empty(), "{:?}", ft.audit_tiers());
    }

    #[test]
    fn retier_demotes_and_promotes_deterministically() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        for sp in 1..=4 {
            insert(&mut ft, &mut sram, sp, 80);
        }
        let (hi, _) = ft
            .insert(tuple(9, 443), 0, 1, "tls", false, 0, &mut sram)
            .unwrap();
        // Committing a 2-slot priority policy keeps the high-prio entry
        // plus the most recent normal one.
        let report = ft.configure_cache(
            Some(FlowCacheConfig::priority_aware(2, &[443])),
            1,
            |_| 0,
            &mut sram,
        );
        assert_eq!(report.demoted.len(), 3);
        assert!(report.promoted.is_empty());
        assert_eq!(ft.tier_of(hi), Some(FlowTier::Hot));
        assert_eq!((ft.num_hot(), ft.num_cold()), (2, 3));
        assert_eq!(
            sram.used(),
            2 * HOT_BYTES,
            "demoted entries release slot + ring context"
        );
        // Dropping the policy re-promotes everything (SRAM permitting).
        let report = ft.configure_cache(None, 1, |_| 0, &mut sram);
        assert_eq!(report.promoted.len(), 3);
        assert_eq!((ft.num_hot(), ft.num_cold()), (5, 0));
        assert!(ft.audit_tiers().is_empty(), "{:?}", ft.audit_tiers());
    }

    #[test]
    fn restore_preserves_ids_and_avoids_collisions() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let (a, _) = insert(&mut ft, &mut sram, 1, 2);
        let (b, _) = ft
            .insert(tuple(3, 4), 0, 2, "b", true, 0, &mut sram)
            .unwrap();
        let lst = ft
            .insert_listener(IpProto::UDP, 53, 0, 3, "dnsd", &mut sram)
            .unwrap();
        // Crash: table wiped, SRAM reallocated fresh.
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        assert_eq!(
            ft.restore(b, tuple(3, 4), 0, 2, "b", true, 0, &mut sram),
            FlowTier::Hot
        );
        assert_eq!(
            ft.restore(a, tuple(1, 2), 0, 1, "a", false, 0, &mut sram),
            FlowTier::Hot
        );
        ft.restore_listener(lst, IpProto::UDP, 53, 0, 3, "dnsd", &mut sram)
            .unwrap();
        assert_eq!(ft.lookup(&tuple(1, 2), &mut sram).unwrap().id, a);
        assert_eq!(ft.lookup(&tuple(3, 4), &mut sram).unwrap().id, b);
        assert_eq!(ft.lookup(&tuple(9, 53), &mut sram).unwrap().id, lst);
        assert!(ft.entry(b).unwrap().notify);
        // Fresh inserts after restore never reuse a restored id.
        let (c, _) = insert(&mut ft, &mut sram, 5, 6);
        assert!(c.0 > a.0.max(b.0).max(lst.0));
    }

    #[test]
    fn restore_overflows_to_cold_not_panic() {
        // SRAM for exactly one hot entry: the second restore must land
        // cold (crash recovery cannot lose connections), and conservation
        // spans both tiers.
        let mut sram = Sram::new(HOT_BYTES + LISTENER_BYTES);
        let mut ft = FlowTable::new();
        assert_eq!(
            ft.restore(ConnId(0), tuple(1, 2), 0, 1, "a", false, 0, &mut sram),
            FlowTier::Hot
        );
        assert_eq!(
            ft.restore(ConnId(1), tuple(3, 4), 0, 1, "b", false, 0, &mut sram),
            FlowTier::Cold
        );
        assert_eq!((ft.num_hot(), ft.num_cold()), (1, 1));
        // Both connections still match.
        assert!(ft.lookup(&tuple(3, 4), &mut sram).is_some());
        assert!(ft.audit_tiers().is_empty(), "{:?}", ft.audit_tiers());
    }

    #[test]
    fn removed_connection_stops_matching() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let (id, _) = insert(&mut ft, &mut sram, 7, 8);
        ft.remove(id, &mut sram);
        assert_eq!(ft.lookup(&tuple(7, 8), &mut sram), None);
    }

    #[test]
    fn cold_remove_releases_nothing() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        ft.configure_cache(Some(FlowCacheConfig::lru(1)), 1, |_| 0, &mut sram);
        insert(&mut ft, &mut sram, 1, 80);
        let (cold, tier) = insert(&mut ft, &mut sram, 2, 80);
        assert_eq!(tier, FlowTier::Cold);
        let used = sram.used();
        assert!(ft.remove(cold, &mut sram));
        assert_eq!(sram.used(), used);
        assert_eq!(ft.num_cold(), 0);
    }
}
