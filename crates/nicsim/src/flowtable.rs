//! The NIC flow table: exact-match connection steering with process
//! attribution.
//!
//! Each entry binds a five-tuple to the rings of one connection *and* to
//! the (uid, pid, comm) of the process that opened it — the binding the
//! kernel control plane installs at `connect()`/`accept()` time, and the
//! reason the on-NIC dataplane can evaluate owner-aware policies that
//! hypervisor switches cannot (§2, §3). Listener entries (proto + local
//! port) catch first packets of inbound connections.
//!
//! Entries consume NIC SRAM ([`crate::sram`]): entry insertion can fail
//! with exhaustion, which is exactly the §5 scaling concern.

use std::collections::HashMap;

use pkt::{FiveTuple, IpProto};

use crate::sram::{Sram, SramCategory, SramError};

/// A connection identifier on the NIC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConnId(pub u64);

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// SRAM cost of one exact-match entry (key + state + ring context
/// pointers), approximating a hardware CAM/hash slot.
pub const ENTRY_BYTES: u64 = 128;

/// SRAM cost of one listener entry.
pub const LISTENER_BYTES: u64 = 32;

/// One flow-table entry.
#[derive(Clone, Debug)]
pub struct ConnEntry {
    /// The connection id.
    pub id: ConnId,
    /// Exact-match key (remote -> local direction as seen on RX).
    pub tuple: FiveTuple,
    /// Owning user.
    pub uid: u32,
    /// Owning process.
    pub pid: u32,
    /// Owning command name (kept for `ksniff`/`knetstat` display; the
    /// dataplane matches on uid/pid).
    pub comm: String,
    /// Whether the connection requested notifications (blocking I/O).
    pub notify: bool,
}

/// The flow table.
#[derive(Default)]
pub struct FlowTable {
    exact: HashMap<FiveTuple, ConnId>,
    listeners: HashMap<(IpProto, u16), ConnId>,
    entries: HashMap<ConnId, ConnEntry>,
    next_id: u64,
    lookups: u64,
    misses: u64,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Returns the number of exact-match entries.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Returns the number of exact-match entries (alias of `len`, named
    /// for audit readability).
    pub fn num_exact(&self) -> usize {
        self.exact.len()
    }

    /// Returns the number of listener entries.
    pub fn num_listeners(&self) -> usize {
        self.listeners.len()
    }

    /// Returns the total number of entry records (exact + listeners).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no connections are installed.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.listeners.is_empty()
    }

    /// Returns (lookups, misses).
    pub fn counters(&self) -> (u64, u64) {
        (self.lookups, self.misses)
    }

    /// Installs an exact-match connection, charging SRAM.
    ///
    /// `tuple` is the RX-direction key (remote source, local destination).
    pub fn insert(
        &mut self,
        tuple: FiveTuple,
        uid: u32,
        pid: u32,
        comm: &str,
        notify: bool,
        sram: &mut Sram,
    ) -> Result<ConnId, SramError> {
        sram.alloc(SramCategory::FlowTable, ENTRY_BYTES)?;
        let id = ConnId(self.next_id);
        self.next_id += 1;
        self.exact.insert(tuple, id);
        self.entries.insert(
            id,
            ConnEntry {
                id,
                tuple,
                uid,
                pid,
                comm: comm.to_string(),
                notify,
            },
        );
        Ok(id)
    }

    /// Reinstalls an exact-match connection under a *caller-chosen* id —
    /// the crash-recovery path, where the kernel re-populates a wiped
    /// table from its own connection records and the original ids must
    /// survive (ring keys, doorbell registers and process handles all
    /// reference them). Fails if the id or tuple is already taken.
    /// `next_id` is bumped past `id` so later fresh inserts never collide.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        &mut self,
        id: ConnId,
        tuple: FiveTuple,
        uid: u32,
        pid: u32,
        comm: &str,
        notify: bool,
        sram: &mut Sram,
    ) -> Result<(), SramError> {
        assert!(
            !self.entries.contains_key(&id) && !self.exact.contains_key(&tuple),
            "restore must target a free id and tuple"
        );
        sram.alloc(SramCategory::FlowTable, ENTRY_BYTES)?;
        self.next_id = self.next_id.max(id.0 + 1);
        self.exact.insert(tuple, id);
        self.entries.insert(
            id,
            ConnEntry {
                id,
                tuple,
                uid,
                pid,
                comm: comm.to_string(),
                notify,
            },
        );
        Ok(())
    }

    /// Reinstalls a listener under a caller-chosen id (crash recovery;
    /// see [`FlowTable::restore`]).
    #[allow(clippy::too_many_arguments)]
    pub fn restore_listener(
        &mut self,
        id: ConnId,
        proto: IpProto,
        port: u16,
        uid: u32,
        pid: u32,
        comm: &str,
        sram: &mut Sram,
    ) -> Result<(), SramError> {
        assert!(
            !self.entries.contains_key(&id) && !self.listeners.contains_key(&(proto, port)),
            "restore must target a free id and listener key"
        );
        sram.alloc(SramCategory::FlowTable, LISTENER_BYTES)?;
        self.next_id = self.next_id.max(id.0 + 1);
        self.listeners.insert((proto, port), id);
        self.entries.insert(
            id,
            ConnEntry {
                id,
                tuple: FiveTuple {
                    src_ip: std::net::Ipv4Addr::UNSPECIFIED,
                    dst_ip: std::net::Ipv4Addr::UNSPECIFIED,
                    src_port: 0,
                    dst_port: port,
                    proto,
                },
                uid,
                pid,
                comm: comm.to_string(),
                notify: false,
            },
        );
        Ok(())
    }

    /// Installs a listener for `(proto, local_port)`, charging SRAM.
    pub fn insert_listener(
        &mut self,
        proto: IpProto,
        port: u16,
        uid: u32,
        pid: u32,
        comm: &str,
        sram: &mut Sram,
    ) -> Result<ConnId, SramError> {
        sram.alloc(SramCategory::FlowTable, LISTENER_BYTES)?;
        let id = ConnId(self.next_id);
        self.next_id += 1;
        self.listeners.insert((proto, port), id);
        self.entries.insert(
            id,
            ConnEntry {
                id,
                // Listener entries have no remote endpoint; use a zeroed
                // tuple with only the local port meaningful.
                tuple: FiveTuple {
                    src_ip: std::net::Ipv4Addr::UNSPECIFIED,
                    dst_ip: std::net::Ipv4Addr::UNSPECIFIED,
                    src_port: 0,
                    dst_port: port,
                    proto,
                },
                uid,
                pid,
                comm: comm.to_string(),
                notify: false,
            },
        );
        Ok(id)
    }

    /// Removes a connection, returning SRAM.
    pub fn remove(&mut self, id: ConnId, sram: &mut Sram) -> bool {
        let Some(entry) = self.entries.remove(&id) else {
            return false;
        };
        if self.exact.remove(&entry.tuple).is_some() {
            sram.release(SramCategory::FlowTable, ENTRY_BYTES);
        } else if self
            .listeners
            .remove(&(entry.tuple.proto, entry.tuple.dst_port))
            .is_some()
        {
            sram.release(SramCategory::FlowTable, LISTENER_BYTES);
        }
        true
    }

    /// Looks up the connection for an RX-direction tuple: exact match
    /// first, then a listener on the destination port.
    pub fn lookup(&mut self, tuple: &FiveTuple) -> Option<ConnId> {
        self.lookups += 1;
        let hit = self
            .exact
            .get(tuple)
            .or_else(|| self.listeners.get(&(tuple.proto, tuple.dst_port)))
            .copied();
        if hit.is_none() {
            self.misses += 1;
        }
        hit
    }

    /// Batched lookup: probes the queries in flow-hash order — the way
    /// hardware bank-sorts a burst to maximize SRAM locality — and
    /// returns results in the caller's original order.
    ///
    /// Lookups never mutate the steering state and the hit/miss counters
    /// are commutative sums, so the outcome (results *and* counters) is
    /// identical to issuing [`FlowTable::lookup`] once per query in
    /// arrival order.
    pub fn lookup_batch(&mut self, queries: &[(u32, FiveTuple)]) -> Vec<Option<ConnId>> {
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by_key(|&i| queries[i].0);
        let mut results = vec![None; queries.len()];
        // After the hash sort, a same-flow burst sits in one contiguous
        // run: probe the table once per run and reuse the steering
        // decision for the rest (counters still tick per query, so the
        // hit/miss totals match the sequential path exactly).
        let mut prev: Option<(usize, Option<ConnId>)> = None;
        for i in order {
            results[i] = match prev {
                Some((p, hit)) if queries[p].1 == queries[i].1 => {
                    self.lookups += 1;
                    if hit.is_none() {
                        self.misses += 1;
                    }
                    hit
                }
                _ => self.lookup(&queries[i].1),
            };
            prev = Some((i, results[i]));
        }
        results
    }

    /// Returns the entry for a connection id.
    pub fn entry(&self, id: ConnId) -> Option<&ConnEntry> {
        self.entries.get(&id)
    }

    /// Iterates over all entries (for `knetstat`).
    pub fn entries(&self) -> impl Iterator<Item = &ConnEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn tuple(sp: u16, dp: u16) -> FiveTuple {
        FiveTuple::udp(addr("10.0.0.2"), sp, addr("10.0.0.1"), dp)
    }

    #[test]
    fn exact_match_beats_listener() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let listener = ft
            .insert_listener(IpProto::UDP, 53, 0, 1, "dnsd", &mut sram)
            .unwrap();
        let conn = ft
            .insert(tuple(9999, 53), 1001, 42, "resolver", false, &mut sram)
            .unwrap();
        assert_eq!(ft.lookup(&tuple(9999, 53)), Some(conn));
        // A different remote port falls back to the listener.
        assert_eq!(ft.lookup(&tuple(1234, 53)), Some(listener));
    }

    #[test]
    fn miss_is_counted() {
        let mut ft = FlowTable::new();
        assert_eq!(ft.lookup(&tuple(1, 2)), None);
        assert_eq!(ft.counters(), (1, 1));
    }

    #[test]
    fn lookup_batch_matches_sequential() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let a = ft
            .insert(tuple(1000, 53), 0, 1, "a", false, &mut sram)
            .unwrap();
        let b = ft
            .insert(tuple(2000, 80), 0, 2, "b", false, &mut sram)
            .unwrap();
        // Hashes chosen so sorted probe order differs from arrival order.
        let queries = vec![
            (9u32, tuple(2000, 80)),
            (1u32, tuple(1000, 53)),
            (5u32, tuple(7, 7)),
        ];
        let batch = ft.lookup_batch(&queries);
        assert_eq!(batch, vec![Some(b), Some(a), None]);
        let (lookups, misses) = ft.counters();
        assert_eq!((lookups, misses), (3, 1));
    }

    #[test]
    fn entries_carry_process_attribution() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let id = ft
            .insert(tuple(5000, 5432), 1001, 314, "postgres", true, &mut sram)
            .unwrap();
        let e = ft.entry(id).unwrap();
        assert_eq!(e.uid, 1001);
        assert_eq!(e.pid, 314);
        assert_eq!(e.comm, "postgres");
        assert!(e.notify);
    }

    #[test]
    fn sram_charged_and_released() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let id = ft.insert(tuple(1, 2), 0, 1, "a", false, &mut sram).unwrap();
        assert_eq!(sram.used_by(SramCategory::FlowTable), ENTRY_BYTES);
        assert!(ft.remove(id, &mut sram));
        assert_eq!(sram.used_by(SramCategory::FlowTable), 0);
        assert!(!ft.remove(id, &mut sram));
    }

    #[test]
    fn sram_exhaustion_refuses_connection() {
        let mut sram = Sram::new(ENTRY_BYTES + ENTRY_BYTES / 2);
        let mut ft = FlowTable::new();
        ft.insert(tuple(1, 2), 0, 1, "a", false, &mut sram).unwrap();
        let err = ft
            .insert(tuple(3, 4), 0, 1, "b", false, &mut sram)
            .unwrap_err();
        assert_eq!(err.category, SramCategory::FlowTable);
        // The table did not register a half-installed connection.
        assert_eq!(ft.len(), 1);
        assert_eq!(ft.lookup(&tuple(3, 4)), None);
    }

    #[test]
    fn restore_preserves_ids_and_avoids_collisions() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let a = ft.insert(tuple(1, 2), 0, 1, "a", false, &mut sram).unwrap();
        let b = ft.insert(tuple(3, 4), 0, 2, "b", true, &mut sram).unwrap();
        let lst = ft
            .insert_listener(IpProto::UDP, 53, 0, 3, "dnsd", &mut sram)
            .unwrap();
        // Crash: table wiped, SRAM reallocated fresh.
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        ft.restore(b, tuple(3, 4), 0, 2, "b", true, &mut sram)
            .unwrap();
        ft.restore(a, tuple(1, 2), 0, 1, "a", false, &mut sram)
            .unwrap();
        ft.restore_listener(lst, IpProto::UDP, 53, 0, 3, "dnsd", &mut sram)
            .unwrap();
        assert_eq!(ft.lookup(&tuple(1, 2)), Some(a));
        assert_eq!(ft.lookup(&tuple(3, 4)), Some(b));
        assert_eq!(ft.lookup(&tuple(9, 53)), Some(lst));
        assert!(ft.entry(b).unwrap().notify);
        // Fresh inserts after restore never reuse a restored id.
        let c = ft.insert(tuple(5, 6), 0, 4, "c", false, &mut sram).unwrap();
        assert!(c.0 > a.0.max(b.0).max(lst.0));
    }

    #[test]
    fn removed_connection_stops_matching() {
        let mut sram = Sram::new(1 << 20);
        let mut ft = FlowTable::new();
        let id = ft.insert(tuple(7, 8), 0, 1, "a", false, &mut sram).unwrap();
        ft.remove(id, &mut sram);
        assert_eq!(ft.lookup(&tuple(7, 8)), None);
    }
}
