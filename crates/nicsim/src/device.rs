//! The SmartNIC device model.
//!
//! [`SmartNic`] composes the flow table, SRAM allocator, register file,
//! overlay program slots, notification queues, sniffer tap, transmit
//! scheduler, and link into the on-path dataplane of Figure 1. The
//! *control-plane* methods (`load_program`, `open_connection`,
//! `enable_sniffer`, …) are the operations only the kernel may invoke —
//! callers gate them behind the privileged register path. The
//! *dataplane* methods (`rx`, `tx_enqueue`, `tx_poll`) are what every
//! packet traverses.

use std::collections::HashMap;

use overlay::{verify, CompiledProgram, PktCtx, Program, Verdict, Vm};
use pkt::{FiveTuple, FrameMeta, IpProto, Packet, PktError};
use qdisc::{MultiQueue, QPkt, Qdisc};
use sim::{CrashInjector, Dur, Link, Time};
use telemetry::{
    Comm, DropCause, HistId, Owner, RecoveryKind, Registry, Stage, Telemetry, TraceEvent,
    TraceVerdict,
};

use crate::flowtable::{
    ConnEntry, ConnId, FlowCacheConfig, FlowTable, FlowTier, LookupHit, RetierReport,
};
use crate::notify::{Notification, NotifyKind, NotifyQueue};
use crate::pipeline::{
    DropReason, NicConfig, RxDisposition, RxResult, SlowPathReason, TxDeparture, TxDisposition,
};
use crate::regs::RegFile;
use crate::rss::{RssError, RssTable, RSS_NUM_QUEUES_REG};
use crate::sniff::{Direction, Sniffer, SnifferFilter};
use crate::sram::{Sram, SramCategory, SramError};

pub use crate::flowtable::RING_CONTEXT_BYTES;

/// Maximum accounting programs loadable at once.
pub const MAX_ACCOUNTING_SLOTS: usize = 4;

/// A programmable slot on the dataplane.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgramSlot {
    /// Runs on every ingress packet; verdict is enforced.
    IngressFilter,
    /// Runs on every egress packet; verdict is enforced.
    EgressFilter,
    /// Runs on every egress packet; `class N` verdicts pick the scheduler
    /// class.
    Classifier,
}

/// Whether the device is operational.
///
/// A crashed NIC ([`DeviceState::Dead`]) has lost *all* volatile state —
/// flow table, ring contexts, overlay programs and maps, RSS indirection,
/// TX scheduler contents, notification queues, MMIO register file — and
/// every dataplane and control operation fails until the kernel drives a
/// [`SmartNic::reset`]. Recovery is the kernel's job: reset brings the
/// device back at boot configuration, and the control plane's reconcile
/// path reinstalls the committed policy bundle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceState {
    /// Operating normally (possibly frozen for a reprogram/reset window).
    Alive,
    /// Crashed: volatile state gone, everything gated until reset.
    Dead,
}

/// Kernel-region MMIO register holding the installed policy generation.
/// Written only by the control plane's commit step; apps reading or
/// writing it fault. The audit third ledger cross-checks it against the
/// kernel's policy store.
pub const POLICY_GENERATION_REG: u64 = 0x20_0000;

/// Errors from NIC operations.
#[derive(Debug)]
pub enum NicError {
    /// A program failed verification at load time.
    Verify(overlay::VerifyError),
    /// On-board memory exhausted.
    Sram(SramError),
    /// The dataplane is down for a bitstream reprogram.
    Reprogramming {
        /// When it comes back.
        until: Time,
    },
    /// Unknown connection.
    NoSuchConn(ConnId),
    /// The TX scheduler refused the packet.
    TxQueueFull,
    /// No accounting slot free.
    AccountingSlotsFull,
    /// Map access outside any loaded program's maps.
    NoSuchMap,
    /// A compiled artifact's fingerprint does not match the program it
    /// claims to implement — swapping it in would desynchronize the
    /// audit ledger, so the load is refused.
    ArtifactMismatch {
        /// The program's fingerprint.
        want: u64,
        /// The artifact's fingerprint.
        got: u64,
    },
    /// Scheduler weights rejected (empty, non-finite, or non-positive).
    InvalidWeights {
        /// Index of the offending weight (0 for an empty list).
        index: usize,
        /// The offending value (0.0 for an empty list).
        weight: f64,
    },
    /// RSS configuration rejected (bad queue count, table size, or a
    /// table entry naming a nonexistent queue).
    Rss(RssError),
    /// The device has crashed and must be reset before any operation.
    Dead,
}

impl std::fmt::Display for NicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NicError::Verify(e) => write!(f, "program rejected: {e}"),
            NicError::Sram(e) => write!(f, "{e}"),
            NicError::Reprogramming { until } => {
                write!(f, "dataplane reprogramming until {until}")
            }
            NicError::NoSuchConn(id) => write!(f, "no such connection {id}"),
            NicError::TxQueueFull => write!(f, "TX scheduler queue full"),
            NicError::AccountingSlotsFull => write!(f, "all accounting slots in use"),
            NicError::NoSuchMap => write!(f, "no such program map"),
            NicError::ArtifactMismatch { want, got } => {
                write!(
                    f,
                    "compiled artifact fingerprint {got:#x} does not match program {want:#x}"
                )
            }
            NicError::InvalidWeights { index, weight } => {
                write!(
                    f,
                    "scheduler weight {weight} at index {index} must be finite and positive"
                )
            }
            NicError::Rss(e) => write!(f, "RSS configuration rejected: {e}"),
            NicError::Dead => write!(f, "device crashed; reset required"),
        }
    }
}

impl std::error::Error for NicError {}

impl From<SramError> for NicError {
    fn from(e: SramError) -> NicError {
        NicError::Sram(e)
    }
}

impl From<RssError> for NicError {
    fn from(e: RssError) -> NicError {
        NicError::Rss(e)
    }
}

/// Dataplane counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NicStats {
    /// Ingress frames offered.
    pub rx_frames: u64,
    /// Ingress frames delivered to rings.
    pub rx_delivered: u64,
    /// Ingress frames punted to software.
    pub rx_slowpath: u64,
    /// Ingress frames dropped by filters.
    pub rx_filtered: u64,
    /// Ingress frames dropped because they failed to parse (truncated,
    /// bad ethertype, inconsistent lengths, bad IPv4 header checksum).
    pub rx_malformed: u64,
    /// Ingress frames that parsed but failed TCP/UDP checksum
    /// verification (payload corruption caught at the parser stage).
    pub rx_bad_checksum: u64,
    /// Frames dropped while reprogramming.
    pub dropped_reprogramming: u64,
    /// Egress frames offered.
    pub tx_frames: u64,
    /// Egress frames dropped by filters.
    pub tx_filtered: u64,
    /// Egress frames transmitted.
    pub tx_sent: u64,
    /// Overlay program swaps performed.
    pub program_swaps: u64,
    /// Bitstream reprograms performed.
    pub bitstream_reprograms: u64,
    /// Device crashes (volatile state wiped).
    pub crashes: u64,
    /// Kernel-driven resets after a crash.
    pub resets: u64,
    /// Frames offered (RX or TX) while the device was dead.
    pub dropped_dead: u64,
    /// Frames lost from the TX scheduler when the device crashed (they
    /// were already counted queued; the crash purges them as drops).
    pub tx_crash_purged: u64,
}

impl NicStats {
    /// Registers every counter into `reg` under `nic.*` keys — the
    /// unified-registry view of this struct.
    pub fn fill_registry(&self, reg: &mut Registry) {
        reg.set_counter("nic.rx.frames", self.rx_frames);
        reg.set_counter("nic.rx.delivered", self.rx_delivered);
        reg.set_counter("nic.rx.slowpath", self.rx_slowpath);
        reg.set_counter("nic.rx.filtered", self.rx_filtered);
        reg.set_counter("nic.rx.malformed", self.rx_malformed);
        reg.set_counter("nic.rx.bad_checksum", self.rx_bad_checksum);
        reg.set_counter("nic.dropped_reprogramming", self.dropped_reprogramming);
        reg.set_counter("nic.tx.frames", self.tx_frames);
        reg.set_counter("nic.tx.filtered", self.tx_filtered);
        reg.set_counter("nic.tx.sent", self.tx_sent);
        reg.set_counter("nic.program_swaps", self.program_swaps);
        reg.set_counter("nic.bitstream_reprograms", self.bitstream_reprograms);
        reg.set_counter("nic.crashes", self.crashes);
        reg.set_counter("nic.resets", self.resets);
        reg.set_counter("nic.dropped_dead", self.dropped_dead);
        reg.set_counter("nic.tx_crash_purged", self.tx_crash_purged);
    }
}

/// Pre-registered stage-latency histograms for the RX pipeline.
struct NicHists {
    parse: HistId,
    lookup: HistId,
    overlay: HistId,
    latency: HistId,
}

fn register_nic_hists(tel: &Telemetry) -> NicHists {
    NicHists {
        parse: tel.register_hist("lat.nic.parse"),
        lookup: tel.register_hist("lat.nic.lookup"),
        overlay: tel.register_hist("lat.nic.overlay"),
        latency: tel.register_hist("lat.nic.rx_total"),
    }
}

/// Builds one lifecycle event (shared by every emission site; only runs
/// when tracing is enabled, via [`Telemetry::emit`]'s closure).
fn trace_ev(
    frame_id: u64,
    at: Time,
    stage: Stage,
    verdict: TraceVerdict,
    meta: Option<&FrameMeta>,
    len: u32,
    attr: Option<(u32, u32, &Comm)>,
) -> TraceEvent {
    TraceEvent {
        frame_id,
        at,
        stage,
        verdict,
        tuple: meta.and_then(|m| m.tuple),
        len,
        owner: attr.map(|(uid, pid, comm)| Owner::new(uid, pid, comm)),
        generation: 0,
    }
}

/// The SmartNIC.
pub struct SmartNic {
    cfg: NicConfig,
    /// On-board memory.
    pub sram: Sram,
    /// The flow table.
    pub flows: FlowTable,
    /// The MMIO register file.
    pub regs: RegFile,
    /// The capture tap.
    pub sniffer: Sniffer,
    link: Link,
    ingress_filter: Option<Vm>,
    egress_filter: Option<Vm>,
    classifier: Option<Vm>,
    accounting: Vec<Vm>,
    scheduler: MultiQueue,
    /// The active RSS steering table; programmed only via
    /// [`SmartNic::configure_rss`] (the control-plane path).
    rss: RssTable,
    notify_queues: HashMap<u32, NotifyQueue>,
    pipeline_free: Time,
    frozen_until: Time,
    /// Whether the device has crashed and awaits a kernel reset.
    dead: bool,
    /// Deterministic crash schedule, ticked once per dataplane or
    /// crash-eligible control op.
    crash_faults: CrashInjector,
    next_pkt_id: u64,
    /// Scheduler packet id → (originating connection, telemetry frame
    /// id), so departures can be attributed and traced.
    tx_pending: HashMap<u64, (ConnId, u64)>,
    stats: NicStats,
    tel: Telemetry,
    tel_hists: NicHists,
    /// Counter snapshot taken when the telemetry hub was attached (or the
    /// trace last restarted); audit cross-checks compare the ledger
    /// against deltas from here.
    tel_baseline: NicStats,
}

impl SmartNic {
    /// Creates a NIC with the given configuration, `cfg.num_queues`
    /// RX/TX queue pairs behind a uniform boot-time RSS table, and a
    /// single-class (FIFO-equivalent) scheduler per queue.
    pub fn new(cfg: NicConfig) -> SmartNic {
        let sram = Sram::new(cfg.sram_bytes);
        let link = Link::new(cfg.gbps, cfg.propagation);
        let scheduler = MultiQueue::new(cfg.num_queues, &[1.0], cfg.tx_queue_limit);
        let rss = RssTable::uniform(cfg.num_queues);
        let tel = Telemetry::new();
        let tel_hists = register_nic_hists(&tel);
        let mut regs = RegFile::new();
        regs.define_kernel(POLICY_GENERATION_REG);
        regs.define_kernel(RSS_NUM_QUEUES_REG);
        regs.write(RSS_NUM_QUEUES_REG, cfg.num_queues as u64, None)
            .expect("kernel write to a kernel register");
        SmartNic {
            sniffer: Sniffer::new(cfg.sniffer_capacity),
            sram,
            flows: FlowTable::new(),
            regs,
            link,
            ingress_filter: None,
            egress_filter: None,
            classifier: None,
            accounting: Vec::new(),
            scheduler,
            rss,
            notify_queues: HashMap::new(),
            pipeline_free: Time::ZERO,
            frozen_until: Time::ZERO,
            dead: false,
            crash_faults: CrashInjector::never(),
            next_pkt_id: 0,
            tx_pending: HashMap::new(),
            stats: NicStats::default(),
            tel,
            tel_hists,
            tel_baseline: NicStats::default(),
            cfg,
        }
    }

    /// Attaches a shared telemetry hub (replacing the NIC's private,
    /// disabled default), re-registers the stage histograms there, and
    /// snapshots current counters as the audit baseline.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel_hists = register_nic_hists(&tel);
        self.tel = tel;
        self.tel_baseline = self.stats;
    }

    /// Returns the telemetry hub handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Re-snapshots the counters as the baseline the telemetry ledger is
    /// audited against. Call when (re)starting a trace mid-run, after
    /// clearing the hub.
    pub fn mark_telemetry_baseline(&mut self) {
        self.tel_baseline = self.stats;
    }

    /// Registers the NIC's counters, scheduler stats, sniffer stats and
    /// SRAM occupancy into the unified metrics registry.
    pub fn fill_registry(&self, reg: &mut Registry) {
        self.stats.fill_registry(reg);
        self.scheduler.stats().fill_registry(reg, "nic.sched");
        for (i, b) in self.scheduler_class_bytes().iter().enumerate() {
            reg.set_counter(&format!("nic.sched.class{i}.bytes_sent"), *b);
        }
        let (captured, dropped) = self.sniffer.counters();
        reg.set_counter("nic.sniffer.captured", captured);
        reg.set_counter("nic.sniffer.dropped", dropped);
        reg.set_counter("nic.rss.queues", self.rss.num_queues() as u64);
        reg.set_gauge(
            "nic.sram.used_frac",
            self.sram.used() as f64 / self.cfg.sram_bytes as f64,
        );
        reg.set_counter("nic.flows.exact", self.flows.num_exact() as u64);
        reg.set_counter("nic.flows.listeners", self.flows.num_listeners() as u64);
        let fs = self.flows.stats();
        reg.set_counter("flowtable.hot_entries", self.flows.num_hot() as u64);
        reg.set_counter("flowtable.cold_entries", self.flows.num_cold() as u64);
        reg.set_counter("flowtable.promotions", fs.promotions);
        reg.set_counter("flowtable.evictions", fs.evictions);
        reg.set_counter("flowtable.cold_hits", fs.cold_hits);
        reg.set_counter("flowtable.promotion_refusals", fs.promotion_refusals);
    }

    /// Returns the configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Returns dataplane counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Returns the line rate link model.
    pub fn link(&self) -> &Link {
        &self.link
    }

    // ------------------------------------------------------------------
    // Control plane (kernel-only; callers enforce privilege via regs)
    // ------------------------------------------------------------------

    fn charge_program(&mut self, program: &Program) -> Result<(), NicError> {
        verify(program).map_err(NicError::Verify)?;
        let insn_bytes = program.total_insns() as u64 * 8;
        let map_bytes = program.sram_bytes() - insn_bytes;
        self.sram.alloc(SramCategory::Program, insn_bytes)?;
        if let Err(e) = self.sram.alloc(SramCategory::Maps, map_bytes) {
            self.sram.release(SramCategory::Program, insn_bytes);
            return Err(e.into());
        }
        Ok(())
    }

    fn release_program(&mut self, vm: &Vm) {
        let insn_bytes = vm.program().total_insns() as u64 * 8;
        let map_bytes = vm.program().sram_bytes() - insn_bytes;
        self.sram.release(SramCategory::Program, insn_bytes);
        self.sram.release(SramCategory::Maps, map_bytes);
    }

    /// Loads (or hot-swaps) a program into `slot`, returning the control
    /// time consumed. The dataplane keeps running — this is the overlay's
    /// whole point (§4.4).
    pub fn load_program(
        &mut self,
        slot: ProgramSlot,
        program: Program,
        now: Time,
    ) -> Result<Dur, NicError> {
        self.tick_crash(now);
        self.check_dead()?;
        self.check_frozen(now)?;
        self.charge_program(&program)?;
        let vm = Vm::new(program);
        let old = match slot {
            ProgramSlot::IngressFilter => self.ingress_filter.replace(vm),
            ProgramSlot::EgressFilter => self.egress_filter.replace(vm),
            ProgramSlot::Classifier => self.classifier.replace(vm),
        };
        if let Some(old) = old {
            self.release_program(&old);
        }
        self.stats.program_swaps += 1;
        Ok(self.cfg.overlay_swap_cost)
    }

    /// Loads (or hot-swaps) a program into `slot` together with its
    /// AOT-compiled artifact, so every packet takes the native-closure
    /// path instead of the interpreter. The artifact must carry the
    /// program's own fingerprint — a stale or mismatched artifact is
    /// refused before anything is swapped, keeping the audit ledger
    /// coherent.
    pub fn load_program_compiled(
        &mut self,
        slot: ProgramSlot,
        program: Program,
        artifact: std::sync::Arc<CompiledProgram>,
        now: Time,
    ) -> Result<Dur, NicError> {
        self.tick_crash(now);
        self.check_dead()?;
        self.check_frozen(now)?;
        if artifact.fingerprint() != program.fingerprint() {
            return Err(NicError::ArtifactMismatch {
                want: program.fingerprint(),
                got: artifact.fingerprint(),
            });
        }
        self.charge_program(&program)?;
        let vm = Vm::with_compiled(program, artifact);
        let old = match slot {
            ProgramSlot::IngressFilter => self.ingress_filter.replace(vm),
            ProgramSlot::EgressFilter => self.egress_filter.replace(vm),
            ProgramSlot::Classifier => self.classifier.replace(vm),
        };
        if let Some(old) = old {
            self.release_program(&old);
        }
        self.stats.program_swaps += 1;
        Ok(self.cfg.overlay_swap_cost)
    }

    /// Unloads the program in `slot` (reverting to pass-through).
    pub fn unload_program(&mut self, slot: ProgramSlot) {
        let old = match slot {
            ProgramSlot::IngressFilter => self.ingress_filter.take(),
            ProgramSlot::EgressFilter => self.egress_filter.take(),
            ProgramSlot::Classifier => self.classifier.take(),
        };
        if let Some(old) = old {
            self.release_program(&old);
        }
    }

    /// Adds a passive accounting program (runs on every packet, verdict
    /// ignored). Returns its slot index.
    pub fn add_accounting(&mut self, program: Program, now: Time) -> Result<usize, NicError> {
        self.tick_crash(now);
        self.check_dead()?;
        self.check_frozen(now)?;
        if self.accounting.len() >= MAX_ACCOUNTING_SLOTS {
            return Err(NicError::AccountingSlotsFull);
        }
        self.charge_program(&program)?;
        self.accounting.push(Vm::new(program));
        self.stats.program_swaps += 1;
        Ok(self.accounting.len() - 1)
    }

    /// Adds a passive accounting program with its AOT-compiled artifact
    /// (see [`SmartNic::load_program_compiled`]). Returns its slot index.
    pub fn add_accounting_compiled(
        &mut self,
        program: Program,
        artifact: std::sync::Arc<CompiledProgram>,
        now: Time,
    ) -> Result<usize, NicError> {
        self.tick_crash(now);
        self.check_dead()?;
        self.check_frozen(now)?;
        if self.accounting.len() >= MAX_ACCOUNTING_SLOTS {
            return Err(NicError::AccountingSlotsFull);
        }
        if artifact.fingerprint() != program.fingerprint() {
            return Err(NicError::ArtifactMismatch {
                want: program.fingerprint(),
                got: artifact.fingerprint(),
            });
        }
        self.charge_program(&program)?;
        self.accounting.push(Vm::with_compiled(program, artifact));
        self.stats.program_swaps += 1;
        Ok(self.accounting.len() - 1)
    }

    /// Removes an accounting program by slot index.
    pub fn remove_accounting(&mut self, index: usize) -> bool {
        if index < self.accounting.len() {
            let vm = self.accounting.remove(index);
            self.release_program(&vm);
            true
        } else {
            false
        }
    }

    fn slot_vm_mut(&mut self, slot: ProgramSlot) -> Option<&mut Vm> {
        match slot {
            ProgramSlot::IngressFilter => self.ingress_filter.as_mut(),
            ProgramSlot::EgressFilter => self.egress_filter.as_mut(),
            ProgramSlot::Classifier => self.classifier.as_mut(),
        }
    }

    /// Writes a map entry in a loaded program (MMIO data update: "simply
    /// require injecting new data into memory on the SmartNIC", §4.4).
    pub fn fill_map(
        &mut self,
        slot: ProgramSlot,
        map: usize,
        key: usize,
        value: u64,
    ) -> Result<(), NicError> {
        self.check_dead()?;
        let vm = self.slot_vm_mut(slot).ok_or(NicError::NoSuchMap)?;
        if vm.map_set(map, key, value) {
            Ok(())
        } else {
            Err(NicError::NoSuchMap)
        }
    }

    fn slot_vm(&self, slot: ProgramSlot) -> Option<&Vm> {
        match slot {
            ProgramSlot::IngressFilter => self.ingress_filter.as_ref(),
            ProgramSlot::EgressFilter => self.egress_filter.as_ref(),
            ProgramSlot::Classifier => self.classifier.as_ref(),
        }
    }

    /// Reads a map entry from a loaded program.
    pub fn read_map(&self, slot: ProgramSlot, map: usize, key: usize) -> Option<u64> {
        self.slot_vm(slot)?.map_get(map, key)
    }

    /// Reads a map entry from an accounting program.
    pub fn read_accounting_map(&self, index: usize, map: usize, key: usize) -> Option<u64> {
        self.accounting.get(index)?.map_get(map, key)
    }

    /// Returns whether `slot` currently holds a program.
    pub fn program_loaded(&self, slot: ProgramSlot) -> bool {
        self.slot_vm(slot).is_some()
    }

    /// Returns whether the program in `slot` runs compiled (`Some(false)`
    /// = interpreter fallback, `None` = empty slot).
    pub fn program_compiled(&self, slot: ProgramSlot) -> Option<bool> {
        self.slot_vm(slot).map(Vm::is_compiled)
    }

    /// Reads one slot of a per-flow scratch record from the program in
    /// `slot` (`ktrace` forensics: per-flow overlay state by packed flow
    /// key).
    pub fn read_flow_slot(
        &self,
        slot: ProgramSlot,
        map: usize,
        flow_key: u128,
        idx: usize,
    ) -> Option<u64> {
        self.slot_vm(slot)?.flow_get(map, flow_key, idx)
    }

    /// All named overlay counters across every loaded program —
    /// `(program name, counter name, value)` triples in slot order, the
    /// `ktrace`/metrics export surface.
    pub fn overlay_counters(&self) -> Vec<(String, String, u64)> {
        let mut out = Vec::new();
        let slots = [
            self.ingress_filter.as_ref(),
            self.egress_filter.as_ref(),
            self.classifier.as_ref(),
        ];
        for vm in slots.into_iter().flatten().chain(self.accounting.iter()) {
            let program = vm.program().name.clone();
            for (name, value) in vm.counters() {
                out.push((program.clone(), name, value));
            }
        }
        out
    }

    /// Content fingerprint of the program resident in `slot`, if any
    /// (the control plane's audit compares this against its policy store).
    pub fn program_fingerprint(&self, slot: ProgramSlot) -> Option<u64> {
        self.slot_vm(slot).map(|vm| vm.program().fingerprint())
    }

    /// Number of resident accounting programs.
    pub fn num_accounting(&self) -> usize {
        self.accounting.len()
    }

    /// Content fingerprints of resident accounting programs, in slot
    /// order.
    pub fn accounting_fingerprints(&self) -> Vec<u64> {
        self.accounting
            .iter()
            .map(|vm| vm.program().fingerprint())
            .collect()
    }

    /// Configures the TX scheduler with per-class weights. Rejects empty,
    /// non-finite, or non-positive weights — a NaN weight would silently
    /// wedge the WFQ virtual-time arithmetic.
    pub fn configure_scheduler(&mut self, weights: &[f64]) -> Result<(), NicError> {
        self.check_dead()?;
        if weights.is_empty() {
            return Err(NicError::InvalidWeights {
                index: 0,
                weight: 0.0,
            });
        }
        if let Some((index, &weight)) = weights
            .iter()
            .enumerate()
            .find(|&(_, &w)| !(w.is_finite() && w > 0.0))
        {
            return Err(NicError::InvalidWeights { index, weight });
        }
        self.scheduler.reconfigure(weights);
        Ok(())
    }

    /// Programs the RSS queue count and indirection table (kernel-only;
    /// callers route through the control plane's two-phase commit).
    /// Validation is all-or-nothing: on error the active table is
    /// untouched. A queue-count change rebuilds the per-queue TX
    /// scheduler bank (like a weight swap); an indirection-only change
    /// is pure steering and leaves TX state alone.
    pub fn configure_rss(
        &mut self,
        num_queues: usize,
        indirection: &[u16],
        now: Time,
    ) -> Result<Dur, NicError> {
        self.tick_crash(now);
        self.check_dead()?;
        self.check_frozen(now)?;
        let table = RssTable::validated(num_queues, indirection)?;
        if table.num_queues() != self.scheduler.num_queues() {
            self.scheduler = MultiQueue::new(
                table.num_queues(),
                self.scheduler.weights(),
                self.cfg.tx_queue_limit,
            );
        }
        self.rss = table;
        self.regs
            .write(RSS_NUM_QUEUES_REG, num_queues as u64, None)
            .expect("kernel write to a kernel register");
        // Hot-tier ownership is shard-local: a steering change moves
        // connections between queues, so the per-queue victim slices are
        // rebuilt under the (unchanged) cache policy.
        let cache = self.flows.cache_config().cloned();
        let report = Self::retier(&mut self.flows, &self.rss, cache, &mut self.sram);
        self.emit_retier(&report, now);
        Ok(self.cfg.overlay_swap_cost)
    }

    /// Installs (or clears) the kernel-programmed flow-cache policy and
    /// re-tiers every connection deterministically under it (kernel-only;
    /// callers route through the control plane's two-phase commit). An
    /// overlay-class data update: the dataplane keeps running and the
    /// control side pays `overlay_swap_cost`.
    pub fn configure_flow_cache(
        &mut self,
        cache: Option<FlowCacheConfig>,
        now: Time,
    ) -> Result<Dur, NicError> {
        self.tick_crash(now);
        self.check_dead()?;
        self.check_frozen(now)?;
        let report = Self::retier(&mut self.flows, &self.rss, cache, &mut self.sram);
        self.emit_retier(&report, now);
        Ok(self.cfg.overlay_swap_cost)
    }

    /// The active flow-cache policy, if any (the control plane's audit
    /// compares this against its committed bundle).
    pub fn flow_cache(&self) -> Option<&FlowCacheConfig> {
        self.flows.cache_config()
    }

    /// Re-tiers the flow table under `cache`, with hot-slice ownership
    /// following the RSS steering. Associated fn so callers can keep
    /// disjoint borrows of other NIC fields alive.
    fn retier(
        flows: &mut FlowTable,
        rss: &RssTable,
        cache: Option<FlowCacheConfig>,
        sram: &mut Sram,
    ) -> RetierReport {
        flows.configure_cache(
            cache,
            rss.num_queues(),
            |t| rss.queue_for(pkt::meta::flow_hash_of(t)),
            sram,
        )
    }

    /// Emits the lifecycle event pair for a control-plane re-tier. These
    /// are policy movements, not frame processing, so they carry frame id
    /// 0; `ktrace` shows them with the flow tuple and owning process.
    fn emit_retier(&mut self, report: &RetierReport, now: Time) {
        let tier_ev = |stage: Stage, tuple: FiveTuple, owner: Option<Owner>| TraceEvent {
            frame_id: 0,
            at: now,
            stage,
            verdict: TraceVerdict::Pass,
            tuple: Some(tuple),
            len: 0,
            owner,
            generation: 0,
        };
        for &(id, tuple) in &report.demoted {
            let owner = self
                .flows
                .entry(id)
                .map(|e| Owner::new(e.uid, e.pid, &e.comm));
            self.tel
                .emit(|| tier_ev(Stage::FlowDemoted, tuple, owner.clone()));
        }
        for &(id, tuple) in &report.promoted {
            let owner = self
                .flows
                .entry(id)
                .map(|e| Owner::new(e.uid, e.pid, &e.comm));
            self.tel
                .emit(|| tier_ev(Stage::FlowPromoted, tuple, owner.clone()));
        }
    }

    /// Number of active RX/TX queue pairs.
    pub fn num_queues(&self) -> usize {
        self.rss.num_queues()
    }

    /// The active RSS steering table.
    pub fn rss(&self) -> &RssTable {
        &self.rss
    }

    /// Returns per-class bytes sent by the scheduler.
    pub fn scheduler_class_bytes(&self) -> Vec<u64> {
        self.scheduler.class_bytes_sent()
    }

    /// Opens a connection: flow-table entry (hot or cold tier, per the
    /// active cache policy) + app-region doorbell registers for `pid`.
    /// Hot entries charge their slot and ring context atomically inside
    /// the flow table; cold entries live in host memory and charge
    /// nothing.
    pub fn open_connection(
        &mut self,
        tuple: FiveTuple,
        uid: u32,
        pid: u32,
        comm: &str,
        notify: bool,
    ) -> Result<ConnId, NicError> {
        self.check_dead()?;
        // The entry's home queue follows RSS steering of its RX tuple, so
        // hot-slice ownership is shard-local from birth.
        let queue = self.rss.queue_for(pkt::meta::flow_hash_of(&tuple));
        let (id, _tier) =
            self.flows
                .insert(tuple, uid, pid, comm, notify, queue, &mut self.sram)?;
        // Two app registers per connection: RX tail doorbell, TX head
        // doorbell.
        self.regs.define_app(Self::rx_doorbell_addr(id), pid);
        self.regs.define_app(Self::tx_doorbell_addr(id), pid);
        if notify {
            self.notify_queues
                .entry(pid)
                .or_insert_with(|| NotifyQueue::new(self.cfg.notify_capacity));
        }
        Ok(id)
    }

    /// Opens a listener on `(proto, port)`.
    pub fn open_listener(
        &mut self,
        proto: IpProto,
        port: u16,
        uid: u32,
        pid: u32,
        comm: &str,
    ) -> Result<ConnId, NicError> {
        self.check_dead()?;
        Ok(self
            .flows
            .insert_listener(proto, port, uid, pid, comm, &mut self.sram)?)
    }

    /// Closes a connection, releasing all its NIC resources (the flow
    /// table returns SRAM per the entry's tier).
    pub fn close_connection(&mut self, id: ConnId) -> Result<(), NicError> {
        self.check_dead()?;
        if !self.flows.remove(id, &mut self.sram) {
            return Err(NicError::NoSuchConn(id));
        }
        self.regs.remove(Self::rx_doorbell_addr(id));
        self.regs.remove(Self::tx_doorbell_addr(id));
        Ok(())
    }

    /// The MMIO address of a connection's RX doorbell. The doorbell
    /// window starts *above* the kernel config region (0x20_xxxx) and
    /// grows upward, so connection ids can climb past 64k without an
    /// app-region doorbell ever aliasing a kernel register. (The old
    /// 0x10_0000 base put connection 65536's doorbells exactly on
    /// [`POLICY_GENERATION_REG`]/[`RSS_NUM_QUEUES_REG`].)
    pub fn rx_doorbell_addr(id: ConnId) -> u64 {
        0x100_0000 + id.0 * 16
    }

    /// The MMIO address of a connection's TX doorbell.
    pub fn tx_doorbell_addr(id: ConnId) -> u64 {
        0x100_0000 + id.0 * 16 + 8
    }

    /// Enables the capture tap.
    pub fn enable_sniffer(&mut self, filter: SnifferFilter) {
        self.sniffer.enable(filter);
    }

    /// Disables the capture tap.
    pub fn disable_sniffer(&mut self) {
        self.sniffer.disable();
    }

    /// Starts a full bitstream reprogram: the dataplane is down until it
    /// completes. Returns when the NIC comes back.
    pub fn reprogram_bitstream(&mut self, now: Time) -> Time {
        self.frozen_until = now + self.cfg.bitstream_reprogram;
        self.stats.bitstream_reprograms += 1;
        // A reprogram wipes the loaded overlay programs (new hardware).
        self.unload_program(ProgramSlot::IngressFilter);
        self.unload_program(ProgramSlot::EgressFilter);
        self.unload_program(ProgramSlot::Classifier);
        while !self.accounting.is_empty() {
            self.remove_accounting(0);
        }
        self.frozen_until
    }

    /// Arms an interrupt on `pid`'s notification queue (kernel operation
    /// before blocking the process).
    pub fn arm_interrupt(&mut self, pid: u32) {
        self.notify_queues
            .entry(pid)
            .or_insert_with(|| NotifyQueue::new(self.cfg.notify_capacity))
            .arm_interrupt();
    }

    /// Pops a notification for `pid`.
    pub fn pop_notification(&mut self, pid: u32) -> Option<Notification> {
        self.notify_queues.get_mut(&pid)?.pop()
    }

    /// Returns `pid`'s notification queue, if it exists.
    pub fn notify_queue(&self, pid: u32) -> Option<&NotifyQueue> {
        self.notify_queues.get(&pid)
    }

    fn check_frozen(&self, now: Time) -> Result<(), NicError> {
        if now < self.frozen_until {
            Err(NicError::Reprogramming {
                until: self.frozen_until,
            })
        } else {
            Ok(())
        }
    }

    /// Returns whether the dataplane is down for a bitstream reprogram at
    /// `now`.
    pub fn is_frozen(&self, now: Time) -> bool {
        now < self.frozen_until
    }

    /// When the current (or last) bitstream reprogram window ends.
    pub fn frozen_until(&self) -> Time {
        self.frozen_until
    }

    // ------------------------------------------------------------------
    // Crash / reset (the failure domain)
    // ------------------------------------------------------------------

    /// Installs a deterministic crash schedule. Every dataplane frame and
    /// crash-eligible control op ticks it once; when it fires the device
    /// [`SmartNic::crash`]es at exactly that op — same seed, same op,
    /// same losses on every replay.
    pub fn set_crash_injector(&mut self, injector: CrashInjector) {
        self.crash_faults = injector;
    }

    /// Crash-schedule observability: (ops ticked, crashes fired).
    pub fn crash_injector_stats(&self) -> (u64, u64) {
        (self.crash_faults.ops(), self.crash_faults.crashes())
    }

    /// Current device state.
    pub fn state(&self) -> DeviceState {
        if self.dead {
            DeviceState::Dead
        } else {
            DeviceState::Alive
        }
    }

    /// Returns whether the device has crashed and awaits a reset.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn check_dead(&self) -> Result<(), NicError> {
        if self.dead {
            Err(NicError::Dead)
        } else {
            Ok(())
        }
    }

    /// Ticks the crash schedule for one op on a live device; returns
    /// `true` if the device is (now) dead. Dead devices don't tick — the
    /// schedule counts ops the hardware actually observed.
    fn tick_crash(&mut self, now: Time) -> bool {
        if !self.dead && self.crash_faults.should_crash() {
            self.crash(now);
        }
        self.dead
    }

    /// Kills the device at `now`: every piece of volatile state — flow
    /// table, ring contexts, overlay programs and their maps, RSS
    /// indirection, TX scheduler contents, notification queues, sniffer
    /// buffer, MMIO register file — is wiped to power-on contents.
    ///
    /// Frames sitting in the TX scheduler are lost; each is accounted as
    /// a counted [`DropCause::DeviceDead`] drop (with its traced frame
    /// id) so conservation audits still balance. Cumulative counters and
    /// the telemetry hub survive: they model the *kernel's* view of the
    /// device, not on-board state.
    ///
    /// Idempotent while dead. Normally driven by the installed crash
    /// schedule; chaos harnesses may also call it directly.
    pub fn crash(&mut self, now: Time) {
        if self.dead {
            return;
        }
        self.dead = true;
        // Purge the TX scheduler first, while tx_pending can still
        // attribute each lost frame.
        let purged = self.scheduler.purge();
        let n_purged = purged.len();
        for pkt in purged {
            let fid = self
                .tx_pending
                .remove(&pkt.id)
                .map(|(_, fid)| fid)
                .unwrap_or(0);
            self.stats.tx_crash_purged += 1;
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxDrop,
                    TraceVerdict::Drop(DropCause::DeviceDead),
                    None,
                    pkt.len,
                    None,
                )
            });
        }
        self.tx_pending.clear();
        // Wipe volatile state back to power-on contents.
        self.sram = Sram::new(self.cfg.sram_bytes);
        self.flows = FlowTable::new();
        self.ingress_filter = None;
        self.egress_filter = None;
        self.classifier = None;
        self.accounting = Vec::new();
        self.scheduler = MultiQueue::new(self.cfg.num_queues, &[1.0], self.cfg.tx_queue_limit);
        self.rss = RssTable::uniform(self.cfg.num_queues);
        self.notify_queues.clear();
        self.sniffer = Sniffer::new(self.cfg.sniffer_capacity);
        let mut regs = RegFile::new();
        regs.define_kernel(POLICY_GENERATION_REG);
        regs.define_kernel(RSS_NUM_QUEUES_REG);
        regs.write(RSS_NUM_QUEUES_REG, self.cfg.num_queues as u64, None)
            .expect("kernel write to a kernel register");
        self.regs = regs;
        self.stats.crashes += 1;
        self.tel.record_recovery(
            now,
            RecoveryKind::NicCrash,
            format!(
                "nic crash #{}: {} tx frames purged",
                self.stats.crashes, n_purged
            ),
        );
    }

    /// Kernel-driven device reset: firmware reload plus self-test. The
    /// device leaves [`DeviceState::Dead`] immediately but stays frozen
    /// (like a reprogram window) for `cfg.reset_cost`; returns when the
    /// dataplane is back. The device comes up at boot configuration — the
    /// control plane's reconcile path reinstalls the committed policy.
    ///
    /// Calling this on a live device models a cold restart: volatile
    /// state is wiped first, exactly as if the device had crashed.
    pub fn reset(&mut self, now: Time) -> Time {
        if !self.dead {
            self.crash(now);
        }
        self.dead = false;
        self.frozen_until = now + self.cfg.reset_cost;
        self.stats.resets += 1;
        self.tel.record_recovery(
            now,
            RecoveryKind::NicReset,
            format!(
                "nic reset #{}: dataplane back at {}",
                self.stats.resets, self.frozen_until
            ),
        );
        self.frozen_until
    }

    /// Reinstalls a connection under its *original* id — the crash-
    /// recovery path, where the kernel repopulates the wiped flow table
    /// from its own records and ring keys / doorbell addresses / process
    /// handles must keep working unchanged.
    /// SRAM exhaustion never fails a restore: an entry that no longer
    /// fits the hot tier lands cold (the reconcile path re-tiers it under
    /// the committed policy), so no connection is lost to a crash.
    pub fn restore_connection(
        &mut self,
        id: ConnId,
        tuple: FiveTuple,
        uid: u32,
        pid: u32,
        comm: &str,
        notify: bool,
    ) -> Result<(), NicError> {
        self.check_dead()?;
        let queue = self.rss.queue_for(pkt::meta::flow_hash_of(&tuple));
        let _tier = self
            .flows
            .restore(id, tuple, uid, pid, comm, notify, queue, &mut self.sram);
        self.regs.define_app(Self::rx_doorbell_addr(id), pid);
        self.regs.define_app(Self::tx_doorbell_addr(id), pid);
        if notify {
            self.notify_queues
                .entry(pid)
                .or_insert_with(|| NotifyQueue::new(self.cfg.notify_capacity));
        }
        Ok(())
    }

    /// Reinstalls a listener under its original id (crash recovery; see
    /// [`SmartNic::restore_connection`]).
    pub fn restore_listener(
        &mut self,
        id: ConnId,
        proto: IpProto,
        port: u16,
        uid: u32,
        pid: u32,
        comm: &str,
    ) -> Result<(), NicError> {
        self.check_dead()?;
        self.flows
            .restore_listener(id, proto, port, uid, pid, comm, &mut self.sram)?;
        Ok(())
    }

    /// Cross-layer invariant audit: verifies that SRAM accounting matches
    /// the live flow table, ring contexts, and loaded overlay programs,
    /// and that the TX scheduler and its connection map agree.
    ///
    /// Returns a list of violations (empty = all invariants hold). Chaos
    /// harnesses call this after every injected fault; any violation means
    /// a fault corrupted NIC state rather than just losing traffic.
    pub fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();

        // Flow-table SRAM equals *hot-tier* entries at their fixed costs;
        // cold-tier entries live in host memory and charge nothing.
        let expect_flow = self.flows.num_hot() as u64 * crate::flowtable::ENTRY_BYTES
            + self.flows.num_listeners() as u64 * crate::flowtable::LISTENER_BYTES;
        let actual_flow = self.sram.used_by(SramCategory::FlowTable);
        if actual_flow != expect_flow {
            violations.push(format!(
                "flow-table SRAM {actual_flow} != {} hot * {} + {} listeners * {} = {expect_flow}",
                self.flows.num_hot(),
                crate::flowtable::ENTRY_BYTES,
                self.flows.num_listeners(),
                crate::flowtable::LISTENER_BYTES,
            ));
        }

        // Tier conservation: every exact connection is in exactly one
        // tier — none lost, none double-counted.
        if self.flows.num_hot() + self.flows.num_cold() != self.flows.num_exact() {
            violations.push(format!(
                "flow tiers: {} hot + {} cold != {} exact connections",
                self.flows.num_hot(),
                self.flows.num_cold(),
                self.flows.num_exact(),
            ));
        }
        violations.extend(self.flows.audit_tiers());

        // Entry records cover exactly the exact + listener keys.
        let key_count = self.flows.num_exact() + self.flows.num_listeners();
        if self.flows.num_entries() != key_count {
            violations.push(format!(
                "flow-table entry records {} != exact {} + listeners {}",
                self.flows.num_entries(),
                self.flows.num_exact(),
                self.flows.num_listeners(),
            ));
        }

        // Ring contexts: one per *hot* exact-match connection, none for
        // cold connections or listeners.
        let expect_rings = self.flows.num_hot() as u64 * RING_CONTEXT_BYTES;
        let actual_rings = self.sram.used_by(SramCategory::RingContext);
        if actual_rings != expect_rings {
            violations.push(format!(
                "ring-context SRAM {actual_rings} != {} hot conns * {RING_CONTEXT_BYTES} = {expect_rings}",
                self.flows.num_hot(),
            ));
        }

        // Overlay slots: Program/Maps SRAM equals the sum over loaded VMs.
        let mut expect_insn = 0u64;
        let mut expect_maps = 0u64;
        let loaded = self
            .ingress_filter
            .iter()
            .chain(self.egress_filter.iter())
            .chain(self.classifier.iter())
            .chain(self.accounting.iter());
        for vm in loaded {
            let insn = vm.program().insns.len() as u64 * 8;
            expect_insn += insn;
            expect_maps += vm.program().sram_bytes() - insn;
        }
        let actual_insn = self.sram.used_by(SramCategory::Program);
        let actual_maps = self.sram.used_by(SramCategory::Maps);
        if actual_insn != expect_insn {
            violations.push(format!(
                "program SRAM {actual_insn} != loaded programs' instruction bytes {expect_insn}"
            ));
        }
        if actual_maps != expect_maps {
            violations.push(format!(
                "maps SRAM {actual_maps} != loaded programs' map bytes {expect_maps}"
            ));
        }

        // SRAM totals are internally consistent.
        let by_category: u64 = SramCategory::ALL
            .iter()
            .map(|&c| self.sram.used_by(c))
            .sum();
        if by_category != self.sram.used() {
            violations.push(format!(
                "SRAM category sum {by_category} != used total {}",
                self.sram.used()
            ));
        }

        // Every scheduled frame has a pending-connection record and vice
        // versa.
        if self.scheduler.len() != self.tx_pending.len() {
            violations.push(format!(
                "TX scheduler holds {} frames but {} pending-conn records",
                self.scheduler.len(),
                self.tx_pending.len()
            ));
        }

        // RSS state is internally consistent: the TX scheduler bank has
        // one queue per RSS queue, every indirection entry names a live
        // queue, and the kernel register mirrors the active count.
        if self.scheduler.num_queues() != self.rss.num_queues() {
            violations.push(format!(
                "TX scheduler has {} queues but RSS table has {}",
                self.scheduler.num_queues(),
                self.rss.num_queues()
            ));
        }
        if let Some((index, &queue)) = self
            .rss
            .indirection()
            .iter()
            .enumerate()
            .find(|&(_, &q)| usize::from(q) >= self.rss.num_queues())
        {
            violations.push(format!(
                "RSS indirection[{index}] = {queue} names a nonexistent queue (have {})",
                self.rss.num_queues()
            ));
        }
        if self.regs.peek(RSS_NUM_QUEUES_REG) != Some(self.rss.num_queues() as u64) {
            violations.push(format!(
                "RSS queue-count register {:?} != active table's {}",
                self.regs.peek(RSS_NUM_QUEUES_REG),
                self.rss.num_queues()
            ));
        }

        // Second, independent ledger: when tracing is on, the telemetry
        // stage totals (accumulated since the trace baseline) must agree
        // with the dataplane's own counters, and every admitted frame
        // must terminate in exactly one of deliver/slowpath/drop.
        if self.tel.is_enabled() {
            let b = &self.tel_baseline;
            let s = &self.stats;
            let stage = |st: Stage| self.tel.stage_count(st);
            let checks = [
                (
                    "rx_ingress vs rx_frames",
                    stage(Stage::RxIngress),
                    s.rx_frames - b.rx_frames,
                ),
                (
                    "rx_deliver vs rx_delivered",
                    stage(Stage::RxDeliver),
                    s.rx_delivered - b.rx_delivered,
                ),
                (
                    "rx_slowpath vs rx_slowpath",
                    stage(Stage::RxSlowPath),
                    s.rx_slowpath - b.rx_slowpath,
                ),
                (
                    "tx_offer vs tx_frames",
                    stage(Stage::TxOffer),
                    s.tx_frames - b.tx_frames,
                ),
                (
                    "tx_depart vs tx_sent",
                    stage(Stage::TxDepart),
                    s.tx_sent - b.tx_sent,
                ),
                (
                    "drop(malformed) vs rx_malformed+rx_bad_checksum",
                    self.tel.drop_count(DropCause::Malformed),
                    (s.rx_malformed - b.rx_malformed) + (s.rx_bad_checksum - b.rx_bad_checksum),
                ),
                (
                    "drop(filter) vs rx_filtered+tx_filtered",
                    self.tel.drop_count(DropCause::Filter),
                    (s.rx_filtered - b.rx_filtered) + (s.tx_filtered - b.tx_filtered),
                ),
                (
                    "drop(reprogramming) vs dropped_reprogramming",
                    self.tel.drop_count(DropCause::Reprogramming),
                    s.dropped_reprogramming - b.dropped_reprogramming,
                ),
                (
                    "drop(device_dead) vs dropped_dead+tx_crash_purged",
                    self.tel.drop_count(DropCause::DeviceDead),
                    (s.dropped_dead - b.dropped_dead) + (s.tx_crash_purged - b.tx_crash_purged),
                ),
            ];
            for (what, ledger, counters) in checks {
                if ledger != counters {
                    violations.push(format!(
                        "telemetry {what}: ledger {ledger} != counters {counters}"
                    ));
                }
            }
            let rx_terminal =
                stage(Stage::RxDeliver) + stage(Stage::RxSlowPath) + stage(Stage::RxDrop);
            if stage(Stage::RxIngress) != rx_terminal {
                violations.push(format!(
                    "RX conservation: {} ingress events != {} terminal (deliver+slowpath+drop)",
                    stage(Stage::RxIngress),
                    rx_terminal
                ));
            }
            // A frame purged by a crash was both queued (TxQueue at
            // enqueue time) and dropped (TxDrop at crash time), so the
            // purged count is subtracted to keep offers == terminals.
            let purged = s.tx_crash_purged - b.tx_crash_purged;
            let tx_terminal = stage(Stage::TxQueue) + stage(Stage::TxDrop) - purged;
            if stage(Stage::TxOffer) != tx_terminal {
                violations.push(format!(
                    "TX conservation: {} offer events != {} terminal (queue+drop-purged)",
                    stage(Stage::TxOffer),
                    tx_terminal
                ));
            }
        }

        violations
    }

    // ------------------------------------------------------------------
    // Dataplane
    // ------------------------------------------------------------------

    /// Builds the overlay packet context from the parse-once descriptor —
    /// no byte access, no per-stage Toeplitz (the hash rides in the
    /// descriptor). Associated fn (not `&self`) so callers can keep
    /// disjoint borrows of other NIC fields alive.
    fn build_ctx(
        meta: Option<&FrameMeta>,
        len: usize,
        entry: Option<&ConnEntry>,
        egress: bool,
        now: Time,
    ) -> PktCtx {
        let tuple = meta.and_then(|m| m.tuple);
        PktCtx {
            // Same injective packing as the flow table's exact-match key,
            // so per-flow overlay state and flow-table entries agree on
            // flow identity. Tuple-less frames (ARP, malformed) key to 0.
            flow_key: tuple.as_ref().map(crate::flowtable::exact_key).unwrap_or(0),
            pkt_len: len as u64,
            proto: tuple.map(|t| u64::from(t.proto.0)).unwrap_or(0),
            src_ip: tuple.map(|t| u32::from(t.src_ip)).unwrap_or(0),
            dst_ip: tuple.map(|t| u32::from(t.dst_ip)).unwrap_or(0),
            src_port: tuple.map(|t| t.src_port).unwrap_or(0),
            dst_port: tuple.map(|t| t.dst_port).unwrap_or(0),
            uid: entry.map(|e| e.uid).unwrap_or(u32::MAX),
            pid: entry.map(|e| e.pid).unwrap_or(0),
            flow_hash: meta.map(|m| m.flow_hash).unwrap_or(0),
            conn_id: entry.map(|e| e.id.0).unwrap_or(u64::MAX),
            now_ns: now.as_ns_f64() as u64,
            ethertype: meta.map(|m| m.ethertype).unwrap_or(0),
            dscp: meta.map(|m| m.dscp_ecn).unwrap_or(0),
            is_arp: meta.map(|m| m.is_arp()).unwrap_or(false),
            egress,
            mark: 0,
        }
    }

    /// Runs a VM defensively: faults fail closed to `Drop`.
    fn run_vm(vm: &mut Vm, ctx: &PktCtx) -> (Verdict, u64) {
        match vm.run(ctx) {
            Ok(exec) => (exec.verdict, exec.cycles),
            Err(_) => (Verdict::Drop, 1),
        }
    }

    /// Finishes an ingress frame the parser stage rejected (structural
    /// failure or bad transport checksum): it occupies the parser like any
    /// other frame, is visible to the sniffer (unattributed), and becomes
    /// a counted [`DropReason::Malformed`].
    fn rx_malformed_drop(
        &mut self,
        packet: &Packet,
        meta: Result<&FrameMeta, &PktError>,
        now: Time,
    ) -> RxResult {
        let latency = self.cfg.base_latency + self.cfg.parse_cost;
        let start = now.max(self.pipeline_free);
        self.pipeline_free = start + self.cfg.parse_cost;
        match meta {
            // A bad-checksum frame still parsed; the tap shows its summary.
            Ok(m) => self.sniffer.tap(now, Direction::Rx, packet, m, None),
            Err(e) => self
                .sniffer
                .tap_unparsed(now, Direction::Rx, packet, e, None),
        }
        let fid = self
            .tel
            .adopt_frame_id(meta.ok().map(|m| m.frame_id).unwrap_or(0));
        let meta_out = meta.ok().copied().map(|mut m| {
            m.frame_id = fid;
            m
        });
        let len = packet.len() as u32;
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::RxIngress,
                TraceVerdict::Pass,
                meta_out.as_ref(),
                len,
                None,
            )
        });
        self.tel.emit(|| {
            trace_ev(
                fid,
                start + latency,
                Stage::RxDrop,
                TraceVerdict::Drop(DropCause::Malformed),
                meta_out.as_ref(),
                len,
                None,
            )
        });
        RxResult {
            disposition: RxDisposition::Drop {
                reason: DropReason::Malformed,
            },
            ready_at: start + latency,
            latency,
            interrupt: false,
            meta: meta_out,
            cold: false,
        }
    }

    /// The reprogramming-window drop (dataplane frozen for a bitstream
    /// reprogram): the frame never enters the pipeline.
    fn rx_frozen_drop(&mut self, packet: &Packet, now: Time) -> RxResult {
        self.stats.dropped_reprogramming += 1;
        let fid = self.tel.alloc_frame_id();
        let len = packet.len() as u32;
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::RxIngress,
                TraceVerdict::Pass,
                None,
                len,
                None,
            )
        });
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::RxDrop,
                TraceVerdict::Drop(DropCause::Reprogramming),
                None,
                len,
                None,
            )
        });
        RxResult {
            disposition: RxDisposition::Drop {
                reason: DropReason::Reprogramming,
            },
            ready_at: now,
            latency: Dur::ZERO,
            interrupt: false,
            meta: None,
            cold: false,
        }
    }

    /// The dead-device drop: the frame hits a crashed NIC and vanishes
    /// at the wire, counted so conservation audits still balance.
    fn rx_dead_drop(&mut self, packet: &Packet, now: Time) -> RxResult {
        self.stats.dropped_dead += 1;
        let fid = self.tel.alloc_frame_id();
        let len = packet.len() as u32;
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::RxIngress,
                TraceVerdict::Pass,
                None,
                len,
                None,
            )
        });
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::RxDrop,
                TraceVerdict::Drop(DropCause::DeviceDead),
                None,
                len,
                None,
            )
        });
        RxResult {
            disposition: RxDisposition::Drop {
                reason: DropReason::DeviceDead,
            },
            ready_at: now,
            latency: Dur::ZERO,
            interrupt: false,
            meta: None,
            cold: false,
        }
    }

    /// The parser stage: derives the parse-once descriptor (or reuses the
    /// one attached at build time) and rejects damaged frames before they
    /// can touch the flow table or overlay state. A frame that fails to
    /// parse, or parses but fails its transport checksum, is a counted
    /// drop — never a flow-table entry, notification, or slow-path punt
    /// built from garbage bytes.
    ///
    /// Returns `Err(rx_result)` when the frame was consumed as a drop.
    #[allow(clippy::result_large_err)] // Err is the fully-formed per-frame report
    fn rx_parse(&mut self, packet: &Packet, now: Time) -> Result<FrameMeta, RxResult> {
        match FrameMeta::of(packet) {
            Ok(m) if !m.l4_checksum_ok => {
                self.stats.rx_bad_checksum += 1;
                Err(self.rx_malformed_drop(packet, Ok(&m), now))
            }
            Ok(m) => Ok(m),
            Err(e) => {
                self.stats.rx_malformed += 1;
                Err(self.rx_malformed_drop(packet, Err(&e), now))
            }
        }
    }

    /// Processes one ingress frame arriving from the wire at `now`.
    pub fn rx(&mut self, packet: &Packet, now: Time) -> RxResult {
        self.stats.rx_frames += 1;
        if self.tick_crash(now) {
            return self.rx_dead_drop(packet, now);
        }
        if now < self.frozen_until {
            return self.rx_frozen_drop(packet, now);
        }
        let meta = match self.rx_parse(packet, now) {
            Ok(m) => m,
            Err(dropped) => return dropped,
        };
        let hit = meta.tuple.and_then(|t| {
            let resolved = self.flows.resolve(&t);
            self.flows.touch_lookup(resolved, &mut self.sram)
        });
        self.rx_finish(packet, meta, hit, now)
    }

    /// The post-lookup half of ingress: overlay stages, timing, tap,
    /// disposition, and notification. Shared by [`SmartNic::rx`] and
    /// [`SmartNic::rx_batch`]; `hit` is the flow-table steering decision
    /// with its tier movements already applied.
    fn rx_finish(
        &mut self,
        packet: &Packet,
        mut meta: FrameMeta,
        hit: Option<LookupHit>,
        now: Time,
    ) -> RxResult {
        // Tag the frame for lifecycle tracing: adopt an id assigned by an
        // upstream stage (e.g. a NAT box sharing the hub) or allocate one.
        meta.frame_id = self.tel.adopt_frame_id(meta.frame_id);
        // RSS steering: the indirection table maps the Toeplitz hash to
        // the RX queue this frame is delivered on.
        meta.queue = self.rss.queue_for(meta.flow_hash);
        let fid = meta.frame_id;
        let len = packet.len() as u32;

        // Ownership/notify fields were copied out of the entry during the
        // lookup probe, so steering needs no second table probe. Only the
        // comm string (consumed by observers alone) still requires the
        // entry — skip that probe entirely unless an observer is attached.
        let cold = hit.is_some_and(|h| h.tier == FlowTier::Cold);
        let entry_disp = hit.map(|h| (h.id, h.notify, h.pid));
        let attribution = if self.sniffer.is_enabled() || self.tel.is_enabled() {
            hit.and_then(|h| self.flows.entry(h.id))
                .map(|e| (e.uid, e.pid, &e.comm))
        } else {
            None
        };

        // Sniffer taps see everything entering the host, post-parse.
        self.sniffer.tap(
            now,
            Direction::Rx,
            packet,
            &meta,
            attribution.map(|(u, p, c)| (u, p, c.as_str())),
        );

        // Lifecycle: admission, the parse stage, and flow-table steering.
        // Ownership is joined from the flow-table entry the kernel
        // installed — the paper's process view, with no kernel round-trip.
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::RxIngress,
                TraceVerdict::Pass,
                Some(&meta),
                len,
                attribution,
            )
        });
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::RxParse,
                TraceVerdict::Pass,
                Some(&meta),
                len,
                attribution,
            )
        });
        let lookup_verdict = if entry_disp.is_some() {
            TraceVerdict::Hit
        } else {
            TraceVerdict::Miss
        };
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::RxFlowLookup,
                lookup_verdict,
                Some(&meta),
                len,
                attribution,
            )
        });
        // Tier movements this lookup triggered: a cold hit may promote
        // the flow and demote a victim; both land in the triggering
        // frame's lifecycle trace.
        if let Some(h) = hit {
            if h.promoted {
                self.tel.emit(|| {
                    trace_ev(
                        fid,
                        now,
                        Stage::FlowPromoted,
                        TraceVerdict::Pass,
                        Some(&meta),
                        len,
                        attribution,
                    )
                });
            }
            if let Some((vid, vtuple)) = h.demoted {
                let owner = self
                    .flows
                    .entry(vid)
                    .map(|e| Owner::new(e.uid, e.pid, &e.comm));
                self.tel.emit(|| TraceEvent {
                    frame_id: fid,
                    at: now,
                    stage: Stage::FlowDemoted,
                    verdict: TraceVerdict::Pass,
                    tuple: Some(vtuple),
                    len: 0,
                    owner,
                    generation: 0,
                });
            }
        }

        // Overlay stages. The VM context is only materialized when a
        // stage will actually run it — with no overlay loaded the frame
        // skips the (field-by-field) context assembly entirely, which is
        // observationally identical since nothing else reads it.
        let filter_loaded = self.ingress_filter.is_some();
        let mut overlay_cycles = 0u64;
        let mut verdict = Verdict::Pass;
        if filter_loaded || !self.accounting.is_empty() {
            let entry = hit.and_then(|h| self.flows.entry(h.id));
            let ctx = Self::build_ctx(Some(&meta), packet.len(), entry, false, now);
            if let Some(vm) = self.ingress_filter.as_mut() {
                let (v, c) = Self::run_vm(vm, &ctx);
                overlay_cycles += c;
                verdict = v;
            }
            for vm in &mut self.accounting {
                let (_, c) = Self::run_vm(vm, &ctx);
                overlay_cycles += c;
            }
        }

        // The filter stage event. A dropping verdict is *not* recorded
        // here — the terminal RxDrop event carries the drop cause, so the
        // ledger counts each dropped frame exactly once.
        if filter_loaded && verdict != Verdict::Drop {
            let fv = if verdict == Verdict::SlowPath {
                TraceVerdict::SlowPath
            } else {
                TraceVerdict::Pass
            };
            self.tel
                .emit(|| trace_ev(fid, now, Stage::RxFilter, fv, Some(&meta), len, attribution));
        }

        // Timing: latency = all stages; occupancy = the overlay (the
        // slowest programmable stage) or the fixed stages, whichever is
        // longer. A cold-tier hit pays the host-memory table walk in the
        // lookup stage — and occupies it, so cold traffic throttles
        // pipeline throughput (the pressure the eviction policy manages).
        let lookup_cost = if cold {
            self.cfg.lookup_cost + self.cfg.cold_lookup_cost
        } else {
            self.cfg.lookup_cost
        };
        let overlay_time = self.cfg.overlay_cycle.saturating_mul(overlay_cycles);
        let latency = self.cfg.base_latency + self.cfg.parse_cost + lookup_cost + overlay_time;
        let occupancy = overlay_time.max(self.cfg.parse_cost).max(lookup_cost);
        let start = now.max(self.pipeline_free);
        self.pipeline_free = start + occupancy;
        let ready_at = start + latency;

        // Per-stage virtual-time latencies (gated on the same flag).
        self.tel
            .record_hist(self.tel_hists.parse, self.cfg.parse_cost);
        self.tel.record_hist(self.tel_hists.lookup, lookup_cost);
        if overlay_time > Dur::ZERO {
            self.tel.record_hist(self.tel_hists.overlay, overlay_time);
        }
        self.tel.record_hist(self.tel_hists.latency, latency);

        let disposition = match (verdict, entry_disp) {
            (Verdict::Drop, _) => {
                self.stats.rx_filtered += 1;
                RxDisposition::Drop {
                    reason: DropReason::Filter,
                }
            }
            (Verdict::SlowPath, _) => {
                self.stats.rx_slowpath += 1;
                RxDisposition::SlowPath {
                    reason: SlowPathReason::PolicyPunt,
                }
            }
            (_, Some((id, notify, _))) => {
                self.stats.rx_delivered += 1;
                RxDisposition::Deliver { conn: id, notify }
            }
            (_, None) => {
                self.stats.rx_slowpath += 1;
                RxDisposition::SlowPath {
                    reason: SlowPathReason::NoFlowMatch,
                }
            }
        };

        // The terminal lifecycle event: exactly one of deliver, slowpath
        // or drop per admitted frame (the conservation ledger).
        let (term_stage, term_verdict) = match disposition {
            RxDisposition::Deliver { .. } => (Stage::RxDeliver, TraceVerdict::Pass),
            RxDisposition::SlowPath { .. } => (Stage::RxSlowPath, TraceVerdict::SlowPath),
            RxDisposition::Drop { reason } => (Stage::RxDrop, TraceVerdict::Drop(reason.cause())),
        };
        self.tel.emit(|| {
            trace_ev(
                fid,
                ready_at,
                term_stage,
                term_verdict,
                Some(&meta),
                len,
                attribution,
            )
        });

        // Post notifications for delivered packets on notify connections.
        let mut interrupt = false;
        if let RxDisposition::Deliver { conn, notify: true } = disposition {
            if let Some((_, _, pid)) = entry_disp {
                let q = self
                    .notify_queues
                    .entry(pid)
                    .or_insert_with(|| NotifyQueue::new(self.cfg.notify_capacity));
                interrupt = q.post(Notification {
                    conn,
                    kind: NotifyKind::RxReady,
                    at: ready_at,
                });
                self.tel.emit(|| {
                    trace_ev(
                        fid,
                        ready_at,
                        Stage::Notify,
                        TraceVerdict::Pass,
                        Some(&meta),
                        len,
                        attribution,
                    )
                });
            }
        }

        RxResult {
            disposition,
            ready_at,
            latency,
            interrupt,
            meta: Some(meta),
            cold,
        }
    }

    /// Processes a burst of ingress frames arriving together at `now`,
    /// amortizing per-frame dispatch: one frozen-window check, one parser
    /// sweep, one hash-sorted flow-table probe
    /// ([`FlowTable::lookup_batch`]), then per-frame completion in arrival
    /// order.
    ///
    /// The results — dispositions, timing, stats, sniffer captures, and
    /// notifications — are identical to calling [`SmartNic::rx`] once per
    /// frame in order; the batch only restructures the work.
    pub fn rx_batch(&mut self, packets: &[Packet], now: Time) -> Vec<RxResult> {
        self.stats.rx_frames += packets.len() as u64;
        if self.dead {
            return packets.iter().map(|p| self.rx_dead_drop(p, now)).collect();
        }
        if now < self.frozen_until {
            return packets
                .iter()
                .map(|p| self.rx_frozen_drop(p, now))
                .collect();
        }

        // Stage 1: a side-effect-free parser sweep (build-time descriptors
        // short-circuit it entirely). Drop accounting stays in stage 3 so
        // pipeline occupancy and sniffer captures advance in arrival
        // order, exactly as the sequential path would.
        let metas: Vec<Result<FrameMeta, pkt::PktError>> =
            packets.iter().map(FrameMeta::of).collect();

        // Stage 2: one batched, *pure* flow-table resolution over the
        // frames that survived parsing and carry a steerable tuple. Tier
        // movements never change steering, so resolution order is free;
        // the stateful half (counters, recency, promotion) is applied
        // per-frame in stage 3, in arrival order.
        let mut queries: Vec<(u32, FiveTuple)> = Vec::with_capacity(packets.len());
        let mut query_of: Vec<Option<usize>> = Vec::with_capacity(packets.len());
        for m in &metas {
            match m {
                Ok(meta) if meta.l4_checksum_ok && meta.tuple.is_some() => {
                    query_of.push(Some(queries.len()));
                    queries.push((meta.flow_hash, meta.tuple.unwrap()));
                }
                _ => query_of.push(None),
            }
        }
        let conns = self.flows.resolve_batch(&queries);

        // Stage 3: finish each frame in arrival order, preserving
        // per-stage timing, capture, and notification semantics. The
        // crash schedule ticks here, once per frame exactly as the
        // sequential path would: a crash mid-batch dead-drops this and
        // every later frame (the stage-2 steering results for them die
        // with the flow table they were probed from, and a dead-dropped
        // frame never touches lookup state — it vanished at the wire).
        metas
            .into_iter()
            .zip(query_of)
            .zip(packets)
            .map(|((m, q), packet)| {
                if self.tick_crash(now) {
                    return self.rx_dead_drop(packet, now);
                }
                match m {
                    Ok(meta) if !meta.l4_checksum_ok => {
                        self.stats.rx_bad_checksum += 1;
                        self.rx_malformed_drop(packet, Ok(&meta), now)
                    }
                    Ok(meta) => {
                        let hit =
                            q.and_then(|qi| self.flows.touch_lookup(conns[qi], &mut self.sram));
                        self.rx_finish(packet, meta, hit, now)
                    }
                    Err(e) => {
                        self.stats.rx_malformed += 1;
                        self.rx_malformed_drop(packet, Err(&e), now)
                    }
                }
            })
            .collect()
    }

    /// Offers an egress frame from `conn` to the NIC at `now` (the host
    /// has rung the TX doorbell and the NIC has DMA-read the frame).
    pub fn tx_enqueue(
        &mut self,
        conn: ConnId,
        packet: &Packet,
        now: Time,
    ) -> Result<TxDisposition, NicError> {
        self.stats.tx_frames += 1;
        let meta = FrameMeta::of(packet);
        let fid = self
            .tel
            .adopt_frame_id(meta.as_ref().ok().map(|m| m.frame_id).unwrap_or(0));
        let len = packet.len() as u32;
        if self.tick_crash(now) {
            self.stats.dropped_dead += 1;
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxOffer,
                    TraceVerdict::Pass,
                    meta.as_ref().ok(),
                    len,
                    None,
                )
            });
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxDrop,
                    TraceVerdict::Drop(DropCause::DeviceDead),
                    meta.as_ref().ok(),
                    len,
                    None,
                )
            });
            return Ok(TxDisposition::Drop {
                reason: DropReason::DeviceDead,
            });
        }
        if now < self.frozen_until {
            self.stats.dropped_reprogramming += 1;
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxOffer,
                    TraceVerdict::Pass,
                    meta.as_ref().ok(),
                    len,
                    None,
                )
            });
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxDrop,
                    TraceVerdict::Drop(DropCause::Reprogramming),
                    meta.as_ref().ok(),
                    len,
                    None,
                )
            });
            return Ok(TxDisposition::Drop {
                reason: DropReason::Reprogramming,
            });
        }
        // Borrow the entry in place: the overlay VMs, scheduler, and
        // sniffer are all distinct NIC fields, so the (comm-string-
        // carrying) entry never needs cloning on the TX hot path.
        let Some(entry) = self.flows.entry(conn) else {
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxOffer,
                    TraceVerdict::Pass,
                    meta.as_ref().ok(),
                    len,
                    None,
                )
            });
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxDrop,
                    TraceVerdict::Drop(DropCause::StaleConn),
                    meta.as_ref().ok(),
                    len,
                    None,
                )
            });
            return Err(NicError::NoSuchConn(conn));
        };
        let ctx = Self::build_ctx(meta.as_ref().ok(), packet.len(), Some(entry), true, now);
        let attribution = (entry.uid, entry.pid, &entry.comm);
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::TxOffer,
                TraceVerdict::Pass,
                meta.as_ref().ok(),
                len,
                Some(attribution),
            )
        });

        let filter_loaded = self.egress_filter.is_some();
        let mut verdict = Verdict::Pass;
        if let Some(vm) = self.egress_filter.as_mut() {
            let (v, _) = Self::run_vm(vm, &ctx);
            verdict = v;
        }
        for vm in &mut self.accounting {
            let _ = Self::run_vm(vm, &ctx);
        }
        if verdict == Verdict::Drop {
            self.stats.tx_filtered += 1;
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxDrop,
                    TraceVerdict::Drop(DropCause::Filter),
                    meta.as_ref().ok(),
                    len,
                    Some(attribution),
                )
            });
            return Ok(TxDisposition::Drop {
                reason: DropReason::Filter,
            });
        }
        if filter_loaded {
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxFilter,
                    TraceVerdict::Pass,
                    meta.as_ref().ok(),
                    len,
                    Some(attribution),
                )
            });
        }

        let class = match self.classifier.as_mut() {
            Some(vm) => match Self::run_vm(vm, &ctx) {
                (Verdict::Class(c), _) => c,
                _ => 0,
            },
            None => 0,
        };
        // Clamp to configured classes (unknown classes use class 0, like
        // an unmatched tc filter).
        let class = if (class as usize) < self.scheduler.num_classes() {
            class
        } else {
            0
        };
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::TxClass,
                TraceVerdict::Class(class),
                meta.as_ref().ok(),
                len,
                Some(attribution),
            )
        });

        // The TX tap sees frames accepted for transmission.
        match &meta {
            Ok(m) => self.sniffer.tap(
                now,
                Direction::Tx,
                packet,
                m,
                Some((attribution.0, attribution.1, attribution.2.as_str())),
            ),
            Err(e) => self.sniffer.tap_unparsed(
                now,
                Direction::Tx,
                packet,
                e,
                Some((attribution.0, attribution.1, attribution.2.as_str())),
            ),
        }

        let pkt_id = self.next_pkt_id;
        self.next_pkt_id += 1;
        // TX queue selection mirrors RX steering: the same hash → queue
        // mapping, so a connection's traffic stays on one queue pair in
        // both directions.
        let txq = meta
            .as_ref()
            .ok()
            .map(|m| usize::from(self.rss.queue_for(m.flow_hash)))
            .unwrap_or(0);
        let qpkt = QPkt::new(pkt_id, packet.len() as u32, now).with_class(class);
        match self.scheduler.enqueue_on(txq, qpkt, now) {
            Ok(()) => {
                self.tx_pending.insert(pkt_id, (conn, fid));
                self.tel.emit(|| {
                    trace_ev(
                        fid,
                        now,
                        Stage::TxQueue,
                        TraceVerdict::Class(class),
                        meta.as_ref().ok(),
                        len,
                        Some(attribution),
                    )
                });
                Ok(TxDisposition::Queued { class })
            }
            Err(e) => {
                self.tel.emit(|| {
                    trace_ev(
                        fid,
                        now,
                        Stage::TxDrop,
                        TraceVerdict::Drop(e.cause()),
                        meta.as_ref().ok(),
                        len,
                        Some(attribution),
                    )
                });
                Err(NicError::TxQueueFull)
            }
        }
    }

    /// Offers a kernel-originated frame (ARP replies, slow-path
    /// responses) to the scheduler. Kernel frames carry root/kernel
    /// attribution through the egress pipeline and use scheduler class 0.
    pub fn tx_enqueue_kernel(
        &mut self,
        packet: &Packet,
        now: Time,
    ) -> Result<TxDisposition, NicError> {
        self.stats.tx_frames += 1;
        let meta = FrameMeta::of(packet);
        let fid = self
            .tel
            .adopt_frame_id(meta.as_ref().ok().map(|m| m.frame_id).unwrap_or(0));
        let len = packet.len() as u32;
        let kernel_comm = Comm::new("kernel");
        let kernel_attr = Some((0u32, 0u32, &kernel_comm));
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::TxOffer,
                TraceVerdict::Pass,
                meta.as_ref().ok(),
                len,
                kernel_attr,
            )
        });
        if self.tick_crash(now) {
            self.stats.dropped_dead += 1;
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxDrop,
                    TraceVerdict::Drop(DropCause::DeviceDead),
                    meta.as_ref().ok(),
                    len,
                    kernel_attr,
                )
            });
            return Ok(TxDisposition::Drop {
                reason: DropReason::DeviceDead,
            });
        }
        if now < self.frozen_until {
            self.stats.dropped_reprogramming += 1;
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxDrop,
                    TraceVerdict::Drop(DropCause::Reprogramming),
                    meta.as_ref().ok(),
                    len,
                    kernel_attr,
                )
            });
            return Ok(TxDisposition::Drop {
                reason: DropReason::Reprogramming,
            });
        }
        let mut ctx = Self::build_ctx(meta.as_ref().ok(), packet.len(), None, true, now);
        ctx.uid = 0; // the kernel
        let mut verdict = Verdict::Pass;
        if let Some(vm) = self.egress_filter.as_mut() {
            let (v, _) = Self::run_vm(vm, &ctx);
            verdict = v;
        }
        if verdict == Verdict::Drop {
            self.stats.tx_filtered += 1;
            self.tel.emit(|| {
                trace_ev(
                    fid,
                    now,
                    Stage::TxDrop,
                    TraceVerdict::Drop(DropCause::Filter),
                    meta.as_ref().ok(),
                    len,
                    kernel_attr,
                )
            });
            return Ok(TxDisposition::Drop {
                reason: DropReason::Filter,
            });
        }
        match &meta {
            Ok(m) => self
                .sniffer
                .tap(now, Direction::Tx, packet, m, Some((0, 0, "kernel"))),
            Err(e) => {
                self.sniffer
                    .tap_unparsed(now, Direction::Tx, packet, e, Some((0, 0, "kernel")))
            }
        }
        let pkt_id = self.next_pkt_id;
        self.next_pkt_id += 1;
        // Kernel frames (ARP, slow-path responses) always use queue 0.
        let qpkt = QPkt::new(pkt_id, packet.len() as u32, now);
        match self.scheduler.enqueue_on(0, qpkt, now) {
            Ok(()) => {
                self.tx_pending.insert(pkt_id, (ConnId(u64::MAX), fid));
                self.tel.emit(|| {
                    trace_ev(
                        fid,
                        now,
                        Stage::TxQueue,
                        TraceVerdict::Class(0),
                        meta.as_ref().ok(),
                        len,
                        kernel_attr,
                    )
                });
                Ok(TxDisposition::Queued { class: 0 })
            }
            Err(e) => {
                self.tel.emit(|| {
                    trace_ev(
                        fid,
                        now,
                        Stage::TxDrop,
                        TraceVerdict::Drop(e.cause()),
                        meta.as_ref().ok(),
                        len,
                        kernel_attr,
                    )
                });
                Err(NicError::TxQueueFull)
            }
        }
    }

    /// Pulls the next scheduled frame onto the wire. Returns `None` when
    /// nothing is eligible (check [`SmartNic::tx_next_ready`]).
    pub fn tx_poll(&mut self, now: Time) -> Option<TxDeparture> {
        if self.dead || now < self.frozen_until {
            return None;
        }
        // Respect the wire: don't dequeue faster than the link drains.
        if self.link.next_free() > now {
            return None;
        }
        let pkt = self.scheduler.dequeue(now)?;
        let (conn, fid) = self
            .tx_pending
            .remove(&pkt.id)
            .unwrap_or((ConnId(u64::MAX), 0));
        let arrives_at = self.link.transmit(now, u64::from(pkt.len));
        self.stats.tx_sent += 1;
        self.tel.emit(|| {
            trace_ev(
                fid,
                now,
                Stage::TxDepart,
                TraceVerdict::Pass,
                None,
                pkt.len,
                None,
            )
        });
        Some(TxDeparture {
            pkt_id: pkt.id,
            conn,
            len: pkt.len,
            arrives_at,
        })
    }

    /// Drains up to `max` scheduled frames onto the wire in one doorbell
    /// sweep, amortizing the frozen-window and wire-availability checks
    /// across the burst. Stops early when the scheduler empties or the
    /// link is busy (the wire serializes frames, so a burst at one
    /// instant usually yields one departure; the batch entry point still
    /// saves the per-call dispatch when the link has drained).
    pub fn tx_poll_batch(&mut self, now: Time, max: usize) -> Vec<TxDeparture> {
        if self.dead || now < self.frozen_until {
            return Vec::new();
        }
        let mut out = Vec::new();
        while out.len() < max {
            match self.tx_poll(now) {
                Some(dep) => out.push(dep),
                None => break,
            }
        }
        out
    }

    /// Returns when TX should next be polled: the later of scheduler
    /// readiness and wire availability.
    pub fn tx_next_ready(&self, now: Time) -> Option<Time> {
        if self.dead || self.scheduler.is_empty() {
            return None;
        }
        let sched = self.scheduler.next_ready(now).unwrap_or(now);
        let wire = self.link.next_free();
        Some(sched.max(wire).max(now))
    }

    /// Returns the number of frames waiting in the TX scheduler.
    pub fn tx_backlog(&self) -> usize {
        self.scheduler.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay::builtins;
    use pkt::{Mac, PacketBuilder};
    use std::net::Ipv4Addr;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn udp_to(dst_port: u16) -> Packet {
        PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.2"), addr("10.0.0.1"))
            .udp(40_000, dst_port, &[0u8; 100])
            .build()
    }

    fn rx_tuple(dst_port: u16) -> FiveTuple {
        FiveTuple::udp(addr("10.0.0.2"), 40_000, addr("10.0.0.1"), dst_port)
    }

    fn nic() -> SmartNic {
        SmartNic::new(NicConfig::default())
    }

    #[test]
    fn unmatched_rx_goes_to_slowpath() {
        let mut nic = nic();
        let r = nic.rx(&udp_to(9999), Time::ZERO);
        assert_eq!(
            r.disposition,
            RxDisposition::SlowPath {
                reason: SlowPathReason::NoFlowMatch
            }
        );
        assert_eq!(nic.stats().rx_slowpath, 1);
    }

    #[test]
    fn matched_rx_delivers_to_connection() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(5432), 1001, 42, "postgres", false)
            .unwrap();
        let r = nic.rx(&udp_to(5432), Time::ZERO);
        assert_eq!(
            r.disposition,
            RxDisposition::Deliver {
                conn: id,
                notify: false
            }
        );
        assert!(r.latency > Dur::ZERO);
        assert_eq!(nic.stats().rx_delivered, 1);
    }

    #[test]
    fn ingress_filter_drops_with_process_view() {
        let mut nic = nic();
        nic.open_connection(rx_tuple(5432), 1002, 43, "mysql", false)
            .unwrap();
        nic.load_program(
            ProgramSlot::IngressFilter,
            builtins::port_owner_filter(),
            Time::ZERO,
        )
        .unwrap();
        // Port 5432 reserved for uid 1001; the connection is owned by
        // 1002, so its traffic is dropped on the NIC.
        nic.fill_map(ProgramSlot::IngressFilter, 0, 5432, 1002)
            .unwrap();
        let r = nic.rx(&udp_to(5432), Time::ZERO);
        assert_eq!(
            r.disposition,
            RxDisposition::Drop {
                reason: DropReason::Filter
            }
        );
        assert_eq!(nic.stats().rx_filtered, 1);
    }

    #[test]
    fn notify_connection_posts_and_interrupts() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(7000), 1001, 55, "server", true)
            .unwrap();
        nic.arm_interrupt(55);
        let r = nic.rx(&udp_to(7000), Time::ZERO);
        assert!(r.interrupt, "armed interrupt should fire");
        let n = nic.pop_notification(55).expect("notification posted");
        assert_eq!(n.conn, id);
        assert_eq!(n.kind, NotifyKind::RxReady);
        // Next packet: no interrupt (disarmed), but a notification for a
        // different state change is posted.
        let r = nic.rx(&udp_to(7000), Time::from_us(1));
        assert!(!r.interrupt);
    }

    #[test]
    fn reprogramming_drops_everything() {
        let mut nic = nic();
        nic.open_connection(rx_tuple(80), 0, 1, "www", false)
            .unwrap();
        let back = nic.reprogram_bitstream(Time::ZERO);
        assert_eq!(back, Time::ZERO + NicConfig::default().bitstream_reprogram);
        let r = nic.rx(&udp_to(80), Time::from_secs(1));
        assert_eq!(
            r.disposition,
            RxDisposition::Drop {
                reason: DropReason::Reprogramming
            }
        );
        // After it completes, traffic flows again.
        let r = nic.rx(&udp_to(80), back);
        assert!(matches!(r.disposition, RxDisposition::Deliver { .. }));
        assert_eq!(nic.stats().dropped_reprogramming, 1);
    }

    #[test]
    fn bitstream_reprogram_wipes_programs() {
        let mut nic = nic();
        nic.load_program(ProgramSlot::IngressFilter, builtins::drop_all(), Time::ZERO)
            .unwrap();
        nic.reprogram_bitstream(Time::ZERO);
        // Program SRAM fully released.
        assert_eq!(nic.sram.used_by(SramCategory::Program), 0);
    }

    #[test]
    fn overlay_swap_is_fast_and_non_disruptive() {
        let mut nic = nic();
        nic.open_connection(rx_tuple(80), 0, 1, "www", false)
            .unwrap();
        let cost = nic
            .load_program(
                ProgramSlot::IngressFilter,
                builtins::allow_all(),
                Time::ZERO,
            )
            .unwrap();
        assert!(cost < Dur::from_ms(1));
        // Dataplane continues working immediately.
        let r = nic.rx(&udp_to(80), Time::ZERO);
        assert!(matches!(r.disposition, RxDisposition::Deliver { .. }));
        assert_eq!(nic.stats().program_swaps, 1);
    }

    #[test]
    fn program_swap_frees_old_sram() {
        let mut nic = nic();
        nic.load_program(
            ProgramSlot::IngressFilter,
            builtins::port_owner_filter(),
            Time::ZERO,
        )
        .unwrap();
        let used_first =
            nic.sram.used_by(SramCategory::Program) + nic.sram.used_by(SramCategory::Maps);
        nic.load_program(
            ProgramSlot::IngressFilter,
            builtins::port_owner_filter(),
            Time::ZERO,
        )
        .unwrap();
        let used_second =
            nic.sram.used_by(SramCategory::Program) + nic.sram.used_by(SramCategory::Maps);
        assert_eq!(used_first, used_second);
    }

    #[test]
    fn connection_exhausts_sram_gracefully() {
        // Room for ~2 connections.
        let cfg = NicConfig {
            sram_bytes: 2 * (RING_CONTEXT_BYTES + crate::flowtable::ENTRY_BYTES) + 64,
            ..NicConfig::default()
        };
        let mut nic = SmartNic::new(cfg);
        nic.open_connection(rx_tuple(1), 0, 1, "a", false).unwrap();
        nic.open_connection(rx_tuple(2), 0, 1, "b", false).unwrap();
        let err = nic.open_connection(rx_tuple(3), 0, 1, "c", false);
        assert!(matches!(err, Err(NicError::Sram(_))), "{err:?}");
        // Closing one frees room for another.
        nic.close_connection(ConnId(0)).unwrap();
        nic.open_connection(rx_tuple(3), 0, 1, "c", false).unwrap();
    }

    #[test]
    fn tx_path_classifies_and_schedules() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(5000), 1001, 7, "app", false)
            .unwrap();
        nic.configure_scheduler(&[1.0, 3.0]).unwrap();
        nic.load_program(
            ProgramSlot::Classifier,
            builtins::uid_classifier(),
            Time::ZERO,
        )
        .unwrap();
        nic.fill_map(ProgramSlot::Classifier, 0, (1001 & 255) as usize, 2)
            .unwrap(); // uid 1001 -> class 1
        let d = nic.tx_enqueue(id, &udp_to(9000), Time::ZERO).unwrap();
        assert_eq!(d, TxDisposition::Queued { class: 1 });
        let dep = nic.tx_poll(Time::ZERO).expect("frame departs");
        assert_eq!(dep.conn, id);
        assert!(dep.arrives_at > Time::ZERO);
        assert_eq!(nic.stats().tx_sent, 1);
    }

    #[test]
    fn scheduler_rejects_degenerate_weights() {
        let mut nic = nic();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            let err = nic.configure_scheduler(&[1.0, bad]);
            assert!(
                matches!(err, Err(NicError::InvalidWeights { index: 1, .. })),
                "{bad} accepted"
            );
        }
        assert!(matches!(
            nic.configure_scheduler(&[]),
            Err(NicError::InvalidWeights { index: 0, .. })
        ));
        // The existing (valid) scheduler survives every rejection.
        assert!(nic.configure_scheduler(&[2.0, 1.0]).is_ok());
    }

    #[test]
    fn generation_register_is_kernel_only() {
        let mut nic = nic();
        assert_eq!(nic.regs.peek(POLICY_GENERATION_REG), Some(0));
        assert!(nic.regs.write(POLICY_GENERATION_REG, 3, None).is_ok());
        assert_eq!(nic.regs.peek(POLICY_GENERATION_REG), Some(3));
        // An app touching the generation register faults and changes
        // nothing.
        assert!(nic.regs.write(POLICY_GENERATION_REG, 9, Some(42)).is_err());
        assert_eq!(nic.regs.peek(POLICY_GENERATION_REG), Some(3));
        assert_eq!(nic.regs.violations(), 1);
    }

    #[test]
    fn egress_filter_blocks_spoofed_port() {
        let mut nic = nic();
        // The thief (uid 1002) opens a connection and tries to *send*
        // from source port 5432, which is reserved for uid 1001.
        let id = nic
            .open_connection(rx_tuple(6000), 1002, 8, "thief", false)
            .unwrap();
        nic.load_program(
            ProgramSlot::EgressFilter,
            builtins::port_owner_filter(),
            Time::ZERO,
        )
        .unwrap();
        nic.fill_map(ProgramSlot::EgressFilter, 0, 5432, 1002)
            .unwrap();
        let spoof = PacketBuilder::new()
            .ether(Mac::local(1), Mac::local(2))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp(5432, 9000, b"steal")
            .build();
        let d = nic.tx_enqueue(id, &spoof, Time::ZERO).unwrap();
        assert_eq!(
            d,
            TxDisposition::Drop {
                reason: DropReason::Filter
            }
        );
        assert_eq!(nic.stats().tx_filtered, 1);
    }

    #[test]
    fn tx_respects_line_rate() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(5000), 0, 1, "a", false)
            .unwrap();
        let pkt = udp_to(9000);
        for _ in 0..3 {
            nic.tx_enqueue(id, &pkt, Time::ZERO).unwrap();
        }
        let first = nic.tx_poll(Time::ZERO).unwrap();
        // Wire busy: the next poll at the same instant yields nothing.
        assert!(nic.tx_poll(Time::ZERO).is_none());
        let ready = nic.tx_next_ready(Time::ZERO).unwrap();
        assert!(ready > Time::ZERO);
        let second = nic.tx_poll(ready).unwrap();
        assert!(second.arrives_at > first.arrives_at);
    }

    #[test]
    fn accounting_programs_observe_both_directions() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(5000), 42, 7, "app", false)
            .unwrap();
        let slot = nic
            .add_accounting(builtins::byte_accounting(), Time::ZERO)
            .unwrap();
        nic.rx(&udp_to(5000), Time::ZERO);
        nic.tx_enqueue(id, &udp_to(9000), Time::ZERO).unwrap();
        let bytes = nic.read_accounting_map(slot, 0, 42).unwrap();
        assert_eq!(bytes, 2 * udp_to(5000).len() as u64);
    }

    #[test]
    fn sniffer_attributes_tx_frames() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(5000), 1001, 99, "game", false)
            .unwrap();
        nic.enable_sniffer(SnifferFilter::all());
        nic.tx_enqueue(id, &udp_to(9000), Time::ZERO).unwrap();
        let entries = nic.sniffer.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].comm.as_deref(), Some("game"));
        assert_eq!(entries[0].uid, Some(1001));
    }

    #[test]
    fn pipeline_occupancy_bounds_throughput() {
        // With a 100-cycle filter at 4ns/cycle, occupancy is 400ns per
        // packet: offering 2 packets at t=0 means the second emerges
        // later.
        let mut nic = nic();
        nic.open_connection(rx_tuple(80), 0, 1, "a", false).unwrap();
        nic.load_program(
            ProgramSlot::IngressFilter,
            builtins::token_bucket(),
            Time::ZERO,
        )
        .unwrap();
        nic.fill_map(ProgramSlot::IngressFilter, 0, 0, 1_000_000)
            .unwrap();
        nic.fill_map(ProgramSlot::IngressFilter, 0, 1, 1_000_000)
            .unwrap();
        let r1 = nic.rx(&udp_to(80), Time::ZERO);
        let r2 = nic.rx(&udp_to(80), Time::ZERO);
        assert!(r2.ready_at > r1.ready_at);
    }

    #[test]
    fn close_revokes_doorbells() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(80), 0, 77, "a", false)
            .unwrap();
        assert!(nic
            .regs
            .write(SmartNic::rx_doorbell_addr(id), 1, Some(77))
            .is_ok());
        nic.close_connection(id).unwrap();
        assert!(nic
            .regs
            .write(SmartNic::rx_doorbell_addr(id), 1, Some(77))
            .is_err());
    }

    #[test]
    fn unknown_conn_tx_errors() {
        let mut nic = nic();
        let err = nic.tx_enqueue(ConnId(99), &udp_to(1), Time::ZERO);
        assert!(matches!(err, Err(NicError::NoSuchConn(ConnId(99)))));
    }

    #[test]
    fn single_queue_nic_stamps_queue_zero() {
        let mut nic = nic();
        nic.open_connection(rx_tuple(80), 0, 1, "a", false).unwrap();
        let r = nic.rx(&udp_to(80), Time::ZERO);
        assert_eq!(nic.num_queues(), 1);
        assert_eq!(r.meta.unwrap().queue, 0);
    }

    #[test]
    fn rss_steers_by_hash_and_spreads_flows() {
        let cfg = NicConfig {
            num_queues: 4,
            ..NicConfig::default()
        };
        let mut nic = SmartNic::new(cfg);
        let mut seen = [false; 4];
        for port in 5000..5064 {
            nic.open_connection(rx_tuple(port), 0, 1, "a", false)
                .unwrap();
            let r = nic.rx(&udp_to(port), Time::ZERO);
            assert!(matches!(r.disposition, RxDisposition::Deliver { .. }));
            let m = r.meta.unwrap();
            // Stamp agrees with the table the kernel programmed.
            assert_eq!(m.queue, nic.rss().queue_for(m.flow_hash));
            seen[usize::from(m.queue)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "64 distinct flows should touch all 4 queues: {seen:?}"
        );
    }

    #[test]
    fn tx_stays_on_the_flow_queue() {
        let cfg = NicConfig {
            num_queues: 4,
            ..NicConfig::default()
        };
        let mut nic = SmartNic::new(cfg);
        let id = nic
            .open_connection(rx_tuple(5000), 0, 1, "a", false)
            .unwrap();
        let pkt = udp_to(9000);
        let hash = FrameMeta::of(&pkt).unwrap().flow_hash;
        nic.tx_enqueue(id, &pkt, Time::ZERO).unwrap();
        let q = usize::from(nic.rss().queue_for(hash));
        // The frame sits on exactly the queue its hash steers to.
        for other in 0..4 {
            let expect = usize::from(other == q);
            assert_eq!(nic.scheduler.queue_len(other), expect, "queue {other}");
        }
        assert!(nic.tx_poll(Time::ZERO).is_some());
    }

    #[test]
    fn configure_rss_validates_atomically() {
        let cfg = NicConfig {
            num_queues: 2,
            ..NicConfig::default()
        };
        let mut nic = SmartNic::new(cfg);
        let before = nic.rss().clone();
        // Entry out of range: refused, nothing changes, audit stays clean.
        let mut bad = vec![0u16; crate::rss::RSS_TABLE_SIZE];
        bad[3] = 5;
        assert!(matches!(
            nic.configure_rss(2, &bad, Time::ZERO),
            Err(NicError::Rss(RssError::BadEntry { index: 3, queue: 5 }))
        ));
        assert_eq!(*nic.rss(), before);
        assert!(nic.audit().is_empty(), "{:?}", nic.audit());
        // A valid skewed table installs; a queue-count change resizes the
        // TX bank and the kernel register follows.
        let skew: Vec<u16> = (0..crate::rss::RSS_TABLE_SIZE)
            .map(|i| (i % 4) as u16)
            .collect();
        nic.configure_rss(4, &skew, Time::ZERO).unwrap();
        assert_eq!(nic.num_queues(), 4);
        assert_eq!(nic.regs.peek(RSS_NUM_QUEUES_REG), Some(4));
        assert!(nic.audit().is_empty(), "{:?}", nic.audit());
    }

    #[test]
    fn audit_catches_rss_register_drift() {
        let mut nic = nic();
        nic.regs.write(RSS_NUM_QUEUES_REG, 9, None).unwrap();
        let v = nic.audit();
        assert!(
            v.iter().any(|s| s.contains("RSS queue-count register")),
            "{v:?}"
        );
    }

    #[test]
    fn rss_register_is_kernel_only() {
        let mut nic = nic();
        assert!(nic.regs.write(RSS_NUM_QUEUES_REG, 8, Some(42)).is_err());
        assert_eq!(nic.regs.peek(RSS_NUM_QUEUES_REG), Some(1));
    }

    #[test]
    fn crash_wipes_volatile_state_and_gates_everything() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(5432), 1001, 42, "postgres", false)
            .unwrap();
        nic.load_program(
            ProgramSlot::IngressFilter,
            builtins::allow_all(),
            Time::ZERO,
        )
        .unwrap();
        // Queue a TX frame so the crash has something to purge.
        let out = PacketBuilder::new()
            .ether(Mac::local(2), Mac::local(1))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp(5432, 40_000, &[0u8; 64])
            .build();
        nic.tx_enqueue(id, &out, Time::ZERO).unwrap();
        assert_eq!(nic.tx_backlog(), 1);

        nic.crash(Time::from_ns(100));
        assert_eq!(nic.state(), DeviceState::Dead);
        assert!(nic.is_dead());
        assert_eq!(nic.stats().crashes, 1);
        assert_eq!(nic.stats().tx_crash_purged, 1);
        // Volatile state is gone.
        assert_eq!(nic.flows.num_exact(), 0);
        assert_eq!(nic.sram.used(), 0);
        assert!(!nic.program_loaded(ProgramSlot::IngressFilter));
        assert_eq!(nic.tx_backlog(), 0);
        // Everything is gated.
        let r = nic.rx(&udp_to(5432), Time::from_ns(200));
        assert_eq!(
            r.disposition,
            RxDisposition::Drop {
                reason: DropReason::DeviceDead
            }
        );
        assert!(matches!(
            nic.tx_enqueue(id, &out, Time::from_ns(200)),
            Ok(TxDisposition::Drop {
                reason: DropReason::DeviceDead
            })
        ));
        assert!(nic.tx_poll(Time::from_ns(200)).is_none());
        assert!(matches!(
            nic.open_connection(rx_tuple(80), 0, 1, "x", false),
            Err(NicError::Dead)
        ));
        assert!(matches!(
            nic.load_program(
                ProgramSlot::IngressFilter,
                builtins::allow_all(),
                Time::from_ns(200)
            ),
            Err(NicError::Dead)
        ));
        assert_eq!(nic.stats().dropped_dead, 2);
        // Internal invariants still hold on the corpse.
        assert!(nic.audit().is_empty(), "{:?}", nic.audit());
    }

    #[test]
    fn reset_revives_at_boot_config_after_freeze() {
        let mut nic = nic();
        nic.crash(Time::ZERO);
        let back = nic.reset(Time::from_ns(1000));
        assert_eq!(nic.state(), DeviceState::Alive);
        assert_eq!(back, Time::from_ns(1000) + nic.config().reset_cost);
        assert!(nic.is_frozen(Time::from_ns(1001)));
        // During the reset window frames drop as reprogramming (the
        // device is alive but the dataplane is still dark).
        let r = nic.rx(&udp_to(9999), Time::from_ns(2000));
        assert_eq!(
            r.disposition,
            RxDisposition::Drop {
                reason: DropReason::Reprogramming
            }
        );
        // After the window the NIC works again at boot config.
        let after = back + Dur::from_ns(1);
        assert!(!nic.is_frozen(after));
        let id = nic
            .open_connection(rx_tuple(5432), 1001, 42, "postgres", false)
            .unwrap();
        let r = nic.rx(&udp_to(5432), after);
        assert_eq!(
            r.disposition,
            RxDisposition::Deliver {
                conn: id,
                notify: false
            }
        );
        assert_eq!(nic.stats().resets, 1);
        assert!(nic.audit().is_empty(), "{:?}", nic.audit());
    }

    #[test]
    fn crash_injector_kills_at_exact_op_in_rx_and_batch() {
        // Sequential: 5 frames with a crash at op 3.
        let mut a = nic();
        a.set_crash_injector(CrashInjector::at_op(3));
        let frames: Vec<Packet> = (0..5).map(|_| udp_to(9999)).collect();
        let seq: Vec<_> = frames
            .iter()
            .map(|p| a.rx(p, Time::ZERO).disposition)
            .collect();
        // Batched: identical dispositions, crash at the same frame.
        let mut b = nic();
        b.set_crash_injector(CrashInjector::at_op(3));
        let batch: Vec<_> = b
            .rx_batch(&frames, Time::ZERO)
            .into_iter()
            .map(|r| r.disposition)
            .collect();
        assert_eq!(seq, batch);
        assert_eq!(
            seq[1],
            RxDisposition::SlowPath {
                reason: SlowPathReason::NoFlowMatch
            }
        );
        assert_eq!(
            seq[2],
            RxDisposition::Drop {
                reason: DropReason::DeviceDead
            }
        );
        assert_eq!(a.stats().crashes, 1);
        assert_eq!(b.stats().crashes, 1);
        assert_eq!(a.crash_injector_stats(), b.crash_injector_stats());
    }

    #[test]
    fn restore_connection_brings_back_original_id() {
        let mut nic = nic();
        let id = nic
            .open_connection(rx_tuple(5432), 1001, 42, "postgres", true)
            .unwrap();
        nic.crash(Time::ZERO);
        nic.reset(Time::ZERO);
        let after = nic.frozen_until() + Dur::from_ns(1);
        nic.restore_connection(id, rx_tuple(5432), 1001, 42, "postgres", true)
            .unwrap();
        let r = nic.rx(&udp_to(5432), after);
        assert_eq!(
            r.disposition,
            RxDisposition::Deliver {
                conn: id,
                notify: true
            }
        );
        // Doorbells answer to the owner again.
        assert!(nic
            .regs
            .write(SmartNic::rx_doorbell_addr(id), 1, Some(42))
            .is_ok());
        assert!(nic.audit().is_empty(), "{:?}", nic.audit());
    }

    #[test]
    fn dead_device_passes_conservation_audit_with_tracing() {
        let mut nic = nic();
        let tel = Telemetry::new();
        tel.set_enabled(true);
        nic.set_telemetry(tel);
        let id = nic
            .open_connection(rx_tuple(5432), 1001, 42, "postgres", false)
            .unwrap();
        let out = PacketBuilder::new()
            .ether(Mac::local(2), Mac::local(1))
            .ipv4(addr("10.0.0.1"), addr("10.0.0.2"))
            .udp(5432, 40_000, &[0u8; 64])
            .build();
        nic.tx_enqueue(id, &out, Time::ZERO).unwrap();
        nic.rx(&udp_to(5432), Time::ZERO);
        nic.crash(Time::from_ns(50));
        nic.rx(&udp_to(5432), Time::from_ns(60));
        let _ = nic.tx_enqueue(id, &out, Time::from_ns(70));
        assert!(nic.audit().is_empty(), "{:?}", nic.audit());
        assert_eq!(
            nic.telemetry()
                .recovery_count(telemetry::RecoveryKind::NicCrash),
            1
        );
    }
}
