//! The simulated on-path FPGA SmartNIC.
//!
//! This crate is the substitute for the paper's Stratix 10 MX target: a
//! SmartNIC where *every* packet traverses the programmable dataplane
//! (the "on-path" property of §4.1) and where the kernel — and only the
//! kernel — configures that dataplane (§4.4). Its pieces:
//!
//! * [`sram`] — the NIC's bounded on-board memory. Flow-table entries,
//!   ring contexts, and overlay programs/maps all allocate from it;
//!   exhaustion is a first-class outcome (§5's resource-exhaustion
//!   challenge), not a panic.
//! * [`regs`] — the MMIO register file, split into an application region
//!   (per-connection ring head/tail doorbells) and a kernel-only region
//!   (configuration commands). Unprivileged writes to kernel registers
//!   are rejected: the isolation property of §3.
//! * [`flowtable`] — exact-match five-tuple steering plus port listeners,
//!   binding each connection to its owning (uid, pid) so dataplane
//!   programs have the *process view*.
//! * [`notify`] — per-process notification queues with optional interrupt
//!   coalescing, the mechanism behind blocking I/O (§4.3).
//! * [`sniff`] — the dataplane capture tap that `ksniff` (tcpdump
//!   equivalent) reads: global visibility with process attribution.
//! * [`nat`] — source-NAT with RFC 1624 incremental rewriting (§5 lists
//!   NAT among the kernel functions KOPI must offload).
//! * [`cc`] — DCTCP-style on-NIC congestion control (§4.2 lists
//!   congestion control in the dataplane), reacting to ECN marks from
//!   the RED AQM.
//! * [`rss`] — the receive-side-scaling indirection table steering each
//!   frame's Toeplitz hash to one of N RX/TX queue pairs, programmable
//!   only through the kernel control plane.
//! * [`pipeline`] — per-stage latency configuration and verdict types.
//! * [`device`] — [`device::SmartNic`], composing all of the above with
//!   up to four overlay program slots (ingress filter, egress filter,
//!   classifier, accounting) and a WFQ/DRR transmit scheduler.

pub mod cc;
pub mod device;
pub mod flowtable;
pub mod nat;
pub mod notify;
pub mod pipeline;
pub mod regs;
pub mod rss;
pub mod sniff;
pub mod sram;

pub use cc::{CcParams, CongestionControl, FlowCc};
pub use device::{DeviceState, NicError, SmartNic, POLICY_GENERATION_REG};
pub use flowtable::{
    ConnEntry, ConnId, FlowCacheConfig, FlowCacheMode, FlowStats, FlowTable, FlowTier, LookupHit,
    RetierReport,
};
pub use nat::{NatError, NatTable};
pub use notify::{Notification, NotifyKind, NotifyQueue};
pub use pipeline::{NicConfig, RxDisposition, RxResult, TxDisposition};
pub use regs::{RegFile, RegRegion};
pub use rss::{RssError, RssTable, MAX_QUEUES, RSS_NUM_QUEUES_REG, RSS_TABLE_SIZE};
pub use sniff::{CaptureEntry, Direction, Sniffer, SnifferFilter};
pub use sram::{Sram, SramCategory, SramError};
