//! On-NIC congestion control.
//!
//! §4.2 lists congestion control among the interposition logic the
//! on-SmartNIC dataplane implements — the NIC, not the application,
//! decides how fast each connection may inject. This module implements a
//! DCTCP-style controller: ECN marks from the bottleneck AQM (see
//! [`qdisc::Red`]) are echoed on acknowledgements; the controller keeps a
//! per-window marked fraction estimate `alpha` and backs the window off
//! proportionally (`cwnd *= 1 - alpha/2`), with classic additive
//! increase, multiplicative loss backoff, and a one-MSS floor.
//!
//! Putting this on the NIC is exactly the kernel-interposition argument:
//! a bypass application could run any congestion control *it* likes (or
//! none); only an isolated on-path layer makes the host's aggregate
//! behaviour trustworthy.

use std::collections::HashMap;

use crate::flowtable::ConnId;

/// Controller parameters.
#[derive(Clone, Copy, Debug)]
pub struct CcParams {
    /// Segment size in bytes (additive-increase step).
    pub mss: u32,
    /// Initial window in bytes.
    pub init_cwnd: u32,
    /// Maximum window in bytes.
    pub max_cwnd: u32,
    /// DCTCP gain for the alpha EWMA (reference value 1/16).
    pub g: f64,
}

impl Default for CcParams {
    fn default() -> CcParams {
        CcParams {
            mss: 1500,
            init_cwnd: 15_000,    // 10 MSS
            max_cwnd: 12_500_000, // 100 Gbps x 1 ms
            g: 1.0 / 16.0,
        }
    }
}

/// Per-flow controller state.
#[derive(Clone, Debug)]
pub struct FlowCc {
    /// Congestion window in bytes.
    pub cwnd: f64,
    /// DCTCP marked-fraction estimate.
    pub alpha: f64,
    /// Bytes in flight.
    pub inflight: u64,
    acked_in_window: u64,
    marked_in_window: u64,
    window_target: u64,
}

impl FlowCc {
    fn new(params: &CcParams) -> FlowCc {
        FlowCc {
            cwnd: f64::from(params.init_cwnd),
            alpha: 0.0,
            inflight: 0,
            acked_in_window: 0,
            marked_in_window: 0,
            window_target: u64::from(params.init_cwnd),
        }
    }
}

/// The NIC's congestion-control engine.
pub struct CongestionControl {
    params: CcParams,
    flows: HashMap<ConnId, FlowCc>,
    backoffs: u64,
    losses: u64,
}

impl CongestionControl {
    /// Creates an engine.
    pub fn new(params: CcParams) -> CongestionControl {
        CongestionControl {
            params,
            flows: HashMap::new(),
            backoffs: 0,
            losses: 0,
        }
    }

    /// Registers a flow.
    pub fn open(&mut self, conn: ConnId) {
        self.flows.insert(conn, FlowCc::new(&self.params));
    }

    /// Removes a flow.
    pub fn close(&mut self, conn: ConnId) {
        self.flows.remove(&conn);
    }

    /// Returns a flow's state.
    pub fn flow(&self, conn: ConnId) -> Option<&FlowCc> {
        self.flows.get(&conn)
    }

    /// Returns (ECN backoffs, loss backoffs).
    pub fn counters(&self) -> (u64, u64) {
        (self.backoffs, self.losses)
    }

    /// May `conn` inject `bytes` more right now?
    pub fn can_send(&self, conn: ConnId, bytes: u32) -> bool {
        match self.flows.get(&conn) {
            Some(f) => (f.inflight + u64::from(bytes)) as f64 <= f.cwnd,
            None => false,
        }
    }

    /// Records an injection.
    pub fn on_send(&mut self, conn: ConnId, bytes: u32) {
        if let Some(f) = self.flows.get_mut(&conn) {
            f.inflight += u64::from(bytes);
        }
    }

    /// Processes an acknowledgement covering `bytes`, with the receiver's
    /// ECN echo.
    pub fn on_ack(&mut self, conn: ConnId, bytes: u32, ecn_echo: bool) {
        let params = self.params;
        let Some(f) = self.flows.get_mut(&conn) else {
            return;
        };
        f.inflight = f.inflight.saturating_sub(u64::from(bytes));
        f.acked_in_window += u64::from(bytes);
        if ecn_echo {
            f.marked_in_window += u64::from(bytes);
        }
        if f.acked_in_window >= f.window_target {
            // End of a congestion window: update alpha and react.
            let frac = f.marked_in_window as f64 / f.acked_in_window as f64;
            f.alpha = (1.0 - params.g) * f.alpha + params.g * frac;
            // Standard additive increase every window (one MSS per RTT),
            // plus DCTCP's alpha-proportional decrease when the window
            // saw marks. Equilibrium: mss ≈ cwnd * alpha / 2.
            f.cwnd += f64::from(params.mss);
            if f.marked_in_window > 0 {
                f.cwnd *= 1.0 - f.alpha / 2.0;
                self.backoffs += 1;
            }
            f.cwnd = f
                .cwnd
                .clamp(f64::from(params.mss), f64::from(params.max_cwnd));
            f.acked_in_window = 0;
            f.marked_in_window = 0;
            f.window_target = f.cwnd as u64;
        }
    }

    /// Processes a loss signal (timeout/retransmit): classic halving.
    pub fn on_loss(&mut self, conn: ConnId) {
        let params = self.params;
        if let Some(f) = self.flows.get_mut(&conn) {
            f.cwnd = (f.cwnd / 2.0).max(f64::from(params.mss));
            f.alpha = (f.alpha + 1.0) / 2.0;
            self.losses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdisc::{QPkt, Qdisc, Red, RedConfig, RedDecision};
    use sim::Time;

    fn engine() -> CongestionControl {
        CongestionControl::new(CcParams::default())
    }

    #[test]
    fn additive_increase_without_marks() {
        let mut cc = engine();
        cc.open(ConnId(1));
        let w0 = cc.flow(ConnId(1)).unwrap().cwnd;
        // Ack two full windows unmarked.
        for _ in 0..2 {
            let target = cc.flow(ConnId(1)).unwrap().cwnd as u32;
            cc.on_send(ConnId(1), target);
            cc.on_ack(ConnId(1), target, false);
        }
        let w2 = cc.flow(ConnId(1)).unwrap().cwnd;
        assert!(
            (w2 - w0 - 3000.0).abs() < 1.0,
            "two MSS of growth, got {}",
            w2 - w0
        );
    }

    #[test]
    fn fully_marked_window_halves() {
        let mut cc = engine();
        cc.open(ConnId(1));
        // Drive alpha to ~1 with several fully marked windows.
        for _ in 0..60 {
            let target = cc.flow(ConnId(1)).unwrap().cwnd as u32;
            cc.on_send(ConnId(1), target);
            cc.on_ack(ConnId(1), target, true);
        }
        let f = cc.flow(ConnId(1)).unwrap();
        assert!(f.alpha > 0.9, "alpha {}", f.alpha);
        // With alpha ~1, each window multiplies by ~0.5; cwnd is at the
        // floor by now.
        assert!(f.cwnd <= 2.0 * 1500.0, "cwnd {}", f.cwnd);
    }

    #[test]
    fn alpha_tracks_marking_fraction() {
        let mut cc = engine();
        cc.open(ConnId(1));
        // 10% of bytes marked, many windows: alpha converges near 0.1.
        for _ in 0..200 {
            let target = cc.flow(ConnId(1)).unwrap().window_target;
            let marked = target / 10;
            cc.on_send(ConnId(1), target as u32);
            cc.on_ack(ConnId(1), marked as u32, true);
            cc.on_ack(ConnId(1), (target - marked) as u32, false);
        }
        let alpha = cc.flow(ConnId(1)).unwrap().alpha;
        assert!((0.05..0.2).contains(&alpha), "alpha {alpha}");
    }

    #[test]
    fn gentle_marking_backs_off_gently() {
        // DCTCP's point: 10% marking cuts the window ~5%, not 50%.
        let mut cc = engine();
        cc.open(ConnId(1));
        for _ in 0..100 {
            let target = cc.flow(ConnId(1)).unwrap().window_target;
            let marked = target / 10;
            cc.on_send(ConnId(1), target as u32);
            cc.on_ack(ConnId(1), marked as u32, true);
            cc.on_ack(ConnId(1), (target - marked) as u32, false);
        }
        // Steady state: growth (1 MSS) balances backoff (alpha/2 * cwnd).
        // With alpha ~0.1, cwnd settles near 2*mss/alpha = 30000.
        let f = cc.flow(ConnId(1)).unwrap();
        assert!(
            (10_000.0..80_000.0).contains(&f.cwnd),
            "equilibrium cwnd {}",
            f.cwnd
        );
    }

    #[test]
    fn loss_halves_and_floors() {
        let mut cc = engine();
        cc.open(ConnId(1));
        for _ in 0..30 {
            cc.on_loss(ConnId(1));
        }
        assert_eq!(cc.flow(ConnId(1)).unwrap().cwnd, 1500.0);
        assert_eq!(cc.counters().1, 30);
    }

    #[test]
    fn can_send_respects_window() {
        let mut cc = engine();
        cc.open(ConnId(1));
        assert!(cc.can_send(ConnId(1), 15_000));
        cc.on_send(ConnId(1), 15_000);
        assert!(!cc.can_send(ConnId(1), 1));
        cc.on_ack(ConnId(1), 1500, false);
        assert!(cc.can_send(ConnId(1), 1500));
        // Unknown flows cannot send at all.
        assert!(!cc.can_send(ConnId(9), 1));
    }

    /// Two flows through one RED bottleneck converge to similar windows —
    /// DCTCP fairness, end to end through the qdisc.
    #[test]
    fn two_flows_converge_through_red() {
        let mut cc = engine();
        cc.open(ConnId(1));
        cc.open(ConnId(2));
        // Give flow 1 a huge head start.
        cc.flows.get_mut(&ConnId(1)).unwrap().cwnd = 600_000.0;
        cc.flows.get_mut(&ConnId(2)).unwrap().cwnd = 15_000.0;

        let mut red = Red::new(
            RedConfig {
                min_th: 10.0,
                max_th: 200.0,
                max_p: 0.3,
                weight: 0.05,
            },
            4096,
        );
        // Fluid round-based simulation: each "RTT", each flow injects a
        // window of 1500B packets; the RED queue marks; marks are echoed.
        let mut id = 0u64;
        for _round in 0..400 {
            for conn in [ConnId(1), ConnId(2)] {
                let window = cc.flow(conn).unwrap().cwnd as u64;
                let pkts = (window / 1500).max(1);
                for _ in 0..pkts {
                    let decision = red
                        .enqueue_ecn(QPkt::new(id, 1500, Time::ZERO), Time::ZERO)
                        .unwrap_or(RedDecision::Mark); // overflow = mark hard
                    id += 1;
                    cc.on_send(conn, 1500);
                    cc.on_ack(conn, 1500, decision == RedDecision::Mark);
                }
            }
            // Bottleneck drains between rounds.
            while red.dequeue(Time::ZERO).is_some() {}
        }
        let w1 = cc.flow(ConnId(1)).unwrap().cwnd;
        let w2 = cc.flow(ConnId(2)).unwrap().cwnd;
        let ratio = w1.max(w2) / w1.min(w2);
        assert!(ratio < 2.5, "flows did not converge: {w1} vs {w2}");
        assert!(cc.counters().0 > 0, "ECN backoffs happened");
    }
}
