//! Receive-side scaling: the RSS indirection table.
//!
//! Real multi-queue NICs steer each ingress frame to an RX queue by
//! indexing an indirection table with the low bits of the Toeplitz flow
//! hash (already computed once per frame in [`pkt::FrameMeta`]); the OS
//! programs both the queue count and the table through privileged device
//! registers (`ethtool -X`). [`RssTable`] is that table: a fixed
//! [`RSS_TABLE_SIZE`]-entry map from hash buckets to queue ids, valid
//! only when every entry names an existing queue. The kernel reprograms
//! it through the control plane's two-phase commit, never directly —
//! queue steering is policy (§4.4), and a half-written table would
//! misdeliver frames.

use std::fmt;

/// Number of entries in the indirection table (matches common hardware:
/// 128 buckets, indexed by `hash % 128`).
pub const RSS_TABLE_SIZE: usize = 128;

/// Maximum number of RX/TX queue pairs the simulated NIC supports.
pub const MAX_QUEUES: usize = 64;

/// Kernel-only MMIO register mirroring the active queue count, written
/// at RSS configuration time so audits can cross-check device state
/// against the kernel's policy store (like
/// [`crate::device::POLICY_GENERATION_REG`] for the policy epoch).
pub const RSS_NUM_QUEUES_REG: u64 = 0x20_0008;

/// Why an RSS configuration was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RssError {
    /// Queue count outside `1..=MAX_QUEUES`.
    BadQueueCount {
        /// The offending count.
        queues: usize,
    },
    /// Indirection table is not exactly [`RSS_TABLE_SIZE`] entries.
    BadTableSize {
        /// The offending length.
        len: usize,
    },
    /// A table entry names a queue that does not exist.
    BadEntry {
        /// Table index of the bad entry.
        index: usize,
        /// The out-of-range queue id.
        queue: u16,
    },
}

impl fmt::Display for RssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RssError::BadQueueCount { queues } => {
                write!(f, "queue count {queues} outside 1..={MAX_QUEUES}")
            }
            RssError::BadTableSize { len } => {
                write!(
                    f,
                    "indirection table has {len} entries, need {RSS_TABLE_SIZE}"
                )
            }
            RssError::BadEntry { index, queue } => {
                write!(
                    f,
                    "indirection[{index}] = {queue} names a nonexistent queue"
                )
            }
        }
    }
}

impl std::error::Error for RssError {}

/// The NIC-resident RSS state: queue count plus indirection table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RssTable {
    num_queues: u16,
    indirection: Vec<u16>,
}

impl RssTable {
    /// Builds the boot-time table for `num_queues` queues: entry `i` maps
    /// to queue `i % num_queues`, the uniform spread hardware defaults to.
    ///
    /// # Panics
    ///
    /// Panics if `num_queues` is outside `1..=MAX_QUEUES` — a NIC cannot
    /// boot with zero queues.
    pub fn uniform(num_queues: usize) -> RssTable {
        assert!(
            (1..=MAX_QUEUES).contains(&num_queues),
            "num_queues {num_queues} outside 1..={MAX_QUEUES}"
        );
        RssTable {
            num_queues: num_queues as u16,
            indirection: (0..RSS_TABLE_SIZE)
                .map(|i| (i % num_queues) as u16)
                .collect(),
        }
    }

    /// Validates and installs a full RSS configuration. On error the
    /// previous configuration is untouched (the table is swapped whole,
    /// never entry-by-entry).
    pub fn configure(&mut self, num_queues: usize, indirection: &[u16]) -> Result<(), RssError> {
        let table = RssTable::validated(num_queues, indirection)?;
        *self = table;
        Ok(())
    }

    /// Validates a candidate configuration without installing it.
    pub fn validated(num_queues: usize, indirection: &[u16]) -> Result<RssTable, RssError> {
        if !(1..=MAX_QUEUES).contains(&num_queues) {
            return Err(RssError::BadQueueCount { queues: num_queues });
        }
        if indirection.len() != RSS_TABLE_SIZE {
            return Err(RssError::BadTableSize {
                len: indirection.len(),
            });
        }
        if let Some((index, &queue)) = indirection
            .iter()
            .enumerate()
            .find(|&(_, &q)| usize::from(q) >= num_queues)
        {
            return Err(RssError::BadEntry { index, queue });
        }
        Ok(RssTable {
            num_queues: num_queues as u16,
            indirection: indirection.to_vec(),
        })
    }

    /// Number of active RX/TX queue pairs.
    pub fn num_queues(&self) -> usize {
        usize::from(self.num_queues)
    }

    /// The full indirection table (always [`RSS_TABLE_SIZE`] entries).
    pub fn indirection(&self) -> &[u16] {
        &self.indirection
    }

    /// Steers a flow hash to its RX queue: `indirection[hash % 128]`.
    pub fn queue_for(&self, hash: u32) -> u16 {
        self.indirection[hash as usize % RSS_TABLE_SIZE]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spreads_round_robin() {
        let t = RssTable::uniform(4);
        assert_eq!(t.num_queues(), 4);
        assert_eq!(t.indirection()[0], 0);
        assert_eq!(t.indirection()[1], 1);
        assert_eq!(t.indirection()[5], 1);
        assert_eq!(t.queue_for(0), 0);
        assert_eq!(t.queue_for(129), 1);
        // Every queue is reachable.
        let mut seen = [false; 4];
        for h in 0..256u32 {
            seen[usize::from(t.queue_for(h))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_queue_steers_everything_to_zero() {
        let t = RssTable::uniform(1);
        for h in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(t.queue_for(h), 0);
        }
    }

    #[test]
    fn configure_validates_whole_table() {
        let mut t = RssTable::uniform(2);
        let before = t.clone();
        // Entry names queue 2 with only 2 queues: refused, state intact.
        let mut bad = vec![0u16; RSS_TABLE_SIZE];
        bad[7] = 2;
        assert_eq!(
            t.configure(2, &bad),
            Err(RssError::BadEntry { index: 7, queue: 2 })
        );
        assert_eq!(t, before);
        // Wrong size refused.
        assert_eq!(
            t.configure(2, &[0u16; 64]),
            Err(RssError::BadTableSize { len: 64 })
        );
        // Zero or oversized queue counts refused.
        assert_eq!(
            t.configure(0, &[0u16; RSS_TABLE_SIZE]),
            Err(RssError::BadQueueCount { queues: 0 })
        );
        assert_eq!(
            t.configure(MAX_QUEUES + 1, &vec![0u16; RSS_TABLE_SIZE]),
            Err(RssError::BadQueueCount {
                queues: MAX_QUEUES + 1
            })
        );
        // A skewed but valid table installs atomically.
        let skew: Vec<u16> = (0..RSS_TABLE_SIZE)
            .map(|i| if i < 96 { 0 } else { 1 })
            .collect();
        t.configure(2, &skew).unwrap();
        assert_eq!(t.indirection(), &skew[..]);
        assert_eq!(t.queue_for(95), 0);
        assert_eq!(t.queue_for(96), 1);
    }

    #[test]
    fn error_display() {
        assert!(RssError::BadQueueCount { queues: 0 }
            .to_string()
            .contains("0"));
        assert!(RssError::BadTableSize { len: 3 }
            .to_string()
            .contains("128"));
        assert!(RssError::BadEntry { index: 9, queue: 8 }
            .to_string()
            .contains("indirection[9]"));
    }
}
