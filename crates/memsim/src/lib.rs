//! Host memory-hierarchy model: LLC with a DDIO way-cap, DMA costs, MMIO
//! costs, and pinned ring buffers.
//!
//! The paper's §5 reports that its prototype "fails to sustain full
//! (100 Gbps) throughput when there are more than 1024 concurrent
//! connections" and suspects DDIO: Intel's Data Direct I/O steers NIC DMA
//! writes into the last-level cache, but only into a *fixed fraction* of
//! its ways. When the set of live ring buffers outgrows that fraction, DMA
//! writes start evicting each other and application reads fall through to
//! DRAM, raising per-packet cost exactly when load is highest.
//!
//! This crate models that mechanism directly:
//!
//! * [`cache::Llc`] — a set-associative last-level cache in which DMA
//!   writes may only allocate into the first `ddio_ways` ways of each set
//!   (the DDIO way mask), while CPU accesses use all ways.
//! * [`ring::HostRing`] — a pinned descriptor+payload ring at a fixed
//!   physical address range, producing per-operation [`sim::Dur`] costs by
//!   walking its cache lines through the LLC.
//! * [`costs::MemCosts`] — the latency numbers for each access outcome,
//!   with defaults drawn from contemporary Xeon measurements.
//! * [`mmio`] — cost accounting for MMIO register reads/writes (doorbells
//!   and head/tail pointers in the Norman design).

pub mod cache;
pub mod costs;
pub mod mmio;
pub mod ring;

pub use cache::{AccessKind, AccessOutcome, Llc, LlcConfig, LlcPartitionPlan, LlcStats, RangeMemo};
pub use costs::MemCosts;
pub use mmio::MmioBus;
pub use ring::{DescRing, HostRing, RingError};
