//! Pinned host ring buffers.
//!
//! Each Norman connection owns a pair of rings (RX and TX) pinned at a
//! fixed physical address range. The NIC produces into RX rings with DMA
//! writes (DDIO-constrained) and the application consumes with CPU reads;
//! the TX direction is symmetric. Every operation walks the descriptor
//! line plus the payload lines through the [`Llc`], so the cost of a ring
//! operation depends on whether that ring's lines are still cache-resident
//! — the mechanism behind the paper's connection-scaling cliff.

use sim::Dur;

use crate::cache::{AccessKind, Llc, RangeMemo};
use crate::costs::MemCosts;

/// Errors from ring operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RingError {
    /// The ring has no free slots.
    Full,
    /// The payload exceeds the slot size.
    Oversize {
        /// Offered payload length.
        len: usize,
        /// Slot capacity.
        slot: usize,
    },
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Full => write!(f, "ring full"),
            RingError::Oversize { len, slot } => {
                write!(f, "payload of {len} bytes exceeds {slot}-byte slot")
            }
        }
    }
}

impl std::error::Error for RingError {}

/// A fixed-address descriptor + payload ring, carrying one descriptor
/// value of type `T` per occupied slot.
///
/// The ring exchanges *descriptors* — like a real NIC ring, the payload
/// bytes never move through it. The `T` is whatever handle the two ends
/// agree on (the dataplane uses a refcounted arena frame handle); the
/// modeled memory cost charges the pinned descriptor and payload-slot
/// addresses, exactly as if the bytes lived in the ring's slot memory.
/// [`HostRing`] is the descriptor-free alias used where only the charge
/// model matters.
#[derive(Clone, Debug)]
pub struct DescRing<T> {
    base_addr: u64,
    slots: usize,
    slot_bytes: usize,
    /// Producer index (free-running).
    head: u64,
    /// Consumer index (free-running).
    tail: u64,
    /// Length of the payload in each occupied slot.
    lens: Vec<usize>,
    /// The descriptor riding in each occupied slot.
    descs: Vec<Option<T>>,
    enqueued: u64,
    dequeued: u64,
    full_drops: u64,
    /// Per-slot LLC residency memos (descriptor line, payload lines):
    /// ring slots sit at fixed addresses and are touched in strict
    /// rotation, the exact pattern [`RangeMemo`] accelerates. Shared by
    /// the producer and consumer of each slot.
    desc_memos: Vec<RangeMemo>,
    data_memos: Vec<RangeMemo>,
    /// When the base address is descriptor-aligned every 16-byte
    /// descriptor fits in one cache line, and the per-slot memo
    /// collapses to one flat way-slot index (`u32::MAX` = unknown) —
    /// see [`Llc::access_line_memo`]. Unaligned rings (never built in
    /// practice) keep the general `desc_memos` path.
    desc_single_line: bool,
    desc_slots: Vec<u32>,
}

/// A ring that models memory cost only, with no descriptor payload.
pub type HostRing = DescRing<()>;

impl<T> DescRing<T> {
    /// Descriptor size per slot (one 16-byte descriptor; a 64-byte line
    /// holds four).
    pub const DESC_BYTES: u64 = 16;

    /// Creates a ring of `slots` slots of `slot_bytes` each, pinned at
    /// `base_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `slot_bytes` is zero.
    pub fn new(base_addr: u64, slots: usize, slot_bytes: usize) -> DescRing<T> {
        assert!(slots > 0, "ring needs at least one slot");
        assert!(slot_bytes > 0, "slots need nonzero capacity");
        DescRing {
            base_addr,
            slots,
            slot_bytes,
            head: 0,
            tail: 0,
            lens: vec![0; slots],
            descs: (0..slots).map(|_| None).collect(),
            enqueued: 0,
            dequeued: 0,
            full_drops: 0,
            desc_memos: vec![RangeMemo::default(); slots],
            data_memos: vec![RangeMemo::default(); slots],
            desc_single_line: base_addr.is_multiple_of(Self::DESC_BYTES),
            desc_slots: vec![u32::MAX; slots],
        }
    }

    /// Returns the total pinned footprint in bytes (descriptors +
    /// payload slots), i.e. the working set this ring contributes to the
    /// DDIO share.
    pub fn footprint_bytes(&self) -> u64 {
        self.slots as u64 * (Self::DESC_BYTES + self.slot_bytes as u64)
    }

    /// Returns the number of occupied slots.
    pub fn len(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// Returns `true` if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Returns `true` if every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.len() == self.slots
    }

    /// Returns (enqueued, dequeued, drops-due-to-full) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.enqueued, self.dequeued, self.full_drops)
    }

    /// Maps a free-running index to its slot. Computed once per
    /// operation — the modulo is a hardware divide, and three of them
    /// per ring op showed up in profiles.
    fn slot_of(&self, index: u64) -> usize {
        (index % self.slots as u64) as usize
    }

    fn desc_addr(&self, slot: usize) -> u64 {
        self.base_addr + slot as u64 * Self::DESC_BYTES
    }

    fn slot_addr(&self, slot: usize) -> u64 {
        self.base_addr + self.slots as u64 * Self::DESC_BYTES + slot as u64 * self.slot_bytes as u64
    }

    /// Produces a descriptor for a payload of `len` bytes into the ring
    /// via DMA (the NIC side), returning the memory cost. A refused
    /// descriptor (full ring, oversize payload) is dropped — for a
    /// refcounted handle that releases its buffer, which is exactly
    /// what a NIC drop does.
    pub fn produce_dma_with(
        &mut self,
        desc: T,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce_with(desc, len, llc, costs, AccessKind::DmaWrite)
    }

    /// Produces a descriptor via DMA that bypasses DDIO allocation — the
    /// kernel-directed placement for demoted (cold-tier) flows, whose
    /// rings must not consume the LLC ways hot traffic depends on. The
    /// producer pays DRAM latency on cold lines; in exchange the hot
    /// rings' residency is untouched.
    pub fn produce_dma_bypass_with(
        &mut self,
        desc: T,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce_with(desc, len, llc, costs, AccessKind::DmaWriteBypass)
    }

    /// Produces a descriptor via CPU stores (the application TX side).
    pub fn produce_cpu_with(
        &mut self,
        desc: T,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce_with(desc, len, llc, costs, AccessKind::CpuWrite)
    }

    fn produce_with(
        &mut self,
        desc: T,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
        kind: AccessKind,
    ) -> Result<Dur, RingError> {
        if len > self.slot_bytes {
            return Err(RingError::Oversize {
                len,
                slot: self.slot_bytes,
            });
        }
        if self.is_full() {
            self.full_drops += 1;
            return Err(RingError::Full);
        }
        let slot = self.slot_of(self.head);
        let mut cost = if self.desc_single_line {
            llc.access_line_memo(
                self.desc_addr(slot),
                kind,
                costs,
                &mut self.desc_slots[slot],
            )
        } else {
            llc.access_range_memo(
                self.desc_addr(slot),
                Self::DESC_BYTES,
                kind,
                costs,
                &mut self.desc_memos[slot],
            )
        };
        cost += llc.access_range_memo(
            self.slot_addr(slot),
            len.max(1) as u64,
            kind,
            costs,
            &mut self.data_memos[slot],
        );
        self.lens[slot] = len;
        self.descs[slot] = Some(desc);
        self.head += 1;
        self.enqueued += 1;
        Ok(cost)
    }

    /// Consumes the oldest slot via CPU loads (the application RX
    /// side), returning `(descriptor, len, cost)`.
    pub fn consume_cpu_desc(&mut self, llc: &mut Llc, costs: &MemCosts) -> Option<(T, usize, Dur)> {
        self.consume(llc, costs, AccessKind::CpuRead)
    }

    /// Consumes the oldest slot via DMA reads (the NIC TX side),
    /// returning `(descriptor, len, cost)`.
    pub fn consume_dma_desc(&mut self, llc: &mut Llc, costs: &MemCosts) -> Option<(T, usize, Dur)> {
        self.consume(llc, costs, AccessKind::DmaRead)
    }

    /// Consumes the oldest payload via CPU loads, discarding the
    /// descriptor (drain paths), returning `(len, cost)`.
    pub fn consume_cpu(&mut self, llc: &mut Llc, costs: &MemCosts) -> Option<(usize, Dur)> {
        self.consume(llc, costs, AccessKind::CpuRead)
            .map(|(_, len, cost)| (len, cost))
    }

    /// Consumes the oldest payload via DMA reads, discarding the
    /// descriptor.
    pub fn consume_dma(&mut self, llc: &mut Llc, costs: &MemCosts) -> Option<(usize, Dur)> {
        self.consume(llc, costs, AccessKind::DmaRead)
            .map(|(_, len, cost)| (len, cost))
    }

    fn consume(
        &mut self,
        llc: &mut Llc,
        costs: &MemCosts,
        kind: AccessKind,
    ) -> Option<(T, usize, Dur)> {
        if self.is_empty() {
            return None;
        }
        let slot = self.slot_of(self.tail);
        let len = self.lens[slot];
        let mut cost = if self.desc_single_line {
            llc.access_line_memo(
                self.desc_addr(slot),
                kind,
                costs,
                &mut self.desc_slots[slot],
            )
        } else {
            llc.access_range_memo(
                self.desc_addr(slot),
                Self::DESC_BYTES,
                kind,
                costs,
                &mut self.desc_memos[slot],
            )
        };
        cost += llc.access_range_memo(
            self.slot_addr(slot),
            len.max(1) as u64,
            kind,
            costs,
            &mut self.data_memos[slot],
        );
        let desc = self.descs[slot]
            .take()
            .expect("occupied slot without a descriptor");
        self.tail += 1;
        self.dequeued += 1;
        Some((desc, len, cost))
    }

    /// Iterates over the descriptors of the occupied slots, oldest
    /// first (audit/ledger walks; no modeled cost).
    pub fn iter_descs(&self) -> impl Iterator<Item = &T> {
        (self.tail..self.head)
            .filter_map(move |idx| self.descs[(idx % self.slots as u64) as usize].as_ref())
    }
}

impl<T: Default> DescRing<T> {
    /// Produces a payload of `len` bytes with a default descriptor (the
    /// charge-model-only [`HostRing`] form).
    pub fn produce_dma(
        &mut self,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce_dma_with(T::default(), len, llc, costs)
    }

    /// [`DescRing::produce_dma_bypass_with`] with a default descriptor.
    pub fn produce_dma_bypass(
        &mut self,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce_dma_bypass_with(T::default(), len, llc, costs)
    }

    /// [`DescRing::produce_cpu_with`] with a default descriptor.
    pub fn produce_cpu(
        &mut self,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce_cpu_with(T::default(), len, llc, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LlcConfig;

    fn llc() -> Llc {
        Llc::new(LlcConfig::xeon_default())
    }

    #[test]
    fn fifo_order_and_lengths() {
        let mut ring = HostRing::new(0, 4, 2048);
        let mut c = llc();
        let costs = MemCosts::default();
        ring.produce_dma(100, &mut c, &costs).unwrap();
        ring.produce_dma(200, &mut c, &costs).unwrap();
        assert_eq!(ring.len(), 2);
        let (len, _) = ring.consume_cpu(&mut c, &costs).unwrap();
        assert_eq!(len, 100);
        let (len, _) = ring.consume_cpu(&mut c, &costs).unwrap();
        assert_eq!(len, 200);
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let mut ring = HostRing::new(0, 2, 64);
        let mut c = llc();
        let costs = MemCosts::default();
        ring.produce_dma(1, &mut c, &costs).unwrap();
        ring.produce_dma(1, &mut c, &costs).unwrap();
        assert_eq!(ring.produce_dma(1, &mut c, &costs), Err(RingError::Full));
        assert_eq!(ring.counters().2, 1);
        // Draining frees a slot.
        ring.consume_cpu(&mut c, &costs);
        assert!(ring.produce_dma(1, &mut c, &costs).is_ok());
    }

    #[test]
    fn oversize_payload_rejected() {
        let mut ring = HostRing::new(0, 2, 64);
        let mut c = llc();
        let costs = MemCosts::default();
        assert_eq!(
            ring.produce_dma(65, &mut c, &costs),
            Err(RingError::Oversize { len: 65, slot: 64 })
        );
    }

    #[test]
    fn consume_empty_is_none() {
        let mut ring = HostRing::new(0, 2, 64);
        let mut c = llc();
        assert!(ring.consume_cpu(&mut c, &MemCosts::default()).is_none());
    }

    #[test]
    fn hot_ring_is_cheaper_than_cold() {
        let costs = MemCosts::default();
        let mut c = llc();
        let mut ring = HostRing::new(0, 64, 2048);
        // Warm up: first pass faults every line in.
        let cold = ring.produce_dma(1500, &mut c, &costs).unwrap();
        ring.consume_cpu(&mut c, &costs);
        // Wrap fully around so the same slot is reused while hot.
        for _ in 0..64 {
            ring.produce_dma(1500, &mut c, &costs).unwrap();
            ring.consume_cpu(&mut c, &costs);
        }
        let hot = ring.produce_dma(1500, &mut c, &costs).unwrap();
        assert!(hot < cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn consumer_hits_when_ddio_holds_the_ring() {
        let costs = MemCosts::default();
        let mut c = llc();
        let mut ring = HostRing::new(0, 16, 2048);
        ring.produce_dma(2048, &mut c, &costs).unwrap();
        c.reset_stats();
        ring.consume_cpu(&mut c, &costs);
        let s = c.stats();
        assert_eq!(
            s.cpu_misses, 0,
            "consumer should hit DDIO-resident lines: {s:?}"
        );
    }

    #[test]
    fn many_rings_thrash_ddio_but_few_do_not() {
        // With the Xeon default (4 MiB DDIO share) and 4 KiB per ring,
        // 256 rings fit comfortably; 4096 rings do not.
        let costs = MemCosts::default();
        let run = |nrings: u64| -> f64 {
            let mut c = llc();
            let ring_footprint = 8 << 10;
            let mut rings: Vec<HostRing> = (0..nrings)
                .map(|i| HostRing::new(i * ring_footprint, 2, 2048))
                .collect();
            // Produce into every ring, then consume from every ring — the
            // NIC runs ahead of the application, as under load. Measure
            // the second pass (steady state).
            for pass in 0..2 {
                if pass == 1 {
                    c.reset_stats();
                }
                for ring in &mut rings {
                    ring.produce_dma(1500, &mut c, &costs).unwrap();
                }
                for ring in &mut rings {
                    ring.consume_cpu(&mut c, &costs);
                }
            }
            c.stats().cpu_hit_rate()
        };
        let few = run(128);
        let many = run(4096);
        assert!(few > 0.95, "few rings hit rate {few}");
        // 4096 rings oversubscribe the DDIO share ~1.6x; with hashed set
        // indexing the miss rate is substantial but not total.
        assert!(many < 0.75, "many rings hit rate {many}");
        assert!(few - many > 0.2, "thrash gap: few {few}, many {many}");
    }

    #[test]
    fn bypass_produce_spares_hot_rings() {
        let costs = MemCosts::default();
        // Tiny LLC so residency is easy to reason about: bypass traffic
        // over a huge address range must not degrade a hot ring's hits.
        let mut c = Llc::new(LlcConfig {
            size_bytes: 64 * 16 * 64,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: true,
        });
        let mut hot = HostRing::new(0, 2, 2048);
        // Warm the hot ring, then record its steady-state cost.
        for _ in 0..4 {
            hot.produce_dma(1500, &mut c, &costs).unwrap();
            hot.consume_cpu(&mut c, &costs).unwrap();
        }
        let before = {
            hot.produce_dma(1500, &mut c, &costs).unwrap();
            let (_, consume) = hot.consume_cpu(&mut c, &costs).unwrap();
            consume
        };
        // A storm of cold-flow traffic through bypassing rings: it cannot
        // allocate, so it cannot displace one line of the hot ring.
        let mut cold_rings: Vec<HostRing> = (1..512)
            .map(|i| HostRing::new(i * (8 << 10), 2, 2048))
            .collect();
        for ring in &mut cold_rings {
            ring.produce_dma_bypass(1500, &mut c, &costs).unwrap();
        }
        let after = {
            hot.produce_dma(1500, &mut c, &costs).unwrap();
            let (_, consume) = hot.consume_cpu(&mut c, &costs).unwrap();
            consume
        };
        assert_eq!(after, before, "bypass storm displaced hot-ring lines");
        // Whereas the same storm through allocating DMA does displace it.
        for ring in &mut cold_rings {
            ring.consume_cpu(&mut c, &costs).unwrap();
            ring.produce_dma(1500, &mut c, &costs).unwrap();
        }
        let thrashed = {
            hot.produce_dma(1500, &mut c, &costs).unwrap();
            let (_, consume) = hot.consume_cpu(&mut c, &costs).unwrap();
            consume
        };
        assert!(thrashed > after, "allocating storm should thrash");
        assert!(c.stats().ddio_evictions > 0);
    }

    #[test]
    fn descriptors_ride_the_ring_in_fifo_order() {
        let mut ring: DescRing<&'static str> = DescRing::new(0, 4, 2048);
        let mut c = llc();
        let costs = MemCosts::default();
        ring.produce_dma_with("first", 100, &mut c, &costs).unwrap();
        ring.produce_cpu_with("second", 200, &mut c, &costs)
            .unwrap();
        assert_eq!(
            ring.iter_descs().copied().collect::<Vec<_>>(),
            ["first", "second"]
        );
        let (d, len, _) = ring.consume_cpu_desc(&mut c, &costs).unwrap();
        assert_eq!((d, len), ("first", 100));
        let (d, len, _) = ring.consume_dma_desc(&mut c, &costs).unwrap();
        assert_eq!((d, len), ("second", 200));
        assert!(ring.is_empty());
        assert_eq!(ring.iter_descs().count(), 0);
    }

    #[test]
    fn refused_descriptor_is_dropped() {
        // A produce refusal must release the descriptor (for refcounted
        // handles, that frees the buffer — a real drop).
        let mut ring: DescRing<std::sync::Arc<u8>> = DescRing::new(0, 1, 64);
        let mut c = llc();
        let costs = MemCosts::default();
        let held = std::sync::Arc::new(7u8);
        ring.produce_dma_with(std::sync::Arc::clone(&held), 1, &mut c, &costs)
            .unwrap();
        ring.produce_dma_with(std::sync::Arc::clone(&held), 1, &mut c, &costs)
            .unwrap_err();
        // ring holds 1, we hold 1; the refused clone is gone.
        assert_eq!(std::sync::Arc::strong_count(&held), 2);
    }

    #[test]
    fn descriptor_ring_charges_exactly_like_host_ring() {
        // The descriptor payload must not perturb the memory model: a
        // DescRing<T> and a HostRing driven identically produce
        // identical costs, hit rates, and counters (this is what keeps
        // replay byte-identical across the representation change).
        let costs = MemCosts::default();
        let mut c1 = llc();
        let mut c2 = llc();
        let mut plain: HostRing = HostRing::new(4096, 8, 2048);
        let mut carrying: DescRing<Vec<u8>> = DescRing::new(4096, 8, 2048);
        for i in 0..32usize {
            let len = 64 + (i * 97) % 1400;
            let a = plain.produce_dma(len, &mut c1, &costs).unwrap();
            let b = carrying
                .produce_dma_with(vec![0u8; len], len, &mut c2, &costs)
                .unwrap();
            assert_eq!(a, b, "produce cost diverged at {i}");
            if i % 3 == 0 || plain.is_full() {
                let (la, ca) = plain.consume_cpu(&mut c1, &costs).unwrap();
                let (_, lb, cb) = carrying.consume_cpu_desc(&mut c2, &costs).unwrap();
                assert_eq!((la, ca), (lb, cb), "consume cost diverged at {i}");
            }
        }
        assert_eq!(plain.counters(), carrying.counters());
        assert_eq!(c1.stats(), c2.stats());
    }

    #[test]
    fn footprint_accounts_descriptors_and_slots() {
        let ring = HostRing::new(0, 128, 2048);
        assert_eq!(ring.footprint_bytes(), 128 * (16 + 2048));
    }

    #[test]
    fn error_display() {
        assert_eq!(RingError::Full.to_string(), "ring full");
        assert!(RingError::Oversize { len: 9, slot: 4 }
            .to_string()
            .contains("9 bytes"));
    }
}
