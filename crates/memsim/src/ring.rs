//! Pinned host ring buffers.
//!
//! Each Norman connection owns a pair of rings (RX and TX) pinned at a
//! fixed physical address range. The NIC produces into RX rings with DMA
//! writes (DDIO-constrained) and the application consumes with CPU reads;
//! the TX direction is symmetric. Every operation walks the descriptor
//! line plus the payload lines through the [`Llc`], so the cost of a ring
//! operation depends on whether that ring's lines are still cache-resident
//! — the mechanism behind the paper's connection-scaling cliff.

use sim::Dur;

use crate::cache::{AccessKind, Llc};
use crate::costs::MemCosts;

/// Errors from ring operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RingError {
    /// The ring has no free slots.
    Full,
    /// The payload exceeds the slot size.
    Oversize {
        /// Offered payload length.
        len: usize,
        /// Slot capacity.
        slot: usize,
    },
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Full => write!(f, "ring full"),
            RingError::Oversize { len, slot } => {
                write!(f, "payload of {len} bytes exceeds {slot}-byte slot")
            }
        }
    }
}

impl std::error::Error for RingError {}

/// A fixed-address descriptor + payload ring.
#[derive(Clone, Debug)]
pub struct HostRing {
    base_addr: u64,
    slots: usize,
    slot_bytes: usize,
    /// Producer index (free-running).
    head: u64,
    /// Consumer index (free-running).
    tail: u64,
    /// Length of the payload in each occupied slot.
    lens: Vec<usize>,
    enqueued: u64,
    dequeued: u64,
    full_drops: u64,
}

impl HostRing {
    /// Descriptor size per slot (one 16-byte descriptor; a 64-byte line
    /// holds four).
    pub const DESC_BYTES: u64 = 16;

    /// Creates a ring of `slots` slots of `slot_bytes` each, pinned at
    /// `base_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `slot_bytes` is zero.
    pub fn new(base_addr: u64, slots: usize, slot_bytes: usize) -> HostRing {
        assert!(slots > 0, "ring needs at least one slot");
        assert!(slot_bytes > 0, "slots need nonzero capacity");
        HostRing {
            base_addr,
            slots,
            slot_bytes,
            head: 0,
            tail: 0,
            lens: vec![0; slots],
            enqueued: 0,
            dequeued: 0,
            full_drops: 0,
        }
    }

    /// Returns the total pinned footprint in bytes (descriptors +
    /// payload slots), i.e. the working set this ring contributes to the
    /// DDIO share.
    pub fn footprint_bytes(&self) -> u64 {
        self.slots as u64 * (Self::DESC_BYTES + self.slot_bytes as u64)
    }

    /// Returns the number of occupied slots.
    pub fn len(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// Returns `true` if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Returns `true` if every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.len() == self.slots
    }

    /// Returns (enqueued, dequeued, drops-due-to-full) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.enqueued, self.dequeued, self.full_drops)
    }

    fn desc_addr(&self, index: u64) -> u64 {
        self.base_addr + (index % self.slots as u64) * Self::DESC_BYTES
    }

    fn slot_addr(&self, index: u64) -> u64 {
        self.base_addr
            + self.slots as u64 * Self::DESC_BYTES
            + (index % self.slots as u64) * self.slot_bytes as u64
    }

    /// Produces a payload of `len` bytes into the ring via DMA (the NIC
    /// side), returning the memory cost.
    pub fn produce_dma(
        &mut self,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce(len, llc, costs, AccessKind::DmaWrite)
    }

    /// Produces a payload via DMA that bypasses DDIO allocation — the
    /// kernel-directed placement for demoted (cold-tier) flows, whose
    /// rings must not consume the LLC ways hot traffic depends on. The
    /// producer pays DRAM latency on cold lines; in exchange the hot
    /// rings' residency is untouched.
    pub fn produce_dma_bypass(
        &mut self,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce(len, llc, costs, AccessKind::DmaWriteBypass)
    }

    /// Produces a payload via CPU stores (the application TX side).
    pub fn produce_cpu(
        &mut self,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
    ) -> Result<Dur, RingError> {
        self.produce(len, llc, costs, AccessKind::CpuWrite)
    }

    fn produce(
        &mut self,
        len: usize,
        llc: &mut Llc,
        costs: &MemCosts,
        kind: AccessKind,
    ) -> Result<Dur, RingError> {
        if len > self.slot_bytes {
            return Err(RingError::Oversize {
                len,
                slot: self.slot_bytes,
            });
        }
        if self.is_full() {
            self.full_drops += 1;
            return Err(RingError::Full);
        }
        let idx = self.head;
        let mut cost = llc.access_range(self.desc_addr(idx), Self::DESC_BYTES, kind, costs);
        cost += llc.access_range(self.slot_addr(idx), len.max(1) as u64, kind, costs);
        self.lens[(idx % self.slots as u64) as usize] = len;
        self.head += 1;
        self.enqueued += 1;
        Ok(cost)
    }

    /// Consumes the oldest payload via CPU loads (the application RX
    /// side), returning `(len, cost)`.
    pub fn consume_cpu(&mut self, llc: &mut Llc, costs: &MemCosts) -> Option<(usize, Dur)> {
        self.consume(llc, costs, AccessKind::CpuRead)
    }

    /// Consumes the oldest payload via DMA reads (the NIC TX side).
    pub fn consume_dma(&mut self, llc: &mut Llc, costs: &MemCosts) -> Option<(usize, Dur)> {
        self.consume(llc, costs, AccessKind::DmaRead)
    }

    fn consume(
        &mut self,
        llc: &mut Llc,
        costs: &MemCosts,
        kind: AccessKind,
    ) -> Option<(usize, Dur)> {
        if self.is_empty() {
            return None;
        }
        let idx = self.tail;
        let len = self.lens[(idx % self.slots as u64) as usize];
        let mut cost = llc.access_range(self.desc_addr(idx), Self::DESC_BYTES, kind, costs);
        cost += llc.access_range(self.slot_addr(idx), len.max(1) as u64, kind, costs);
        self.tail += 1;
        self.dequeued += 1;
        Some((len, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LlcConfig;

    fn llc() -> Llc {
        Llc::new(LlcConfig::xeon_default())
    }

    #[test]
    fn fifo_order_and_lengths() {
        let mut ring = HostRing::new(0, 4, 2048);
        let mut c = llc();
        let costs = MemCosts::default();
        ring.produce_dma(100, &mut c, &costs).unwrap();
        ring.produce_dma(200, &mut c, &costs).unwrap();
        assert_eq!(ring.len(), 2);
        let (len, _) = ring.consume_cpu(&mut c, &costs).unwrap();
        assert_eq!(len, 100);
        let (len, _) = ring.consume_cpu(&mut c, &costs).unwrap();
        assert_eq!(len, 200);
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let mut ring = HostRing::new(0, 2, 64);
        let mut c = llc();
        let costs = MemCosts::default();
        ring.produce_dma(1, &mut c, &costs).unwrap();
        ring.produce_dma(1, &mut c, &costs).unwrap();
        assert_eq!(ring.produce_dma(1, &mut c, &costs), Err(RingError::Full));
        assert_eq!(ring.counters().2, 1);
        // Draining frees a slot.
        ring.consume_cpu(&mut c, &costs);
        assert!(ring.produce_dma(1, &mut c, &costs).is_ok());
    }

    #[test]
    fn oversize_payload_rejected() {
        let mut ring = HostRing::new(0, 2, 64);
        let mut c = llc();
        let costs = MemCosts::default();
        assert_eq!(
            ring.produce_dma(65, &mut c, &costs),
            Err(RingError::Oversize { len: 65, slot: 64 })
        );
    }

    #[test]
    fn consume_empty_is_none() {
        let mut ring = HostRing::new(0, 2, 64);
        let mut c = llc();
        assert!(ring.consume_cpu(&mut c, &MemCosts::default()).is_none());
    }

    #[test]
    fn hot_ring_is_cheaper_than_cold() {
        let costs = MemCosts::default();
        let mut c = llc();
        let mut ring = HostRing::new(0, 64, 2048);
        // Warm up: first pass faults every line in.
        let cold = ring.produce_dma(1500, &mut c, &costs).unwrap();
        ring.consume_cpu(&mut c, &costs);
        // Wrap fully around so the same slot is reused while hot.
        for _ in 0..64 {
            ring.produce_dma(1500, &mut c, &costs).unwrap();
            ring.consume_cpu(&mut c, &costs);
        }
        let hot = ring.produce_dma(1500, &mut c, &costs).unwrap();
        assert!(hot < cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn consumer_hits_when_ddio_holds_the_ring() {
        let costs = MemCosts::default();
        let mut c = llc();
        let mut ring = HostRing::new(0, 16, 2048);
        ring.produce_dma(2048, &mut c, &costs).unwrap();
        c.reset_stats();
        ring.consume_cpu(&mut c, &costs);
        let s = c.stats();
        assert_eq!(
            s.cpu_misses, 0,
            "consumer should hit DDIO-resident lines: {s:?}"
        );
    }

    #[test]
    fn many_rings_thrash_ddio_but_few_do_not() {
        // With the Xeon default (4 MiB DDIO share) and 4 KiB per ring,
        // 256 rings fit comfortably; 4096 rings do not.
        let costs = MemCosts::default();
        let run = |nrings: u64| -> f64 {
            let mut c = llc();
            let ring_footprint = 8 << 10;
            let mut rings: Vec<HostRing> = (0..nrings)
                .map(|i| HostRing::new(i * ring_footprint, 2, 2048))
                .collect();
            // Produce into every ring, then consume from every ring — the
            // NIC runs ahead of the application, as under load. Measure
            // the second pass (steady state).
            for pass in 0..2 {
                if pass == 1 {
                    c.reset_stats();
                }
                for ring in &mut rings {
                    ring.produce_dma(1500, &mut c, &costs).unwrap();
                }
                for ring in &mut rings {
                    ring.consume_cpu(&mut c, &costs);
                }
            }
            c.stats().cpu_hit_rate()
        };
        let few = run(128);
        let many = run(4096);
        assert!(few > 0.95, "few rings hit rate {few}");
        // 4096 rings oversubscribe the DDIO share ~1.6x; with hashed set
        // indexing the miss rate is substantial but not total.
        assert!(many < 0.75, "many rings hit rate {many}");
        assert!(few - many > 0.2, "thrash gap: few {few}, many {many}");
    }

    #[test]
    fn bypass_produce_spares_hot_rings() {
        let costs = MemCosts::default();
        // Tiny LLC so residency is easy to reason about: bypass traffic
        // over a huge address range must not degrade a hot ring's hits.
        let mut c = Llc::new(LlcConfig {
            size_bytes: 64 * 16 * 64,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: true,
        });
        let mut hot = HostRing::new(0, 2, 2048);
        // Warm the hot ring, then record its steady-state cost.
        for _ in 0..4 {
            hot.produce_dma(1500, &mut c, &costs).unwrap();
            hot.consume_cpu(&mut c, &costs).unwrap();
        }
        let before = {
            hot.produce_dma(1500, &mut c, &costs).unwrap();
            let (_, consume) = hot.consume_cpu(&mut c, &costs).unwrap();
            consume
        };
        // A storm of cold-flow traffic through bypassing rings: it cannot
        // allocate, so it cannot displace one line of the hot ring.
        let mut cold_rings: Vec<HostRing> = (1..512)
            .map(|i| HostRing::new(i * (8 << 10), 2, 2048))
            .collect();
        for ring in &mut cold_rings {
            ring.produce_dma_bypass(1500, &mut c, &costs).unwrap();
        }
        let after = {
            hot.produce_dma(1500, &mut c, &costs).unwrap();
            let (_, consume) = hot.consume_cpu(&mut c, &costs).unwrap();
            consume
        };
        assert_eq!(after, before, "bypass storm displaced hot-ring lines");
        // Whereas the same storm through allocating DMA does displace it.
        for ring in &mut cold_rings {
            ring.consume_cpu(&mut c, &costs).unwrap();
            ring.produce_dma(1500, &mut c, &costs).unwrap();
        }
        let thrashed = {
            hot.produce_dma(1500, &mut c, &costs).unwrap();
            let (_, consume) = hot.consume_cpu(&mut c, &costs).unwrap();
            consume
        };
        assert!(thrashed > after, "allocating storm should thrash");
        assert!(c.stats().ddio_evictions > 0);
    }

    #[test]
    fn footprint_accounts_descriptors_and_slots() {
        let ring = HostRing::new(0, 128, 2048);
        assert_eq!(ring.footprint_bytes(), 128 * (16 + 2048));
    }

    #[test]
    fn error_display() {
        assert_eq!(RingError::Full.to_string(), "ring full");
        assert!(RingError::Oversize { len: 9, slot: 4 }
            .to_string()
            .contains("9 bytes"));
    }
}
