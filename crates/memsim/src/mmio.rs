//! MMIO register access cost accounting.
//!
//! The Norman design exposes ring head/tail pointers and doorbells as
//! SmartNIC MMIO registers. Posted writes are cheap; uncached reads stall
//! the pipeline for a PCIe round trip. Register *semantics* live in the
//! NIC model; this bus only charges time and counts operations.

use sim::Dur;

use crate::costs::MemCosts;

/// A cost- and count-tracking MMIO bus.
#[derive(Clone, Debug, Default)]
pub struct MmioBus {
    reads: u64,
    writes: u64,
    time_spent: Dur,
}

impl MmioBus {
    /// Creates an idle bus.
    pub fn new() -> MmioBus {
        MmioBus::default()
    }

    /// Charges one posted register write and returns its cost.
    pub fn write(&mut self, costs: &MemCosts) -> Dur {
        self.writes += 1;
        self.time_spent += costs.mmio_write;
        costs.mmio_write
    }

    /// Charges one uncached register read and returns its cost.
    pub fn read(&mut self, costs: &MemCosts) -> Dur {
        self.reads += 1;
        self.time_spent += costs.mmio_read;
        costs.mmio_read
    }

    /// Returns the number of reads issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Returns the number of writes issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Returns total time charged to MMIO.
    pub fn time_spent(&self) -> Dur {
        self.time_spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_and_counts() {
        let costs = MemCosts::default();
        let mut bus = MmioBus::new();
        let w = bus.write(&costs);
        let r = bus.read(&costs);
        assert_eq!(w, costs.mmio_write);
        assert_eq!(r, costs.mmio_read);
        assert_eq!(bus.writes(), 1);
        assert_eq!(bus.reads(), 1);
        assert_eq!(bus.time_spent(), costs.mmio_write + costs.mmio_read);
    }

    #[test]
    fn reads_cost_more_than_writes() {
        let costs = MemCosts::default();
        let mut bus = MmioBus::new();
        assert!(bus.read(&costs) > bus.write(&costs));
    }
}
