//! A set-associative LLC with a DDIO way mask.
//!
//! DMA writes may only allocate into the first `ddio_ways` ways of each
//! set, mirroring Intel DDIO's restriction to a fixed subset of LLC ways.
//! CPU accesses allocate anywhere. Replacement is LRU within the ways the
//! access class is allowed to use; hits anywhere refresh recency.

use sim::Dur;

use crate::costs::MemCosts;

/// Who is touching memory, and how.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// CPU load.
    CpuRead,
    /// CPU store.
    CpuWrite,
    /// Device DMA write (DDIO-constrained allocation).
    DmaWrite,
    /// Device DMA write that deliberately bypasses DDIO allocation: it
    /// updates a line already resident (hit) but never allocates on a
    /// miss, going straight to DRAM. The kernel uses this for demoted
    /// (cold-tier) flows so their rings cannot thrash the DDIO ways that
    /// hot traffic depends on.
    DmaWriteBypass,
    /// Device DMA read.
    DmaRead,
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and fetched/allocated.
    Miss,
}

/// LLC geometry.
#[derive(Clone, Debug)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Ways DMA writes may allocate into (the DDIO share). Zero disables
    /// DDIO entirely: every DMA write goes to DRAM.
    pub ddio_ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hash line addresses into sets (modern sliced LLCs with complex
    /// addressing) instead of simple modulo indexing. Hashing avoids the
    /// artificial page-color conflicts modulo indexing fabricates for
    /// page-aligned buffers; turn it off only for tests that need to
    /// construct set collisions deterministically.
    pub hash_sets: bool,
}

impl LlcConfig {
    /// A 32 MiB, 16-way LLC with 2 DDIO ways — the configuration whose
    /// DDIO share (4 MiB) is outgrown at ~1024 connections with 4 KiB of
    /// ring per connection, matching the paper's observed cliff.
    pub fn xeon_default() -> LlcConfig {
        LlcConfig {
            size_bytes: 32 << 20,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: true,
        }
    }

    /// The same LLC with DDIO allowed to use every way — the ablation that
    /// removes the paper's suspected bottleneck.
    pub fn unlimited_ddio() -> LlcConfig {
        LlcConfig {
            ddio_ways: 16,
            ..LlcConfig::xeon_default()
        }
    }

    /// Returns the number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / u64::from(self.ways)
    }

    /// Returns the capacity DMA writes can occupy, in bytes.
    pub fn ddio_capacity(&self) -> u64 {
        self.size_bytes * u64::from(self.ddio_ways) / u64::from(self.ways)
    }
}

/// Per-kind hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// CPU hits.
    pub cpu_hits: u64,
    /// CPU misses.
    pub cpu_misses: u64,
    /// DMA-write DDIO hits/allocations.
    pub dma_hits: u64,
    /// DMA-write DRAM fallbacks.
    pub dma_misses: u64,
    /// Valid lines evicted by DMA-write allocations — the direct measure
    /// of DDIO thrash (§5's cliff mechanism).
    pub ddio_evictions: u64,
}

impl LlcStats {
    /// CPU hit rate in `[0, 1]`, or 1.0 with no accesses.
    pub fn cpu_hit_rate(&self) -> f64 {
        let total = self.cpu_hits + self.cpu_misses;
        if total == 0 {
            1.0
        } else {
            self.cpu_hits as f64 / total as f64
        }
    }

    /// Accumulates another stats block (merging per-shard partitions).
    pub fn absorb(&mut self, other: &LlcStats) {
        self.cpu_hits += other.cpu_hits;
        self.cpu_misses += other.cpu_misses;
        self.dma_hits += other.dma_hits;
        self.dma_misses += other.dma_misses;
        self.ddio_evictions += other.ddio_evictions;
    }
}

/// A way-partitioned split of one physical LLC across worker shards: each
/// shard receives a private slice of the associativity (and of the DDIO
/// way budget), so one shard's ring working set cannot evict another's —
/// the kernel arbitrating cache ways exactly as it arbitrates SRAM. The
/// plan is the audited source of truth: shard geometries must sum back to
/// the donor cache.
#[derive(Clone, Debug)]
pub struct LlcPartitionPlan {
    total: LlcConfig,
    shards: Vec<LlcConfig>,
}

impl LlcPartitionPlan {
    /// Carves `total` into `n` way-disjoint partitions. Ways divide
    /// evenly with the remainder going to the low-index shards; every
    /// shard keeps the donor's set count and line size, so a 1-way split
    /// is the donor geometry unchanged.
    ///
    /// DDIO ways divide the same way but are floored at one per shard
    /// (when the donor has any): the kernel reprograms the IIO way mask
    /// per partition, so every shard dedicates at least one of *its own*
    /// ways to inbound DMA. Without the floor, carving 2 DDIO ways into
    /// 4 shards would leave half the shards with no DMA-allocatable ways
    /// at all, sending their ring traffic straight to DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the donor's associativity.
    pub fn split(total: LlcConfig, n: usize) -> LlcPartitionPlan {
        assert!(n > 0, "need at least one shard");
        assert!(
            n as u32 <= total.ways,
            "cannot give {n} shards way-disjoint slices of {} ways",
            total.ways
        );
        let sets = total.sets();
        let n32 = n as u32;
        let shards = (0..n32)
            .map(|i| {
                let ways = total.ways / n32 + u32::from(i < total.ways % n32);
                let ddio_ways = (total.ddio_ways / n32 + u32::from(i < total.ddio_ways % n32))
                    .max(u32::from(total.ddio_ways > 0));
                LlcConfig {
                    size_bytes: sets * total.line_bytes * u64::from(ways),
                    ways,
                    ddio_ways,
                    line_bytes: total.line_bytes,
                    hash_sets: total.hash_sets,
                }
            })
            .collect();
        LlcPartitionPlan { total, shards }
    }

    /// The donor cache geometry.
    pub fn total(&self) -> &LlcConfig {
        &self.total
    }

    /// The per-shard partitions, in shard order.
    pub fn shards(&self) -> &[LlcConfig] {
        &self.shards
    }

    /// The partition of shard `i`.
    pub fn shard(&self, i: usize) -> &LlcConfig {
        &self.shards[i]
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan is empty (it never is; kept for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Conservation audit: the shard slices must exactly repartition the
    /// donor's ways and (set-aligned) capacity, and the per-shard DDIO
    /// masks must sum to the donor's budget floored at one way per shard
    /// (see [`LlcPartitionPlan::split`]).
    pub fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let ways: u32 = self.shards.iter().map(|s| s.ways).sum();
        if ways != self.total.ways {
            violations.push(format!(
                "llc plan: shard ways sum {ways} != donor {}",
                self.total.ways
            ));
        }
        let ddio: u32 = self.shards.iter().map(|s| s.ddio_ways).sum();
        let want_ddio = if self.total.ddio_ways == 0 {
            0
        } else {
            self.total.ddio_ways.max(self.shards.len() as u32)
        };
        if ddio != want_ddio {
            violations.push(format!(
                "llc plan: shard DDIO ways sum {ddio} != floored donor budget {want_ddio}"
            ));
        }
        for (i, s) in self.shards.iter().enumerate() {
            if self.total.ddio_ways > 0 && s.ddio_ways == 0 {
                violations.push(format!("llc plan: shard {i} lost its DDIO way"));
            }
            if s.ddio_ways > s.ways {
                violations.push(format!(
                    "llc plan: shard {i} DDIO mask {} exceeds its {} ways",
                    s.ddio_ways, s.ways
                ));
            }
        }
        let bytes: u64 = self.shards.iter().map(|s| s.size_bytes).sum();
        let donor = self.total.sets() * self.total.line_bytes * u64::from(self.total.ways);
        if bytes != donor {
            violations.push(format!(
                "llc plan: shard capacity sum {bytes} != donor {donor}"
            ));
        }
        for (i, s) in self.shards.iter().enumerate() {
            if s.sets() != self.total.sets() {
                violations.push(format!(
                    "llc plan: shard {i} has {} sets, donor {}",
                    s.sets(),
                    self.total.sets()
                ));
            }
        }
        violations
    }
}

/// Asks the kernel to back a buffer with transparent huge pages. The
/// model's way-slot array spans megabytes and is indexed by hashed set,
/// so with 4 KiB pages nearly every modeled access is also a real dTLB
/// miss; 2 MiB pages remove that. Purely an optimization — errors are
/// ignored and the call is skipped off Linux and under miri (no FFI).
#[allow(unused_variables)]
fn advise_huge_pages(addr: *const u8, len: usize) {
    #[cfg(all(target_os = "linux", not(miri)))]
    {
        extern "C" {
            fn madvise(addr: *mut std::ffi::c_void, length: usize, advice: i32) -> i32;
        }
        const MADV_HUGEPAGE: i32 = 14;
        const PAGE: usize = 4096;
        let start = addr as usize & !(PAGE - 1);
        let end = (addr as usize + len + PAGE - 1) & !(PAGE - 1);
        // SAFETY: the range covers pages of a live allocation we own;
        // MADV_HUGEPAGE only tunes its backing, never its contents.
        unsafe {
            madvise(start as *mut std::ffi::c_void, end - start, MADV_HUGEPAGE);
        }
    }
}

/// One way slot of the modeled cache: the resident line's address (the
/// tag) and its LRU recency stamp, packed together so the hit path's
/// read-tag/stamp-recency pair lands in one real cache line.
#[derive(Clone, Copy, Debug)]
struct LineSlot {
    tag: u64,
    last_use: u64,
}

impl LineSlot {
    /// An empty slot. `u64::MAX` is unreachable as a tag for any line
    /// size above one byte (and the validity bitmask, not the sentinel,
    /// remains the authority in the scan and victim paths).
    const EMPTY: LineSlot = LineSlot {
        tag: u64::MAX,
        last_use: 0,
    };
}

/// The last-level cache model.
///
/// Line state is kept struct-of-arrays — contiguous `tags`, a per-set
/// validity bitmask, and a separate recency array — so the hit scan reads
/// one dense cache line of tags instead of striding through larger
/// structs. A per-set MRU way hint short-circuits the scan entirely for
/// the (dominant) re-touch case. Neither changes any modeled outcome:
/// valid tags within a set are unique, so the hinted hit is the same hit
/// the scan would find, and victim selection reproduces the original
/// first-invalid-then-LRU order exactly.
pub struct Llc {
    cfg: LlcConfig,
    sets: u64,
    ways: usize,
    /// Tag + recency per way slot, `sets * ways` long, set-major. The
    /// pair shares one 16-byte slot so the dominant hit path (read tag,
    /// stamp recency) touches a single real cache line instead of two
    /// parallel arrays.
    lines: Vec<LineSlot>,
    /// Per-set validity bitmask (way `w` valid iff bit `w` set).
    valid: Vec<u64>,
    /// Per-set most-recently-touched way hint.
    mru: Vec<u8>,
    /// `log2(line_bytes)` when the line size is a power of two, turning
    /// the per-access division into a shift (identical quotients).
    line_shift: Option<u32>,
    /// `sets - 1` when the set count is a power of two, turning the set
    /// modulo into a mask (identical remainders).
    set_mask: Option<u64>,
    clock: u64,
    stats: LlcStats,
}

impl Llc {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways,
    /// `ddio_ways > ways`, or associativity above the 64 ways the per-set
    /// validity bitmask can represent).
    pub fn new(cfg: LlcConfig) -> Llc {
        assert!(cfg.ways > 0, "cache needs at least one way");
        assert!(cfg.ways <= 64, "associativity above 64 is unsupported");
        assert!(cfg.ddio_ways <= cfg.ways, "DDIO ways exceed associativity");
        let sets = cfg.sets();
        assert!(sets > 0, "cache smaller than one set");
        let slots = (sets * u64::from(cfg.ways)) as usize;
        let lines = vec![LineSlot::EMPTY; slots];
        advise_huge_pages(
            lines.as_ptr() as *const u8,
            std::mem::size_of_val(&lines[..]),
        );
        Llc {
            sets,
            ways: cfg.ways as usize,
            lines,
            valid: vec![0; sets as usize],
            mru: vec![0; sets as usize],
            line_shift: cfg
                .line_bytes
                .is_power_of_two()
                .then(|| cfg.line_bytes.trailing_zeros()),
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            clock: 0,
            cfg,
            stats: LlcStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    /// Resets statistics (the cache contents are retained).
    pub fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
    }

    /// Line address of `addr`: the division is a shift for power-of-two
    /// line sizes. The line address doubles as the tag — simpler than
    /// stripping set bits and correct under hashed indexing.
    fn line_of(&self, addr: u64) -> u64 {
        match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.cfg.line_bytes,
        }
    }

    fn set_of(&self, line: u64) -> u64 {
        let x = if self.cfg.hash_sets {
            // SplitMix64 finalizer: decorrelates page-aligned buffers the
            // way sliced complex addressing does on real parts.
            let mut x = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x
        } else {
            line
        };
        match self.set_mask {
            Some(m) => x & m,
            None => x % self.sets,
        }
    }

    /// Touches the single cache line containing `addr`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        self.access_line(self.line_of(addr), kind).0
    }

    /// Touches the line with line address (= tag) `tag`, returning the
    /// outcome and the way slot (`set * ways + way`) now holding the
    /// line — `None` when the access did not leave it cached (a
    /// no-allocate DMA miss).
    fn access_line(&mut self, tag: u64, kind: AccessKind) -> (AccessOutcome, Option<u32>) {
        self.clock += 1;
        let set = self.set_of(tag) as usize;
        let base = set * self.ways;
        let vmask = self.valid[set];

        // Hit anywhere in the set. The MRU hint catches the dominant
        // re-touch case without scanning; valid tags within a set are
        // unique, so hint and scan can only find the same line.
        let hint = self.mru[set] as usize;
        let hit_way = if vmask >> hint & 1 == 1 && self.lines[base + hint].tag == tag {
            Some(hint)
        } else {
            let mut m = vmask;
            loop {
                if m == 0 {
                    break None;
                }
                let w = m.trailing_zeros() as usize;
                if self.lines[base + w].tag == tag {
                    break Some(w);
                }
                m &= m - 1;
            }
        };
        if let Some(w) = hit_way {
            self.lines[base + w].last_use = self.clock;
            self.mru[set] = w as u8;
            match kind {
                AccessKind::CpuRead | AccessKind::CpuWrite | AccessKind::DmaRead => {
                    self.stats.cpu_hits += 1
                }
                AccessKind::DmaWrite | AccessKind::DmaWriteBypass => self.stats.dma_hits += 1,
            }
            return (AccessOutcome::Hit, Some((base + w) as u32));
        }

        // Miss: allocate within the ways this access class may use.
        let alloc_ways = match kind {
            AccessKind::DmaWrite => self.cfg.ddio_ways as usize,
            // A bypassing DMA write never allocates: straight to DRAM.
            AccessKind::DmaWriteBypass => 0,
            _ => self.ways,
        };
        match kind {
            AccessKind::CpuRead | AccessKind::CpuWrite | AccessKind::DmaRead => {
                self.stats.cpu_misses += 1
            }
            AccessKind::DmaWrite | AccessKind::DmaWriteBypass => self.stats.dma_misses += 1,
        }
        if alloc_ways == 0 {
            // DDIO disabled (or deliberately bypassed): the write goes
            // straight to DRAM, nothing cached.
            return (AccessOutcome::Miss, None);
        }
        // Victim: the lowest-index invalid way if any, else LRU — the
        // same order the original min-by-(valid ? last_use : 0) scan
        // produced, since live stamps start at 1.
        let allowed = if alloc_ways == 64 {
            u64::MAX
        } else {
            (1u64 << alloc_ways) - 1
        };
        let invalid = !vmask & allowed;
        let victim = if invalid != 0 {
            invalid.trailing_zeros() as usize
        } else {
            self.stats.ddio_evictions += u64::from(kind == AccessKind::DmaWrite);
            let mut best = 0;
            let mut best_use = u64::MAX;
            for w in 0..alloc_ways {
                let u = self.lines[base + w].last_use;
                if u < best_use {
                    best_use = u;
                    best = w;
                }
            }
            best
        };
        self.lines[base + victim] = LineSlot {
            tag,
            last_use: self.clock,
        };
        self.valid[set] = vmask | 1 << victim;
        self.mru[set] = victim as u8;
        (AccessOutcome::Miss, Some((base + victim) as u32))
    }

    /// Touches every line in `[addr, addr + len)` and returns the summed
    /// latency under `costs`.
    pub fn access_range(&mut self, addr: u64, len: u64, kind: AccessKind, costs: &MemCosts) -> Dur {
        if len == 0 {
            return Dur::ZERO;
        }
        let first = self.line_of(addr);
        let last = self.line_of(addr + len - 1);
        let mut total = Dur::ZERO;
        for line in first..=last {
            let (outcome, _) = self.access_line(line, kind);
            total += match (kind, outcome) {
                (AccessKind::DmaWrite | AccessKind::DmaWriteBypass, AccessOutcome::Hit) => {
                    costs.ddio_hit
                }
                (AccessKind::DmaWrite, AccessOutcome::Miss) => {
                    if self.cfg.ddio_ways == 0 {
                        // No DDIO: the write goes to DRAM.
                        costs.dma_dram
                    } else {
                        // Write-allocate into the DDIO ways: no fetch.
                        costs.ddio_alloc
                    }
                }
                // Bypassing writes always pay the DRAM path on a miss.
                (AccessKind::DmaWriteBypass, AccessOutcome::Miss) => costs.dma_dram,
                (_, AccessOutcome::Hit) => costs.llc_hit,
                (_, AccessOutcome::Miss) => costs.dram,
            };
        }
        total
    }

    /// [`Llc::access_range`] with a caller-held residency memo for ranges
    /// touched repeatedly at fixed addresses (ring slots).
    ///
    /// The memo caches the way slot each line of the range last occupied.
    /// On re-access, a line whose memoized slot still holds its tag is
    /// *proven* resident — tags are full line addresses, a set never
    /// holds duplicate tags, and valid bits are never cleared — so the
    /// model can apply the exact hit bookkeeping (clock tick, recency
    /// stamp, MRU hint, stats, hit cost) without re-hashing the set or
    /// scanning ways. Any line that fails the check falls back to
    /// `Llc::access_line` and re-records its slot, so state evolution,
    /// stats, and returned costs are bit-identical to the plain walk —
    /// the memo only removes redundant lookup work, never modeled work.
    ///
    /// Sharing one memo across producers and consumers of the same range
    /// is sound: residency is independent of [`AccessKind`], which only
    /// selects the stats counter and the per-line cost here. A memo used
    /// against a different `Llc` instance simply misses its checks and
    /// rebuilds (slot indices are bounds-checked).
    pub fn access_range_memo(
        &mut self,
        addr: u64,
        len: u64,
        kind: AccessKind,
        costs: &MemCosts,
        memo: &mut RangeMemo,
    ) -> Dur {
        if len == 0 {
            return Dur::ZERO;
        }
        let first = self.line_of(addr);
        let last = self.line_of(addr + len - 1);
        let n = (last - first + 1) as usize;
        if memo.first != first || memo.slots.len() != n {
            memo.first = first;
            memo.slots.clear();
            memo.slots.resize(n, u32::MAX);
        }
        let hit_cost = match kind {
            AccessKind::DmaWrite | AccessKind::DmaWriteBypass => costs.ddio_hit,
            _ => costs.llc_hit,
        };
        // Single-line ranges (ring descriptors) skip the walk machinery:
        // one proven-resident check, the same clock/stamp/stat updates.
        if n == 1 {
            let ms = memo.slots[0];
            if let Some(l) = self.lines.get_mut(ms as usize) {
                if l.tag == first {
                    self.clock += 1;
                    l.last_use = self.clock;
                    match kind {
                        AccessKind::CpuRead | AccessKind::CpuWrite | AccessKind::DmaRead => {
                            self.stats.cpu_hits += 1
                        }
                        AccessKind::DmaWrite | AccessKind::DmaWriteBypass => {
                            self.stats.dma_hits += 1
                        }
                    }
                    return hit_cost;
                }
            }
        }
        let mut total = Dur::ZERO;
        // Every line access — hit or miss — advances the LRU clock by
        // exactly one ([`Llc::access_line`] increments at its top), so
        // line `k` of the walk always lands on stamp `clock_base + k + 1`.
        // Hoisting the clock out of the hit path turns a per-line
        // read-modify-write of `self.clock` into register arithmetic; the
        // resulting stamps are identical to the incremental walk's.
        let clock_base = self.clock;
        let mut fast_hits: u64 = 0;
        for (k, ms) in memo.slots.iter_mut().enumerate() {
            let tag = first + k as u64;
            // A matching tag at the memoized slot proves residency: empty
            // slots hold [`LineSlot::EMPTY`] (never a reachable tag), so
            // no separate validity load is needed here. The MRU hint is
            // deliberately *not* refreshed on this path: the hint is a
            // scan accelerator inside [`Llc::access_line`], verified by
            // tag compare before use, so a stale hint changes no outcome,
            // no stat, and no eviction — only how fast the model's own
            // scan finds the line. Skipping it keeps the hot walk to one
            // store per line.
            if tag != u64::MAX {
                if let Some(l) = self.lines.get_mut(*ms as usize) {
                    if l.tag == tag {
                        // Proven hit: the same observable updates the slow
                        // path performs, with the clock stamp computed from
                        // the hoisted base and the stats/cost increments
                        // batched after the loop.
                        l.last_use = clock_base + k as u64 + 1;
                        fast_hits += 1;
                        continue;
                    }
                }
            }
            self.clock = clock_base + k as u64;
            let (outcome, slot) = self.access_line(tag, kind);
            *ms = slot.unwrap_or(u32::MAX);
            total += match (kind, outcome) {
                (AccessKind::DmaWrite | AccessKind::DmaWriteBypass, AccessOutcome::Hit) => {
                    costs.ddio_hit
                }
                (AccessKind::DmaWrite, AccessOutcome::Miss) => {
                    if self.cfg.ddio_ways == 0 {
                        costs.dma_dram
                    } else {
                        costs.ddio_alloc
                    }
                }
                (AccessKind::DmaWriteBypass, AccessOutcome::Miss) => costs.dma_dram,
                (_, AccessOutcome::Hit) => costs.llc_hit,
                (_, AccessOutcome::Miss) => costs.dram,
            };
        }
        self.clock = clock_base + n as u64;
        if fast_hits > 0 {
            match kind {
                AccessKind::CpuRead | AccessKind::CpuWrite | AccessKind::DmaRead => {
                    self.stats.cpu_hits += fast_hits
                }
                AccessKind::DmaWrite | AccessKind::DmaWriteBypass => {
                    self.stats.dma_hits += fast_hits
                }
            }
            total += hit_cost * fast_hits;
        }
        total
    }

    /// Single-line form of [`Llc::access_range_memo`] for fixed-address
    /// ranges that fit in one cache line (ring descriptors): the memo is
    /// one caller-held flat way-slot index instead of a [`RangeMemo`],
    /// removing the memo struct's pointer chase from the per-descriptor
    /// walk. State evolution, stats, and the returned cost are identical
    /// to [`Llc::access_range`] over the same line.
    pub fn access_line_memo(
        &mut self,
        addr: u64,
        kind: AccessKind,
        costs: &MemCosts,
        slot: &mut u32,
    ) -> Dur {
        let tag = self.line_of(addr);
        // A matching tag at the memoized slot proves residency (see
        // [`Llc::access_range_memo`] for the argument).
        if let Some(l) = self.lines.get_mut(*slot as usize) {
            if l.tag == tag {
                self.clock += 1;
                l.last_use = self.clock;
                return match kind {
                    AccessKind::DmaWrite | AccessKind::DmaWriteBypass => {
                        self.stats.dma_hits += 1;
                        costs.ddio_hit
                    }
                    _ => {
                        self.stats.cpu_hits += 1;
                        costs.llc_hit
                    }
                };
            }
        }
        let (outcome, s) = self.access_line(tag, kind);
        *slot = s.unwrap_or(u32::MAX);
        match (kind, outcome) {
            (AccessKind::DmaWrite | AccessKind::DmaWriteBypass, AccessOutcome::Hit) => {
                costs.ddio_hit
            }
            (AccessKind::DmaWrite, AccessOutcome::Miss) => {
                if self.cfg.ddio_ways == 0 {
                    costs.dma_dram
                } else {
                    costs.ddio_alloc
                }
            }
            (AccessKind::DmaWriteBypass, AccessOutcome::Miss) => costs.dma_dram,
            (_, AccessOutcome::Hit) => costs.llc_hit,
            (_, AccessOutcome::Miss) => costs.dram,
        }
    }
}

/// A caller-held residency memo for [`Llc::access_range_memo`]: the flat
/// way-slot index each line of one fixed address range occupied after its
/// last access (`u32::MAX` = not resident). Purely an acceleration
/// structure — stale or mismatched entries are detected (tag comparison)
/// and repaired, never trusted.
#[derive(Clone, Debug, Default)]
pub struct RangeMemo {
    /// First line address of the memoized range.
    first: u64,
    /// Last-known way slot per line of the range.
    slots: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32, ddio_ways: u32) -> Llc {
        // 4 sets x `ways` ways x 64B lines, modulo-indexed so tests can
        // construct set collisions with address strides.
        Llc::new(LlcConfig {
            size_bytes: 4 * u64::from(ways) * 64,
            ways,
            ddio_ways,
            line_bytes: 64,
            hash_sets: false,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache(4, 2);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Miss);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(c.access(32, AccessKind::CpuRead), AccessOutcome::Hit); // same line
        assert_eq!(c.access(64, AccessKind::CpuRead), AccessOutcome::Miss); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache(2, 2);
        // Two distinct tags mapping to set 0 fill it: addresses are
        // line * sets(4) * 64 apart.
        let stride = 4 * 64;
        c.access(0, AccessKind::CpuRead);
        c.access(stride, AccessKind::CpuRead);
        // Refresh the first, then bring in a third: the second is evicted.
        c.access(0, AccessKind::CpuRead);
        c.access(2 * stride, AccessKind::CpuRead);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(c.access(stride, AccessKind::CpuRead), AccessOutcome::Miss);
    }

    #[test]
    fn dma_writes_confined_to_ddio_ways() {
        // 4 ways, 1 DDIO way: DMA writes thrash a single way while CPU
        // lines in other ways survive.
        let mut c = small_cache(4, 1);
        let stride = 4 * 64;
        // CPU fills ways with tags A, B, C.
        c.access(0, AccessKind::CpuRead);
        c.access(stride, AccessKind::CpuRead);
        c.access(2 * stride, AccessKind::CpuRead);
        // Two successive DMA writes with different tags must both land in
        // the one DDIO-eligible way (way 0), so the first DMA line is
        // evicted by the second...
        c.access(3 * stride, AccessKind::DmaWrite);
        c.access(4 * stride, AccessKind::DmaWrite);
        assert_eq!(
            c.access(3 * stride, AccessKind::CpuRead),
            AccessOutcome::Miss
        );
        assert_eq!(
            c.access(4 * stride, AccessKind::CpuRead),
            AccessOutcome::Hit
        );
        // ...and CPU lines outside the DDIO ways survive. Tag A happened
        // to occupy way 0 (a DDIO-eligible way, shared with the CPU as on
        // real hardware), so only B and C are guaranteed residents.
        assert_eq!(c.access(stride, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(
            c.access(2 * stride, AccessKind::CpuRead),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn ddio_disabled_never_caches_dma() {
        let mut c = small_cache(4, 0);
        assert_eq!(c.access(0, AccessKind::DmaWrite), AccessOutcome::Miss);
        assert_eq!(c.access(0, AccessKind::DmaWrite), AccessOutcome::Miss);
        // And the CPU can't find it either.
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Miss);
    }

    #[test]
    fn dma_hit_refreshes_and_is_visible_to_cpu() {
        let mut c = small_cache(4, 2);
        c.access(0, AccessKind::DmaWrite);
        // The CPU read of freshly DMA'd data is the DDIO fast path.
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
    }

    #[test]
    fn working_set_beyond_ddio_capacity_thrashes() {
        // 64 sets x 16 ways, 2 DDIO ways => DDIO capacity 128 lines.
        let cfg = LlcConfig {
            size_bytes: 64 * 16 * 64,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: true,
        };
        let mut c = Llc::new(cfg);
        let costs = MemCosts::default();
        // Stream DMA writes over 4x the DDIO capacity, twice.
        let lines = 512u64;
        for pass in 0..2 {
            for i in 0..lines {
                c.access_range(i * 64, 64, AccessKind::DmaWrite, &costs);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        let s = c.stats();
        // Second pass: nearly everything misses because the working set
        // does not fit in the DDIO ways.
        assert!(s.dma_misses > s.dma_hits, "stats: {s:?}");
    }

    #[test]
    fn working_set_within_ddio_capacity_hits() {
        // Modulo indexing so "within capacity" is exact rather than
        // probabilistic.
        let cfg = LlcConfig {
            size_bytes: 64 * 16 * 64,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: false,
        };
        let mut c = Llc::new(cfg);
        let costs = MemCosts::default();
        let lines = 64u64; // half the DDIO capacity
        for pass in 0..2 {
            for i in 0..lines {
                c.access_range(i * 64, 64, AccessKind::DmaWrite, &costs);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        let s = c.stats();
        assert_eq!(s.dma_misses, 0, "stats: {s:?}");
    }

    #[test]
    fn access_range_cost_counts_lines() {
        let mut c = small_cache(4, 2);
        let costs = MemCosts::default();
        // 130 bytes starting at 0 touches 3 lines, all cold.
        let cost = c.access_range(0, 130, AccessKind::CpuRead, &costs);
        assert_eq!(cost, costs.dram * 3);
        // Re-reading is 3 hits.
        let cost = c.access_range(0, 130, AccessKind::CpuRead, &costs);
        assert_eq!(cost, costs.llc_hit * 3);
        // Zero length is free.
        assert_eq!(c.access_range(0, 0, AccessKind::CpuRead, &costs), Dur::ZERO);
    }

    #[test]
    fn xeon_default_geometry() {
        let cfg = LlcConfig::xeon_default();
        assert_eq!(cfg.sets(), 32 * 1024 * 1024 / 64 / 16);
        assert_eq!(cfg.ddio_capacity(), 4 << 20);
        let unlimited = LlcConfig::unlimited_ddio();
        assert_eq!(unlimited.ddio_capacity(), 32 << 20);
    }

    #[test]
    #[should_panic(expected = "DDIO ways exceed associativity")]
    fn bad_ddio_config_rejected() {
        let _ = Llc::new(LlcConfig {
            size_bytes: 1 << 20,
            ways: 4,
            ddio_ways: 5,
            line_bytes: 64,
            hash_sets: true,
        });
    }

    #[test]
    fn bypass_write_never_allocates_but_updates_residents() {
        let mut c = small_cache(4, 2);
        // Cold bypass write: DRAM, nothing cached.
        assert_eq!(c.access(0, AccessKind::DmaWriteBypass), AccessOutcome::Miss);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Miss);
        // A resident line is updated in place (hit), like real in-cache
        // DMA updates.
        assert_eq!(c.access(0, AccessKind::DmaWriteBypass), AccessOutcome::Hit);
        let s = c.stats();
        assert_eq!((s.dma_hits, s.dma_misses), (1, 1));
        // And it never evicts anything.
        assert_eq!(s.ddio_evictions, 0);
    }

    #[test]
    fn ddio_evictions_counted_per_displaced_line() {
        // One DDIO way: every allocating DMA write past the first evicts
        // the previous occupant of way 0 in that set.
        let mut c = small_cache(4, 1);
        let stride = 4 * 64;
        c.access(0, AccessKind::DmaWrite);
        assert_eq!(c.stats().ddio_evictions, 0);
        c.access(stride, AccessKind::DmaWrite);
        c.access(2 * stride, AccessKind::DmaWrite);
        assert_eq!(c.stats().ddio_evictions, 2);
        // CPU evictions are not DDIO evictions.
        let mut c = small_cache(1, 0);
        let stride = 4 * 64;
        c.access(0, AccessKind::CpuRead);
        c.access(stride, AccessKind::CpuRead);
        assert_eq!(c.stats().ddio_evictions, 0);
    }

    #[test]
    fn partition_plan_conserves_donor_geometry() {
        let plan = LlcPartitionPlan::split(LlcConfig::xeon_default(), 4);
        assert_eq!(plan.len(), 4);
        assert!(plan.audit().is_empty(), "{:?}", plan.audit());
        // 16 ways / 4 = 4 each; the 2-way DDIO budget is floored at one
        // way per shard so no shard's DMA is forced to DRAM.
        for s in plan.shards() {
            assert_eq!(s.ways, 4);
            assert_eq!(s.ddio_ways, 1);
            assert_eq!(s.sets(), LlcConfig::xeon_default().sets());
        }
        // Uneven split: remainder ways go to the low shards.
        let plan = LlcPartitionPlan::split(LlcConfig::xeon_default(), 3);
        let ways: Vec<u32> = plan.shards().iter().map(|s| s.ways).collect();
        assert_eq!(ways, vec![6, 5, 5]);
        assert!(plan.audit().is_empty(), "{:?}", plan.audit());
    }

    #[test]
    fn single_shard_plan_is_the_donor() {
        let donor = LlcConfig::xeon_default();
        let plan = LlcPartitionPlan::split(donor.clone(), 1);
        let s = plan.shard(0);
        assert_eq!(s.size_bytes, donor.size_bytes);
        assert_eq!(s.ways, donor.ways);
        assert_eq!(s.ddio_ways, donor.ddio_ways);
        assert!(plan.audit().is_empty());
    }

    #[test]
    #[should_panic(expected = "way-disjoint")]
    fn oversubscribed_plan_rejected() {
        let _ = LlcPartitionPlan::split(
            LlcConfig {
                size_bytes: 1 << 20,
                ways: 4,
                ddio_ways: 2,
                line_bytes: 64,
                hash_sets: true,
            },
            5,
        );
    }

    #[test]
    fn hit_rate_stat() {
        let mut c = small_cache(4, 2);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        let s = c.stats();
        assert_eq!(s.cpu_hits, 3);
        assert_eq!(s.cpu_misses, 1);
        assert!((s.cpu_hit_rate() - 0.75).abs() < 1e-9);
    }
}
