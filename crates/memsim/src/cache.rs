//! A set-associative LLC with a DDIO way mask.
//!
//! DMA writes may only allocate into the first `ddio_ways` ways of each
//! set, mirroring Intel DDIO's restriction to a fixed subset of LLC ways.
//! CPU accesses allocate anywhere. Replacement is LRU within the ways the
//! access class is allowed to use; hits anywhere refresh recency.

use sim::Dur;

use crate::costs::MemCosts;

/// Who is touching memory, and how.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// CPU load.
    CpuRead,
    /// CPU store.
    CpuWrite,
    /// Device DMA write (DDIO-constrained allocation).
    DmaWrite,
    /// Device DMA read.
    DmaRead,
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and fetched/allocated.
    Miss,
}

/// LLC geometry.
#[derive(Clone, Debug)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Ways DMA writes may allocate into (the DDIO share). Zero disables
    /// DDIO entirely: every DMA write goes to DRAM.
    pub ddio_ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hash line addresses into sets (modern sliced LLCs with complex
    /// addressing) instead of simple modulo indexing. Hashing avoids the
    /// artificial page-color conflicts modulo indexing fabricates for
    /// page-aligned buffers; turn it off only for tests that need to
    /// construct set collisions deterministically.
    pub hash_sets: bool,
}

impl LlcConfig {
    /// A 32 MiB, 16-way LLC with 2 DDIO ways — the configuration whose
    /// DDIO share (4 MiB) is outgrown at ~1024 connections with 4 KiB of
    /// ring per connection, matching the paper's observed cliff.
    pub fn xeon_default() -> LlcConfig {
        LlcConfig {
            size_bytes: 32 << 20,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: true,
        }
    }

    /// The same LLC with DDIO allowed to use every way — the ablation that
    /// removes the paper's suspected bottleneck.
    pub fn unlimited_ddio() -> LlcConfig {
        LlcConfig {
            ddio_ways: 16,
            ..LlcConfig::xeon_default()
        }
    }

    /// Returns the number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / u64::from(self.ways)
    }

    /// Returns the capacity DMA writes can occupy, in bytes.
    pub fn ddio_capacity(&self) -> u64 {
        self.size_bytes * u64::from(self.ddio_ways) / u64::from(self.ways)
    }
}

#[derive(Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// Per-kind hit/miss counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LlcStats {
    /// CPU hits.
    pub cpu_hits: u64,
    /// CPU misses.
    pub cpu_misses: u64,
    /// DMA-write DDIO hits/allocations.
    pub dma_hits: u64,
    /// DMA-write DRAM fallbacks.
    pub dma_misses: u64,
}

impl LlcStats {
    /// CPU hit rate in `[0, 1]`, or 1.0 with no accesses.
    pub fn cpu_hit_rate(&self) -> f64 {
        let total = self.cpu_hits + self.cpu_misses;
        if total == 0 {
            1.0
        } else {
            self.cpu_hits as f64 / total as f64
        }
    }
}

/// The last-level cache model.
pub struct Llc {
    cfg: LlcConfig,
    sets: u64,
    lines: Vec<Line>,
    clock: u64,
    stats: LlcStats,
}

impl Llc {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways, or
    /// `ddio_ways > ways`).
    pub fn new(cfg: LlcConfig) -> Llc {
        assert!(cfg.ways > 0, "cache needs at least one way");
        assert!(cfg.ddio_ways <= cfg.ways, "DDIO ways exceed associativity");
        let sets = cfg.sets();
        assert!(sets > 0, "cache smaller than one set");
        Llc {
            sets,
            lines: vec![Line::default(); (sets * u64::from(cfg.ways)) as usize],
            clock: 0,
            cfg,
            stats: LlcStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    /// Resets statistics (the cache contents are retained).
    pub fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
    }

    fn set_index(&self, addr: u64) -> u64 {
        let line = addr / self.cfg.line_bytes;
        if self.cfg.hash_sets {
            // SplitMix64 finalizer: decorrelates page-aligned buffers the
            // way sliced complex addressing does on real parts.
            let mut x = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x % self.sets
        } else {
            line % self.sets
        }
    }

    fn tag(&self, addr: u64) -> u64 {
        // The full line address is the tag: simpler than stripping set
        // bits and correct under hashed indexing.
        addr / self.cfg.line_bytes
    }

    /// Touches the single cache line containing `addr`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        self.clock += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = (set * u64::from(self.cfg.ways)) as usize;
        let ways = self.cfg.ways as usize;
        let set_lines = &mut self.lines[base..base + ways];

        // Hit anywhere in the set.
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.clock;
            match kind {
                AccessKind::CpuRead | AccessKind::CpuWrite | AccessKind::DmaRead => {
                    self.stats.cpu_hits += 1
                }
                AccessKind::DmaWrite => self.stats.dma_hits += 1,
            }
            return AccessOutcome::Hit;
        }

        // Miss: allocate within the ways this access class may use.
        let alloc_ways = match kind {
            AccessKind::DmaWrite => self.cfg.ddio_ways as usize,
            _ => ways,
        };
        match kind {
            AccessKind::CpuRead | AccessKind::CpuWrite | AccessKind::DmaRead => {
                self.stats.cpu_misses += 1
            }
            AccessKind::DmaWrite => self.stats.dma_misses += 1,
        }
        if alloc_ways == 0 {
            // DDIO disabled: the write goes straight to DRAM, nothing
            // cached.
            return AccessOutcome::Miss;
        }
        let victim = set_lines[..alloc_ways]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("alloc_ways > 0");
        victim.tag = tag;
        victim.valid = true;
        victim.last_use = self.clock;
        AccessOutcome::Miss
    }

    /// Touches every line in `[addr, addr + len)` and returns the summed
    /// latency under `costs`.
    pub fn access_range(&mut self, addr: u64, len: u64, kind: AccessKind, costs: &MemCosts) -> Dur {
        if len == 0 {
            return Dur::ZERO;
        }
        let first = addr / self.cfg.line_bytes;
        let last = (addr + len - 1) / self.cfg.line_bytes;
        let mut total = Dur::ZERO;
        for line in first..=last {
            let outcome = self.access(line * self.cfg.line_bytes, kind);
            total += match (kind, outcome) {
                (AccessKind::DmaWrite, AccessOutcome::Hit) => costs.ddio_hit,
                (AccessKind::DmaWrite, AccessOutcome::Miss) => {
                    if self.cfg.ddio_ways == 0 {
                        // No DDIO: the write goes to DRAM.
                        costs.dma_dram
                    } else {
                        // Write-allocate into the DDIO ways: no fetch.
                        costs.ddio_alloc
                    }
                }
                (_, AccessOutcome::Hit) => costs.llc_hit,
                (_, AccessOutcome::Miss) => costs.dram,
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32, ddio_ways: u32) -> Llc {
        // 4 sets x `ways` ways x 64B lines, modulo-indexed so tests can
        // construct set collisions with address strides.
        Llc::new(LlcConfig {
            size_bytes: 4 * u64::from(ways) * 64,
            ways,
            ddio_ways,
            line_bytes: 64,
            hash_sets: false,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache(4, 2);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Miss);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(c.access(32, AccessKind::CpuRead), AccessOutcome::Hit); // same line
        assert_eq!(c.access(64, AccessKind::CpuRead), AccessOutcome::Miss); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache(2, 2);
        // Two distinct tags mapping to set 0 fill it: addresses are
        // line * sets(4) * 64 apart.
        let stride = 4 * 64;
        c.access(0, AccessKind::CpuRead);
        c.access(stride, AccessKind::CpuRead);
        // Refresh the first, then bring in a third: the second is evicted.
        c.access(0, AccessKind::CpuRead);
        c.access(2 * stride, AccessKind::CpuRead);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(c.access(stride, AccessKind::CpuRead), AccessOutcome::Miss);
    }

    #[test]
    fn dma_writes_confined_to_ddio_ways() {
        // 4 ways, 1 DDIO way: DMA writes thrash a single way while CPU
        // lines in other ways survive.
        let mut c = small_cache(4, 1);
        let stride = 4 * 64;
        // CPU fills ways with tags A, B, C.
        c.access(0, AccessKind::CpuRead);
        c.access(stride, AccessKind::CpuRead);
        c.access(2 * stride, AccessKind::CpuRead);
        // Two successive DMA writes with different tags must both land in
        // the one DDIO-eligible way (way 0), so the first DMA line is
        // evicted by the second...
        c.access(3 * stride, AccessKind::DmaWrite);
        c.access(4 * stride, AccessKind::DmaWrite);
        assert_eq!(
            c.access(3 * stride, AccessKind::CpuRead),
            AccessOutcome::Miss
        );
        assert_eq!(
            c.access(4 * stride, AccessKind::CpuRead),
            AccessOutcome::Hit
        );
        // ...and CPU lines outside the DDIO ways survive. Tag A happened
        // to occupy way 0 (a DDIO-eligible way, shared with the CPU as on
        // real hardware), so only B and C are guaranteed residents.
        assert_eq!(c.access(stride, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(
            c.access(2 * stride, AccessKind::CpuRead),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn ddio_disabled_never_caches_dma() {
        let mut c = small_cache(4, 0);
        assert_eq!(c.access(0, AccessKind::DmaWrite), AccessOutcome::Miss);
        assert_eq!(c.access(0, AccessKind::DmaWrite), AccessOutcome::Miss);
        // And the CPU can't find it either.
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Miss);
    }

    #[test]
    fn dma_hit_refreshes_and_is_visible_to_cpu() {
        let mut c = small_cache(4, 2);
        c.access(0, AccessKind::DmaWrite);
        // The CPU read of freshly DMA'd data is the DDIO fast path.
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
    }

    #[test]
    fn working_set_beyond_ddio_capacity_thrashes() {
        // 64 sets x 16 ways, 2 DDIO ways => DDIO capacity 128 lines.
        let cfg = LlcConfig {
            size_bytes: 64 * 16 * 64,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: true,
        };
        let mut c = Llc::new(cfg);
        let costs = MemCosts::default();
        // Stream DMA writes over 4x the DDIO capacity, twice.
        let lines = 512u64;
        for pass in 0..2 {
            for i in 0..lines {
                c.access_range(i * 64, 64, AccessKind::DmaWrite, &costs);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        let s = c.stats();
        // Second pass: nearly everything misses because the working set
        // does not fit in the DDIO ways.
        assert!(s.dma_misses > s.dma_hits, "stats: {s:?}");
    }

    #[test]
    fn working_set_within_ddio_capacity_hits() {
        // Modulo indexing so "within capacity" is exact rather than
        // probabilistic.
        let cfg = LlcConfig {
            size_bytes: 64 * 16 * 64,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: false,
        };
        let mut c = Llc::new(cfg);
        let costs = MemCosts::default();
        let lines = 64u64; // half the DDIO capacity
        for pass in 0..2 {
            for i in 0..lines {
                c.access_range(i * 64, 64, AccessKind::DmaWrite, &costs);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        let s = c.stats();
        assert_eq!(s.dma_misses, 0, "stats: {s:?}");
    }

    #[test]
    fn access_range_cost_counts_lines() {
        let mut c = small_cache(4, 2);
        let costs = MemCosts::default();
        // 130 bytes starting at 0 touches 3 lines, all cold.
        let cost = c.access_range(0, 130, AccessKind::CpuRead, &costs);
        assert_eq!(cost, costs.dram * 3);
        // Re-reading is 3 hits.
        let cost = c.access_range(0, 130, AccessKind::CpuRead, &costs);
        assert_eq!(cost, costs.llc_hit * 3);
        // Zero length is free.
        assert_eq!(c.access_range(0, 0, AccessKind::CpuRead, &costs), Dur::ZERO);
    }

    #[test]
    fn xeon_default_geometry() {
        let cfg = LlcConfig::xeon_default();
        assert_eq!(cfg.sets(), 32 * 1024 * 1024 / 64 / 16);
        assert_eq!(cfg.ddio_capacity(), 4 << 20);
        let unlimited = LlcConfig::unlimited_ddio();
        assert_eq!(unlimited.ddio_capacity(), 32 << 20);
    }

    #[test]
    #[should_panic(expected = "DDIO ways exceed associativity")]
    fn bad_ddio_config_rejected() {
        let _ = Llc::new(LlcConfig {
            size_bytes: 1 << 20,
            ways: 4,
            ddio_ways: 5,
            line_bytes: 64,
            hash_sets: true,
        });
    }

    #[test]
    fn hit_rate_stat() {
        let mut c = small_cache(4, 2);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        let s = c.stats();
        assert_eq!(s.cpu_hits, 3);
        assert_eq!(s.cpu_misses, 1);
        assert!((s.cpu_hit_rate() - 0.75).abs() < 1e-9);
    }
}
