//! A set-associative LLC with a DDIO way mask.
//!
//! DMA writes may only allocate into the first `ddio_ways` ways of each
//! set, mirroring Intel DDIO's restriction to a fixed subset of LLC ways.
//! CPU accesses allocate anywhere. Replacement is LRU within the ways the
//! access class is allowed to use; hits anywhere refresh recency.

use sim::Dur;

use crate::costs::MemCosts;

/// Who is touching memory, and how.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// CPU load.
    CpuRead,
    /// CPU store.
    CpuWrite,
    /// Device DMA write (DDIO-constrained allocation).
    DmaWrite,
    /// Device DMA write that deliberately bypasses DDIO allocation: it
    /// updates a line already resident (hit) but never allocates on a
    /// miss, going straight to DRAM. The kernel uses this for demoted
    /// (cold-tier) flows so their rings cannot thrash the DDIO ways that
    /// hot traffic depends on.
    DmaWriteBypass,
    /// Device DMA read.
    DmaRead,
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and fetched/allocated.
    Miss,
}

/// LLC geometry.
#[derive(Clone, Debug)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Ways DMA writes may allocate into (the DDIO share). Zero disables
    /// DDIO entirely: every DMA write goes to DRAM.
    pub ddio_ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hash line addresses into sets (modern sliced LLCs with complex
    /// addressing) instead of simple modulo indexing. Hashing avoids the
    /// artificial page-color conflicts modulo indexing fabricates for
    /// page-aligned buffers; turn it off only for tests that need to
    /// construct set collisions deterministically.
    pub hash_sets: bool,
}

impl LlcConfig {
    /// A 32 MiB, 16-way LLC with 2 DDIO ways — the configuration whose
    /// DDIO share (4 MiB) is outgrown at ~1024 connections with 4 KiB of
    /// ring per connection, matching the paper's observed cliff.
    pub fn xeon_default() -> LlcConfig {
        LlcConfig {
            size_bytes: 32 << 20,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: true,
        }
    }

    /// The same LLC with DDIO allowed to use every way — the ablation that
    /// removes the paper's suspected bottleneck.
    pub fn unlimited_ddio() -> LlcConfig {
        LlcConfig {
            ddio_ways: 16,
            ..LlcConfig::xeon_default()
        }
    }

    /// Returns the number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / u64::from(self.ways)
    }

    /// Returns the capacity DMA writes can occupy, in bytes.
    pub fn ddio_capacity(&self) -> u64 {
        self.size_bytes * u64::from(self.ddio_ways) / u64::from(self.ways)
    }
}

#[derive(Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// Per-kind hit/miss counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LlcStats {
    /// CPU hits.
    pub cpu_hits: u64,
    /// CPU misses.
    pub cpu_misses: u64,
    /// DMA-write DDIO hits/allocations.
    pub dma_hits: u64,
    /// DMA-write DRAM fallbacks.
    pub dma_misses: u64,
    /// Valid lines evicted by DMA-write allocations — the direct measure
    /// of DDIO thrash (§5's cliff mechanism).
    pub ddio_evictions: u64,
}

impl LlcStats {
    /// CPU hit rate in `[0, 1]`, or 1.0 with no accesses.
    pub fn cpu_hit_rate(&self) -> f64 {
        let total = self.cpu_hits + self.cpu_misses;
        if total == 0 {
            1.0
        } else {
            self.cpu_hits as f64 / total as f64
        }
    }

    /// Accumulates another stats block (merging per-shard partitions).
    pub fn absorb(&mut self, other: &LlcStats) {
        self.cpu_hits += other.cpu_hits;
        self.cpu_misses += other.cpu_misses;
        self.dma_hits += other.dma_hits;
        self.dma_misses += other.dma_misses;
        self.ddio_evictions += other.ddio_evictions;
    }
}

/// A way-partitioned split of one physical LLC across worker shards: each
/// shard receives a private slice of the associativity (and of the DDIO
/// way budget), so one shard's ring working set cannot evict another's —
/// the kernel arbitrating cache ways exactly as it arbitrates SRAM. The
/// plan is the audited source of truth: shard geometries must sum back to
/// the donor cache.
#[derive(Clone, Debug)]
pub struct LlcPartitionPlan {
    total: LlcConfig,
    shards: Vec<LlcConfig>,
}

impl LlcPartitionPlan {
    /// Carves `total` into `n` way-disjoint partitions. Ways divide
    /// evenly with the remainder going to the low-index shards; every
    /// shard keeps the donor's set count and line size, so a 1-way split
    /// is the donor geometry unchanged.
    ///
    /// DDIO ways divide the same way but are floored at one per shard
    /// (when the donor has any): the kernel reprograms the IIO way mask
    /// per partition, so every shard dedicates at least one of *its own*
    /// ways to inbound DMA. Without the floor, carving 2 DDIO ways into
    /// 4 shards would leave half the shards with no DMA-allocatable ways
    /// at all, sending their ring traffic straight to DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the donor's associativity.
    pub fn split(total: LlcConfig, n: usize) -> LlcPartitionPlan {
        assert!(n > 0, "need at least one shard");
        assert!(
            n as u32 <= total.ways,
            "cannot give {n} shards way-disjoint slices of {} ways",
            total.ways
        );
        let sets = total.sets();
        let n32 = n as u32;
        let shards = (0..n32)
            .map(|i| {
                let ways = total.ways / n32 + u32::from(i < total.ways % n32);
                let ddio_ways = (total.ddio_ways / n32 + u32::from(i < total.ddio_ways % n32))
                    .max(u32::from(total.ddio_ways > 0));
                LlcConfig {
                    size_bytes: sets * total.line_bytes * u64::from(ways),
                    ways,
                    ddio_ways,
                    line_bytes: total.line_bytes,
                    hash_sets: total.hash_sets,
                }
            })
            .collect();
        LlcPartitionPlan { total, shards }
    }

    /// The donor cache geometry.
    pub fn total(&self) -> &LlcConfig {
        &self.total
    }

    /// The per-shard partitions, in shard order.
    pub fn shards(&self) -> &[LlcConfig] {
        &self.shards
    }

    /// The partition of shard `i`.
    pub fn shard(&self, i: usize) -> &LlcConfig {
        &self.shards[i]
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan is empty (it never is; kept for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Conservation audit: the shard slices must exactly repartition the
    /// donor's ways and (set-aligned) capacity, and the per-shard DDIO
    /// masks must sum to the donor's budget floored at one way per shard
    /// (see [`LlcPartitionPlan::split`]).
    pub fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let ways: u32 = self.shards.iter().map(|s| s.ways).sum();
        if ways != self.total.ways {
            violations.push(format!(
                "llc plan: shard ways sum {ways} != donor {}",
                self.total.ways
            ));
        }
        let ddio: u32 = self.shards.iter().map(|s| s.ddio_ways).sum();
        let want_ddio = if self.total.ddio_ways == 0 {
            0
        } else {
            self.total.ddio_ways.max(self.shards.len() as u32)
        };
        if ddio != want_ddio {
            violations.push(format!(
                "llc plan: shard DDIO ways sum {ddio} != floored donor budget {want_ddio}"
            ));
        }
        for (i, s) in self.shards.iter().enumerate() {
            if self.total.ddio_ways > 0 && s.ddio_ways == 0 {
                violations.push(format!("llc plan: shard {i} lost its DDIO way"));
            }
            if s.ddio_ways > s.ways {
                violations.push(format!(
                    "llc plan: shard {i} DDIO mask {} exceeds its {} ways",
                    s.ddio_ways, s.ways
                ));
            }
        }
        let bytes: u64 = self.shards.iter().map(|s| s.size_bytes).sum();
        let donor = self.total.sets() * self.total.line_bytes * u64::from(self.total.ways);
        if bytes != donor {
            violations.push(format!(
                "llc plan: shard capacity sum {bytes} != donor {donor}"
            ));
        }
        for (i, s) in self.shards.iter().enumerate() {
            if s.sets() != self.total.sets() {
                violations.push(format!(
                    "llc plan: shard {i} has {} sets, donor {}",
                    s.sets(),
                    self.total.sets()
                ));
            }
        }
        violations
    }
}

/// The last-level cache model.
pub struct Llc {
    cfg: LlcConfig,
    sets: u64,
    lines: Vec<Line>,
    clock: u64,
    stats: LlcStats,
}

impl Llc {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways, or
    /// `ddio_ways > ways`).
    pub fn new(cfg: LlcConfig) -> Llc {
        assert!(cfg.ways > 0, "cache needs at least one way");
        assert!(cfg.ddio_ways <= cfg.ways, "DDIO ways exceed associativity");
        let sets = cfg.sets();
        assert!(sets > 0, "cache smaller than one set");
        Llc {
            sets,
            lines: vec![Line::default(); (sets * u64::from(cfg.ways)) as usize],
            clock: 0,
            cfg,
            stats: LlcStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    /// Resets statistics (the cache contents are retained).
    pub fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
    }

    fn set_index(&self, addr: u64) -> u64 {
        let line = addr / self.cfg.line_bytes;
        if self.cfg.hash_sets {
            // SplitMix64 finalizer: decorrelates page-aligned buffers the
            // way sliced complex addressing does on real parts.
            let mut x = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x % self.sets
        } else {
            line % self.sets
        }
    }

    fn tag(&self, addr: u64) -> u64 {
        // The full line address is the tag: simpler than stripping set
        // bits and correct under hashed indexing.
        addr / self.cfg.line_bytes
    }

    /// Touches the single cache line containing `addr`.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        self.clock += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = (set * u64::from(self.cfg.ways)) as usize;
        let ways = self.cfg.ways as usize;
        let set_lines = &mut self.lines[base..base + ways];

        // Hit anywhere in the set.
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.clock;
            match kind {
                AccessKind::CpuRead | AccessKind::CpuWrite | AccessKind::DmaRead => {
                    self.stats.cpu_hits += 1
                }
                AccessKind::DmaWrite | AccessKind::DmaWriteBypass => self.stats.dma_hits += 1,
            }
            return AccessOutcome::Hit;
        }

        // Miss: allocate within the ways this access class may use.
        let alloc_ways = match kind {
            AccessKind::DmaWrite => self.cfg.ddio_ways as usize,
            // A bypassing DMA write never allocates: straight to DRAM.
            AccessKind::DmaWriteBypass => 0,
            _ => ways,
        };
        match kind {
            AccessKind::CpuRead | AccessKind::CpuWrite | AccessKind::DmaRead => {
                self.stats.cpu_misses += 1
            }
            AccessKind::DmaWrite | AccessKind::DmaWriteBypass => self.stats.dma_misses += 1,
        }
        if alloc_ways == 0 {
            // DDIO disabled (or deliberately bypassed): the write goes
            // straight to DRAM, nothing cached.
            return AccessOutcome::Miss;
        }
        let victim = set_lines[..alloc_ways]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("alloc_ways > 0");
        if victim.valid {
            self.stats.ddio_evictions += u64::from(kind == AccessKind::DmaWrite);
        }
        victim.tag = tag;
        victim.valid = true;
        victim.last_use = self.clock;
        AccessOutcome::Miss
    }

    /// Touches every line in `[addr, addr + len)` and returns the summed
    /// latency under `costs`.
    pub fn access_range(&mut self, addr: u64, len: u64, kind: AccessKind, costs: &MemCosts) -> Dur {
        if len == 0 {
            return Dur::ZERO;
        }
        let first = addr / self.cfg.line_bytes;
        let last = (addr + len - 1) / self.cfg.line_bytes;
        let mut total = Dur::ZERO;
        for line in first..=last {
            let outcome = self.access(line * self.cfg.line_bytes, kind);
            total += match (kind, outcome) {
                (AccessKind::DmaWrite | AccessKind::DmaWriteBypass, AccessOutcome::Hit) => {
                    costs.ddio_hit
                }
                (AccessKind::DmaWrite, AccessOutcome::Miss) => {
                    if self.cfg.ddio_ways == 0 {
                        // No DDIO: the write goes to DRAM.
                        costs.dma_dram
                    } else {
                        // Write-allocate into the DDIO ways: no fetch.
                        costs.ddio_alloc
                    }
                }
                // Bypassing writes always pay the DRAM path on a miss.
                (AccessKind::DmaWriteBypass, AccessOutcome::Miss) => costs.dma_dram,
                (_, AccessOutcome::Hit) => costs.llc_hit,
                (_, AccessOutcome::Miss) => costs.dram,
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32, ddio_ways: u32) -> Llc {
        // 4 sets x `ways` ways x 64B lines, modulo-indexed so tests can
        // construct set collisions with address strides.
        Llc::new(LlcConfig {
            size_bytes: 4 * u64::from(ways) * 64,
            ways,
            ddio_ways,
            line_bytes: 64,
            hash_sets: false,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache(4, 2);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Miss);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(c.access(32, AccessKind::CpuRead), AccessOutcome::Hit); // same line
        assert_eq!(c.access(64, AccessKind::CpuRead), AccessOutcome::Miss); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache(2, 2);
        // Two distinct tags mapping to set 0 fill it: addresses are
        // line * sets(4) * 64 apart.
        let stride = 4 * 64;
        c.access(0, AccessKind::CpuRead);
        c.access(stride, AccessKind::CpuRead);
        // Refresh the first, then bring in a third: the second is evicted.
        c.access(0, AccessKind::CpuRead);
        c.access(2 * stride, AccessKind::CpuRead);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(c.access(stride, AccessKind::CpuRead), AccessOutcome::Miss);
    }

    #[test]
    fn dma_writes_confined_to_ddio_ways() {
        // 4 ways, 1 DDIO way: DMA writes thrash a single way while CPU
        // lines in other ways survive.
        let mut c = small_cache(4, 1);
        let stride = 4 * 64;
        // CPU fills ways with tags A, B, C.
        c.access(0, AccessKind::CpuRead);
        c.access(stride, AccessKind::CpuRead);
        c.access(2 * stride, AccessKind::CpuRead);
        // Two successive DMA writes with different tags must both land in
        // the one DDIO-eligible way (way 0), so the first DMA line is
        // evicted by the second...
        c.access(3 * stride, AccessKind::DmaWrite);
        c.access(4 * stride, AccessKind::DmaWrite);
        assert_eq!(
            c.access(3 * stride, AccessKind::CpuRead),
            AccessOutcome::Miss
        );
        assert_eq!(
            c.access(4 * stride, AccessKind::CpuRead),
            AccessOutcome::Hit
        );
        // ...and CPU lines outside the DDIO ways survive. Tag A happened
        // to occupy way 0 (a DDIO-eligible way, shared with the CPU as on
        // real hardware), so only B and C are guaranteed residents.
        assert_eq!(c.access(stride, AccessKind::CpuRead), AccessOutcome::Hit);
        assert_eq!(
            c.access(2 * stride, AccessKind::CpuRead),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn ddio_disabled_never_caches_dma() {
        let mut c = small_cache(4, 0);
        assert_eq!(c.access(0, AccessKind::DmaWrite), AccessOutcome::Miss);
        assert_eq!(c.access(0, AccessKind::DmaWrite), AccessOutcome::Miss);
        // And the CPU can't find it either.
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Miss);
    }

    #[test]
    fn dma_hit_refreshes_and_is_visible_to_cpu() {
        let mut c = small_cache(4, 2);
        c.access(0, AccessKind::DmaWrite);
        // The CPU read of freshly DMA'd data is the DDIO fast path.
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Hit);
    }

    #[test]
    fn working_set_beyond_ddio_capacity_thrashes() {
        // 64 sets x 16 ways, 2 DDIO ways => DDIO capacity 128 lines.
        let cfg = LlcConfig {
            size_bytes: 64 * 16 * 64,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: true,
        };
        let mut c = Llc::new(cfg);
        let costs = MemCosts::default();
        // Stream DMA writes over 4x the DDIO capacity, twice.
        let lines = 512u64;
        for pass in 0..2 {
            for i in 0..lines {
                c.access_range(i * 64, 64, AccessKind::DmaWrite, &costs);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        let s = c.stats();
        // Second pass: nearly everything misses because the working set
        // does not fit in the DDIO ways.
        assert!(s.dma_misses > s.dma_hits, "stats: {s:?}");
    }

    #[test]
    fn working_set_within_ddio_capacity_hits() {
        // Modulo indexing so "within capacity" is exact rather than
        // probabilistic.
        let cfg = LlcConfig {
            size_bytes: 64 * 16 * 64,
            ways: 16,
            ddio_ways: 2,
            line_bytes: 64,
            hash_sets: false,
        };
        let mut c = Llc::new(cfg);
        let costs = MemCosts::default();
        let lines = 64u64; // half the DDIO capacity
        for pass in 0..2 {
            for i in 0..lines {
                c.access_range(i * 64, 64, AccessKind::DmaWrite, &costs);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        let s = c.stats();
        assert_eq!(s.dma_misses, 0, "stats: {s:?}");
    }

    #[test]
    fn access_range_cost_counts_lines() {
        let mut c = small_cache(4, 2);
        let costs = MemCosts::default();
        // 130 bytes starting at 0 touches 3 lines, all cold.
        let cost = c.access_range(0, 130, AccessKind::CpuRead, &costs);
        assert_eq!(cost, costs.dram * 3);
        // Re-reading is 3 hits.
        let cost = c.access_range(0, 130, AccessKind::CpuRead, &costs);
        assert_eq!(cost, costs.llc_hit * 3);
        // Zero length is free.
        assert_eq!(c.access_range(0, 0, AccessKind::CpuRead, &costs), Dur::ZERO);
    }

    #[test]
    fn xeon_default_geometry() {
        let cfg = LlcConfig::xeon_default();
        assert_eq!(cfg.sets(), 32 * 1024 * 1024 / 64 / 16);
        assert_eq!(cfg.ddio_capacity(), 4 << 20);
        let unlimited = LlcConfig::unlimited_ddio();
        assert_eq!(unlimited.ddio_capacity(), 32 << 20);
    }

    #[test]
    #[should_panic(expected = "DDIO ways exceed associativity")]
    fn bad_ddio_config_rejected() {
        let _ = Llc::new(LlcConfig {
            size_bytes: 1 << 20,
            ways: 4,
            ddio_ways: 5,
            line_bytes: 64,
            hash_sets: true,
        });
    }

    #[test]
    fn bypass_write_never_allocates_but_updates_residents() {
        let mut c = small_cache(4, 2);
        // Cold bypass write: DRAM, nothing cached.
        assert_eq!(c.access(0, AccessKind::DmaWriteBypass), AccessOutcome::Miss);
        assert_eq!(c.access(0, AccessKind::CpuRead), AccessOutcome::Miss);
        // A resident line is updated in place (hit), like real in-cache
        // DMA updates.
        assert_eq!(c.access(0, AccessKind::DmaWriteBypass), AccessOutcome::Hit);
        let s = c.stats();
        assert_eq!((s.dma_hits, s.dma_misses), (1, 1));
        // And it never evicts anything.
        assert_eq!(s.ddio_evictions, 0);
    }

    #[test]
    fn ddio_evictions_counted_per_displaced_line() {
        // One DDIO way: every allocating DMA write past the first evicts
        // the previous occupant of way 0 in that set.
        let mut c = small_cache(4, 1);
        let stride = 4 * 64;
        c.access(0, AccessKind::DmaWrite);
        assert_eq!(c.stats().ddio_evictions, 0);
        c.access(stride, AccessKind::DmaWrite);
        c.access(2 * stride, AccessKind::DmaWrite);
        assert_eq!(c.stats().ddio_evictions, 2);
        // CPU evictions are not DDIO evictions.
        let mut c = small_cache(1, 0);
        let stride = 4 * 64;
        c.access(0, AccessKind::CpuRead);
        c.access(stride, AccessKind::CpuRead);
        assert_eq!(c.stats().ddio_evictions, 0);
    }

    #[test]
    fn partition_plan_conserves_donor_geometry() {
        let plan = LlcPartitionPlan::split(LlcConfig::xeon_default(), 4);
        assert_eq!(plan.len(), 4);
        assert!(plan.audit().is_empty(), "{:?}", plan.audit());
        // 16 ways / 4 = 4 each; the 2-way DDIO budget is floored at one
        // way per shard so no shard's DMA is forced to DRAM.
        for s in plan.shards() {
            assert_eq!(s.ways, 4);
            assert_eq!(s.ddio_ways, 1);
            assert_eq!(s.sets(), LlcConfig::xeon_default().sets());
        }
        // Uneven split: remainder ways go to the low shards.
        let plan = LlcPartitionPlan::split(LlcConfig::xeon_default(), 3);
        let ways: Vec<u32> = plan.shards().iter().map(|s| s.ways).collect();
        assert_eq!(ways, vec![6, 5, 5]);
        assert!(plan.audit().is_empty(), "{:?}", plan.audit());
    }

    #[test]
    fn single_shard_plan_is_the_donor() {
        let donor = LlcConfig::xeon_default();
        let plan = LlcPartitionPlan::split(donor.clone(), 1);
        let s = plan.shard(0);
        assert_eq!(s.size_bytes, donor.size_bytes);
        assert_eq!(s.ways, donor.ways);
        assert_eq!(s.ddio_ways, donor.ddio_ways);
        assert!(plan.audit().is_empty());
    }

    #[test]
    #[should_panic(expected = "way-disjoint")]
    fn oversubscribed_plan_rejected() {
        let _ = LlcPartitionPlan::split(
            LlcConfig {
                size_bytes: 1 << 20,
                ways: 4,
                ddio_ways: 2,
                line_bytes: 64,
                hash_sets: true,
            },
            5,
        );
    }

    #[test]
    fn hit_rate_stat() {
        let mut c = small_cache(4, 2);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        c.access(0, AccessKind::CpuRead);
        let s = c.stats();
        assert_eq!(s.cpu_hits, 3);
        assert_eq!(s.cpu_misses, 1);
        assert!((s.cpu_hit_rate() - 0.75).abs() < 1e-9);
    }
}
