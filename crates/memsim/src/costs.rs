//! Latency constants for the memory hierarchy.

use sim::Dur;

/// Per-access latencies, configurable per experiment.
///
/// Defaults approximate a contemporary Xeon server: ~12 ns LLC hit,
/// ~90 ns DRAM, posted MMIO writes around 100 ns and uncached MMIO reads
/// several times that.
#[derive(Clone, Debug)]
pub struct MemCosts {
    /// CPU load/store that hits in the LLC.
    pub llc_hit: Dur,
    /// CPU load/store that misses to DRAM.
    pub dram: Dur,
    /// NIC DMA write that hits in the LLC (DDIO write update).
    pub ddio_hit: Dur,
    /// NIC DMA write that misses and *allocates* into the DDIO ways
    /// (write allocate). Cheap — a full-line write needs no DRAM fetch;
    /// the victim's writeback is asynchronous. The real penalty of DDIO
    /// thrashing lands on the consumer's read misses.
    pub ddio_alloc: Dur,
    /// NIC DMA write that bypasses to DRAM (DDIO disabled).
    pub dma_dram: Dur,
    /// Cross-core cache-to-cache transfer (coherence), charged when a
    /// dedicated interposition core touches data produced on another core.
    pub cross_core: Dur,
    /// Posted MMIO register write (doorbell).
    pub mmio_write: Dur,
    /// Uncached MMIO register read.
    pub mmio_read: Dur,
    /// Software copy cost per byte (~20 GB/s effective single-core
    /// memcpy including both cache reads and writes).
    pub copy_per_byte: Dur,
    /// Walking the host-memory flow table for a cold-tier connection:
    /// several dependent DRAM reads (hash bucket, entry, ring context)
    /// the NIC issues over PCIe when the on-SRAM hot tier misses.
    pub host_flow_walk: Dur,
}

impl Default for MemCosts {
    fn default() -> MemCosts {
        MemCosts {
            llc_hit: Dur::from_ns(12),
            dram: Dur::from_ns(90),
            ddio_hit: Dur::from_ns(15),
            ddio_alloc: Dur::from_ns(20),
            dma_dram: Dur::from_ns(70),
            cross_core: Dur::from_ns(60),
            mmio_write: Dur::from_ns(100),
            mmio_read: Dur::from_ns(350),
            copy_per_byte: Dur::from_ps(50),
            host_flow_walk: Dur::from_ns(600),
        }
    }
}

impl MemCosts {
    /// Returns the cost of copying `bytes` through the CPU.
    pub fn copy(&self, bytes: usize) -> Dur {
        self.copy_per_byte.saturating_mul(bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let c = MemCosts::default();
        assert!(c.llc_hit < c.dram);
        assert!(c.ddio_hit <= c.ddio_alloc);
        assert!(c.ddio_alloc < c.dma_dram);
        assert!(c.mmio_write < c.mmio_read);
        assert!(c.llc_hit < c.cross_core);
        // A cold-flow host walk is several dependent DRAM round trips over
        // PCIe: dearer than any single access, cheaper than an MMIO read
        // pair.
        assert!(c.host_flow_walk > c.dram * 3);
        assert!(c.host_flow_walk < c.mmio_read * 2);
    }

    #[test]
    fn copy_scales_linearly() {
        let c = MemCosts::default();
        assert_eq!(c.copy(0), Dur::ZERO);
        assert_eq!(c.copy(1000), Dur::from_ns(50));
        assert_eq!(c.copy(2000), c.copy(1000) * 2);
    }
}
